#!/usr/bin/env python3
"""A tour of the SR2201 machine model: the shipped configurations, transfer
time estimates at 300 MB/s, hardware broadcast, and running the machine
with a fault.

Run:  python examples/sr2201_machine_tour.py
"""

from repro import Fault
from repro.machine import SR2201, STANDARD_CONFIGS, units


def main() -> None:
    print("=== SR2201 configurations (paper Sections 1-2) ===")
    for name in STANDARD_CONFIGS:
        m = SR2201.named(name)
        print(
            f"{name:<14} {str(m.shape):<14} "
            f"{m.peak_mflops / 1000:7.1f} GFLOPS  "
            f"{m.topo.crossbar_count():4d} crossbars  "
            f"diameter {m.topo.diameter_hops} hops"
        )

    print("\n=== the flagship: 2048 PEs ===")
    big = SR2201.named("SR2201/2048")
    print(big.describe())
    for nbytes in (256, 4096, 65536, 1 << 20):
        us = big.transfer_time_us((0, 0, 0), (15, 15, 7), nbytes)
        bw = big.effective_bandwidth_mb_s((0, 0, 0), (15, 15, 7), nbytes)
        print(
            f"  corner-to-corner {nbytes:>8} B: {us:9.2f} us "
            f"({bw:5.1f} MB/s effective)"
        )

    print("\n=== flit-level simulation on a 12-PE machine ===")
    small = SR2201((4, 3))
    res = small.simulate_transfer((0, 0), (3, 2), 1024)
    lat = res.delivered[0].latency
    print(
        f"1 KiB transfer: {lat} cycles = {units.cycles_to_us(lat):.2f} us "
        f"(analytic model: {small.transfer_cycles((0, 0), (3, 2), 1024)} cycles)"
    )
    res = small.simulate_broadcast((1, 2), 1024)
    lat = res.delivered[0].latency
    print(f"1 KiB broadcast to all 12 PEs: {lat} cycles = {units.cycles_to_us(lat):.2f} us")

    print("\n=== the same machine with a faulty router ===")
    faulted = SR2201((4, 3), fault=Fault.router((2, 0)))
    print(faulted.describe())
    res = faulted.simulate_transfer((0, 0), (2, 2), 1024)
    lat = res.delivered[0].latency
    print(
        f"1 KiB transfer through the detour: {lat} cycles = "
        f"{units.cycles_to_us(lat):.2f} us (the machine keeps operating)"
    )


if __name__ == "__main__":
    main()
