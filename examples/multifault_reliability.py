#!/usr/bin/env python3
"""The paper's future work, explored: how many faults can the facility
carry, and what that does to machine reliability.

Run:  python examples/multifault_reliability.py
"""

from repro import Fault, MDCrossbar
from repro.analysis import mttf_comparison
from repro.core.multifault import analyze_fault_set, fault_pair_census

SHAPE = (4, 3)


def main() -> None:
    topo = MDCrossbar(SHAPE)

    print("=== concrete fault sets on the 4x3 network ===")
    cases = [
        (Fault.router((1, 0)),),
        (Fault.router((1, 0)), Fault.router((3, 2))),
        (Fault.router((0, 0)), Fault.router((1, 0)), Fault.router((2, 0))),
        (Fault.crossbar(0, (0,)), Fault.crossbar(0, (2,))),
        (Fault.crossbar(0, (0,)), Fault.crossbar(1, (1,))),
    ]
    for faults in cases:
        print(" ", analyze_fault_set(topo, faults).row())

    print("\n=== exhaustive two-fault census ===")
    summary = fault_pair_census(SHAPE, check_deadlock=True)
    for line in summary.rows():
        print(" ", line)
    print(
        "  every *feasible* pair is fully tolerated; the losses are fault\n"
        "  pairs hitting crossbars of two different dimensions (rule R1)."
    )

    print("\n=== what that buys in MTTF ===")
    cmp = mttf_comparison(SHAPE, samples=200)
    for line in cmp.rows():
        print(" ", line)
    print(
        "\nThe paper's single-fault facility already doubles the network's\n"
        "mean time to operational failure; generalizing its rules (same\n"
        "hardware mechanisms, more fault bits) multiplies it further --\n"
        "the direction Section 6 announces as future research."
    )


if __name__ == "__main__":
    main()
