#!/usr/bin/env python3
"""Replay of the paper's Figs. 7-10: the hardware detour path selection
facility, the deadlock it can cause when combined with broadcasts, and the
deadlock-free scheme that sets the D-XB to the S-XB.

Run:  python examples/fault_tolerant_routing_demo.py
"""

from repro import MDCrossbar, Fault, analyze_deadlock_freedom, make_config
from repro.core import Header, Packet, RC, SwitchLogic, Unicast, compute_route
from repro.core.config import DetourScheme
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from repro.viz import render_grid, render_rc_legend, render_route

SHAPE = (4, 3)
FAULT = Fault.router((2, 0))
SRC, DST = (0, 0), (2, 2)


def fig9_workload(sim):
    sim.send(
        Packet(Header(source=(3, 2), dest=(3, 2), rc=RC.BROADCAST_REQUEST), length=6),
        at_cycle=0,
    )
    sim.send(Packet(Header(source=SRC, dest=DST), length=6), at_cycle=1)
    sim.send(Packet(Header(source=(1, 0), dest=(3, 1)), length=6), at_cycle=1)
    sim.send(Packet(Header(source=(0, 1), dest=(1, 2)), length=6), at_cycle=2)


def main() -> None:
    topo = MDCrossbar(SHAPE)

    print("--- Figs. 7-8: the detour path selection facility ---")
    cfg = make_config(SHAPE, fault=FAULT)
    logic = SwitchLogic(topo, cfg)
    print(
        render_grid(
            topo,
            highlight_pes=[SRC, DST],
            faulty=FAULT.element,
            sxb_line=cfg.sxb_line,
            dxb_line=cfg.dxb_line,
        )
    )
    tree = compute_route(topo, logic, Unicast(SRC, DST))
    print(f"\nroute from PE{SRC} to PE{DST} around the faulty router:")
    print(" ", render_route(tree, DST))
    print(" ", render_rc_legend())
    print(
        "the X-XB spots its faulty neighbour, flips RC to 'detour', and\n"
        "deflects the packet; the D-XB flips RC back to 'normal' -- the\n"
        "packet leaves no trace of the detour behind.\n"
    )

    print("--- Fig. 9: detour + broadcast deadlock (naive D-XB) ---")
    naive_cfg = make_config(SHAPE, fault=FAULT, detour_scheme=DetourScheme.NAIVE)
    print(f"S-XB line {naive_cfg.sxb_line}, D-XB line {naive_cfg.dxb_line} (distinct)")
    sim = NetworkSimulator(
        MDCrossbarAdapter(SwitchLogic(topo, naive_cfg)), SimConfig(stall_limit=200)
    )
    fig9_workload(sim)
    res = sim.run(max_cycles=5000)
    print(f"result: deadlocked = {res.deadlocked}")
    if res.deadlock is not None:
        print(res.deadlock.describe())
    print()

    print("--- Fig. 10: the deadlock-free scheme (D-XB = S-XB) ---")
    print(f"S-XB line {cfg.sxb_line} = D-XB line {cfg.dxb_line}")
    sim = NetworkSimulator(
        MDCrossbarAdapter(logic), SimConfig(stall_limit=200)
    )
    fig9_workload(sim)
    res = sim.run(max_cycles=5000)
    print(
        f"result: deadlocked = {res.deadlocked}, "
        f"{len(res.delivered)}/4 packets delivered"
    )

    print("\n--- Section 5: the guarantee, statically ---")
    for name, c in [("naive", naive_cfg), ("safe ", cfg)]:
        verdict = analyze_deadlock_freedom(topo, SwitchLogic(topo, c))
        print(
            f"{name} scheme: deadlock free = {verdict.deadlock_free} "
            f"({verdict.num_flows} flows analysed)"
        )


if __name__ == "__main__":
    main()
