#!/usr/bin/env python3
"""Quickstart: build an SR2201-style multi-dimensional crossbar network,
route packets, run the flit-level simulator, and check deadlock freedom.

Run:  python examples/quickstart.py
"""

from repro import MDCrossbar, Fault, analyze_deadlock_freedom, make_config
from repro.core import (
    Broadcast,
    Header,
    Packet,
    RC,
    SwitchLogic,
    Unicast,
    compute_route,
)
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from repro.viz import render_grid, render_rc_legend, render_route


def main() -> None:
    # 1. the paper's running example: a 4x3 two-dimensional crossbar network
    topo = MDCrossbar((4, 3))
    print(topo.describe())
    print(render_grid(topo))
    print()

    # 2. configure the routing facility (dimension order, S-XB, D-XB) and
    #    compute a dimension-order route
    cfg = make_config(topo.shape)
    logic = SwitchLogic(topo, cfg)
    route = compute_route(topo, logic, Unicast((0, 0), (2, 2)))
    print("point-to-point X-Y route:")
    print(" ", render_route(route, (2, 2)))
    print(" ", render_rc_legend())
    print()

    # 3. a hardware broadcast: serialized through the S-XB, Y-X-Y routing
    bc = compute_route(topo, logic, Broadcast((2, 1)))
    print(
        f"broadcast from PE(2,1): {len(bc.delivered)} PEs covered, "
        f"S-XB = {cfg.sxb_element}"
    )
    print(" ", render_route(bc, (3, 2)))
    print()

    # 4. inject a fault and watch the detour facility take over
    faulty_cfg = make_config(topo.shape, fault=Fault.router((2, 0)))
    faulty_logic = SwitchLogic(topo, faulty_cfg)
    detour = compute_route(topo, faulty_logic, Unicast((0, 0), (2, 2)))
    print("the same transfer with RTR(2,0) faulty (detour via the D-XB):")
    print(" ", render_route(detour, (2, 2)))
    print()

    # 5. run it on the cycle-level simulator
    sim = NetworkSimulator(MDCrossbarAdapter(faulty_logic), SimConfig())
    pkt = Packet(Header(source=(0, 0), dest=(2, 2)), length=8)
    sim.send(pkt)
    sim.send(Packet(Header(source=(3, 2), dest=(3, 2), rc=RC.BROADCAST_REQUEST), length=8))
    result = sim.run()
    print(
        f"simulated with a concurrent broadcast: {len(result.delivered)} "
        f"packets delivered in {result.cycles} cycles, "
        f"p2p latency {pkt.latency} cycles, deadlock: {result.deadlocked}"
    )

    # 6. prove the configuration deadlock free (paper Section 5)
    verdict = analyze_deadlock_freedom(topo, faulty_logic)
    print(
        f"static analysis: {verdict.num_flows} flows, "
        f"{verdict.num_edges} dependency edges -> deadlock free: "
        f"{verdict.deadlock_free}"
    )


if __name__ == "__main__":
    main()
