#!/usr/bin/env python3
"""Application kernels and collectives on the SR2201 network: the
large-scale numerical workloads the paper's introduction motivates, plus
the hardware-vs-software broadcast comparison of Section 3.2.

Run:  python examples/application_kernels.py
"""

from repro import MDCrossbar, make_config
from repro.collectives import BinomialBroadcast, DisseminationBarrier, LinearBroadcast
from repro.core import Header, Packet, RC, SwitchLogic
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from repro.traffic import compare_topologies

SHAPE = (4, 4)


def make_sim():
    topo = MDCrossbar(SHAPE)
    return NetworkSimulator(
        MDCrossbarAdapter(SwitchLogic(topo, make_config(SHAPE))),
        SimConfig(stall_limit=5000),
    )


def run_collective(cls, **kw):
    sim = make_sim()
    if cls is DisseminationBarrier:
        col = cls(sim, **kw)
    else:
        col = cls(sim, (0, 0), packet_length=8, **kw)
    while not col.result.done and sim.cycle < 100_000:
        sim.step()
    return col.result


def main() -> None:
    print(f"=== application kernels on {SHAPE[0]}x{SHAPE[1]} (8-flit packets) ===")
    for kernel in ("stencil", "fft", "alltoall", "sweep"):
        print(f"-- {kernel}")
        for kind, res in compare_topologies(kernel, SHAPE).items():
            print(f"   {kind:<12} {res.row()}")

    print("\n=== broadcast: the hardware facility vs software trees ===")
    sim = make_sim()
    pkt = Packet(Header(source=(0, 0), dest=(0, 0), rc=RC.BROADCAST_REQUEST), length=8)
    sim.send(pkt)
    sim.run()
    print(f"hardware S-XB broadcast : {pkt.latency} cycles, 1 injection")
    bino = run_collective(BinomialBroadcast)
    print(
        f"software binomial tree  : {bino.duration} cycles, "
        f"{bino.messages_sent} messages"
    )
    lin = run_collective(LinearBroadcast)
    print(
        f"software linear sends   : {lin.duration} cycles, "
        f"{lin.messages_sent} messages"
    )

    print("\n=== a software barrier (no hardware barrier on the SR2201) ===")
    bar = run_collective(DisseminationBarrier)
    print(
        f"dissemination barrier over {SHAPE[0] * SHAPE[1]} PEs: "
        f"{bar.duration} cycles, {bar.messages_sent} messages, "
        f"{max(1, (SHAPE[0] * SHAPE[1] - 1).bit_length())} rounds"
    )


if __name__ == "__main__":
    main()
