#!/usr/bin/env python3
"""Replay of the paper's Figs. 5 and 6: why naive hardware broadcast
deadlocks under cut-through routing, and how the serialized crossbar
(S-XB) fixes it.

Run:  python examples/broadcast_deadlock_demo.py
"""

from repro import MDCrossbar, make_config
from repro.core import Header, Packet, RC, SwitchLogic
from repro.core.config import BroadcastMode
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from repro.viz import render_grid

SHAPE = (4, 3)
SOURCES = [(2, 1), (3, 2)]


def run(mode: BroadcastMode):
    topo = MDCrossbar(SHAPE)
    cfg = make_config(SHAPE, broadcast_mode=mode)
    sim = NetworkSimulator(
        MDCrossbarAdapter(SwitchLogic(topo, cfg)), SimConfig(stall_limit=200)
    )
    rc = RC.BROADCAST if mode is BroadcastMode.NAIVE else RC.BROADCAST_REQUEST
    for src in SOURCES:
        sim.send(Packet(Header(source=src, dest=src, rc=rc), length=6))
    return cfg, sim.run(max_cycles=5000)


def main() -> None:
    topo = MDCrossbar(SHAPE)
    print("Two PEs start hardware broadcasts at the same time:")
    print(render_grid(topo, highlight_pes=SOURCES))
    print()

    print("--- Fig. 5: naive dimension-order broadcast (X then Y) ---")
    _, res = run(BroadcastMode.NAIVE)
    print(f"result: deadlocked = {res.deadlocked}")
    if res.deadlock is not None:
        print(res.deadlock.describe())
    print(
        "each broadcast grabbed some Y-dimension crossbars and is waiting\n"
        "for ports the other one holds: cyclic waiting, exactly as the\n"
        "paper's Fig. 5 describes.\n"
    )

    print("--- Fig. 6: the SR2201's serialized broadcast (Y-X-Y via S-XB) ---")
    cfg, res = run(BroadcastMode.SERIALIZED)
    print(f"S-XB: {cfg.sxb_element}")
    print(f"result: deadlocked = {res.deadlocked}")
    for p in sorted(res.delivered, key=lambda p: p.delivered_at):
        print(
            f"  broadcast from PE{p.source}: completed at cycle "
            f"{p.delivered_at} (latency {p.latency})"
        )
    print(
        "broadcast requests travel point-to-point to the S-XB, which\n"
        "forwards them to all its ports one at a time -- the second\n"
        "broadcast simply waits its turn, so no cyclic waiting can form."
    )


if __name__ == "__main__":
    main()
