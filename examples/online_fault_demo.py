#!/usr/bin/env python3
"""A switch dies while the machine is running: watch the facility
reconfigure and traffic flow on (the operational story of Section 4).

Run:  python examples/online_fault_demo.py
"""

from repro import Fault, MDCrossbar, make_config
from repro.core import SwitchLogic
from repro.sim import (
    MDCrossbarAdapter,
    NetworkSimulator,
    SimConfig,
    SimMonitor,
    channel_load_heatmap,
)
from repro.traffic import BernoulliInjector

SHAPE = (8, 8)
FAULT = Fault.router((4, 4))
FAULT_CYCLE = 300


def main() -> None:
    topo = MDCrossbar(SHAPE)
    sim = NetworkSimulator(
        MDCrossbarAdapter(SwitchLogic(topo, make_config(SHAPE))),
        SimConfig(stall_limit=3000),
    )
    mon = SimMonitor(sim, interval=50)
    gen = BernoulliInjector(load=0.2, seed=23, stop_at=900)
    sim.add_generator(gen)

    print(f"running 0.2-load uniform traffic on {SHAPE[0]}x{SHAPE[1]}...")
    sim.run(max_cycles=FAULT_CYCLE, until_drained=False)
    before = len(sim.result().delivered)
    print(f"cycle {FAULT_CYCLE}: {before} packets delivered so far")

    print(f"\n*** {FAULT} occurs ***")
    rep = sim.inject_fault(FAULT)
    print(rep.describe())

    res = sim.run(max_cycles=20_000, until_drained=False)
    print(
        f"\nafter the event: {len(res.delivered) - before} more packets "
        f"delivered, {len(res.dropped)} lost in total, "
        f"deadlock: {res.deadlocked}"
    )
    print(
        f"conservation: offered {gen.offered} = delivered "
        f"{len(res.delivered)} + lost {len(res.dropped)}"
    )

    print("\nchannel load heat (0-9) over the whole run; the dead PE's")
    print("neighbourhood cools, the detour row warms:")
    print(channel_load_heatmap(sim, res.channel_busy, res.cycles))

    print("\noccupancy timeline (every 50 cycles, last 6 samples):")
    for s in mon.samples[-6:]:
        print(" ", s.row())


if __name__ == "__main__":
    main()
