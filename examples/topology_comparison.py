#!/usr/bin/env python3
"""The paper's Section 3.1 argument as a runnable comparison: distances,
channel widths, conflicts and simulated latency-under-load for the MD
crossbar against mesh, torus and hypercube.

Run:  python examples/topology_comparison.py          (quick)
      python examples/topology_comparison.py --full   (adds the 8x8 sweep)
"""

import sys

from repro.analysis import (
    channel_budget_table,
    check_all_embeddings,
    comparison_table,
    crossover_message_size,
    permutation_conflict_comparison,
    summarize_conflicts,
)


def main() -> None:
    full = "--full" in sys.argv

    print("=== structure at 64 PEs (paper: short distances, few ports) ===")
    for p in comparison_table(64).values():
        print(p.row())

    print("\n=== channel width under a 64-unit pin budget, 1024 PEs ===")
    table = channel_budget_table(1024)
    for cb in table.values():
        print(cb.row(message_bytes=4096))
    cross = crossover_message_size(table["md-crossbar"], table["hypercube"])
    print(f"MD crossbar matches the hypercube from {cross}-byte messages up")

    print("\n=== conflicts under random permutations, 8x8 ===")
    results = permutation_conflict_comparison((8, 8), samples=10, seed=7)
    for name, s in summarize_conflicts(results).items():
        print(
            f"{name:<14} mean conflicted channels "
            f"{s['mean_conflicted_channels']:6.1f}   "
            f"mean max channel load {s['mean_max_load']:.1f}"
        )

    print("\n=== conflict-free guest-topology programs on the MD crossbar ===")
    for r in check_all_embeddings((8, 8)).values():
        print(r.row())

    if full:
        sys.path.insert(0, "benchmarks")
        from sweep_utils import sweep

        print("\n=== simulated latency vs offered load, uniform, 8x8 ===")
        for kind in ("md-crossbar", "mesh", "torus"):
            print(f"-- {kind}")
            for p in sweep(kind, (8, 8), [0.1, 0.2, 0.3, 0.4],
                           warmup=150, window=300, drain=3000):
                print("  ", p.row())
    else:
        print("\n(run with --full for the simulated latency-vs-load sweep)")


if __name__ == "__main__":
    main()
