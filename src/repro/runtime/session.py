"""Warm-worker sweep sessions: chunked scheduling, network reuse, caching.

``ProcessPoolExecutor.run`` is stateless: every call spins up a pool,
ships every spec as its own task, and every task builds its network from
scratch.  Fine for one big sweep; wasteful for the experiment shapes the
repo is built on -- fault-placement enumerations, seed replicas and load
batches issue hundreds of short deterministic points, and the fixed costs
(pool spinup, per-spec pickle/IPC, per-spec topology construction)
dominate the actual simulation.  :class:`SweepSession` amortizes all
three:

* **persistent warm pool** -- worker processes survive across ``run()``
  calls, so pool spinup and interpreter warmup are paid once per session,
  not once per sweep;
* **chunked scheduling** -- specs ship in size-balanced contiguous chunks
  (one pickle/IPC round-trip per chunk instead of per spec), streamed
  back through an optional progress callback while the merged result list
  stays in spec order;
* **per-worker network reuse** -- each process memoizes built simulators
  in a :class:`NetworkCache` keyed by :meth:`RunSpec.network_key` and
  winds them back with :meth:`CycleEngine.reset` between specs instead of
  reconstructing the topology (fingerprint parity with a fresh build is
  tested in ``tests/sim/test_reset.py`` / ``tests/runtime``);
* **result cache** -- give the session a
  :class:`~repro.runtime.cache.ResultCache` and already-known specs skip
  simulation entirely, streaming straight from disk.

The runtime's determinism contract is unchanged: serial, chunked-parallel
and cache-replayed runs of the same specs produce byte-identical results
(``wall_time`` aside -- and a cache hit even preserves the *original*
wall time, so a fully cached rerun's JSON is byte-identical too).

A session can also keep a **run ledger**
(:class:`~repro.obs.telemetry.SweepLedger`): pass ``ledger=`` (or assign
:attr:`SweepSession.ledger` between runs) and every ``run()`` records its
chunk plan, per-spec outcome and serving telemetry -- which cache tier
served each spec (``result`` / ``reuse`` / ``fresh``), on which worker,
with what wall/cpu time.  Worker-side timings ride back with the chunk
results as plain picklable tuples and the per-spec records are written in
spec order regardless of completion order, so the ledger inherits the
determinism contract: serial, chunked and cache-replayed ledgers are
identical after :func:`~repro.obs.telemetry.strip_ledger`.
"""

from __future__ import annotations

import concurrent.futures as _futures
import os
from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter, process_time
from typing import (
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..obs.telemetry import SweepLedger, spec_outcome
from .cache import ResultCache
from .executor import SpecExecutionError
from .spec import PointResult, RunSpec

#: built networks kept per process.  Large enough that a full single-fault
#: enumeration on the standard shapes stays resident even when its specs
#: are split across a few workers; small enough to bound memory on
#: many-shape sessions.
DEFAULT_NETWORK_CAPACITY = 32

#: chunks submitted per worker per ``run()``: >1 rebalances stragglers
#: (a worker that drew slow specs hands later chunks to idle peers) while
#: keeping the per-chunk IPC overhead amortized over many specs
CHUNKS_PER_WORKER = 4


def chunk_indices(n: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``chunks`` contiguous slices whose
    sizes differ by at most one (larger slices first)."""
    chunks = max(1, min(chunks, n))
    base, extra = divmod(n, chunks)
    out: List[Tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append((start, start + size))
        start += size
    return out


class NetworkCache:
    """Per-process memo of built simulators, keyed by ``network_key()``.

    :meth:`get` hands back a simulator ready for :meth:`RunSpec.execute`:
    a fresh build on a miss; on a hit the cached simulator is wound back
    to its just-built state -- :meth:`CycleEngine.reset` for the fabric,
    and the pristine routing logic captured at build time reasserted in
    case an online fault event swapped it.  For metrics-bearing specs the
    adapter's route memo is also cleared with its counters zeroed
    (``reset_cache``), so the ``RouteCacheStats`` export matches a cold
    build byte-for-byte.  For plain specs the route memo is left warm:
    decisions are pure functions of a fixed logic, so warm entries can
    only turn route-phase misses into hits without touching any
    observable quantity.

    Bounded LRU: least-recently-used networks are dropped beyond
    ``capacity``.
    """

    def __init__(self, capacity: int = DEFAULT_NETWORK_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._sims: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self.builds = 0
        self.reuses = 0

    def get(self, spec: RunSpec):
        key = spec.network_key()
        entry = self._sims.get(key)
        if entry is None:
            from ..experiments.sweeps import build_network

            sim = build_network(
                spec.kind,
                spec.shape,
                stall_limit=spec.stall_limit,
                faults=spec.faults,
                scheme=spec.scheme,
                recovery=spec.recovery,
                engine=spec.engine,
            )()
            self._sims[key] = (sim, getattr(sim.adapter, "logic", None))
            if len(self._sims) > self.capacity:
                self._sims.popitem(last=False)
            self.builds += 1
            return sim
        self._sims.move_to_end(key)
        sim, pristine_logic = entry
        if (
            pristine_logic is not None
            and sim.adapter.logic is not pristine_logic
        ):
            # an online fault event swapped the logic mid-run; the setter
            # also clears the route memo, which is now stale
            sim.adapter.logic = pristine_logic
        if spec.metrics and hasattr(sim.adapter, "reset_cache"):
            sim.adapter.reset_cache()
        sim.reset()
        self.reuses += 1
        return sim


#: the per-process NetworkCache the chunk workers share (created lazily;
#: under the fork start method each worker process gets its own copy)
_process_networks: Optional[NetworkCache] = None


def _networks() -> NetworkCache:
    global _process_networks
    if _process_networks is None:
        _process_networks = NetworkCache()
    return _process_networks


class _ChunkFailure(NamedTuple):
    """Picklable failure sentinel a chunk worker returns instead of
    raising.  :class:`SpecExecutionError` carries its spec via a custom
    ``__init__`` and does not survive the exception-pickling round trip,
    so the worker ships the offset of the failing spec plus the original
    cause, and the parent rebuilds the rich error against the real spec.
    """

    index: int
    cause: BaseException


class _ChunkResult(NamedTuple):
    """What a successful chunk ships back: the results plus the serving
    telemetry measured where it happened (the worker process).  One
    ``(wall_s, cpu_s, tier)`` triple per spec, in chunk order, so the
    parent can merge timings into the ledger in deterministic spec order
    without trusting completion order or re-measuring across the IPC
    boundary."""

    results: List[PointResult]
    #: per-spec ``(wall_s, cpu_s, tier)``; tier is ``"fresh"`` (network
    #: built for this spec) or ``"reuse"`` (served off the warm
    #: :class:`NetworkCache`)
    timings: List[Tuple[float, float, str]]
    worker: int
    wall_s: float
    cpu_s: float


class _ConsumerError(Exception):
    """Wrapper distinguishing a parent-side consumer failure (the
    ``progress`` callback or ``cache.put`` raising) from a worker/pool
    failure inside :meth:`SweepSession._run_chunked`.  The workers are
    healthy in this case, so the session cancels what is queued but keeps
    the warm pool."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(str(cause))
        self.cause = cause


def _picklable_cause(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round trip, else a plain
    ``RuntimeError`` carrying its repr and traceback.

    A worker exception that cannot cross the process boundary (custom
    ``__init__`` signatures, captured locks/file handles...) would
    otherwise kill the *result* pickling of the whole chunk and surface
    as an opaque ``BrokenProcessPool``; the sanitized stand-in keeps the
    failure a named :class:`SpecExecutionError` in the parent.
    """
    import pickle
    import traceback

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ).strip()
        return RuntimeError(
            f"unpicklable worker exception {exc!r}:\n{detail}"
        )


def execute_chunk(specs: Sequence[RunSpec]):
    """Module-level chunk entry point (importable, hence picklable).

    Runs every spec on this process's warm :class:`NetworkCache` and
    returns a :class:`_ChunkResult` -- or a :class:`_ChunkFailure` for
    the first spec that raised (later specs in the chunk are not
    attempted; sibling chunks are cancelled by the session).
    """
    networks = _networks()
    chunk_t0, chunk_c0 = perf_counter(), process_time()
    out: List[PointResult] = []
    timings: List[Tuple[float, float, str]] = []
    for i, spec in enumerate(specs):
        t0, c0 = perf_counter(), process_time()
        builds_before = networks.builds
        try:
            out.append(spec.execute(sim=networks.get(spec)))
        except Exception as exc:
            return _ChunkFailure(i, _picklable_cause(exc))
        tier = "fresh" if networks.builds > builds_before else "reuse"
        timings.append((perf_counter() - t0, process_time() - c0, tier))
    return _ChunkResult(
        out,
        timings,
        os.getpid(),
        perf_counter() - chunk_t0,
        process_time() - chunk_c0,
    )


@dataclass(frozen=True)
class RunInfo:
    """What one :meth:`SweepSession.run` actually did.

    ``workers`` is the *effective* count -- degenerate inputs (one spec,
    ``jobs<=1``, everything served from cache) run serially no matter
    what was requested, and consumers report this number instead of
    echoing ``--jobs``.  ``wall_s`` is the whole run's wall time, cache
    scan included.
    """

    specs: int
    workers: int
    chunks: int
    cache_hits: int
    cache_misses: int
    wall_s: float = 0.0

    def hit_rate(self) -> float:
        """Cache hits as a fraction of lookups (0.0 when uncached)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def describe(self) -> str:
        bits = [
            f"{self.specs} spec(s) on {self.workers} worker(s) "
            f"in {self.chunks} chunk(s)"
        ]
        if self.cache_hits or self.cache_misses:
            bits.append(
                f"{self.cache_hits} from cache, {self.cache_misses} simulated"
                f" ({100.0 * self.hit_rate():.1f}% hit rate)"
            )
        bits.append(f"{self.wall_s:.2f}s total")
        return ", ".join(bits)


class SweepSession:
    """A reusable sweep runner that keeps its worker pool warm.

    Use it as a context manager (or call :meth:`close`)::

        with SweepSession(jobs=4, cache=ResultCache()) as session:
            for batch in batches:
                results = session.run(batch, progress=on_point)

    ``jobs`` follows :func:`make_executor` semantics: ``None``/0/1 runs
    in-process (still with network reuse); more fans chunks out over a
    persistent process pool.  ``run()`` preserves the executor contract
    -- one :class:`PointResult` per spec, in spec order, byte-identical
    to a serial run -- and records a :class:`RunInfo` in :attr:`last_run`.

    ``progress(result, done, total)`` fires once per completed spec as
    results stream in (completion order; the returned list is still
    merged in spec order).  Cache hits stream first.

    ``ledger`` (a :class:`~repro.obs.telemetry.SweepLedger`, settable as
    a plain attribute between runs) records session lifecycle, chunk
    plan/dispatch/completion, and one ``spec_done`` per spec with its
    outcome and serving telemetry -- written in spec order at the end of
    each ``run()``, never in completion order.

    A failed run raises :class:`SpecExecutionError` naming the spec,
    cancels queued chunks, and discards the pool; the session itself
    stays usable -- the next ``run()`` starts a fresh pool.  A *consumer*
    failure -- the ``progress`` callback or ``cache.put`` raising in the
    parent -- also cancels queued chunks and surfaces the error, but the
    workers are healthy, so the warm pool is kept for the next run.
    Either way a ledgered run that fails records a single ``sweep_error``
    instead of its per-spec records.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        network_capacity: int = DEFAULT_NETWORK_CAPACITY,
        ledger: Optional[SweepLedger] = None,
    ) -> None:
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        self.jobs = 1 if jobs is None else jobs
        self.cache = cache
        self.chunks_per_worker = chunks_per_worker
        self.network_capacity = network_capacity
        self.ledger = ledger
        self.last_run: Optional[RunInfo] = None
        self._pool: Optional[_futures.ProcessPoolExecutor] = None
        self._local_networks: Optional[NetworkCache] = None
        self._runs = 0
        self._announced: Optional[SweepLedger] = None

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "SweepSession":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Shut the worker pool down (queued work is cancelled)."""
        if self.ledger is not None and self._announced is self.ledger:
            self.ledger.record("session_close", runs=self._runs)
            self._announced = None
        self._discard_pool()

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _ensure_pool(self) -> _futures.ProcessPoolExecutor:
        if self._pool is None:
            # workers spawn on demand up to max_workers, so sizing the
            # pool by ``jobs`` costs nothing on small runs
            self._pool = _futures.ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    # ------------------------------------------------------------ execution
    def effective_workers(self, num_specs: int) -> int:
        """Worker processes a ``run()`` of this size would actually use
        (1 = in-process serial)."""
        if self.jobs <= 1 or num_specs <= 1:
            return 1
        return min(self.jobs, num_specs)

    def run(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[PointResult, int, int], None]] = None,
    ) -> List[PointResult]:
        specs = list(specs)
        total = len(specs)
        run_t0 = perf_counter()
        self._runs += 1
        run_no = self._runs
        ledger = self.ledger
        if ledger is not None and self._announced is not ledger:
            ledger.record(
                "session_open",
                jobs=self.jobs,
                chunks_per_worker=self.chunks_per_worker,
                network_capacity=self.network_capacity,
                cache_enabled=self.cache is not None,
            )
            self._announced = ledger

        results: List[Optional[PointResult]] = [None] * total
        #: per-spec serving telemetry, merged in spec order at the end
        serve: List[Optional[Dict]] = [None] * total
        todo: List[int] = []
        if self.cache is not None:
            for i, spec in enumerate(specs):
                t0, c0 = perf_counter(), process_time()
                hit = self.cache.get(spec)
                if hit is None:
                    todo.append(i)
                else:
                    results[i] = hit
                    serve[i] = {
                        "cache": "result",
                        "worker": None,
                        "chunk": None,
                        "wall_s": perf_counter() - t0,
                        "cpu_s": process_time() - c0,
                    }
        else:
            todo = list(range(total))
        hits = total - len(todo)

        workers = self.effective_workers(len(todo))
        if not todo:
            chunks = 0
            slices: List[Tuple[int, int]] = []
        elif workers <= 1:
            chunks = 1
            slices = []
        else:
            slices = chunk_indices(
                len(todo), workers * self.chunks_per_worker
            )
            chunks = len(slices)

        if ledger is not None:
            ledger.record(
                "sweep_start",
                run=run_no,
                specs=total,
                jobs=self.jobs,
                workers=workers,
                chunks=chunks,
                chunk_sizes=[b - a for a, b in slices],
                cache_enabled=self.cache is not None,
            )

        chunk_events: List[Dict] = []
        try:
            done = 0
            if progress is not None:
                for r in results:
                    if r is not None:
                        done += 1
                        progress(r, done, total)
            if todo and workers <= 1:
                self._run_serial(
                    specs, todo, results, serve, progress, done, total
                )
            elif todo:
                self._run_chunked(
                    specs,
                    todo,
                    slices,
                    results,
                    serve,
                    progress,
                    done,
                    total,
                    run_no,
                    chunk_events,
                )
        except BaseException as exc:
            if ledger is not None:
                ledger.record(
                    "sweep_error",
                    run=run_no,
                    error=f"{type(exc).__name__}: {exc}",
                )
            raise

        wall = perf_counter() - run_t0
        self.last_run = RunInfo(
            specs=total,
            workers=workers,
            chunks=chunks,
            cache_hits=hits,
            cache_misses=len(todo) if self.cache is not None else 0,
            wall_s=wall,
        )
        assert all(r is not None for r in results)
        if ledger is not None:
            deadlocked = recoveries = 0
            for i, (result, how) in enumerate(zip(results, serve)):
                outcome = spec_outcome(result)
                deadlocked += bool(outcome["deadlocked"])
                recoveries += outcome["recoveries"]
                ledger.record(
                    "spec_done", run=run_no, i=i, **outcome, **(how or {})
                )
            for ev in sorted(chunk_events, key=lambda e: e["chunk"]):
                ledger.record("chunk_done", run=run_no, **ev)
            ledger.record(
                "sweep_end",
                run=run_no,
                specs=total,
                deadlocked=deadlocked,
                recoveries=recoveries,
                workers=workers,
                chunks=chunks,
                cache_hits=hits,
                cache_misses=len(todo) if self.cache is not None else 0,
                wall_s=wall,
            )
        return results  # type: ignore[return-value]

    def _run_serial(
        self, specs, todo, results, serve, progress, done, total
    ) -> int:
        if self._local_networks is None:
            self._local_networks = NetworkCache(self.network_capacity)
        networks = self._local_networks
        for i in todo:
            spec = specs[i]
            t0, c0 = perf_counter(), process_time()
            builds_before = networks.builds
            try:
                result = spec.execute(sim=networks.get(spec))
            except Exception as exc:
                raise SpecExecutionError(spec, exc) from exc
            results[i] = result
            serve[i] = {
                "cache": (
                    "fresh" if networks.builds > builds_before else "reuse"
                ),
                "worker": None,
                "chunk": None,
                "wall_s": perf_counter() - t0,
                "cpu_s": process_time() - c0,
            }
            if self.cache is not None:
                self.cache.put(result)
            done += 1
            if progress is not None:
                progress(result, done, total)
        return done

    def _run_chunked(
        self,
        specs,
        todo,
        slices,
        results,
        serve,
        progress,
        done,
        total,
        run_no,
        chunk_events,
    ) -> int:
        pool = self._ensure_pool()
        futures = {}
        try:
            for ci, (a, b) in enumerate(slices):
                idxs = todo[a:b]
                if self.ledger is not None:
                    self.ledger.record(
                        "chunk_dispatch",
                        run=run_no,
                        chunk=ci,
                        specs=len(idxs),
                        first=idxs[0],
                        last=idxs[-1],
                    )
                fut = pool.submit(
                    execute_chunk, [specs[i] for i in idxs]
                )
                futures[fut] = (ci, idxs)
            for fut in _futures.as_completed(futures):
                payload = fut.result()
                ci, idxs = futures[fut]
                if isinstance(payload, _ChunkFailure):
                    spec = specs[idxs[payload.index]]
                    raise SpecExecutionError(
                        spec, payload.cause
                    ) from payload.cause
                chunk_events.append(
                    {
                        "chunk": ci,
                        "specs": len(idxs),
                        "worker": payload.worker,
                        "wall_s": payload.wall_s,
                        "cpu_s": payload.cpu_s,
                    }
                )
                for i, result, timing in zip(
                    idxs, payload.results, payload.timings
                ):
                    results[i] = result
                    serve[i] = {
                        "cache": timing[2],
                        "worker": payload.worker,
                        "chunk": ci,
                        "wall_s": timing[0],
                        "cpu_s": timing[1],
                    }
                    done += 1
                    try:
                        if self.cache is not None:
                            self.cache.put(result)
                        if progress is not None:
                            progress(result, done, total)
                    except BaseException as exc:
                        raise _ConsumerError(exc) from exc
        except _ConsumerError as wrapper:
            # the parent-side consumer (progress callback / cache.put)
            # failed; the workers are fine.  Cancel what is still queued
            # and surface the original error, but keep the warm pool --
            # the session stays immediately reusable.
            for f in futures:
                f.cancel()
            raise wrapper.cause
        except BaseException:
            # a dead worker (BrokenProcessPool) or a failing spec poisons
            # in-flight chunks: cancel what is queued, drop the pool, and
            # let the next run() start fresh
            self._discard_pool()
            raise
        return done

    # ---------------------------------------------------------- generic fan-out
    def run_tasks(
        self,
        fn: Callable,
        tasks: Sequence[Tuple],
        on_result: Optional[Callable[[int, object], None]] = None,
    ) -> int:
        """Fan arbitrary ``fn(*task)`` calls over the warm pool.

        The escape hatch for workloads that are *not* one
        :class:`RunSpec` per unit of work -- campaign chunks push
        thousands of Monte-Carlo samples through a single task, so the
        per-spec pickling, cache lookup and ledger bookkeeping of
        :meth:`run` would be pure overhead.  ``fn`` must be a
        module-level (picklable) callable that raises on failure;
        ``tasks`` is a sequence of argument tuples.

        ``on_result(index, payload)`` fires in **completion order** --
        callers needing a deterministic fold must reorder (see
        :func:`repro.analysis.campaign.run_campaign`).  Failure
        semantics mirror :meth:`run`: a worker exception cancels queued
        tasks and discards the pool (the session stays usable); an
        ``on_result`` exception cancels queued tasks but keeps the warm
        pool, since the workers are healthy.  Degenerate inputs
        (``jobs <= 1`` or a single task) run in-process.

        Returns the number of tasks completed.  Unlike :meth:`run`,
        nothing is ledgered or cached here -- callers own their own
        telemetry.
        """
        tasks = list(tasks)
        if self.effective_workers(len(tasks)) <= 1:
            for i, task in enumerate(tasks):
                payload = fn(*task)
                if on_result is not None:
                    on_result(i, payload)
            return len(tasks)
        pool = self._ensure_pool()
        futures = {
            pool.submit(fn, *task): i for i, task in enumerate(tasks)
        }
        try:
            for fut in _futures.as_completed(futures):
                payload = fut.result()
                if on_result is not None:
                    try:
                        on_result(futures[fut], payload)
                    except BaseException as exc:
                        raise _ConsumerError(exc) from exc
        except _ConsumerError as wrapper:
            for f in futures:
                f.cancel()
            raise wrapper.cause
        except BaseException:
            self._discard_pool()
            raise
        return len(tasks)
