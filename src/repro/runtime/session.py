"""Warm-worker sweep sessions: chunked scheduling, network reuse, caching.

``ProcessPoolExecutor.run`` is stateless: every call spins up a pool,
ships every spec as its own task, and every task builds its network from
scratch.  Fine for one big sweep; wasteful for the experiment shapes the
repo is built on -- fault-placement enumerations, seed replicas and load
batches issue hundreds of short deterministic points, and the fixed costs
(pool spinup, per-spec pickle/IPC, per-spec topology construction)
dominate the actual simulation.  :class:`SweepSession` amortizes all
three:

* **persistent warm pool** -- worker processes survive across ``run()``
  calls, so pool spinup and interpreter warmup are paid once per session,
  not once per sweep;
* **chunked scheduling** -- specs ship in size-balanced contiguous chunks
  (one pickle/IPC round-trip per chunk instead of per spec), streamed
  back through an optional progress callback while the merged result list
  stays in spec order;
* **per-worker network reuse** -- each process memoizes built simulators
  in a :class:`NetworkCache` keyed by :meth:`RunSpec.network_key` and
  winds them back with :meth:`CycleEngine.reset` between specs instead of
  reconstructing the topology (fingerprint parity with a fresh build is
  tested in ``tests/sim/test_reset.py`` / ``tests/runtime``);
* **result cache** -- give the session a
  :class:`~repro.runtime.cache.ResultCache` and already-known specs skip
  simulation entirely, streaming straight from disk.

The runtime's determinism contract is unchanged: serial, chunked-parallel
and cache-replayed runs of the same specs produce byte-identical results
(``wall_time`` aside -- and a cache hit even preserves the *original*
wall time, so a fully cached rerun's JSON is byte-identical too).
"""

from __future__ import annotations

import concurrent.futures as _futures
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

from .cache import ResultCache
from .executor import SpecExecutionError
from .spec import PointResult, RunSpec

#: built networks kept per process.  Large enough that a full single-fault
#: enumeration on the standard shapes stays resident even when its specs
#: are split across a few workers; small enough to bound memory on
#: many-shape sessions.
DEFAULT_NETWORK_CAPACITY = 32

#: chunks submitted per worker per ``run()``: >1 rebalances stragglers
#: (a worker that drew slow specs hands later chunks to idle peers) while
#: keeping the per-chunk IPC overhead amortized over many specs
CHUNKS_PER_WORKER = 4


def chunk_indices(n: int, chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into at most ``chunks`` contiguous slices whose
    sizes differ by at most one (larger slices first)."""
    chunks = max(1, min(chunks, n))
    base, extra = divmod(n, chunks)
    out: List[Tuple[int, int]] = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append((start, start + size))
        start += size
    return out


class NetworkCache:
    """Per-process memo of built simulators, keyed by ``network_key()``.

    :meth:`get` hands back a simulator ready for :meth:`RunSpec.execute`:
    a fresh build on a miss; on a hit the cached simulator is wound back
    to its just-built state -- :meth:`CycleEngine.reset` for the fabric,
    and the pristine routing logic captured at build time reasserted in
    case an online fault event swapped it.  For metrics-bearing specs the
    adapter's route memo is also cleared with its counters zeroed
    (``reset_cache``), so the ``RouteCacheStats`` export matches a cold
    build byte-for-byte.  For plain specs the route memo is left warm:
    decisions are pure functions of a fixed logic, so warm entries can
    only turn route-phase misses into hits without touching any
    observable quantity.

    Bounded LRU: least-recently-used networks are dropped beyond
    ``capacity``.
    """

    def __init__(self, capacity: int = DEFAULT_NETWORK_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._sims: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self.builds = 0
        self.reuses = 0

    def get(self, spec: RunSpec):
        key = spec.network_key()
        entry = self._sims.get(key)
        if entry is None:
            from ..experiments.sweeps import build_network

            sim = build_network(
                spec.kind,
                spec.shape,
                stall_limit=spec.stall_limit,
                faults=spec.faults,
                scheme=spec.scheme,
                recovery=spec.recovery,
            )()
            self._sims[key] = (sim, getattr(sim.adapter, "logic", None))
            if len(self._sims) > self.capacity:
                self._sims.popitem(last=False)
            self.builds += 1
            return sim
        self._sims.move_to_end(key)
        sim, pristine_logic = entry
        if (
            pristine_logic is not None
            and sim.adapter.logic is not pristine_logic
        ):
            # an online fault event swapped the logic mid-run; the setter
            # also clears the route memo, which is now stale
            sim.adapter.logic = pristine_logic
        if spec.metrics and hasattr(sim.adapter, "reset_cache"):
            sim.adapter.reset_cache()
        sim.reset()
        self.reuses += 1
        return sim


#: the per-process NetworkCache the chunk workers share (created lazily;
#: under the fork start method each worker process gets its own copy)
_process_networks: Optional[NetworkCache] = None


def _networks() -> NetworkCache:
    global _process_networks
    if _process_networks is None:
        _process_networks = NetworkCache()
    return _process_networks


class _ChunkFailure(NamedTuple):
    """Picklable failure sentinel a chunk worker returns instead of
    raising.  :class:`SpecExecutionError` carries its spec via a custom
    ``__init__`` and does not survive the exception-pickling round trip,
    so the worker ships the offset of the failing spec plus the original
    cause, and the parent rebuilds the rich error against the real spec.
    """

    index: int
    cause: BaseException


def _picklable_cause(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round trip, else a plain
    ``RuntimeError`` carrying its repr and traceback.

    A worker exception that cannot cross the process boundary (custom
    ``__init__`` signatures, captured locks/file handles...) would
    otherwise kill the *result* pickling of the whole chunk and surface
    as an opaque ``BrokenProcessPool``; the sanitized stand-in keeps the
    failure a named :class:`SpecExecutionError` in the parent.
    """
    import pickle
    import traceback

    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        detail = "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ).strip()
        return RuntimeError(
            f"unpicklable worker exception {exc!r}:\n{detail}"
        )


def execute_chunk(specs: Sequence[RunSpec]):
    """Module-level chunk entry point (importable, hence picklable).

    Runs every spec on this process's warm :class:`NetworkCache` and
    returns the :class:`PointResult` list -- or a :class:`_ChunkFailure`
    for the first spec that raised (later specs in the chunk are not
    attempted; sibling chunks are cancelled by the session).
    """
    networks = _networks()
    out: List[PointResult] = []
    for i, spec in enumerate(specs):
        try:
            out.append(spec.execute(sim=networks.get(spec)))
        except Exception as exc:
            return _ChunkFailure(i, _picklable_cause(exc))
    return out


@dataclass(frozen=True)
class RunInfo:
    """What one :meth:`SweepSession.run` actually did.

    ``workers`` is the *effective* count -- degenerate inputs (one spec,
    ``jobs<=1``, everything served from cache) run serially no matter
    what was requested, and consumers report this number instead of
    echoing ``--jobs``.
    """

    specs: int
    workers: int
    chunks: int
    cache_hits: int
    cache_misses: int

    def describe(self) -> str:
        bits = [
            f"{self.specs} spec(s) on {self.workers} worker(s) "
            f"in {self.chunks} chunk(s)"
        ]
        if self.cache_hits or self.cache_misses:
            bits.append(
                f"{self.cache_hits} from cache, {self.cache_misses} simulated"
            )
        return ", ".join(bits)


class SweepSession:
    """A reusable sweep runner that keeps its worker pool warm.

    Use it as a context manager (or call :meth:`close`)::

        with SweepSession(jobs=4, cache=ResultCache()) as session:
            for batch in batches:
                results = session.run(batch, progress=on_point)

    ``jobs`` follows :func:`make_executor` semantics: ``None``/0/1 runs
    in-process (still with network reuse); more fans chunks out over a
    persistent process pool.  ``run()`` preserves the executor contract
    -- one :class:`PointResult` per spec, in spec order, byte-identical
    to a serial run -- and records a :class:`RunInfo` in :attr:`last_run`.

    ``progress(result, done, total)`` fires once per completed spec as
    results stream in (completion order; the returned list is still
    merged in spec order).  Cache hits stream first.

    A failed run raises :class:`SpecExecutionError` naming the spec,
    cancels queued chunks, and discards the pool; the session itself
    stays usable -- the next ``run()`` starts a fresh pool.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        chunks_per_worker: int = CHUNKS_PER_WORKER,
        network_capacity: int = DEFAULT_NETWORK_CAPACITY,
    ) -> None:
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        self.jobs = 1 if jobs is None else jobs
        self.cache = cache
        self.chunks_per_worker = chunks_per_worker
        self.network_capacity = network_capacity
        self.last_run: Optional[RunInfo] = None
        self._pool: Optional[_futures.ProcessPoolExecutor] = None
        self._local_networks: Optional[NetworkCache] = None

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "SweepSession":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Shut the worker pool down (queued work is cancelled)."""
        self._discard_pool()

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _ensure_pool(self) -> _futures.ProcessPoolExecutor:
        if self._pool is None:
            # workers spawn on demand up to max_workers, so sizing the
            # pool by ``jobs`` costs nothing on small runs
            self._pool = _futures.ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    # ------------------------------------------------------------ execution
    def effective_workers(self, num_specs: int) -> int:
        """Worker processes a ``run()`` of this size would actually use
        (1 = in-process serial)."""
        if self.jobs <= 1 or num_specs <= 1:
            return 1
        return min(self.jobs, num_specs)

    def run(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[PointResult, int, int], None]] = None,
    ) -> List[PointResult]:
        specs = list(specs)
        total = len(specs)
        results: List[Optional[PointResult]] = [None] * total
        todo: List[int] = []
        if self.cache is not None:
            for i, spec in enumerate(specs):
                hit = self.cache.get(spec)
                if hit is None:
                    todo.append(i)
                else:
                    results[i] = hit
        else:
            todo = list(range(total))
        hits = total - len(todo)
        done = 0
        if progress is not None:
            for r in results:
                if r is not None:
                    done += 1
                    progress(r, done, total)

        workers = self.effective_workers(len(todo))
        if not todo:
            chunks = 0
        elif workers <= 1:
            chunks = 1
            done = self._run_serial(specs, todo, results, progress, done, total)
        else:
            slices = chunk_indices(
                len(todo), workers * self.chunks_per_worker
            )
            chunks = len(slices)
            done = self._run_chunked(
                specs, todo, slices, results, progress, done, total
            )

        self.last_run = RunInfo(
            specs=total,
            workers=workers,
            chunks=chunks,
            cache_hits=hits,
            cache_misses=len(todo) if self.cache is not None else 0,
        )
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _run_serial(
        self, specs, todo, results, progress, done, total
    ) -> int:
        if self._local_networks is None:
            self._local_networks = NetworkCache(self.network_capacity)
        for i in todo:
            spec = specs[i]
            try:
                result = spec.execute(sim=self._local_networks.get(spec))
            except Exception as exc:
                raise SpecExecutionError(spec, exc) from exc
            results[i] = result
            if self.cache is not None:
                self.cache.put(result)
            done += 1
            if progress is not None:
                progress(result, done, total)
        return done

    def _run_chunked(
        self, specs, todo, slices, results, progress, done, total
    ) -> int:
        pool = self._ensure_pool()
        futures = {}
        try:
            for a, b in slices:
                idxs = todo[a:b]
                fut = pool.submit(
                    execute_chunk, [specs[i] for i in idxs]
                )
                futures[fut] = idxs
            for fut in _futures.as_completed(futures):
                payload = fut.result()
                idxs = futures[fut]
                if isinstance(payload, _ChunkFailure):
                    spec = specs[idxs[payload.index]]
                    raise SpecExecutionError(
                        spec, payload.cause
                    ) from payload.cause
                for i, result in zip(idxs, payload):
                    results[i] = result
                    if self.cache is not None:
                        self.cache.put(result)
                    done += 1
                    if progress is not None:
                        progress(result, done, total)
        except BaseException:
            # a dead worker (BrokenProcessPool) or a failing spec poisons
            # in-flight chunks: cancel what is queued, drop the pool, and
            # let the next run() start fresh
            self._discard_pool()
            raise
        return done
