"""Picklable run specifications for the sweep runtime.

A :class:`RunSpec` is a self-contained, hashable, picklable description of
one independent simulation point: network kind and shape, offered load,
traffic pattern (by registry name, so it crosses process boundaries),
fault set, measurement windows, and -- crucially for multi-seed replicas --
the **experiment-level seed** that parameterizes every random process in
the run.  Executing a spec builds a fresh simulator in whatever process it
lands in; nothing live is ever pickled.

Spec constructors for the standard experiment families:

* :func:`load_sweep_specs`      -- one spec per offered load (Fig.-style
  latency/load curves);
* :func:`seed_replicas`         -- replicate specs across seeds for
  confidence intervals;
* :func:`fault_placement_specs` -- one spec per single-fault placement
  (the fault-tolerance overhead enumeration).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.fault import Fault
from ..obs.metrics import MetricSet
from ..obs.spans import SpanSet
from ..sim.stats import LoadPoint


@dataclass(frozen=True)
class RunSpec:
    """One independent sweep point, executable in any worker process."""

    kind: str = "md-crossbar"
    shape: Tuple[int, ...] = (4, 3)
    load: float = 0.1
    #: traffic pattern registry name (see ``repro.traffic.PATTERNS``)
    pattern: str = "uniform"
    packet_length: int = 4
    warmup: int = 200
    window: int = 500
    drain: int = 4000
    #: experiment-level seed: drives the injector RNG for this point
    seed: int = 1
    stall_limit: int = 2000
    faults: Tuple[Fault, ...] = ()
    #: replica index (bookkeeping for multi-seed runs)
    replica: int = 0
    label: str = ""
    #: attach the standard :mod:`repro.obs` collectors; the gathered
    #: MetricSet rides back on the PointResult (picklable + mergeable)
    metrics: bool = False
    #: attach a :class:`~repro.obs.spans.PacketSpanCollector`; the
    #: gathered SpanSet rides back on the PointResult with its pids
    #: rebased, so serial and parallel sweeps merge byte-identically
    spans: bool = False
    #: routing-scheme identity (see ``repro.routing``); ``""`` resolves to
    #: the kind's default scheme (``dxb`` on the MD crossbar), keeping
    #: pre-scheme specs and pickles valid
    scheme: str = ""
    #: run with the engine's online deadlock recovery enabled (see
    #: ``SimConfig.recovery``); part of the spec's cached identity --
    #: recovery changes what the same workload observably produces
    recovery: bool = False
    #: cycle-driver selection (see ``SimConfig.engine``): ``"active"``
    #: (scalar active-set driver) or ``"soa"`` (batched
    #: structure-of-arrays kernel).  Results are fingerprint-identical
    #: by contract, but the field is still part of the spec's cached
    #: identity: a cache hit must replay the driver the spec named, so
    #: an engine-parity bug can never be masked by the cache
    engine: str = "active"

    def describe(self) -> str:
        shape_s = "x".join(map(str, self.shape))
        bits = [f"{self.kind} {shape_s} load={self.load:g} seed={self.seed}"]
        if self.scheme:
            bits.append(f"scheme={self.scheme}")
        if self.recovery:
            bits.append("recovery")
        if self.engine != "active":
            bits.append(f"engine={self.engine}")
        if self.pattern != "uniform":
            bits.append(f"pattern={self.pattern}")
        if self.faults:
            bits.append(f"faults={len(self.faults)}")
        if self.label:
            bits.append(f"[{self.label}]")
        return " ".join(bits)

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "shape": list(self.shape),
            "load": self.load,
            "pattern": self.pattern,
            "packet_length": self.packet_length,
            "warmup": self.warmup,
            "window": self.window,
            "drain": self.drain,
            "seed": self.seed,
            "stall_limit": self.stall_limit,
            "faults": [str(f) for f in self.faults],
            "replica": self.replica,
            "label": self.label,
            "metrics": self.metrics,
            "spans": self.spans,
            "scheme": self.scheme,
            "recovery": self.recovery,
            "engine": self.engine,
        }

    def network_key(self) -> Tuple:
        """Everything a built network depends on.

        Specs agreeing on this key can run on the same simulator: the
        measurement knobs (load, pattern, windows, seed) parameterize the
        *workload*, not the fabric.  The routing-scheme identity is part
        of the key -- two schemes on the same fabric are different
        networks, and a warm worker must never replay one scheme's
        simulator for another.  The warm-worker runtime's per-process
        :class:`~repro.runtime.session.NetworkCache` memoizes built
        networks under it and resets state between specs.
        """
        return (
            self.kind,
            self.shape,
            self.stall_limit,
            self.faults,
            self.scheme,
            self.recovery,
            self.engine,
        )

    def execute(self, sim=None) -> "PointResult":
        """Run this spec in the current process.

        ``sim`` short-circuits the network build with a prepared
        simulator -- freshly built or reset to its just-built state; the
        warm-worker runtime passes reused ones.  The caller guarantees it
        matches :meth:`network_key`; results must be byte-identical
        either way.
        """
        from ..experiments.sweeps import build_network, run_load_point
        from ..traffic import get_pattern

        start = time.perf_counter()
        suite = None
        span_collector = None
        if sim is None and not (self.metrics or self.spans):
            make_sim = build_network(
                self.kind,
                self.shape,
                stall_limit=self.stall_limit,
                faults=self.faults,
                scheme=self.scheme,
                recovery=self.recovery,
                engine=self.engine,
            )
        else:
            if sim is None:
                sim = build_network(
                    self.kind,
                    self.shape,
                    stall_limit=self.stall_limit,
                    faults=self.faults,
                    scheme=self.scheme,
                    recovery=self.recovery,
                    engine=self.engine,
                )()
            if self.metrics:
                from ..obs.collectors import attach_standard_collectors

                suite = attach_standard_collectors(sim)
            if self.spans:
                from ..obs.spans import PacketSpanCollector

                span_collector = PacketSpanCollector().attach(sim)

            def make_sim(sim=sim):  # run_load_point calls it exactly once
                return sim
        point = run_load_point(
            make_sim,
            self.load,
            pattern=get_pattern(self.pattern),
            packet_length=self.packet_length,
            warmup=self.warmup,
            window=self.window,
            drain=self.drain,
            seed=self.seed,
        )
        return PointResult(
            spec=self,
            point=point,
            wall_time=time.perf_counter() - start,
            metrics=suite.metrics() if suite is not None else None,
            spans=(
                span_collector.span_set().rebased()
                if span_collector is not None
                else None
            ),
        )


@dataclass(frozen=True)
class PointResult:
    """The outcome of one executed :class:`RunSpec`."""

    spec: RunSpec
    point: LoadPoint
    #: seconds the point took in its worker process
    wall_time: float
    #: collector metrics, when the spec asked for them (picklable, so
    #: they cross the process boundary with the result)
    metrics: Optional[MetricSet] = None
    #: per-packet spans, when the spec asked for them (pids rebased)
    spans: Optional[SpanSet] = None

    def to_dict(self) -> Dict:
        lat = self.point.latency
        out = {
            "spec": self.spec.to_dict(),
            "offered_load": self.point.offered_load,
            "accepted_load": self.point.accepted_load,
            "latency": {
                "count": lat.count,
                "mean": lat.mean,
                "median": lat.median,
                "p95": lat.p95,
                "p99": lat.p99,
                "max": lat.max,
                "min": lat.min,
            },
            "deadlocked": self.point.deadlocked,
            "cycles": self.point.cycles,
            "recoveries": self.point.recoveries,
            "wall_time": self.wall_time,
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics.to_dict()
        if self.spans is not None:
            out["spans"] = self.spans.to_dict()
        return out


# --------------------------------------------------------- spec constructors
def load_sweep_specs(
    kind: str,
    shape: Sequence[int],
    loads: Sequence[float],
    *,
    pattern: str = "uniform",
    seed: int = 1,
    **kw,
) -> List[RunSpec]:
    """One spec per offered load (the latency-versus-load experiment)."""
    return [
        RunSpec(
            kind=kind,
            shape=tuple(shape),
            load=load,
            pattern=pattern,
            seed=seed,
            **kw,
        )
        for load in loads
    ]


def seed_replicas(
    specs: Sequence[RunSpec], seeds: Sequence[int]
) -> List[RunSpec]:
    """Replicate every spec once per seed.

    Replicas differ *only* in their experiment-level seed, so they are
    statistically independent yet individually reproducible -- the fix for
    the old sweep path, whose injectors all defaulted to the same
    hard-coded seed.  Results come back grouped by spec, seeds in the
    given order.
    """
    return [
        replace(spec, seed=seed, replica=i)
        for spec in specs
        for i, seed in enumerate(seeds)
    ]


def fault_placement_specs(
    kind: str,
    shape: Sequence[int],
    load: float,
    *,
    faults: Optional[Sequence[Fault]] = None,
    seed: int = 1,
    **kw,
) -> List[RunSpec]:
    """One spec per fault placement (default: every feasible single fault).

    Only the MD crossbar network models the fault facility, so ``kind``
    should be ``"md-crossbar"``.
    """
    if faults is None:
        from ..core.multifault import all_single_faults

        faults = all_single_faults(tuple(shape))
    return [
        RunSpec(
            kind=kind,
            shape=tuple(shape),
            load=load,
            seed=seed,
            faults=(fault,),
            label=str(fault),
            **kw,
        )
        for fault in faults
    ]
