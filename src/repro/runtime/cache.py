"""Content-addressed on-disk cache of executed sweep points.

Every :class:`~repro.runtime.spec.RunSpec` is a deterministic simulation:
the bench suite asserts bit-identical quantities across repeats, and the
executor tests assert serial == parallel byte-identity.  A spec's result
is therefore a pure function of the spec's *content* plus the simulator's
code version -- exactly what a content-addressed cache wants.  Reruns of
benchmarks, CI sweeps and experiment scripts skip simulation entirely.

**Cache key** (:func:`spec_key`): sha256 over the canonical JSON of
``spec.to_dict()`` together with :data:`CACHE_SCHEMA` (this module's
payload layout) and :data:`CODE_VERSION` (bumped whenever the simulator's
observable results change).  ``wall_time`` is *not* part of the cached
identity -- it is measurement, not result -- and a hit returns the stored
result with its **original** wall time, so a fully cached rerun's JSON is
byte-for-byte identical to the run that populated the cache.

**Invalidation**: an unreadable or corrupt payload, a foreign pickle, or
a schema/key/spec mismatch inside the payload drops the entry (counted in
``invalidations``) and reads as a miss; the next execution rewrites it.
Writes go through a temp file + :func:`os.replace`, so concurrent sweep
processes sharing a cache directory see whole entries or none.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Dict, Iterable, Optional

from .spec import PointResult, RunSpec

#: payload layout version; entries written under another schema are
#: invalidated on first touch
CACHE_SCHEMA = 1

#: observable-results version of the simulator.  Part of every cache key:
#: bump it whenever an engine/routing change alters what any spec
#: produces, and every stale entry silently becomes a miss.
#: 2: the pluggable routing-scheme layer -- ``RunSpec.to_dict()`` gained
#:    the ``scheme`` identity, so every spec's canonical form changed.
#: 3: online deadlock recovery + stall-watchdog fixes -- the watchdog now
#:    fires one cycle earlier (detection cycles shifted) and
#:    ``RunSpec.to_dict()`` gained the ``recovery`` flag, so no
#:    pre-recovery entry may serve a post-recovery spec.
#: 4: sweep-runtime telemetry -- ``LoadPoint`` grew ``recoveries`` and
#:    ``PointResult.to_dict()`` now emits it, so every result's canonical
#:    form changed; cached pre-telemetry ``PointResult`` pickles would
#:    also deserialize without the new field.
#: 5: the batched SoA engine mode -- ``RunSpec.to_dict()`` gained the
#:    ``engine`` driver selection, and the route phase now offers
#:    candidates in sorted-cid order (grant-conflict winners are
#:    candidate-order dependent, so heavily contended runs' observable
#:    results shifted).
CODE_VERSION = 5


def spec_key(spec: RunSpec) -> str:
    """Content hash identifying ``spec``'s result on this code version."""
    ident = {
        "cache_schema": CACHE_SCHEMA,
        "code_version": CODE_VERSION,
        "spec": spec.to_dict(),
    }
    blob = json.dumps(ident, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_identity(results: Iterable[PointResult]) -> str:
    """Canonical JSON of a result list with ``wall_time`` (the only
    non-deterministic field) removed.

    Two runs of the same specs must match on this string byte-for-byte
    whether they ran serially, chunked across a warm pool, or straight
    out of the cache -- the identity the executor tests and the
    ``sweep_fanout`` bench gate on.
    """
    docs = []
    for r in results:
        d = r.to_dict()
        d.pop("wall_time", None)
        docs.append(d)
    return json.dumps(docs, sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Directory of pickled :class:`PointResult`s keyed by content hash.

    Sharded two-level layout (``<root>/<key[:2]>/<key>.pkl``) so a large
    cache does not pile thousands of entries into one directory.  The
    counters feed :class:`repro.obs.collectors.ResultCacheStats`:

    * ``hits``          -- entries served without simulating;
    * ``misses``        -- absent (or invalidated) entries;
    * ``invalidations`` -- corrupt/stale entries dropped (each also
      counts as a miss);
    * ``puts``          -- entries written.
    """

    def __init__(self, root: str = ".repro-cache") -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.puts = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def path_for(self, spec: RunSpec) -> str:
        return self._path(spec_key(spec))

    def get(self, spec: RunSpec) -> Optional[PointResult]:
        """The cached result for ``spec``, or None (counted as a miss)."""
        # hash the spec exactly once per lookup: the path and the
        # payload's stored key derive from the same computation
        key = spec_key(spec)
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                payload = pickle.load(f)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self._invalidate(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA
            or payload.get("key") != key
            or payload.get("spec") != spec.to_dict()
        ):
            self._invalidate(path)
            return None
        self.hits += 1
        return payload["result"]

    def put(self, result: PointResult) -> None:
        """Store ``result`` under its spec's content key (atomic)."""
        key = spec_key(result.spec)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "spec": result.spec.to_dict(),
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1

    def _invalidate(self, path: str) -> None:
        self.invalidations += 1
        self.misses += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (the shape ``ResultCacheStats`` wraps)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "puts": self.puts,
        }

    def metrics(self):
        """The counters as a mergeable :class:`~repro.obs.metrics.MetricSet`."""
        from ..obs.collectors import ResultCacheStats

        return ResultCacheStats(self).metrics()

    def describe(self) -> str:
        s = self.stats()
        return (
            f"cache: {s['hits']} hit(s), {s['misses']} miss(es), "
            f"{s['invalidations']} invalidation(s), {s['puts']} put(s) "
            f"-> {self.root}"
        )
