"""The runtime layer: parallel execution of independent simulation points.

Sits between the simulation engine (:mod:`repro.sim`) and the consumers
(:mod:`repro.experiments`, the CLI, the benchmarks).  Work is described by
picklable :class:`RunSpec`s, executed by an :class:`Executor` (serial or
process-pool), and merged deterministically in spec order -- a parallel
sweep returns byte-identical results to a serial one.
"""

from .executor import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    SpecExecutionError,
    execute_spec,
    make_executor,
    run_specs,
)
from .spec import (
    PointResult,
    RunSpec,
    fault_placement_specs,
    load_sweep_specs,
    seed_replicas,
)

__all__ = [
    "Executor",
    "PointResult",
    "ProcessPoolExecutor",
    "RunSpec",
    "SerialExecutor",
    "SpecExecutionError",
    "execute_spec",
    "fault_placement_specs",
    "load_sweep_specs",
    "make_executor",
    "run_specs",
    "seed_replicas",
]
