"""The runtime layer: parallel execution of independent simulation points.

Sits between the simulation engine (:mod:`repro.sim`) and the consumers
(:mod:`repro.experiments`, the CLI, the benchmarks).  Work is described by
picklable :class:`RunSpec`s, executed by an :class:`Executor` (serial or
process-pool) or a warm :class:`SweepSession` (persistent workers,
chunked dispatch, per-worker network reuse, optional on-disk
:class:`ResultCache`), and merged deterministically in spec order -- a
parallel, chunked or cache-replayed sweep returns byte-identical results
to a serial one.
"""

from .cache import ResultCache, result_identity, spec_key
from .executor import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    SpecExecutionError,
    execute_spec,
    make_executor,
    run_specs,
)
from .session import NetworkCache, RunInfo, SweepSession, chunk_indices
from .spec import (
    PointResult,
    RunSpec,
    fault_placement_specs,
    load_sweep_specs,
    seed_replicas,
)

__all__ = [
    "Executor",
    "NetworkCache",
    "PointResult",
    "ProcessPoolExecutor",
    "ResultCache",
    "RunInfo",
    "RunSpec",
    "SerialExecutor",
    "SpecExecutionError",
    "SweepSession",
    "chunk_indices",
    "execute_spec",
    "fault_placement_specs",
    "load_sweep_specs",
    "make_executor",
    "result_identity",
    "run_specs",
    "seed_replicas",
    "spec_key",
]
