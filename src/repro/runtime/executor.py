"""Executors: run independent sweep points serially or across processes.

The runtime layer's contract: given a list of :class:`RunSpec`s, return
one :class:`PointResult` per spec **in spec order**, regardless of which
worker finished first -- so a parallel sweep merges deterministically and
is result-identical to a serial one (each point is a self-contained
fixed-seed simulation; no state crosses points).

* :class:`SerialExecutor`      -- in-process loop, zero overhead, the
  default;
* :class:`ProcessPoolExecutor` -- fan-out over ``jobs`` worker processes
  via :mod:`concurrent.futures`; right for multi-point sweeps, fault
  enumerations and seed replicas, whose points are embarrassingly
  parallel.

Use :func:`make_executor` to pick by a ``--jobs`` count.
"""

from __future__ import annotations

import concurrent.futures as _futures
import os
from typing import List, Optional, Sequence

from .spec import PointResult, RunSpec


class SpecExecutionError(RuntimeError):
    """A worker failed while executing one spec.

    Carries the failing :class:`RunSpec` (``.spec``) and the original
    exception (``.__cause__``), so a 50-point sweep that dies on point 37
    says *which* point and *why* instead of handing back a bare traceback
    from an anonymous worker process -- or worse, partial results.
    """

    def __init__(self, spec: RunSpec, cause: BaseException) -> None:
        super().__init__(
            f"spec failed: {spec.describe()}: "
            f"{type(cause).__name__}: {cause}"
        )
        self.spec = spec


def execute_spec(spec: RunSpec) -> PointResult:
    """Module-level worker entry point (must be importable for pickling)."""
    return spec.execute()


class Executor:
    """Maps :class:`RunSpec`s to :class:`PointResult`s, preserving order."""

    def run(self, specs: Sequence[RunSpec]) -> List[PointResult]:
        raise NotImplementedError

    def effective_workers(self, num_specs: int) -> int:
        """Worker processes a ``run()`` of ``num_specs`` would actually
        use (1 = in-process serial).  :class:`ProcessPoolExecutor`
        silently takes the serial path for degenerate inputs, so
        consumers report this number instead of echoing a ``--jobs``
        request that never happened."""
        return 1

    def map_points(self, specs: Sequence[RunSpec]):
        """Convenience: the bare :class:`LoadPoint` per spec, in order."""
        return [r.point for r in self.run(specs)]


class SerialExecutor(Executor):
    """Run every spec in the current process, one after another."""

    def run(self, specs: Sequence[RunSpec]) -> List[PointResult]:
        out: List[PointResult] = []
        for spec in specs:
            try:
                out.append(spec.execute())
            except Exception as exc:
                raise SpecExecutionError(spec, exc) from exc
        return out


class ProcessPoolExecutor(Executor):
    """Run specs across ``jobs`` worker processes.

    Results are gathered in submission order, so the merged list is
    deterministic and identical to :class:`SerialExecutor`'s for the same
    specs.  Worker processes build their simulators from scratch; only the
    picklable specs and the plain dataclass results cross the process
    boundary.

    A spec that raises in its worker fails the whole run with a
    :class:`SpecExecutionError` naming the spec; outstanding points are
    cancelled rather than left running toward a partial result.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs or os.cpu_count() or 1

    def effective_workers(self, num_specs: int) -> int:
        if num_specs <= 1 or self.jobs <= 1:
            return 1
        return min(self.jobs, num_specs)

    def run(self, specs: Sequence[RunSpec]) -> List[PointResult]:
        workers = self.effective_workers(len(specs))
        if workers <= 1:
            return SerialExecutor().run(specs)
        with _futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(execute_spec, spec) for spec in specs]
            out: List[PointResult] = []
            for spec, fut in zip(specs, futures):
                try:
                    out.append(fut.result())
                except Exception as exc:
                    # Future.cancel() cannot stop a *running* task, so a
                    # plain cancel loop would leave the pool grinding
                    # through every queued spec before the context
                    # manager could exit.  shutdown(cancel_futures=True)
                    # drops the queue; only the <= ``workers`` specs
                    # already running are awaited (by the with-block's
                    # final shutdown(wait=True)).
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise SpecExecutionError(spec, exc) from exc
            return out


def make_executor(jobs: Optional[int] = None) -> Executor:
    """``jobs`` of None/0/1 selects the serial path; more fans out."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessPoolExecutor(jobs)


def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
    cache=None,
    progress=None,
    ledger=None,
) -> List[PointResult]:
    """Run a batch of specs and return results in spec order.

    The executor is built from ``jobs`` unless given explicitly.  A
    ``cache`` (:class:`~repro.runtime.cache.ResultCache`), a ``progress``
    callback or a ``ledger`` (:class:`~repro.obs.telemetry.SweepLedger`)
    routes the batch through a one-shot
    :class:`~repro.runtime.session.SweepSession` instead -- for repeated
    batches, hold a session yourself and keep its workers warm."""
    if executor is not None:
        return executor.run(specs)
    if cache is not None or progress is not None or ledger is not None:
        from .session import SweepSession

        with SweepSession(jobs=jobs, cache=cache, ledger=ledger) as session:
            return session.run(specs, progress=progress)
    return make_executor(jobs).run(specs)
