"""Reusable experiment harnesses (load sweeps and friends)."""

from .sweeps import build_network, run_load_point, saturation_load, sweep

__all__ = ["build_network", "run_load_point", "saturation_load", "sweep"]
