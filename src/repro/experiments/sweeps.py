"""Latency-versus-load sweep machinery.

The standard experiment loop of interconnect evaluation: drive a network
with Bernoulli traffic at a fixed offered load, measure latency over a
window after warmup, let the fabric drain, and sweep the load axis.  Used
by the E8/E11/E20/E22 benches and available to downstream users directly:

    from repro.experiments import sweep
    points = sweep("md-crossbar", (8, 8), [0.1, 0.2, 0.3])
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines import make_baseline
from ..core import SwitchLogic, make_config
from ..sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from ..sim.stats import LatencyStats, LoadPoint
from ..traffic import BernoulliInjector, Pattern, uniform


def build_network(kind: str, shape, stall_limit: int = 2000):
    """(simulator factory) for 'md-crossbar' or a baseline name."""
    if kind == "md-crossbar":
        from ..topology import MDCrossbar

        topo = MDCrossbar(shape)
        logic = SwitchLogic(topo, make_config(shape))
        adapter = MDCrossbarAdapter(logic)
        vcs = 1
    else:
        topo, adapter, vcs = make_baseline(kind, shape)
    return lambda: NetworkSimulator(
        adapter, SimConfig(num_vcs=vcs, stall_limit=stall_limit)
    )


def run_load_point(
    make_sim,
    load: float,
    pattern: Pattern = uniform,
    packet_length: int = 4,
    warmup: int = 200,
    window: int = 500,
    drain: int = 4000,
    seed: int = 1,
) -> LoadPoint:
    """One point of the latency-vs-offered-load curve."""
    sim = make_sim()
    gen = BernoulliInjector(
        load=load,
        packet_length=packet_length,
        pattern=pattern,
        seed=seed,
        stop_at=warmup + window,
        measure_from=warmup,
        measure_until=warmup + window,
    )
    sim.add_generator(gen)
    res = sim.run(max_cycles=warmup + window + drain, until_drained=False)
    measured = gen.measured_packets(res.delivered)
    nodes = len(sim.live_nodes)
    accepted = (
        sum(p.length for p in measured) / (window * nodes) if nodes else 0.0
    )
    return LoadPoint(
        offered_load=load,
        accepted_load=accepted,
        latency=LatencyStats.from_packets(measured),
        deadlocked=res.deadlocked,
        cycles=res.cycles,
    )


def sweep(
    kind: str,
    shape,
    loads: Sequence[float],
    pattern: Pattern = uniform,
    **kw,
) -> List[LoadPoint]:
    make_sim = build_network(kind, shape)
    return [run_load_point(make_sim, load, pattern, **kw) for load in loads]


def saturation_load(points: Sequence[LoadPoint], factor: float = 4.0) -> Optional[float]:
    """First offered load whose mean latency exceeds ``factor`` x the
    zero-ish-load latency (a standard saturation estimate)."""
    base = points[0].latency.mean
    for p in points:
        if p.latency.count == 0 or p.latency.mean > factor * base:
            return p.offered_load
    return None
