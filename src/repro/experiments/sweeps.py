"""Latency-versus-load sweep machinery (the consumer layer).

The standard experiment loop of interconnect evaluation: drive a network
with Bernoulli traffic at a fixed offered load, measure latency over a
window after warmup, let the fabric drain, and sweep the load axis.  Used
by the E8/E11/E20/E22 benches, the ``repro sweep`` CLI and downstream
users directly:

    from repro.experiments import sweep
    points = sweep("md-crossbar", (8, 8), [0.1, 0.2, 0.3])
    points = sweep("md-crossbar", (8, 8), [0.1, 0.2, 0.3], jobs=4)

Sweep points are independent fixed-seed simulations, so they fan out over
the :mod:`repro.runtime` executors: pass ``jobs=N`` (or an explicit
``executor=``) to run them in parallel worker processes; the merged
results are identical to a serial run.  The experiment-level ``seed``
parameterizes the injector RNG at every point -- sweep with several seeds
(see :func:`repro.runtime.seed_replicas`) for independent replicas.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim import NetworkSimulator, SimConfig
from ..sim.stats import LatencyStats, LoadPoint
from ..traffic import BernoulliInjector, Pattern, pattern_name, uniform


def build_network(
    kind: str,
    shape,
    stall_limit: int = 2000,
    faults=(),
    scheme: str = "",
    recovery: bool = False,
    engine: str = "active",
):
    """(simulator factory) for a network kind and routing scheme.

    Dispatches through the :mod:`repro.routing` registry: ``scheme`` names
    a registered routing scheme (``""`` resolves to the kind's default --
    ``dxb`` for the MD crossbar), and ``faults`` pre-configures schemes
    that model standing faults, as a standing fault would be in the
    hardware.  ``recovery`` turns on the engine's online deadlock
    recovery and ``engine`` selects the cycle driver (``"active"`` or the
    batched ``"soa"`` kernel; see :class:`~repro.sim.SimConfig`).
    Unknown kinds/schemes and kind/scheme mismatches raise
    :class:`~repro.core.config.ConfigError`.
    """
    from ..routing import make_scheme, resolve_scheme

    kind, scheme = resolve_scheme(kind, scheme)
    sch = make_scheme(scheme, shape, faults=tuple(faults))
    return lambda: NetworkSimulator(
        sch.adapter,
        SimConfig(
            num_vcs=sch.num_vcs,
            stall_limit=stall_limit,
            recovery=recovery,
            engine=engine,
        ),
    )


def run_load_point(
    make_sim,
    load: float,
    pattern: Pattern = uniform,
    packet_length: int = 4,
    warmup: int = 200,
    window: int = 500,
    drain: int = 4000,
    seed: int = 1,
) -> LoadPoint:
    """One point of the latency-vs-offered-load curve."""
    sim = make_sim()
    gen = BernoulliInjector(
        load=load,
        packet_length=packet_length,
        pattern=pattern,
        seed=seed,
        stop_at=warmup + window,
        measure_from=warmup,
        measure_until=warmup + window,
    )
    sim.add_generator(gen)
    res = sim.run(max_cycles=warmup + window + drain, until_drained=False)
    measured = gen.measured_packets(res.delivered)
    nodes = len(sim.live_nodes)
    accepted = (
        sum(p.length for p in measured) / (window * nodes) if nodes else 0.0
    )
    return LoadPoint(
        offered_load=load,
        accepted_load=accepted,
        latency=LatencyStats.from_packets(measured),
        deadlocked=res.deadlocked,
        cycles=res.cycles,
        recoveries=res.recoveries,
    )


def sweep(
    kind: str,
    shape,
    loads: Sequence[float],
    pattern: Pattern = uniform,
    jobs: Optional[int] = None,
    executor=None,
    cache=None,
    progress=None,
    ledger=None,
    seed: int = 1,
    stall_limit: int = 2000,
    scheme: str = "",
    recovery: bool = False,
    engine: str = "active",
    **kw,
) -> List[LoadPoint]:
    """Sweep the load axis; each point is an independent fixed-seed run.

    ``jobs`` > 1 (or an explicit runtime ``executor``) fans the points out
    over worker processes via :mod:`repro.runtime`; the default runs them
    serially in-process.  A ``cache``
    (:class:`~repro.runtime.cache.ResultCache`) replays already-known
    points from disk, ``progress(result, done, total)`` streams
    completions, and a ``ledger``
    (:class:`~repro.obs.telemetry.SweepLedger`) records the run's
    telemetry; any of them routes the batch through a warm
    :class:`~repro.runtime.session.SweepSession` -- scripts issuing many
    batches should hold a session themselves.  Ad-hoc pattern callables
    (hotspot/permutation closures) are not picklable and therefore always
    run serially, uncached.
    """
    name = pattern_name(pattern)
    if name is None:
        if jobs is not None and jobs > 1:
            raise ValueError(
                "parallel sweeps need a registered pattern name "
                "(see repro.traffic.PATTERNS); ad-hoc callables cannot "
                "cross process boundaries"
            )
        make_sim = build_network(
            kind,
            shape,
            stall_limit=stall_limit,
            scheme=scheme,
            recovery=recovery,
            engine=engine,
        )
        return [
            run_load_point(make_sim, load, pattern, seed=seed, **kw)
            for load in loads
        ]

    from ..runtime import load_sweep_specs, run_specs

    specs = load_sweep_specs(
        kind,
        tuple(shape),
        loads,
        pattern=name,
        seed=seed,
        stall_limit=stall_limit,
        scheme=scheme,
        recovery=recovery,
        engine=engine,
        **kw,
    )
    results = run_specs(
        specs,
        jobs=jobs,
        executor=executor,
        cache=cache,
        progress=progress,
        ledger=ledger,
    )
    return [r.point for r in results]


def saturation_load(points: Sequence[LoadPoint], factor: float = 4.0) -> Optional[float]:
    """First offered load whose mean latency exceeds ``factor`` x the
    zero-ish-load latency (a standard saturation estimate)."""
    base = points[0].latency.mean
    for p in points:
        if p.latency.count == 0 or p.latency.mean > factor * base:
            return p.offered_load
    return None
