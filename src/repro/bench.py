"""Pinned performance-benchmark suite and regression comparison.

A small, fixed set of simulator workloads (``BENCH_CASES``) timed
end-to-end, so a perf regression in the engine's inner loops shows up
as a drop in simulated cycles per wall-clock second.  Each case records
wall time, throughput rates, and the deterministic span aggregates
(blocked / S-XB wait cycles) so a run is also a coarse correctness
canary: the simulated quantities must not drift between runs at all,
only the wall-clock ones may.

``run_suite`` produces a plain-dict document (``BENCH_SCHEMA``),
``write_bench``/``load_bench`` round-trip it through ``BENCH_<label>.json``
files, and ``compare_bench`` gates a new run against a saved baseline:
a case regresses when its ``cycles_per_sec`` falls more than
``threshold_pct`` percent below the baseline.  Simulated-quantity drift
(delivered count, blocked cycles...) is reported as a regression at any
threshold, because those are deterministic.

The ``repro bench`` subcommand is the CLI face; CI runs the ``--smoke``
subset and compares against the committed ``benchmarks/BENCH_baseline.json``
with a deliberately generous threshold (machines differ; only a large
relative drop on the *same* machine family is meaningful).
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import resource
import sys
import time
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from .core import Fault, Header, Packet, RC, SwitchLogic, make_config
from .obs.spans import PacketSpanCollector
from .sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from .topology import MDCrossbar
from .traffic import BernoulliInjector, uniform

#: bump when the per-case measurement fields change.
#: schema 2: best-of-``repeats`` wall times, fast-vs-legacy in-run
#: comparison (``speedup_vs_legacy``/``legacy_drift``) and three more
#: deterministic span aggregates per case.
BENCH_SCHEMA = 2

#: simulated quantities that must be bit-identical between runs of a case
DETERMINISTIC_FIELDS = (
    "cycles",
    "delivered",
    "flit_moves",
    "blocked_cycles",
    "sxb_wait_cycles",
    "mean_latency",
    "queue_wait_cycles",
    "detour_overhead_cycles",
)


class BenchCase(NamedTuple):
    name: str
    description: str
    smoke: bool  #: part of the fast CI subset
    #: (legacy_scan) -> (sim, max_cycles)
    build: Callable[..., Tuple[NetworkSimulator, int]]


def _md_sim(
    shape, faults=(), stall_limit: int = 5000, legacy: bool = False
) -> NetworkSimulator:
    topo = MDCrossbar(shape)
    logic = SwitchLogic(topo, make_config(shape, faults=tuple(faults)))
    return NetworkSimulator(
        MDCrossbarAdapter(logic),
        SimConfig(stall_limit=stall_limit, legacy_scan=legacy),
    )


def _bernoulli_case(shape, load, cycles, faults=(), seed=1):
    def build(legacy: bool = False) -> Tuple[NetworkSimulator, int]:
        sim = _md_sim(shape, faults=faults, legacy=legacy)
        sim.add_generator(
            BernoulliInjector(
                load=load,
                packet_length=4,
                pattern=uniform,
                seed=seed,
                stop_at=cycles,
            )
        )
        return sim, cycles * 10

    return build


def _broadcast_case(shape, rounds, gap):
    def build(legacy: bool = False) -> Tuple[NetworkSimulator, int]:
        sim = _md_sim(shape, legacy=legacy)
        coords = sorted(MDCrossbar(shape).node_coords())
        for i in range(rounds):
            src = coords[i % len(coords)]
            sim.send(
                Packet(
                    Header(source=src, dest=src, rc=RC.BROADCAST_REQUEST),
                    length=4,
                ),
                at_cycle=i * gap,
            )
        return sim, rounds * gap * 50 + 5000

    return build


def _stream_case(shape, packets, length, gap):
    """Long packets with idle gaps between them: exercises the engine's
    bulk flit-run windows (the body of each packet) and the idle-cycle
    fast-forward (the gaps)."""

    def build(legacy: bool = False) -> Tuple[NetworkSimulator, int]:
        sim = _md_sim(shape, legacy=legacy)
        coords = sorted(MDCrossbar(shape).node_coords())
        src, dst = coords[0], coords[-1]
        for i in range(packets):
            sim.send(
                Packet(Header(source=src, dest=dst), length=length),
                at_cycle=i * gap,
            )
        return sim, packets * gap + 2000

    return build


#: the pinned suite; order is the report order
BENCH_CASES: Tuple[BenchCase, ...] = (
    BenchCase(
        "p2p_4x3_low",
        "uniform Bernoulli traffic, 4x3, load 0.15",
        True,
        _bernoulli_case((4, 3), 0.15, 300),
    ),
    BenchCase(
        "broadcast_4x3",
        "12 serialized S-XB broadcasts, 4x3",
        True,
        _broadcast_case((4, 3), 12, 3),
    ),
    BenchCase(
        "detour_4x3_fault",
        "uniform traffic around a faulty router, 4x3",
        True,
        _bernoulli_case((4, 3), 0.15, 300, faults=(Fault.router((2, 0)),)),
    ),
    BenchCase(
        "stream_8x1_long",
        "12 length-64 packets across an 8x1 line, 120-cycle gaps",
        True,
        _stream_case((8, 1), 12, 64, 120),
    ),
    BenchCase(
        "p2p_8x8_mid",
        "uniform Bernoulli traffic, 8x8, load 0.3",
        False,
        _bernoulli_case((8, 8), 0.3, 300),
    ),
)


def _measure(case: BenchCase, legacy: bool = False) -> Dict:
    """One timed run of a case (spans attached throughout)."""
    sim, max_cycles = case.build(legacy=legacy)
    spans = PacketSpanCollector().attach(sim)
    t0 = time.perf_counter()
    res = sim.run(max_cycles=max_cycles, until_drained=False)
    wall = time.perf_counter() - t0
    spans.detach(sim)
    totals = spans.span_set().totals()
    lats = res.latencies
    return {
        "wall_time_s": wall,
        "cycles": res.cycles,
        "flit_moves": res.flit_moves,
        "delivered": len(res.delivered),
        "mean_latency": (
            round(sum(lats) / len(lats), 3) if lats else None
        ),
        "blocked_cycles": totals["blocked"],
        "sxb_wait_cycles": totals["sxb_wait"],
        "queue_wait_cycles": totals["queue_wait"],
        "detour_overhead_cycles": totals["detour_overhead"],
        "deadlocked": res.deadlocked,
    }


def _profile_case(case: BenchCase, top: int) -> str:
    """One extra run under cProfile; returns the top-``top`` cumulative
    dump (never used for the timed measurements)."""
    sim, max_cycles = case.build()
    spans = PacketSpanCollector().attach(sim)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(max_cycles=max_cycles, until_drained=False)
    profiler.disable()
    spans.detach(sim)
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


def run_case(
    case: BenchCase,
    repeats: int = 3,
    legacy_compare: bool = False,
    profile_top: Optional[int] = None,
) -> Dict:
    """Measure one case: best-of-``repeats`` wall time (the simulated
    quantities must agree across every repeat -- any disagreement is a
    determinism bug and raises).  With ``legacy_compare`` the case also
    runs once with ``legacy_scan=True`` and the result carries the
    in-run ``speedup_vs_legacy`` (machine-independent, unlike the
    wall-clock rates) plus ``legacy_drift``, the deterministic fields on
    which the fast path disagreed with the full per-cycle scan (always
    empty unless the active-set engine is broken).  ``profile_top``
    adds a cProfile top-N cumulative dump from one extra run."""
    runs = [_measure(case) for _ in range(max(1, repeats))]
    for other in runs[1:]:
        for field in DETERMINISTIC_FIELDS:
            if other[field] != runs[0][field]:
                raise AssertionError(
                    f"{case.name}: {field} drifted between repeats "
                    f"({runs[0][field]!r} != {other[field]!r})"
                )
    best = min(runs, key=lambda r: r["wall_time_s"])
    wall = best["wall_time_s"]
    out = {
        "description": case.description,
        "repeats": len(runs),
        "wall_time_s": round(wall, 6),
        "cycles": best["cycles"],
        "cycles_per_sec": round(best["cycles"] / wall, 1) if wall > 0 else 0.0,
        "flit_moves": best["flit_moves"],
        "flit_moves_per_sec": (
            round(best["flit_moves"] / wall, 1) if wall > 0 else 0.0
        ),
        "delivered": best["delivered"],
        "mean_latency": best["mean_latency"],
        "blocked_cycles": best["blocked_cycles"],
        "sxb_wait_cycles": best["sxb_wait_cycles"],
        "queue_wait_cycles": best["queue_wait_cycles"],
        "detour_overhead_cycles": best["detour_overhead_cycles"],
        "deadlocked": best["deadlocked"],
    }
    if legacy_compare:
        # same best-of-repeats discipline: the speedup ratio is only as
        # stable as its noisier (legacy) leg
        legacy_runs = [
            _measure(case, legacy=True) for _ in range(max(1, repeats))
        ]
        legacy = min(legacy_runs, key=lambda r: r["wall_time_s"])
        lw = legacy["wall_time_s"]
        legacy_rate = round(legacy["cycles"] / lw, 1) if lw > 0 else 0.0
        out["legacy_cycles_per_sec"] = legacy_rate
        out["speedup_vs_legacy"] = (
            round(out["cycles_per_sec"] / legacy_rate, 3)
            if legacy_rate
            else None
        )
        out["legacy_drift"] = [
            field
            for field in DETERMINISTIC_FIELDS
            if legacy[field] != best[field]
        ]
    if profile_top:
        out["profile"] = _profile_case(case, profile_top)
    return out


def run_suite(
    smoke: bool = False,
    label: str = "local",
    progress: Optional[Callable[[str], None]] = None,
    repeats: int = 3,
    legacy_compare: bool = True,
    profile_top: Optional[int] = None,
) -> Dict:
    """Run the pinned suite (or its ``--smoke`` subset) into a bench doc.

    ``legacy_compare`` applies to the smoke cases only (the legacy twin
    of the big non-smoke cases would dominate suite runtime)."""
    cases: Dict[str, Dict] = {}
    for case in BENCH_CASES:
        if smoke and not case.smoke:
            continue
        if progress:
            progress(f"running {case.name}: {case.description}")
        cases[case.name] = run_case(
            case,
            repeats=repeats,
            legacy_compare=legacy_compare and case.smoke,
            profile_top=profile_top,
        )
    return {
        "kind": "bench",
        "schema": BENCH_SCHEMA,
        "label": label,
        "smoke": smoke,
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "cases": cases,
    }


def write_bench(doc: Dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def load_bench(path: str) -> Dict:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("kind") != "bench" or doc.get("schema") not in (1, BENCH_SCHEMA):
        raise ValueError(
            f"{path} is not a schema-1/{BENCH_SCHEMA} bench file "
            f"(kind={doc.get('kind')!r}, schema={doc.get('schema')!r})"
        )
    return doc


class Regression(NamedTuple):
    case: str
    field: str
    old: object
    new: object
    note: str


def compare_bench(
    new: Dict, baseline: Dict, threshold_pct: float = 20.0
) -> List[Regression]:
    """Regressions of ``new`` against ``baseline``.

    Wall-clock rate: ``cycles_per_sec`` more than ``threshold_pct``
    percent below the baseline regresses.  Deterministic simulated
    quantities (:data:`DETERMINISTIC_FIELDS`) must match exactly --
    any drift is reported regardless of the threshold.  A non-empty
    ``legacy_drift`` in the new run (the fast path disagreeing with the
    per-cycle scan in-run) regresses at any threshold, as does
    ``speedup_vs_legacy`` falling more than 30% below the baseline's --
    the machine-independent check that the fast path stays *on* (a
    disabled fast path collapses the ratio to ~1x, well past 30%; the
    margin absorbs the wall-clock noise in the ratio's two legs).
    Cases present in the baseline but missing from the new run are
    regressions too (a silently dropped case would hide anything).
    """
    out: List[Regression] = []
    for name, old_case in baseline.get("cases", {}).items():
        new_case = new.get("cases", {}).get(name)
        if new_case is None:
            out.append(
                Regression(name, "presence", "present", "missing",
                           "case disappeared from the suite")
            )
            continue
        old_rate, new_rate = (
            old_case.get("cycles_per_sec"), new_case.get("cycles_per_sec")
        )
        if old_rate and new_rate is not None:
            floor = old_rate * (1.0 - threshold_pct / 100.0)
            if new_rate < floor:
                out.append(
                    Regression(
                        name, "cycles_per_sec", old_rate, new_rate,
                        f"{100.0 * (1 - new_rate / old_rate):.1f}% slower "
                        f"(threshold {threshold_pct:.0f}%)",
                    )
                )
        for field in DETERMINISTIC_FIELDS:
            if field in old_case and old_case[field] != new_case.get(field):
                out.append(
                    Regression(
                        name, field, old_case[field], new_case.get(field),
                        "deterministic quantity drifted",
                    )
                )
        if new_case.get("legacy_drift"):
            out.append(
                Regression(
                    name, "legacy_drift", [], new_case["legacy_drift"],
                    "fast path disagrees with legacy_scan on these fields",
                )
            )
        old_speedup = old_case.get("speedup_vs_legacy")
        new_speedup = new_case.get("speedup_vs_legacy")
        if old_speedup and new_speedup is not None:
            if new_speedup < old_speedup * 0.7:
                out.append(
                    Regression(
                        name, "speedup_vs_legacy", old_speedup, new_speedup,
                        "fast-vs-legacy speedup fell more than 30% below "
                        "baseline",
                    )
                )
    return out


def render_bench(doc: Dict) -> str:
    """One-line-per-case ASCII table of a bench doc."""
    lines = [
        f"bench {doc['label']} (schema {doc['schema']}, "
        f"python {doc['python']}, peak RSS {doc['peak_rss_kb']} kB)"
    ]
    for name, c in doc["cases"].items():
        line = (
            f"  {name:<18} {c['cycles']:>6} cycles in {c['wall_time_s']:.3f}s "
            f"({c['cycles_per_sec']:>10.0f} cyc/s, "
            f"{c['flit_moves_per_sec']:>10.0f} flits/s)  "
            f"delivered={c['delivered']} blocked={c['blocked_cycles']} "
            f"sxb={c['sxb_wait_cycles']}"
        )
        if c.get("speedup_vs_legacy") is not None:
            line += f" vs_legacy={c['speedup_vs_legacy']:.2f}x"
            if c.get("legacy_drift"):
                line += f" DRIFT={','.join(c['legacy_drift'])}"
        lines.append(line)
    return "\n".join(lines)
