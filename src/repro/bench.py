"""Pinned performance-benchmark suite and regression comparison.

A small, fixed set of simulator workloads (``BENCH_CASES``) timed
end-to-end, so a perf regression in the engine's inner loops shows up
as a drop in simulated cycles per wall-clock second.  Each case records
wall time, throughput rates, and the deterministic span aggregates
(blocked / S-XB wait cycles) so a run is also a coarse correctness
canary: the simulated quantities must not drift between runs at all,
only the wall-clock ones may.

``run_suite`` produces a plain-dict document (``BENCH_SCHEMA``),
``write_bench``/``load_bench`` round-trip it through ``BENCH_<label>.json``
files, and ``compare_bench`` gates a new run against a saved baseline:
a case regresses when its ``cycles_per_sec`` falls more than
``threshold_pct`` percent below the baseline.  Simulated-quantity drift
(delivered count, blocked cycles...) is reported as a regression at any
threshold, because those are deterministic.

The ``repro bench`` subcommand is the CLI face; CI runs the ``--smoke``
subset and compares against the committed ``benchmarks/BENCH_baseline.json``
with a deliberately generous threshold (machines differ; only a large
relative drop on the *same* machine family is meaningful).
"""

from __future__ import annotations

import cProfile
import hashlib
import io
import json
import pstats
import resource
import sys
import time
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from .core import Fault, Header, Packet, RC, SwitchLogic, make_config
from .obs.spans import PacketSpanCollector
from .sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from .topology import MDCrossbar
from .traffic import BernoulliInjector, uniform

#: bump when the per-case measurement fields change.
#: schema 2: best-of-``repeats`` wall times, fast-vs-legacy in-run
#: comparison (``speedup_vs_legacy``/``legacy_drift``) and three more
#: deterministic span aggregates per case.
#: schema 3: runner-style cases (the ``sweep_fanout`` runtime case with
#: ``specs``/``identity_sha256`` and the warm/cold/cached sweep legs).
#: schema 4: the ``scheme_shootout`` runner case -- per-scheme latency /
#: path-stretch / CDG-acyclicity / fault-coverage table (``schemes``).
#: schema 5: the ``recovery_shootout`` runner case -- VC avoidance vs
#: online drain/rotate recovery vs halt-and-report on the Fig. 9
#: deadlock workload (``legs``).
#: schema 6: sweep-runtime telemetry -- ``sweep_fanout`` runs ledgered
#: serial/chunked/cache-replay passes and carries the ledger-derived
#: deterministic fields (``ledger_records``/``ledger_identity_sha256``)
#: plus ``ledger_schema``; ``PointResult.to_dict()`` gained
#: ``recoveries``, so every ``identity_sha256`` changed too.
#: schema 7: the ``machine_2048`` runner case -- the full 16x16x8
#: SR2201 machine under the batched SoA engine vs the active driver
#: (``speedup_vs_active``/``soa_drift``/``engine_used``), with a
#: faulted detour leg riding in the identity hash.
#: schema 8: the ``campaign_reliability`` runner case -- the streaming
#: Monte-Carlo campaign engine on the full machine vs the scalar
#: per-sample loop (``samples``/``samples_per_sec``/``speedup_vs_loop``)
#: with a chunking/jobs-invariant ``identity_sha256``.
BENCH_SCHEMA = 8

#: simulated quantities that must be bit-identical between runs of a case
#: (compared only where present; runner cases carry a subset plus their
#: own ``specs``/``identity_sha256``)
DETERMINISTIC_FIELDS = (
    "cycles",
    "delivered",
    "flit_moves",
    "blocked_cycles",
    "sxb_wait_cycles",
    "mean_latency",
    "queue_wait_cycles",
    "detour_overhead_cycles",
    "specs",
    "schemes",
    "legs",
    "identity_sha256",
    "ledger_records",
    "ledger_identity_sha256",
    "engine_used",
    "samples",
)


class BenchCase(NamedTuple):
    name: str
    description: str
    smoke: bool  #: part of the fast CI subset
    #: (legacy_scan) -> (sim, max_cycles); engine cases only
    build: Optional[Callable[..., Tuple[NetworkSimulator, int]]] = None
    #: full-case measurement override: ``(repeats) -> case dict``.  The
    #: sweep_fanout case times whole sweep legs (cold pools vs a warm
    #: session vs cache replay) rather than one engine run.
    runner: Optional[Callable[..., Dict]] = None
    #: profiling override for runner cases: ``(top) -> str`` cProfile
    #: dump.  Build cases profile generically (:func:`_profile_case`);
    #: the machine_2048 runner profiles its SoA leg so the kernel's
    #: per-phase numpy sections show up in the top-N.
    profile: Optional[Callable[[int], str]] = None


def _md_sim(
    shape, faults=(), stall_limit: int = 5000, legacy: bool = False
) -> NetworkSimulator:
    topo = MDCrossbar(shape)
    logic = SwitchLogic(topo, make_config(shape, faults=tuple(faults)))
    return NetworkSimulator(
        MDCrossbarAdapter(logic),
        SimConfig(stall_limit=stall_limit, legacy_scan=legacy),
    )


def _bernoulli_case(shape, load, cycles, faults=(), seed=1):
    def build(legacy: bool = False) -> Tuple[NetworkSimulator, int]:
        sim = _md_sim(shape, faults=faults, legacy=legacy)
        sim.add_generator(
            BernoulliInjector(
                load=load,
                packet_length=4,
                pattern=uniform,
                seed=seed,
                stop_at=cycles,
            )
        )
        return sim, cycles * 10

    return build


def _broadcast_case(shape, rounds, gap):
    def build(legacy: bool = False) -> Tuple[NetworkSimulator, int]:
        sim = _md_sim(shape, legacy=legacy)
        coords = sorted(MDCrossbar(shape).node_coords())
        for i in range(rounds):
            src = coords[i % len(coords)]
            sim.send(
                Packet(
                    Header(source=src, dest=src, rc=RC.BROADCAST_REQUEST),
                    length=4,
                ),
                at_cycle=i * gap,
            )
        return sim, rounds * gap * 50 + 5000

    return build


def _stream_case(shape, packets, length, gap):
    """Long packets with idle gaps between them: exercises the engine's
    bulk flit-run windows (the body of each packet) and the idle-cycle
    fast-forward (the gaps)."""

    def build(legacy: bool = False) -> Tuple[NetworkSimulator, int]:
        sim = _md_sim(shape, legacy=legacy)
        coords = sorted(MDCrossbar(shape).node_coords())
        src, dst = coords[0], coords[-1]
        for i in range(packets):
            sim.send(
                Packet(Header(source=src, dest=dst), length=length),
                at_cycle=i * gap,
            )
        return sim, packets * gap + 2000

    return build


#: worker processes used by the sweep_fanout legs (kept small and fixed
#: so the case measures fixed-cost amortization, not machine parallelism)
SWEEP_FANOUT_JOBS = 2


def _sweep_fanout_batches():
    """The workload: four load batches of the exhaustive single-fault
    enumeration on 4x3 (the SR2201 paper's safety argument, at sweep
    scale) with short measurement windows -- the per-spec fixed costs the
    warm runtime amortizes are the point, not long simulations."""
    from .runtime import fault_placement_specs

    loads = (0.08, 0.12, 0.16, 0.2)
    return [
        fault_placement_specs(
            "md-crossbar",
            (4, 3),
            load,
            warmup=5,
            window=10,
            drain=60,
            stall_limit=200,
        )
        for load in loads
    ]


def _run_sweep_fanout(repeats: int = 3) -> Dict:
    """Measure the sweep runtime end-to-end: the same fault-enumeration
    batches through (a) per-batch cold per-spec pools -- one
    ``ProcessPoolExecutor.run`` per batch, the pre-session shape; (b) one
    persistent warm :class:`SweepSession` (chunked dispatch + per-worker
    network reuse); (c) a fully populated result cache.  Every leg must
    reproduce the serial reference byte-identically
    (:func:`repro.runtime.result_identity`); any drift raises.  Reported
    speedups are in-run ratios, machine-independent like
    ``speedup_vs_legacy``.

    The case also runs the batches once serial, once chunked and once as
    a cache replay with a run ledger attached (untimed): the three
    ledgers must strip to the same
    :func:`~repro.obs.telemetry.ledger_identity`, and the stripped record
    count plus identity hash ride in the bench doc as deterministic
    fields (``ledger_records``/``ledger_identity_sha256``)."""
    import shutil
    import tempfile

    from .obs.telemetry import (
        LEDGER_SCHEMA_VERSION,
        SweepLedger,
        ledger_identity,
        strip_ledger,
    )
    from .runtime import (
        ProcessPoolExecutor as _SpecPool,
        ResultCache,
        SerialExecutor,
        SweepSession,
        result_identity,
    )

    batches = _sweep_fanout_batches()
    specs = [s for batch in batches for s in batch]
    repeats = max(1, repeats)

    serial = SerialExecutor().run(specs)
    reference = result_identity(serial)

    def timed(leg: str, run_once: Callable[[], List]) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = run_once()
            wall = time.perf_counter() - t0
            if result_identity(out) != reference:
                raise AssertionError(
                    f"sweep_fanout: {leg} leg drifted from the serial "
                    f"reference (determinism bug)"
                )
            best = min(best, wall)
        return best

    def cold_once() -> List:
        out = []
        for batch in batches:
            out.extend(_SpecPool(SWEEP_FANOUT_JOBS).run(batch))
        return out

    cold_wall = timed("cold", cold_once)

    with SweepSession(jobs=SWEEP_FANOUT_JOBS) as session:
        session.run(batches[0])  # untimed: spawn workers, build networks
        warm_wall = timed(
            "warm",
            lambda: [r for b in batches for r in session.run(b)],
        )

    def ledgered_run(jobs, cache=None) -> SweepLedger:
        ledger = SweepLedger()
        with SweepSession(jobs=jobs, cache=cache, ledger=ledger) as s:
            for batch in batches:
                s.run(batch)
        return ledger

    serial_ledger = ledgered_run(None)
    chunked_ledger = ledgered_run(SWEEP_FANOUT_JOBS)

    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cache = ResultCache(cache_dir)
        with SweepSession(jobs=SWEEP_FANOUT_JOBS, cache=cache) as cached:
            cached.run(specs)  # untimed: populate the cache
            cached_wall = timed(
                "cached",
                lambda: [r for b in batches for r in cached.run(b)],
            )
        if cache.hits < len(specs) * repeats:
            raise AssertionError(
                "sweep_fanout: cached leg was not fully served from cache"
            )
        replay_ledger = ledgered_run(None, cache=cache)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    ledger_sha = ledger_identity(serial_ledger.records)
    if not (
        ledger_sha
        == ledger_identity(chunked_ledger.records)
        == ledger_identity(replay_ledger.records)
    ):
        raise AssertionError(
            "sweep_fanout: ledger identity drifted between the serial, "
            "chunked and cache-replayed passes (telemetry determinism bug)"
        )

    n = len(specs)
    total_cycles = sum(r.point.cycles for r in serial)
    counted = [r.point.latency for r in serial if r.point.latency.count]
    mean_latency = (
        round(
            sum(lat.mean * lat.count for lat in counted)
            / sum(lat.count for lat in counted),
            3,
        )
        if counted
        else None
    )
    return {
        "description": (
            f"{n}-spec single-fault enumeration x {len(batches)} load "
            f"batches, jobs={SWEEP_FANOUT_JOBS}: warm session vs cold "
            f"per-spec pools vs cache replay"
        ),
        "repeats": repeats,
        "specs": n,
        "batches": len(batches),
        "jobs": SWEEP_FANOUT_JOBS,
        "wall_time_s": round(warm_wall, 6),
        "cold_wall_s": round(cold_wall, 6),
        "cached_wall_s": round(cached_wall, 6),
        "specs_per_sec_warm": round(n / warm_wall, 1),
        "specs_per_sec_cold": round(n / cold_wall, 1),
        "specs_per_sec_cached": round(n / cached_wall, 1),
        "warm_speedup": round(cold_wall / warm_wall, 3),
        "cache_speedup": round(cold_wall / cached_wall, 3),
        "cycles": total_cycles,
        "cycles_per_sec": (
            round(total_cycles / warm_wall, 1) if warm_wall > 0 else 0.0
        ),
        "delivered": sum(r.point.latency.count for r in serial),
        "mean_latency": mean_latency,
        "deadlocked": any(r.point.deadlocked for r in serial),
        "identity_sha256": hashlib.sha256(
            reference.encode("utf-8")
        ).hexdigest(),
        "ledger_schema": LEDGER_SCHEMA_VERSION,
        "ledger_records": len(strip_ledger(serial_ledger.records)),
        "ledger_identity_sha256": ledger_sha,
    }


def _scheme_faults(cls, shape) -> List[Fault]:
    """The single-fault enumeration a scheme's coverage leg must survive
    (e11-style: every placement, one at a time)."""
    if cls.kind == "md-crossbar":
        from .core.multifault import all_single_faults

        return list(all_single_faults(shape))
    # the full mesh has routers only; every router is a placement
    from .core.coords import all_coords

    return [Fault.router(c) for c in all_coords(shape)]


def _shootout_latency(name: str, shape) -> Dict:
    """One deterministic Bernoulli leg on a scheme's bench grid."""
    from .routing import make_scheme

    sch = make_scheme(name, shape)
    sim = NetworkSimulator(
        sch.adapter, SimConfig(num_vcs=sch.num_vcs, stall_limit=5000)
    )
    sim.add_generator(
        BernoulliInjector(
            load=0.15, packet_length=4, pattern=uniform, seed=1, stop_at=300
        )
    )
    t0 = time.perf_counter()
    res = sim.run(max_cycles=3000, until_drained=False)
    wall = time.perf_counter() - t0
    lats = res.latencies
    return {
        "wall_time_s": wall,
        "cycles": res.cycles,
        "flit_moves": res.flit_moves,
        "delivered": len(res.delivered),
        "mean_latency": round(sum(lats) / len(lats), 3) if lats else None,
        "deadlocked": res.deadlocked,
    }


def _shootout_coverage(name: str, cls, shape) -> Tuple[int, int]:
    """Total-exchange delivery under every single-fault placement.

    For each fault the scheme claims to tolerate, every live (src, dest)
    pair sends one packet at cycle 0 and the run must drain with zero
    drops and zero deadlocks.  Returns (placements survived, packets
    delivered); any loss raises -- fault coverage is a correctness
    property, not a statistic."""
    from .routing import make_scheme

    covered = 0
    delivered = 0
    for fault in _scheme_faults(cls, shape):
        sch = make_scheme(name, shape, faults=(fault,))
        sim = NetworkSimulator(
            sch.adapter, SimConfig(num_vcs=sch.num_vcs, stall_limit=5000)
        )
        live = sorted(sch.live_nodes())
        sent = 0
        for s in live:
            for d in live:
                if s != d:
                    sim.send(Packet(Header(source=s, dest=d), length=4))
                    sent += 1
        res = sim.run(max_cycles=50_000)
        if res.deadlocked:
            raise AssertionError(
                f"scheme_shootout: {name} deadlocked under {fault}"
            )
        if res.dropped or len(res.delivered) != sent:
            raise AssertionError(
                f"scheme_shootout: {name} lost packets under {fault} "
                f"({len(res.delivered)}/{sent} delivered, "
                f"{len(res.dropped)} dropped)"
            )
        covered += 1
        delivered += sent
    return covered, delivered


def _run_scheme_shootout(repeats: int = 3) -> Dict:
    """Cross-scheme shoot-out: every registered routing scheme on its
    bench grid, measured on one table -- zero-ish-load latency, path
    stretch vs shortest channel paths, CDG cycle-freedom (raises on any
    cyclic scheme), and, for the fault-modelling schemes, full delivery
    under the single-fault enumeration.  The latency leg runs ``repeats``
    times and every simulated quantity must agree across repeats; the
    per-scheme table is a deterministic field (``schemes``), so any
    cross-machine drift trips the baseline comparison exactly like a
    ``cycles`` drift would."""
    from .analysis.properties import route_stats
    from .routing import get_scheme, make_scheme, scheme_names

    schemes: Dict[str, Dict] = {}
    total_wall = 0.0
    total_cycles = 0
    for name in scheme_names():
        cls = get_scheme(name)
        shape = cls.bench_shape
        audit = make_scheme(name, shape).check_cycle_free()
        if not audit.cycle_free:
            raise AssertionError(f"scheme_shootout: {audit.row()}")
        stats = route_stats(make_scheme(name, shape))
        runs = [_shootout_latency(name, shape) for _ in range(max(1, repeats))]
        for other in runs[1:]:
            for field in ("cycles", "delivered", "flit_moves", "mean_latency"):
                if other[field] != runs[0][field]:
                    raise AssertionError(
                        f"scheme_shootout: {name}.{field} drifted between "
                        f"repeats ({runs[0][field]!r} != {other[field]!r})"
                    )
        best = min(runs, key=lambda r: r["wall_time_s"])
        if best["deadlocked"]:
            raise AssertionError(f"scheme_shootout: {name} deadlocked")
        covered = fault_delivered = None
        if cls.supports_faults:
            covered, fault_delivered = _shootout_coverage(name, cls, shape)
        total_wall += best["wall_time_s"]
        total_cycles += best["cycles"]
        schemes[name] = {
            "kind": cls.kind,
            "shape": "x".join(map(str, shape)),
            "cdg_edges": audit.num_edges,
            "cycle_free": audit.cycle_free,
            "pairs": stats["pairs"],
            "avg_channels": stats["avg_channels"],
            "stretch": stats["stretch"],
            "cycles": best["cycles"],
            "delivered": best["delivered"],
            "flit_moves": best["flit_moves"],
            "mean_latency": best["mean_latency"],
            "faults_covered": covered,
            "fault_delivered": fault_delivered,
        }
    identity = json.dumps(schemes, sort_keys=True, separators=(",", ":"))
    return {
        "description": (
            f"{len(schemes)}-scheme shoot-out: latency, path stretch, "
            f"CDG acyclicity and single-fault coverage per registered "
            f"routing scheme"
        ),
        "repeats": max(1, repeats),
        # no cycles_per_sec: the latency legs are deliberately tiny, so a
        # wall-clock rate would be all noise -- this case gates on the
        # deterministic ``schemes`` table, not throughput
        "wall_time_s": round(total_wall, 6),
        "cycles": total_cycles,
        "delivered": sum(s["delivered"] for s in schemes.values()),
        "deadlocked": False,
        "schemes": schemes,
        "identity_sha256": hashlib.sha256(
            identity.encode("utf-8")
        ).hexdigest(),
    }


#: (leg name, detour scheme, recovery flag) for the recovery shoot-out
RECOVERY_LEGS: Tuple[Tuple[str, str, bool], ...] = (
    ("avoidance", "safe", False),
    ("recovery", "naive", True),
    ("halt", "naive", False),
)


def _fig9_recovery_sim(detour: str, recovery: bool):
    """The paper's Fig. 9 deadlock interleaving on a (4, 3) network with
    router (2, 0) faulty: one broadcast plus three unicasts whose naive
    detours close a cyclic wait.  Returns (sim, packets)."""
    from .core.config import DetourScheme

    shape = (4, 3)
    topo = MDCrossbar(shape)
    logic = SwitchLogic(
        topo,
        make_config(
            shape,
            fault=Fault.router((2, 0)),
            detour_scheme=DetourScheme(detour),
        ),
    )
    sim = NetworkSimulator(
        MDCrossbarAdapter(logic),
        SimConfig(stall_limit=200, recovery=recovery),
    )
    pkts = [
        Packet(
            Header(source=(3, 2), dest=(3, 2), rc=RC.BROADCAST_REQUEST),
            length=6,
        ),
        Packet(Header(source=(0, 0), dest=(2, 2)), length=6),
        Packet(Header(source=(1, 0), dest=(3, 1)), length=6),
        Packet(Header(source=(0, 1), dest=(1, 2)), length=6),
    ]
    for pkt, dt in zip(pkts, (0, 1, 1, 2)):
        sim.send(pkt, at_cycle=dt)
    return sim, pkts


def _run_recovery_shootout(repeats: int = 3) -> Dict:
    """Avoidance vs recovery vs halt on the same deadlock-prone workload.

    Three legs, one table (``legs``): (a) *avoidance* -- the paper's
    safe detour scheme, which never deadlocks in the first place; (b)
    *recovery* -- the naive scheme plus the engine's online drain/rotate
    mode, which must still deliver 100% with at least one rotation; (c)
    *halt* -- the naive scheme bare, which must end in a
    :class:`DeadlockReport`.  Every leg runs ``repeats`` times and every
    simulated quantity (including the rebased victim pids) must agree
    across repeats; the whole table is a deterministic field, so
    cross-machine drift trips the baseline comparison."""
    import itertools

    import repro.core.packet as packet_mod

    legs: Dict[str, Dict] = {}
    total_wall = 0.0
    total_cycles = 0
    for leg, detour, recovery in RECOVERY_LEGS:
        runs = []
        for _ in range(max(1, repeats)):
            # pid counter restart: victim pids rebase identically per run
            packet_mod._packet_ids = itertools.count(1_000_000)
            sim, pkts = _fig9_recovery_sim(detour, recovery)
            base = min(p.pid for p in pkts)
            t0 = time.perf_counter()
            res = sim.run(max_cycles=20_000)
            wall = time.perf_counter() - t0
            runs.append(
                {
                    "wall_time_s": wall,
                    "cycles": res.cycles,
                    "flit_moves": res.flit_moves,
                    "delivered": len(res.delivered),
                    "recoveries": res.recoveries,
                    "victims": [v - base for v in res.recovery_victims],
                    "deadlocked": res.deadlocked,
                    "deadlock_cycle": (
                        None if res.deadlock is None else res.deadlock.cycle
                    ),
                    "in_flight": res.in_flight_at_end,
                }
            )
        for other in runs[1:]:
            for field in sorted(set(runs[0]) - {"wall_time_s"}):
                if other[field] != runs[0][field]:
                    raise AssertionError(
                        f"recovery_shootout: {leg}.{field} drifted between "
                        f"repeats ({runs[0][field]!r} != {other[field]!r})"
                    )
        best = min(runs, key=lambda r: r["wall_time_s"])
        sent = 4
        if leg in ("avoidance", "recovery"):
            if best["deadlocked"] or best["delivered"] != sent:
                raise AssertionError(
                    f"recovery_shootout: {leg} leg must deliver all {sent} "
                    f"packets without a final deadlock "
                    f"({best['delivered']} delivered, "
                    f"deadlocked={best['deadlocked']})"
                )
        if leg == "avoidance" and best["recoveries"]:
            raise AssertionError(
                "recovery_shootout: the safe scheme must not need recovery"
            )
        if leg == "recovery" and best["recoveries"] < 1:
            raise AssertionError(
                "recovery_shootout: the recovery leg never deadlocked -- "
                "the workload no longer exercises the rotate path"
            )
        if leg == "halt" and not best["deadlocked"]:
            raise AssertionError(
                "recovery_shootout: the halt leg must end in a "
                "DeadlockReport"
            )
        total_wall += best["wall_time_s"]
        total_cycles += best["cycles"]
        legs[leg] = {
            "detour": detour,
            "recovery": recovery,
            **{k: v for k, v in best.items() if k != "wall_time_s"},
        }
    identity = json.dumps(legs, sort_keys=True, separators=(",", ":"))
    return {
        "description": (
            "Fig. 9 deadlock workload three ways: VC avoidance (safe "
            "detours) vs online drain/rotate recovery vs halt-and-report"
        ),
        "repeats": max(1, repeats),
        # no cycles_per_sec: the legs are tiny (a few hundred cycles); the
        # case gates on the deterministic ``legs`` table, not throughput
        "wall_time_s": round(total_wall, 6),
        "cycles": total_cycles,
        "delivered": sum(leg["delivered"] for leg in legs.values()),
        # the halt leg deadlocks *by design* (asserted above); the
        # case-level flag keeps the "nothing unexpected deadlocked"
        # meaning the other cases use
        "deadlocked": False,
        "legs": legs,
        "identity_sha256": hashlib.sha256(
            identity.encode("utf-8")
        ).hexdigest(),
    }


#: the full SR2201 installation: 16 x 16 x 8 = 2048 processing elements
MACHINE_SHAPE: Tuple[int, ...] = (16, 16, 8)


def _machine_sim(engine: str, faults=()) -> NetworkSimulator:
    logic = SwitchLogic(
        MDCrossbar(MACHINE_SHAPE),
        make_config(MACHINE_SHAPE, faults=tuple(faults)),
    )
    return NetworkSimulator(
        MDCrossbarAdapter(logic),
        SimConfig(stall_limit=2000, engine=engine),
    )


def _machine_p2p_workload(sim: NetworkSimulator, rounds: int) -> None:
    """Every PE sends ``rounds`` length-16 packets to its fixed
    permutation partner ((x+8)%16, (y+8)%16, (z+4)%8), staggered by a
    small coordinate-derived offset.  The fixed pairing keeps rounds
    beyond the first on the adapter's route memo, so the leg measures
    the engines' cycle machinery rather than cold route decisions."""
    for x in range(MACHINE_SHAPE[0]):
        for y in range(MACHINE_SHAPE[1]):
            for z in range(MACHINE_SHAPE[2]):
                dest = ((x + 8) % 16, (y + 8) % 16, (z + 4) % 8)
                for r in range(rounds):
                    sim.send(
                        Packet(
                            Header(source=(x, y, z), dest=dest), length=16
                        ),
                        at_cycle=r * 20 + (x + y + z) % 4,
                    )


def _machine_detour_workload(sim: NetworkSimulator) -> None:
    """A 5x5x5 subgrid around the faulted router (8, 8, 4), same
    permutation pairing: traffic whose shortest routes cross the dead
    crossbar lines, so the detour tables are exercised at machine
    scale."""
    for x in range(6, 11):
        for y in range(6, 11):
            for z in range(2, 7):
                if (x, y, z) == (8, 8, 4):
                    continue
                dest = ((x + 8) % 16, (y + 8) % 16, (z + 4) % 8)
                for r in range(4):
                    sim.send(
                        Packet(
                            Header(source=(x, y, z), dest=dest), length=16
                        ),
                        at_cycle=r * 24,
                    )


def _machine_run(engine: str, workload, faults=()):
    """One fresh machine-scale run: (fingerprint, wall, result, sim).
    The pid counter restarts so fingerprints rebase identically and the
    adapter (route memo included) is rebuilt so every engine starts from
    the same cold state."""
    import itertools

    import repro.core.packet as packet_mod

    packet_mod._packet_ids = itertools.count(1_000_000)
    sim = _machine_sim(engine, faults=faults)
    workload(sim)
    t0 = time.perf_counter()
    res = sim.run(max_cycles=100_000)
    wall = time.perf_counter() - t0
    return res.fingerprint(), wall, res, sim


def _profile_machine_2048(top: int) -> str:
    """cProfile dump of one reduced SoA p2p leg (kernel phases and
    their numpy sections dominate the top-N; the scalar drivers'
    profiles are already covered by the build cases)."""
    import itertools

    import repro.core.packet as packet_mod

    packet_mod._packet_ids = itertools.count(1_000_000)
    sim = _machine_sim("soa")
    _machine_p2p_workload(sim, rounds=6)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(max_cycles=100_000)
    profiler.disable()
    if sim.engine_used != "soa":
        raise AssertionError(
            "machine_2048: profiling leg fell back to the scalar path"
        )
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(
        top
    )
    return buf.getvalue()


def _run_machine_2048(repeats: int = 3, rounds: int = 20) -> Dict:
    """The tentpole leg: a full 2048-PE SR2201 run under the batched SoA
    engine vs the scalar active driver, fingerprint-identical.

    The p2p leg (all-PE fixed-permutation traffic, ``rounds`` rounds)
    times the SoA driver best-of-``repeats`` and the active driver once
    -- the active leg is ~7x slower, and its wall noise can only
    *inflate* the reported ratio, so a single reference run keeps the
    case affordable without weakening the floor.  ``speedup_vs_active``
    is an in-run, machine-independent ratio like ``speedup_vs_legacy``;
    ``soa_drift`` lists the legs on which the SoA fingerprint diverged
    from the active driver's (always empty unless the kernel is broken)
    and regresses at any threshold.  A silent fallback to the scalar
    path fails the case outright: the whole point is that the kernel
    ran.  The detour leg re-runs a faulted subgrid workload under both
    drivers (untimed gate) so machine-scale detours ride in the
    identity hash too."""
    repeats = max(1, repeats)
    soa_drift: List[str] = []

    fp_soa, wall_soa, res_soa, sim_soa = _machine_run(
        "soa", lambda sim: _machine_p2p_workload(sim, rounds)
    )
    if sim_soa.engine_used != "soa":
        raise AssertionError(
            f"machine_2048: SoA kernel fell back to the scalar path "
            f"({sim_soa.engine_fallback}) -- the p2p leg must run "
            f"in-kernel"
        )
    for _ in range(repeats - 1):
        fp, wall, _, _ = _machine_run(
            "soa", lambda sim: _machine_p2p_workload(sim, rounds)
        )
        if fp != fp_soa:
            raise AssertionError(
                "machine_2048: SoA p2p leg drifted between repeats"
            )
        wall_soa = min(wall_soa, wall)
    fp_active, wall_active, _, _ = _machine_run(
        "active", lambda sim: _machine_p2p_workload(sim, rounds)
    )
    if fp_soa != fp_active:
        soa_drift.append("p2p")

    faults = (Fault.router((8, 8, 4)),)
    fp_dsoa, _, res_detour, sim_detour = _machine_run(
        "soa", _machine_detour_workload, faults=faults
    )
    if sim_detour.engine_used != "soa":
        raise AssertionError(
            f"machine_2048: detour leg fell back to the scalar path "
            f"({sim_detour.engine_fallback})"
        )
    fp_dactive, _, _, _ = _machine_run(
        "active", _machine_detour_workload, faults=faults
    )
    if fp_dsoa != fp_dactive:
        soa_drift.append("detour")

    speedup = round(wall_active / wall_soa, 3) if wall_soa > 0 else None
    # a disabled or degraded kernel collapses the ratio toward 1x; the
    # committed baseline records ~7x and compare_bench gates the fine
    # 30%-relative floor, so this in-run check only has to catch the
    # catastrophic case without flaking on noisy machines
    if rounds >= 6 and speedup is not None and speedup < 3.0:
        raise AssertionError(
            f"machine_2048: SoA speedup collapsed to {speedup}x vs the "
            f"active driver (kernel perf regression)"
        )

    lats = res_soa.latencies
    identity = repr((fp_soa, fp_dsoa))
    return {
        "description": (
            f"full 16x16x8 SR2201 ({16 * 16 * 8} PEs): {rounds}-round "
            f"fixed-permutation p2p under the SoA kernel vs the active "
            f"driver, plus a faulted detour-subgrid parity leg"
        ),
        "repeats": repeats,
        "rounds": rounds,
        "shape": "x".join(map(str, MACHINE_SHAPE)),
        "engine_used": "soa",
        "wall_time_s": round(wall_soa, 6),
        "active_wall_s": round(wall_active, 6),
        "cycles": res_soa.cycles,
        "cycles_per_sec": (
            round(res_soa.cycles / wall_soa, 1) if wall_soa > 0 else 0.0
        ),
        "active_cycles_per_sec": (
            round(res_soa.cycles / wall_active, 1)
            if wall_active > 0
            else 0.0
        ),
        "speedup_vs_active": speedup,
        "soa_drift": soa_drift,
        "flit_moves": res_soa.flit_moves,
        "delivered": len(res_soa.delivered),
        "mean_latency": (
            round(sum(lats) / len(lats), 3) if lats else None
        ),
        "deadlocked": res_soa.deadlocked,
        "detour_cycles": res_detour.cycles,
        "detour_delivered": len(res_detour.delivered),
        "identity_sha256": hashlib.sha256(
            identity.encode("utf-8")
        ).hexdigest(),
    }


#: samples in the campaign_reliability bench campaign -- big enough
#: that the vectorized kernel's per-block fixed costs are amortized,
#: small enough for three best-of repeats in CI
CAMPAIGN_BENCH_SAMPLES = 100_000

#: samples in the scalar-loop reference leg -- enough wall time (~25ms)
#: that the rate measurement is not timer noise, still a rounding error
#: next to the campaign legs
CAMPAIGN_LOOP_SAMPLES = 100

#: in-run floor for campaign-vs-loop throughput; ISSUE 10 demands >= 20x
#: and the kernel delivers >100x, so the floor only trips when the
#: vectorized path breaks (machine-independent ratio, like
#: ``speedup_vs_legacy``)
CAMPAIGN_SPEEDUP_FLOOR = 20.0


def _run_campaign_reliability(repeats: int = 3) -> Dict:
    """Measure the Monte-Carlo campaign engine on the full machine.

    Three legs: (a) the serial campaign -- ``CAMPAIGN_BENCH_SAMPLES``
    fault-placement walks on the 16x16x8 SR2201 through the vectorized
    block kernel, best-of-``repeats``; (b) the same campaign fanned over
    2 workers, whose merged estimate must hash identically to the serial
    one (the chunking/jobs-invariance contract, asserted in-run); (c)
    the scalar per-sample loop (``simulate_extended_facility``) as the
    throughput reference.  ``speedup_vs_loop`` is an in-run,
    machine-independent ratio with a hard ``CAMPAIGN_SPEEDUP_FLOOR``;
    ``identity_sha256`` is the campaign's own chunking-invariant
    estimate hash, exact-matched against the baseline."""
    from .analysis.campaign import CampaignSpec, run_campaign
    from .analysis.reliability import simulate_extended_facility

    repeats = max(1, repeats)
    spec = CampaignSpec(shape=MACHINE_SHAPE, samples=CAMPAIGN_BENCH_SAMPLES)

    serial_wall = float("inf")
    serial = None
    for _ in range(repeats):
        result = run_campaign(spec, jobs=1)
        if serial is not None and (
            result.identity_sha256 != serial.identity_sha256
        ):
            raise AssertionError(
                "campaign_reliability: serial campaign drifted between "
                "repeats (determinism bug)"
            )
        serial_wall = min(serial_wall, result.wall_s)
        serial = result

    fanout = run_campaign(spec, jobs=2)
    if fanout.identity_sha256 != serial.identity_sha256:
        raise AssertionError(
            "campaign_reliability: jobs=2 campaign drifted from the "
            "serial estimate (chunking-invariance bug)"
        )

    loop_wall = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        simulate_extended_facility(
            MACHINE_SHAPE, samples=CAMPAIGN_LOOP_SAMPLES, seed=spec.seed
        )
        loop_wall = min(loop_wall, time.perf_counter() - t0)

    def _speedup() -> float:
        return round(
            (spec.samples / serial_wall)
            / (CAMPAIGN_LOOP_SAMPLES / loop_wall),
            3,
        )

    if _speedup() < CAMPAIGN_SPEEDUP_FLOOR:
        # a transient load spike on a shared CI box can shave the
        # margin; re-measure both legs once (folding into the bests)
        # before calling it a regression -- a genuinely slow kernel
        # fails both times
        extra = run_campaign(spec, jobs=1)
        serial_wall = min(serial_wall, extra.wall_s)
        t0 = time.perf_counter()
        simulate_extended_facility(
            MACHINE_SHAPE, samples=CAMPAIGN_LOOP_SAMPLES, seed=spec.seed
        )
        loop_wall = min(loop_wall, time.perf_counter() - t0)
    speedup = _speedup()
    if speedup < CAMPAIGN_SPEEDUP_FLOOR:
        raise AssertionError(
            f"campaign_reliability: kernel is only {speedup}x the scalar "
            f"loop (floor {CAMPAIGN_SPEEDUP_FLOOR}x) -- vectorized "
            f"sampling path regressed"
        )
    samples_per_sec = spec.samples / serial_wall
    loop_rate = CAMPAIGN_LOOP_SAMPLES / loop_wall

    est = serial.estimate()
    # "cycles" for this runner case = total fault-injection steps walked
    # across the campaign (deterministic given the seed, like the engine
    # cases' cycle counts); "delivered" = completed sample walks.
    steps = serial.state.survived_sum
    return {
        "description": (
            f"{spec.samples}-sample reliability campaign on the full "
            f"16x16x8 SR2201: vectorized block kernel (serial + 2-worker "
            f"fanout, identical estimates) vs the scalar per-sample loop"
        ),
        "repeats": repeats,
        "shape": "x".join(map(str, spec.shape)),
        "samples": spec.samples,
        "blocks": serial.blocks_done,
        "block_samples": spec.block_samples,
        "cycles": steps,
        "delivered": spec.samples,
        "deadlocked": False,
        "cycles_per_sec": (
            round(steps / serial_wall, 1) if serial_wall > 0 else 0.0
        ),
        "wall_time_s": round(serial_wall, 6),
        "fanout_wall_s": round(fanout.wall_s, 6),
        "samples_per_sec": round(samples_per_sec, 1),
        "loop_samples_per_sec": round(loop_rate, 1),
        "speedup_vs_loop": speedup,
        "mean_mttf": est.mean,
        "std_error": est.std_error,
        "mean_faults_survived": round(est.mean_faults_survived, 4),
        "identity_sha256": serial.identity_sha256,
    }


#: the pinned suite; order is the report order
BENCH_CASES: Tuple[BenchCase, ...] = (
    BenchCase(
        "p2p_4x3_low",
        "uniform Bernoulli traffic, 4x3, load 0.15",
        True,
        _bernoulli_case((4, 3), 0.15, 300),
    ),
    BenchCase(
        "broadcast_4x3",
        "12 serialized S-XB broadcasts, 4x3",
        True,
        _broadcast_case((4, 3), 12, 3),
    ),
    BenchCase(
        "detour_4x3_fault",
        "uniform traffic around a faulty router, 4x3",
        True,
        _bernoulli_case((4, 3), 0.15, 300, faults=(Fault.router((2, 0)),)),
    ),
    BenchCase(
        "stream_8x1_long",
        "12 length-64 packets across an 8x1 line, 120-cycle gaps",
        True,
        _stream_case((8, 1), 12, 64, 120),
    ),
    BenchCase(
        "sweep_fanout",
        "76-spec fault-enumeration sweep: warm session vs cold pools "
        "vs cache replay",
        True,
        runner=_run_sweep_fanout,
    ),
    BenchCase(
        "scheme_shootout",
        "every registered routing scheme: latency, stretch, CDG "
        "acyclicity, single-fault coverage",
        True,
        runner=_run_scheme_shootout,
    ),
    BenchCase(
        "recovery_shootout",
        "Fig. 9 deadlock workload: avoidance vs online recovery vs halt",
        True,
        runner=_run_recovery_shootout,
    ),
    BenchCase(
        "machine_2048",
        "full 16x16x8 SR2201: SoA kernel vs active driver, "
        "fingerprint-identical",
        True,
        runner=_run_machine_2048,
        profile=_profile_machine_2048,
    ),
    BenchCase(
        "campaign_reliability",
        "100k-sample Monte-Carlo reliability campaign on the full "
        "machine: block kernel vs scalar loop, jobs-invariant",
        True,
        runner=_run_campaign_reliability,
    ),
    BenchCase(
        "p2p_8x8_mid",
        "uniform Bernoulli traffic, 8x8, load 0.3",
        False,
        _bernoulli_case((8, 8), 0.3, 300),
    ),
)


def _measure(case: BenchCase, legacy: bool = False) -> Dict:
    """One timed run of a case (spans attached throughout)."""
    sim, max_cycles = case.build(legacy=legacy)
    spans = PacketSpanCollector().attach(sim)
    t0 = time.perf_counter()
    res = sim.run(max_cycles=max_cycles, until_drained=False)
    wall = time.perf_counter() - t0
    spans.detach(sim)
    totals = spans.span_set().totals()
    lats = res.latencies
    return {
        "wall_time_s": wall,
        "cycles": res.cycles,
        "flit_moves": res.flit_moves,
        "delivered": len(res.delivered),
        "mean_latency": (
            round(sum(lats) / len(lats), 3) if lats else None
        ),
        "blocked_cycles": totals["blocked"],
        "sxb_wait_cycles": totals["sxb_wait"],
        "queue_wait_cycles": totals["queue_wait"],
        "detour_overhead_cycles": totals["detour_overhead"],
        "deadlocked": res.deadlocked,
    }


def _profile_case(case: BenchCase, top: int) -> str:
    """One extra run under cProfile; returns the top-``top`` cumulative
    dump (never used for the timed measurements)."""
    sim, max_cycles = case.build()
    spans = PacketSpanCollector().attach(sim)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(max_cycles=max_cycles, until_drained=False)
    profiler.disable()
    spans.detach(sim)
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


def run_case(
    case: BenchCase,
    repeats: int = 3,
    legacy_compare: bool = False,
    profile_top: Optional[int] = None,
) -> Dict:
    """Measure one case: best-of-``repeats`` wall time (the simulated
    quantities must agree across every repeat -- any disagreement is a
    determinism bug and raises).  With ``legacy_compare`` the case also
    runs once with ``legacy_scan=True`` and the result carries the
    in-run ``speedup_vs_legacy`` (machine-independent, unlike the
    wall-clock rates) plus ``legacy_drift``, the deterministic fields on
    which the fast path disagreed with the full per-cycle scan (always
    empty unless the active-set engine is broken).  ``profile_top``
    adds a cProfile top-N cumulative dump from one extra run.

    Runner cases (``case.runner``, e.g. ``sweep_fanout``) measure
    themselves -- repeats are theirs to apply, and the legacy extra does
    not (there is no single engine run to twin).  A runner case profiles
    only when it brings its own ``case.profile`` override (machine_2048
    profiles its SoA leg)."""
    if case.runner is not None:
        out = case.runner(repeats=max(1, repeats))
        if profile_top and case.profile is not None:
            out["profile"] = case.profile(profile_top)
        return out
    runs = [_measure(case) for _ in range(max(1, repeats))]
    for other in runs[1:]:
        for field in DETERMINISTIC_FIELDS:
            if field in runs[0] and other[field] != runs[0][field]:
                raise AssertionError(
                    f"{case.name}: {field} drifted between repeats "
                    f"({runs[0][field]!r} != {other[field]!r})"
                )
    best = min(runs, key=lambda r: r["wall_time_s"])
    wall = best["wall_time_s"]
    out = {
        "description": case.description,
        "repeats": len(runs),
        "wall_time_s": round(wall, 6),
        "cycles": best["cycles"],
        "cycles_per_sec": round(best["cycles"] / wall, 1) if wall > 0 else 0.0,
        "flit_moves": best["flit_moves"],
        "flit_moves_per_sec": (
            round(best["flit_moves"] / wall, 1) if wall > 0 else 0.0
        ),
        "delivered": best["delivered"],
        "mean_latency": best["mean_latency"],
        "blocked_cycles": best["blocked_cycles"],
        "sxb_wait_cycles": best["sxb_wait_cycles"],
        "queue_wait_cycles": best["queue_wait_cycles"],
        "detour_overhead_cycles": best["detour_overhead_cycles"],
        "deadlocked": best["deadlocked"],
    }
    if legacy_compare:
        # same best-of-repeats discipline: the speedup ratio is only as
        # stable as its noisier (legacy) leg
        legacy_runs = [
            _measure(case, legacy=True) for _ in range(max(1, repeats))
        ]
        legacy = min(legacy_runs, key=lambda r: r["wall_time_s"])
        lw = legacy["wall_time_s"]
        legacy_rate = round(legacy["cycles"] / lw, 1) if lw > 0 else 0.0
        out["legacy_cycles_per_sec"] = legacy_rate
        out["speedup_vs_legacy"] = (
            round(out["cycles_per_sec"] / legacy_rate, 3)
            if legacy_rate
            else None
        )
        out["legacy_drift"] = [
            field
            for field in DETERMINISTIC_FIELDS
            if field in best and legacy[field] != best[field]
        ]
    if profile_top:
        out["profile"] = _profile_case(case, profile_top)
    return out


def run_suite(
    smoke: bool = False,
    label: str = "local",
    progress: Optional[Callable[[str], None]] = None,
    repeats: int = 3,
    legacy_compare: bool = True,
    profile_top: Optional[int] = None,
) -> Dict:
    """Run the pinned suite (or its ``--smoke`` subset) into a bench doc.

    ``legacy_compare`` applies to the smoke cases only (the legacy twin
    of the big non-smoke cases would dominate suite runtime)."""
    cases: Dict[str, Dict] = {}
    for case in BENCH_CASES:
        if smoke and not case.smoke:
            continue
        if progress:
            progress(f"running {case.name}: {case.description}")
        cases[case.name] = run_case(
            case,
            repeats=repeats,
            legacy_compare=legacy_compare and case.smoke,
            profile_top=profile_top,
        )
    return {
        "kind": "bench",
        "schema": BENCH_SCHEMA,
        "label": label,
        "smoke": smoke,
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "cases": cases,
    }


def write_bench(doc: Dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def load_bench(path: str) -> Dict:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("kind") != "bench" or doc.get("schema") not in (
        1,
        2,
        3,
        4,
        5,
        6,
        7,
        BENCH_SCHEMA,
    ):
        raise ValueError(
            f"{path} is not a schema-1/2/3/4/5/6/7/{BENCH_SCHEMA} bench "
            f"file (kind={doc.get('kind')!r}, schema={doc.get('schema')!r})"
        )
    return doc


class Regression(NamedTuple):
    case: str
    field: str
    old: object
    new: object
    note: str


def compare_bench(
    new: Dict, baseline: Dict, threshold_pct: float = 20.0
) -> List[Regression]:
    """Regressions of ``new`` against ``baseline``.

    Wall-clock rate: ``cycles_per_sec`` more than ``threshold_pct``
    percent below the baseline regresses.  Deterministic simulated
    quantities (:data:`DETERMINISTIC_FIELDS`) must match exactly --
    any drift is reported regardless of the threshold.  A non-empty
    ``legacy_drift`` in the new run (the fast path disagreeing with the
    per-cycle scan in-run) regresses at any threshold, as does
    ``speedup_vs_legacy`` falling more than 30% below the baseline's --
    the machine-independent check that the fast path stays *on* (a
    disabled fast path collapses the ratio to ~1x, well past 30%; the
    margin absorbs the wall-clock noise in the ratio's two legs).
    Cases present in the baseline but missing from the new run are
    regressions too (a silently dropped case would hide anything).
    """
    out: List[Regression] = []
    for name, old_case in baseline.get("cases", {}).items():
        new_case = new.get("cases", {}).get(name)
        if new_case is None:
            out.append(
                Regression(name, "presence", "present", "missing",
                           "case disappeared from the suite")
            )
            continue
        old_rate, new_rate = (
            old_case.get("cycles_per_sec"), new_case.get("cycles_per_sec")
        )
        if old_rate and new_rate is not None:
            floor = old_rate * (1.0 - threshold_pct / 100.0)
            if new_rate < floor:
                out.append(
                    Regression(
                        name, "cycles_per_sec", old_rate, new_rate,
                        f"{100.0 * (1 - new_rate / old_rate):.1f}% slower "
                        f"(threshold {threshold_pct:.0f}%)",
                    )
                )
        for field in DETERMINISTIC_FIELDS:
            if field in old_case and old_case[field] != new_case.get(field):
                out.append(
                    Regression(
                        name, field, old_case[field], new_case.get(field),
                        "deterministic quantity drifted",
                    )
                )
        if new_case.get("legacy_drift"):
            out.append(
                Regression(
                    name, "legacy_drift", [], new_case["legacy_drift"],
                    "fast path disagrees with legacy_scan on these fields",
                )
            )
        # the SoA kernel's in-run twin of legacy_drift: the batched
        # driver disagreeing with the scalar active driver regresses at
        # any threshold (fingerprint identity is the kernel's contract)
        if new_case.get("soa_drift"):
            out.append(
                Regression(
                    name, "soa_drift", [], new_case["soa_drift"],
                    "SoA kernel disagrees with the active driver on "
                    "these legs",
                )
            )
        for ratio, desc in (
            ("speedup_vs_legacy", "fast-vs-legacy"),
            ("speedup_vs_active", "SoA-vs-active"),
            ("speedup_vs_loop", "campaign-vs-loop"),
        ):
            old_speedup = old_case.get(ratio)
            new_speedup = new_case.get(ratio)
            if old_speedup and new_speedup is not None:
                if new_speedup < old_speedup * 0.7:
                    out.append(
                        Regression(
                            name, ratio, old_speedup, new_speedup,
                            f"{desc} speedup fell more than 30% below "
                            f"baseline",
                        )
                    )
        # the sweep-runtime in-run ratios, same machine-independent idea:
        # a lost warm pool or a cache that stops hitting collapses these
        # toward 1x, far past a 50% drop; the wide margin absorbs the
        # noise of three short wall-clock legs on shared CI machines
        for ratio in ("warm_speedup", "cache_speedup"):
            old_r, new_r = old_case.get(ratio), new_case.get(ratio)
            if old_r and new_r is not None and new_r < old_r * 0.5:
                out.append(
                    Regression(
                        name, ratio, old_r, new_r,
                        f"{ratio} fell more than 50% below baseline",
                    )
                )
    return out


def render_bench(doc: Dict) -> str:
    """One-line-per-case ASCII table of a bench doc."""
    lines = [
        f"bench {doc['label']} (schema {doc['schema']}, "
        f"python {doc['python']}, peak RSS {doc['peak_rss_kb']} kB)"
    ]
    for name, c in doc["cases"].items():
        if "schemes" in c:  # runner case (scheme_shootout): one row/scheme
            lines.append(
                f"  {name:<18} {len(c['schemes'])} schemes in "
                f"{c['wall_time_s']:.3f}s (latency legs)"
            )
            for sname, s in c["schemes"].items():
                cov = (
                    f" faults={s['faults_covered']}"
                    if s["faults_covered"] is not None
                    else ""
                )
                lines.append(
                    f"    {sname:<14} {s['shape']:<6} "
                    f"lat={s['mean_latency']:<6} stretch={s['stretch']:<7} "
                    f"cdg={'acyclic' if s['cycle_free'] else 'CYCLIC'}"
                    f"({s['cdg_edges']})"
                    f" delivered={s['delivered']}{cov}"
                )
            continue
        if "legs" in c:  # runner case (recovery_shootout): one row/leg
            lines.append(
                f"  {name:<18} {len(c['legs'])} legs in "
                f"{c['wall_time_s']:.3f}s"
            )
            for lname, leg in c["legs"].items():
                end = (
                    f"deadlock@{leg['deadlock_cycle']}"
                    if leg["deadlocked"]
                    else "drained"
                )
                lines.append(
                    f"    {lname:<10} detour={leg['detour']:<5} "
                    f"recovery={'on' if leg['recovery'] else 'off':<3} "
                    f"cycles={leg['cycles']:<5} "
                    f"delivered={leg['delivered']} "
                    f"rotations={leg['recoveries']} {end}"
                )
            continue
        if "speedup_vs_active" in c:  # runner case (machine_2048)
            drift = (
                f" DRIFT={','.join(c['soa_drift'])}" if c["soa_drift"] else ""
            )
            lines.append(
                f"  {name:<18} {c['cycles']:>6} cycles in "
                f"{c['wall_time_s']:.3f}s "
                f"({c['cycles_per_sec']:>10.0f} cyc/s soa)  "
                f"delivered={c['delivered']} "
                f"vs_active={c['speedup_vs_active']:.2f}x "
                f"detour={c['detour_delivered']}{drift}"
            )
            continue
        if "samples_per_sec" in c:  # runner case (campaign_reliability)
            lines.append(
                f"  {name:<18} {c['samples']:>6} samples in "
                f"{c['wall_time_s']:.3f}s "
                f"({c['samples_per_sec']:>10.1f} samples/s)  "
                f"vs_loop={c['speedup_vs_loop']:.1f}x "
                f"survives={c['mean_faults_survived']}"
            )
            continue
        if "specs" in c:  # runner case (sweep_fanout); wall_time_s = warm leg
            line = (
                f"  {name:<18} {c['specs']:>6} specs  in {c['wall_time_s']:.3f}s "
                f"({c['specs_per_sec_warm']:>8.1f} specs/s warm)  "
                f"warm={c['warm_speedup']:.2f}x "
                f"cached={c['cache_speedup']:.2f}x vs cold  "
                f"delivered={c['delivered']}"
            )
            if "ledger_records" in c:
                line += (
                    f" ledger={c['ledger_records']} rec "
                    f"(schema {c['ledger_schema']})"
                )
            lines.append(line)
            continue
        line = (
            f"  {name:<18} {c['cycles']:>6} cycles in {c['wall_time_s']:.3f}s "
            f"({c['cycles_per_sec']:>10.0f} cyc/s, "
            f"{c['flit_moves_per_sec']:>10.0f} flits/s)  "
            f"delivered={c['delivered']} blocked={c['blocked_cycles']} "
            f"sxb={c['sxb_wait_cycles']}"
        )
        if c.get("speedup_vs_legacy") is not None:
            line += f" vs_legacy={c['speedup_vs_legacy']:.2f}x"
            if c.get("legacy_drift"):
                line += f" DRIFT={','.join(c['legacy_drift'])}"
        lines.append(line)
    return "\n".join(lines)
