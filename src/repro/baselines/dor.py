"""Dimension-order routing adapters for the baseline topologies.

All three baselines route dimension 0 first, matching the MD crossbar's
X-Y order, so the comparison isolates the *topology* (paper Section 3.1:
"far fewer network conflicts occur in the MD crossbar network than in
mesh-connected or torus networks").

* **Mesh** -- classic dimension-order routing; deadlock free on a single
  virtual channel because each dimension's chain of channels is acyclic.
* **Torus** -- dimension-order with shortest-way wrap links; rings close a
  channel cycle, so the adapter applies the Dally/Seitz dateline scheme:
  packets start a dimension on VC 0 and switch to VC 1 once they cross the
  wrap edge, breaking the cycle.  Requires ``SimConfig(num_vcs=2)``.
* **Hypercube** -- e-cube routing (fix differing address bits in ascending
  order), deadlock free on one VC.

Baselines carry only point-to-point traffic; the SR2201's broadcast and
detour facilities are specific to the MD crossbar.
"""

from __future__ import annotations

from typing import Tuple

from ..core.coords import Coord
from ..core.packet import RC, Header
from ..sim.adapter import SimDecision
from ..topology.base import ElementId, element_kind, ElementKind, pe, rtr
from ..topology.hypercube import Hypercube
from ..topology.mesh import Mesh
from ..topology.torus import Torus


class _BaselineAdapter:
    """Shared plumbing: deliver at the destination, else ask the subclass
    for the next (neighbor, vc) along dimension-order."""

    def __init__(self, topo) -> None:
        self.topo = topo

    def decide(
        self, element: ElementId, in_from: ElementId, in_vc: int, header: Header
    ) -> SimDecision:
        if header.rc is not RC.NORMAL:
            raise ValueError(
                f"{type(self).__name__} routes point-to-point traffic only "
                f"(got RC={header.rc.name})"
            )
        if element_kind(element) is not ElementKind.RTR:
            raise ValueError(f"baseline routing runs on routers, not {element}")
        cur: Coord = element[1]
        if cur == header.dest:
            return SimDecision(outputs=((pe(cur), 0),), rc=RC.NORMAL)
        nxt, vc = self.next_hop(cur, header.dest, in_from, in_vc)
        return SimDecision(outputs=((rtr(nxt), vc),), rc=RC.NORMAL)

    def next_hop(
        self, cur: Coord, dest: Coord, in_from: ElementId, in_vc: int
    ) -> Tuple[Coord, int]:
        raise NotImplementedError


class MeshAdapter(_BaselineAdapter):
    """Dimension-order routing on a mesh (single VC)."""

    def __init__(self, topo: Mesh) -> None:
        super().__init__(topo)

    def next_hop(self, cur, dest, in_from, in_vc):
        for k in range(len(cur)):
            if cur[k] != dest[k]:
                step = 1 if dest[k] > cur[k] else -1
                return cur[:k] + (cur[k] + step,) + cur[k + 1 :], 0
        raise AssertionError("next_hop called at destination")


class TorusAdapter(_BaselineAdapter):
    """Dimension-order routing on a torus with dateline VCs.

    Within each dimension the shorter way around the ring is taken (ties go
    the +1 way).  A hop leaving node ``n-1`` in the + direction or node ``0``
    in the - direction crosses the dateline; that hop and all later hops in
    the same dimension use VC 1.
    """

    required_vcs = 2

    def __init__(self, topo: Torus) -> None:
        super().__init__(topo)

    def next_hop(self, cur, dest, in_from, in_vc):
        shape = self.topo.shape
        for k in range(len(cur)):
            if cur[k] == dest[k]:
                continue
            n = shape[k]
            fwd = (dest[k] - cur[k]) % n
            step = 1 if fwd <= n - fwd else -1
            nxt = cur[:k] + ((cur[k] + step) % n,) + cur[k + 1 :]
            crossing = (step == 1 and cur[k] == n - 1) or (
                step == -1 and cur[k] == 0
            )
            staying = (
                element_kind(in_from) is ElementKind.RTR
                and _link_dim(in_from[1], cur) == k
            )
            vc = 1 if crossing or (staying and in_vc == 1) else 0
            return nxt, vc
        raise AssertionError("next_hop called at destination")


class HypercubeAdapter(_BaselineAdapter):
    """E-cube routing: flip differing address bits in ascending dimension
    order (single VC)."""

    def __init__(self, topo: Hypercube) -> None:
        super().__init__(topo)

    def next_hop(self, cur, dest, in_from, in_vc):
        for k in range(len(cur)):
            if cur[k] != dest[k]:
                return cur[:k] + (dest[k],) + cur[k + 1 :], 0
        raise AssertionError("next_hop called at destination")


def _link_dim(a: Coord, b: Coord) -> int:
    """Dimension along which two adjacent routers differ."""
    for k, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return k
    return -1


def make_baseline(kind: str, shape) -> Tuple[object, _BaselineAdapter, int]:
    """Build (topology, adapter, required num_vcs) for a named baseline."""
    if kind == "mesh":
        t = Mesh(shape)
        return t, MeshAdapter(t), 1
    if kind == "torus":
        t = Torus(shape)
        return t, TorusAdapter(t), 2
    if kind == "hypercube":
        t = Hypercube(shape if isinstance(shape, int) else len(shape))
        return t, HypercubeAdapter(t), 1
    raise ValueError(f"unknown baseline {kind!r}")
