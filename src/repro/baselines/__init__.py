"""Baseline networks the paper compares against (Sections 1 and 3.1).

Dimension-order routed mesh (static, VC-free), torus (CRAY T3D-style, with
the classic dateline virtual-channel split), and hypercube (e-cube routing).
Each provides a :class:`~repro.sim.adapter.RoutingAdapter` so the same
flit-level simulator drives all topologies in the performance benches.
"""

from .dor import HypercubeAdapter, MeshAdapter, TorusAdapter, make_baseline

__all__ = ["HypercubeAdapter", "MeshAdapter", "TorusAdapter", "make_baseline"]
