"""ASCII rendering of 2D crossbar networks and routes.

The example scripts replay the paper's figures and print them in the same
spirit: the 2D lattice of PEs with its X- and Y-dimension crossbars, routes
overlaid hop by hop.  Rendering is text-only so it works anywhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.coords import Coord
from ..core.packet import RC
from ..core.routes import RouteTree
from ..topology.base import ElementId, element_kind, ElementKind
from ..topology.mdcrossbar import MDCrossbar

_RC_MARK = {
    RC.NORMAL: "n",
    RC.BROADCAST_REQUEST: "q",
    RC.BROADCAST: "b",
    RC.DETOUR: "d",
}


def render_grid(
    topo: MDCrossbar,
    highlight_pes: Sequence[Coord] = (),
    faulty: Optional[ElementId] = None,
    sxb_line: Optional[Tuple[int, ...]] = None,
    dxb_line: Optional[Tuple[int, ...]] = None,
) -> str:
    """Draw a 2D crossbar network.

    Rows are Y values (dimension 1), columns X values (dimension 0); each
    cell shows the PE with its router, ``##`` marks highlighted PEs, ``XX``
    the faulty element.  The S-XB/D-XB rows are labelled on the right.
    """
    if topo.num_dims != 2:
        raise ValueError("render_grid draws 2D networks only")
    nx, ny = topo.shape
    lines: List[str] = []
    header = "      " + "".join(f"  x={x:<4}" for x in range(nx))
    lines.append(header)
    for y in range(ny):
        cells = []
        for x in range(nx):
            tag = f"{x},{y}"
            if (x, y) in highlight_pes:
                cell = f"[#{tag}#]"
            elif faulty == ("RTR", (x, y)):
                cell = f"[X{tag}X]"
            else:
                cell = f"[ {tag} ]"
            cells.append(f"{cell:<8}")
        label = f"y={y:<3}"
        row = f"{label} " + "".join(cells)
        marks = []
        if faulty is not None and faulty[0] == "XB" and faulty[1] == 0 and faulty[2] == (y,):
            marks.append("X-XB FAULTY")
        if sxb_line == (y,):
            marks.append("<- S-XB row")
        if dxb_line == (y,) and dxb_line != sxb_line:
            marks.append("<- D-XB row")
        elif dxb_line == (y,) and dxb_line == sxb_line and sxb_line is not None:
            marks[-1] = "<- S-XB = D-XB row"
        if marks:
            row += "   " + " ".join(marks)
        lines.append(row)
    col_marks = []
    if faulty is not None and faulty[0] == "XB" and faulty[1] == 1:
        col_marks.append(f"Y-XB at x={faulty[2][0]} FAULTY")
    if col_marks:
        lines.append("      " + "; ".join(col_marks))
    return "\n".join(lines)


def _fmt_element(el: ElementId) -> str:
    kind = element_kind(el)
    if kind is ElementKind.PE:
        return f"PE{el[1]}"
    if kind is ElementKind.RTR:
        return f"RTR{el[1]}"
    dim = "XY Z"[el[1]] if el[1] < 3 else str(el[1])
    return f"{dim}-XB{el[2]}"


def render_route(tree: RouteTree, dest: Coord) -> str:
    """One path of a route tree as ``PE(0,0) -n-> RTR(0,0) -d-> ...`` where
    the arrow letter is the RC bit carried on that hop (n/q/b/d)."""
    chans = tree.path_to(dest)
    parts = [_fmt_element(chans[0].src)]
    for c in chans:
        parts.append(f"-{_RC_MARK[tree.rc_on[c]]}-> {_fmt_element(c.dst)}")
    return " ".join(parts)


def render_tree(tree: RouteTree, max_lines: int = 64) -> str:
    """The whole route tree, indented by depth."""
    lines: List[str] = [f"flow {tree.flow}:"]

    def walk(chan, depth: int) -> None:
        if len(lines) > max_lines:
            return
        mark = _RC_MARK[tree.rc_on[chan]]
        lines.append(
            "  " * depth + f"-{mark}-> {_fmt_element(chan.dst)}"
        )
        for child in tree.children[chan]:
            walk(child, depth + 1)

    lines.append(f"  {_fmt_element(tree.root.src)}")
    walk(tree.root, 1)
    if len(lines) > max_lines:
        lines = lines[:max_lines] + ["  ... (truncated)"]
    return "\n".join(lines)


def render_route_grid(
    topo: MDCrossbar, tree: RouteTree, dest: Coord
) -> str:
    """Overlay one route on the 2D grid: each visited PE/router cell shows
    its step number along the path (0 = source)."""
    if topo.num_dims != 2:
        raise ValueError("render_route_grid draws 2D networks only")
    steps: Dict[Coord, int] = {}
    order = 0
    for el in tree.elements_to(dest):
        if element_kind(el) is ElementKind.RTR and el[1] not in steps:
            steps[el[1]] = order
            order += 1
    nx, ny = topo.shape
    lines = ["      " + "".join(f"  x={x:<4}" for x in range(nx))]
    for y in range(ny):
        cells = []
        for x in range(nx):
            if (x, y) in steps:
                cells.append(f"[ {steps[(x, y)]:^3} ]")
            else:
                cells.append("[  .  ]")
            cells[-1] = f"{cells[-1]:<8}"
        lines.append(f"y={y:<3} " + "".join(cells))
    lines.append("(numbers: router visit order along the route; . = untouched)")
    return "\n".join(lines)


def render_rc_legend() -> str:
    return (
        "route-change (RC) bit legend: "
        + ", ".join(f"{m}={rc.name.lower()}" for rc, m in _RC_MARK.items())
    )
