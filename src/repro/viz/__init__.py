"""Text rendering of networks, routes and figures."""

from .ascii_grid import (
    render_grid,
    render_rc_legend,
    render_route,
    render_route_grid,
    render_tree,
)

__all__ = [
    "render_grid",
    "render_rc_legend",
    "render_route",
    "render_route_grid",
    "render_tree",
]
