"""Text rendering of networks, routes, figures and utilization heat."""

from .ascii_grid import (
    render_grid,
    render_rc_legend,
    render_route,
    render_route_grid,
    render_tree,
)
from .heatmap import (
    heat_symbol,
    render_heat_grid,
    render_router_heatmap,
    router_heat,
)

__all__ = [
    "render_grid",
    "render_rc_legend",
    "render_route",
    "render_route_grid",
    "render_tree",
    "heat_symbol",
    "render_heat_grid",
    "render_router_heatmap",
    "router_heat",
]
