"""ASCII heatmaps of per-channel utilization (the Fig. 5/6 contention
pictures).

:func:`render_heat_grid` renders any per-PE scalar field in [0, 1] as a
digit grid (0-9, ``.`` for exactly zero); :func:`render_router_heatmap`
derives that field from per-channel busy fractions by averaging the
channels touching each PE's router.  Hotspots -- the S-XB row under
broadcast storms, the D-XB detour concentration around a fault -- stand
out as bands of high digits.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from ..core.coords import Coord
from ..topology.base import Topology


def heat_symbol(value: float) -> str:
    """One character for a [0, 1] heat value: ``.`` for zero, else 0-9."""
    if value <= 0:
        return "."
    return str(min(9, int(value * 10)))


def render_heat_grid(
    shape: Sequence[int], values: Mapping[Coord, float]
) -> str:
    """Digit grid of a per-PE scalar field (2D shapes only).

    Row ``y`` of the output is lattice row ``y``; missing coordinates
    render as zero heat.
    """
    if len(shape) != 2:
        raise ValueError("heat grids render 2D networks only")
    nx, ny = shape
    rows = []
    for y in range(ny):
        rows.append(
            " ".join(heat_symbol(values.get((x, y), 0.0)) for x in range(nx))
        )
    return "\n".join(rows)


def router_heat(
    topo: Topology, busy_fraction: Mapping[int, float]
) -> Dict[Coord, float]:
    """Mean busy fraction of the channels touching each PE's router."""
    heat: Dict[Coord, float] = {}
    for coord in topo.node_coords():
        rtr_el = ("RTR", coord)
        cids = [c.cid for c in topo.channels_from(rtr_el)] + [
            c.cid for c in topo.channels_to(rtr_el)
        ]
        if not cids:
            heat[coord] = 0.0
            continue
        heat[coord] = sum(busy_fraction.get(cid, 0.0) for cid in cids) / len(
            cids
        )
    return heat


def render_router_heatmap(
    topo: Topology, busy_fraction: Mapping[int, float]
) -> str:
    """Per-router utilization heatmap for a 2D network."""
    return render_heat_grid(topo.shape, router_heat(topo, busy_fraction))


def render_histogram_bars(
    labels: Sequence[str], counts: Sequence[int], width: int = 40
) -> Tuple[str, ...]:
    """Shared bar renderer for label/count rows (used by reports)."""
    peak = max(counts) if counts else 0
    peak = peak or 1
    return tuple(
        f"{label:>10} {count:>8} {'#' * round(width * count / peak)}"
        for label, count in zip(labels, counts)
    )
