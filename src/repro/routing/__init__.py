"""Pluggable routing schemes (see DESIGN.md section 5g).

Importing this package populates the scheme registry:

==============  ============  ====  =====================================
scheme          network kind  VCs   relation
==============  ============  ====  =====================================
``dxb``         md-crossbar   1     the paper: DOR + D-XB detour + S-XB
``adaptive``    md-crossbar   2     Duato minimal-adaptive, DOR escape
``hyperx_ft``   md-crossbar   2     fault-tolerant HyperX (2404.04315)
``mesh``        mesh          1     dimension-order routing
``torus``       torus         2     dateline dimension-order routing
``hypercube``   hypercube     1     e-cube routing
``fullmesh_novc``  fullmesh   1     single-VC valley routing (2510.14730)
==============  ============  ====  =====================================
"""

from .base import (
    RoutingScheme,
    SchemeAudit,
    SchemeRouteRelation,
    find_vc_cycle,
)
from .registry import (
    DEFAULT_SCHEME_FOR_KIND,
    default_scheme,
    get_scheme,
    make_scheme,
    register_scheme,
    resolve_scheme,
    scheme_names,
)

# importing the scheme modules registers them
from .adaptive import AdaptiveScheme
from .baselines import HypercubeScheme, MeshScheme, TorusScheme
from .dxb import DXBScheme
from .fullmesh import FullMeshNoVCScheme
from .hyperx import HyperXFTScheme

__all__ = [
    "AdaptiveScheme",
    "DEFAULT_SCHEME_FOR_KIND",
    "DXBScheme",
    "FullMeshNoVCScheme",
    "HypercubeScheme",
    "HyperXFTScheme",
    "MeshScheme",
    "RoutingScheme",
    "SchemeAudit",
    "SchemeRouteRelation",
    "TorusScheme",
    "default_scheme",
    "find_vc_cycle",
    "get_scheme",
    "make_scheme",
    "register_scheme",
    "resolve_scheme",
    "scheme_names",
]
