"""The adaptive comparator as a registered plug-in: ``adaptive``.

Duato-style minimal fully-adaptive routing on the fault-free MD crossbar
(:class:`~repro.sim.adaptive.AdaptiveMDAdapter`): two virtual channels,
VC 1 fully adaptive, VC 0 a strict dimension-order escape lane, grant
semantics "first free of [adaptive..., escape]" (``policy="any"``).

CDG contribution: the adaptive lane is cyclic by construction, so the
scheme contributes only the *escape restriction* -- the last (escape)
branch of every ``"any"`` decision.  Acyclicity of that restriction plus
the escape branch always being in the wait set is Duato's deadlock-
freedom condition.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..sim.adapter import SimDecision
from ..sim.adaptive import AdaptiveMDAdapter
from ..topology.base import ElementId, Topology
from ..topology.mdcrossbar import MDCrossbar
from .base import RoutingScheme
from .registry import register_scheme


class AdaptiveScheme(RoutingScheme):
    """Minimal fully-adaptive MD crossbar routing (escape on VC 0)."""

    name = "adaptive"
    kind = "md-crossbar"
    supports_faults = False
    doctor_shape = (3, 3)
    bench_shape = (4, 3)

    def build(self) -> Tuple[Topology, AdaptiveMDAdapter, int]:
        topo = MDCrossbar(self.shape)
        adapter = AdaptiveMDAdapter(topo)
        return topo, adapter, adapter.required_vcs

    def cdg_branches(self, decision: SimDecision) -> Sequence[Tuple[ElementId, int]]:
        # escape restriction: the last candidate of an adaptive decision
        return decision.outputs[-1:]


register_scheme(AdaptiveScheme)
