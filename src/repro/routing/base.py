"""The :class:`RoutingScheme` protocol: routing as a first-class plug-in.

A *scheme* bundles everything the rest of the repository needs to know
about one routing algorithm on one network:

* an **identity string** (:attr:`RoutingScheme.name`) that keys the scheme
  registry, the ``RunSpec`` cache keys and the adapter route memo;
* the **network kind** it routes (:attr:`RoutingScheme.kind`, matching
  ``RunSpec.kind``) and the topology instance it builds;
* a **per-element decision function** -- the simulator adapter returned by
  :meth:`build` (``adapter.decide(element, in_from, in_vc, header)``);
* **static route enumeration** (:meth:`static_route` /
  :meth:`static_routes`): the path a packet takes on an idle network,
  used for path-overhead analysis and static delivery checks;
* a **CDG edge contribution** (:meth:`dependency_edges`): the waiting
  graph over ``(channel, vc)`` resources whose acyclicity is the scheme's
  deadlock-freedom argument, checked by :meth:`check_cycle_free`.

Deterministic schemes contribute their full routing relation to the CDG.
Adaptive schemes with an escape lane (Duato construction) override
:meth:`cdg_branches` to contribute the *escape restriction* only: the
adaptive lane is cyclic by design, and deadlock freedom rests on the
escape subnetwork being acyclic and always present in the wait set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.config import ConfigError
from ..core.coords import Coord
from ..core.packet import RC, Header
from ..core.switch_logic import Decision
from ..sim.adapter import SimDecision
from ..topology.base import Channel, ElementId, ElementKind, Topology, element_kind, pe

#: a CDG resource: one virtual channel of one physical channel
VCKey = Tuple[int, int]  # (channel cid, vc)


@dataclass(frozen=True)
class SchemeAudit:
    """Outcome of a scheme's deadlock-freedom self-check."""

    scheme: str
    cycle_free: bool
    num_edges: int
    detail: str = ""

    def row(self) -> str:
        verdict = "acyclic" if self.cycle_free else "CYCLIC"
        extra = f" -- {self.detail}" if self.detail else ""
        return f"{self.scheme}: CDG {verdict} ({self.num_edges} edges){extra}"


def find_vc_cycle(edges: Iterable[Tuple[VCKey, VCKey]]) -> Optional[List[VCKey]]:
    """A cycle in the (channel, vc) dependency graph, or ``None``.

    Iterative three-colour DFS; no library dependency so the check runs
    identically in every worker.
    """
    adj: Dict[VCKey, List[VCKey]] = {}
    for a, b in edges:
        adj.setdefault(a, []).append(b)
    for succs in adj.values():
        succs.sort()
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[VCKey, int] = {}
    for root in sorted(adj):
        if colour.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[VCKey, int]] = [(root, 0)]
        path: List[VCKey] = []
        colour[root] = GREY
        path.append(root)
        while stack:
            node, idx = stack[-1]
            succs = adj.get(node, [])
            if idx < len(succs):
                stack[-1] = (node, idx + 1)
                nxt = succs[idx]
                state = colour.get(nxt, WHITE)
                if state == GREY:
                    return path[path.index(nxt):] + [nxt]
                if state == WHITE:
                    colour[nxt] = GREY
                    path.append(nxt)
                    stack.append((nxt, 0))
            else:
                colour[node] = BLACK
                path.pop()
                stack.pop()
    return None


class RoutingScheme:
    """Base class for pluggable routing schemes.

    Subclasses set the class attributes, implement :meth:`build`, and
    register themselves with :func:`repro.routing.registry.register_scheme`.
    Construction takes the network shape and the standing fault set; the
    instance owns the topology and a simulator adapter.
    """

    #: registry identity; also stored in ``RunSpec.scheme`` and cache keys
    name: str = ""
    #: the ``RunSpec.kind`` network this scheme routes
    kind: str = ""
    #: whether the scheme models standing faults
    supports_faults: bool = False
    #: small shape used by ``repro doctor``'s routing health section
    doctor_shape: Tuple[int, ...] = (3, 3)
    #: shape used by the cross-scheme shoot-out bench
    bench_shape: Tuple[int, ...] = (4, 3)

    def __init__(self, shape, faults=()) -> None:
        self.shape: Tuple[int, ...] = (shape,) if isinstance(shape, int) else tuple(shape)
        self.faults = tuple(faults)
        if self.faults and not self.supports_faults:
            raise ConfigError(
                f"routing scheme {self.name!r} does not model faults; "
                "fault tolerance is the deterministic facility's job"
            )
        self.topo, self.adapter, self.num_vcs = self.build()

    # ------------------------------------------------------------ building
    def build(self) -> Tuple[Topology, object, int]:
        """(topology, simulator adapter, virtual channels per channel)."""
        raise NotImplementedError

    # ------------------------------------------------------- route relation
    def dead_nodes(self) -> Tuple[Coord, ...]:
        """Node coordinates disconnected by the standing faults."""
        logic = getattr(self.adapter, "logic", None)
        if logic is None:
            return ()
        return tuple(logic.registry.dead_pes())

    def live_nodes(self) -> List[Coord]:
        dead = set(self.dead_nodes())
        return [c for c in self.topo.node_coords() if c not in dead]

    def route_pairs(self) -> Iterable[Tuple[Coord, Coord]]:
        """All deliverable point-to-point (source, dest) pairs."""
        live = self.live_nodes()
        for s in live:
            for d in live:
                if s != d:
                    yield s, d

    def static_route(self, source: Coord, dest: Coord) -> List[Tuple[Channel, int]]:
        """The preferred-branch path on an idle network.

        Returns the traversed ``(channel, vc)`` sequence from the source
        PE's injection channel to the destination PE's ejection channel.
        For ``policy="any"`` decisions the first candidate is the one the
        grant phase takes when every output is free, so this is exactly
        the idle-network path.
        """
        header = Header(source=tuple(source), dest=tuple(dest))
        chan = self.topo.injection_channel(tuple(source))
        path: List[Tuple[Channel, int]] = [(chan, 0)]
        el = chan.dst
        in_from, in_vc = chan.src, 0
        limit = 4 * self.topo.num_channels + 16
        for _ in range(limit):
            d = self.adapter.decide(el, in_from, in_vc, header)
            if d.drop or not d.outputs:
                raise RuntimeError(
                    f"scheme {self.name!r} dropped {source}->{dest} at {el}"
                )
            out_el, out_vc = d.outputs[0]
            path.append((self.topo.channel(el, out_el), out_vc))
            header = header.with_rc(d.rc)
            if element_kind(out_el) is ElementKind.PE:
                if out_el != pe(tuple(dest)):
                    raise RuntimeError(
                        f"scheme {self.name!r} delivered {source}->{dest} "
                        f"at the wrong PE {out_el}"
                    )
                return path
            in_from, in_vc, el = el, out_vc, out_el
        raise RuntimeError(f"scheme {self.name!r} looped routing {source}->{dest}")

    def static_routes(self) -> Dict[Tuple[Coord, Coord], List[Tuple[Channel, int]]]:
        """Preferred-branch routes for every deliverable pair."""
        return {(s, d): self.static_route(s, d) for s, d in self.route_pairs()}

    # ------------------------------------------------------ CDG contribution
    def cdg_branches(self, decision: SimDecision) -> Sequence[Tuple[ElementId, int]]:
        """Which decision branches contribute dependency edges.

        Default: all of them (the full routing relation).  Adaptive
        schemes with an escape lane override this to the escape branch
        (``outputs[-1]`` under the ``policy="any"`` convention).
        """
        return decision.outputs

    def dependency_edges(self) -> Set[Tuple[VCKey, VCKey]]:
        """Edges of the (channel, vc) dependency graph.

        Breadth-first expansion of :meth:`cdg_branches` from every
        (router, destination) state -- every router is a potential
        source, and a packet that reached a router adaptively then
        behaves like a fresh injection there, so this covers mid-route
        states as well.
        """
        edges: Set[Tuple[VCKey, VCKey]] = set()
        for s, d in self.route_pairs():
            self._walk_pair(s, d, edges)
        return edges

    def _walk_pair(
        self, source: Coord, dest: Coord, edges: Set[Tuple[VCKey, VCKey]]
    ) -> None:
        chan = self.topo.injection_channel(tuple(source))
        start_header = Header(source=tuple(source), dest=tuple(dest))
        # state: (element, in_from, in_vc, rc); fully determines the
        # holding resource (channel(in_from, element), in_vc)
        stack = [(chan.dst, chan.src, 0, start_header.rc)]
        seen = {stack[0]}
        limit = 16 * self.topo.num_channels + 64
        while stack:
            el, in_from, in_vc, rc = stack.pop()
            if limit <= 0:  # pragma: no cover - defensive loop guard
                raise RuntimeError(
                    f"scheme {self.name!r} dependency walk diverged "
                    f"for {source}->{dest}"
                )
            limit -= 1
            held: VCKey = (self.topo.channel(in_from, el).cid, in_vc)
            d = self.adapter.decide(el, in_from, in_vc, start_header.with_rc(rc))
            if d.drop:
                continue
            for out_el, out_vc in self.cdg_branches(d):
                nxt: VCKey = (self.topo.channel(el, out_el).cid, out_vc)
                edges.add((held, nxt))
                if element_kind(out_el) is ElementKind.PE:
                    continue
                state = (out_el, el, out_vc, d.rc)
                if state not in seen:
                    seen.add(state)
                    stack.append(state)

    def check_cycle_free(self) -> SchemeAudit:
        """Run the scheme's deadlock-freedom self-check."""
        edges = self.dependency_edges()
        cycle = find_vc_cycle(edges)
        detail = ""
        if cycle is not None:
            detail = "cycle through " + " -> ".join(
                f"c{cid}/vc{vc}" for cid, vc in cycle
            )
        return SchemeAudit(
            scheme=self.name,
            cycle_free=cycle is None,
            num_edges=len(edges),
            detail=detail,
        )

    # ----------------------------------------- bridge to the core analyses
    def route_relation(self) -> "SchemeRouteRelation":
        """The scheme's routing relation in the shape the static analyses
        (:func:`repro.core.routes.compute_route`,
        :func:`repro.core.cdg.build_cdg`) consume: per-element ``decide``
        returning a core :class:`~repro.core.switch_logic.Decision` plus a
        deliverability predicate.  Channel-level (virtual channels
        elided); the preferred branch of adaptive decisions is followed.
        """
        return SchemeRouteRelation(self)

    def check_deliverable(self, source: Coord, dest: Coord) -> None:
        """Raise if the pair cannot be served (either endpoint dead)."""
        logic = getattr(self.adapter, "logic", None)
        if logic is not None and hasattr(logic, "check_deliverable"):
            logic.check_deliverable(tuple(source), tuple(dest))

    def describe(self) -> str:
        return (
            f"{self.name} [{self.kind}] shape={'x'.join(map(str, self.shape))} "
            f"vcs={self.num_vcs}"
        )


class SchemeRouteRelation:
    """Adapter: a scheme's per-element decisions as a core route relation.

    Mirrors the duck type of :class:`~repro.core.switch_logic.SwitchLogic`
    that :func:`repro.core.routes.compute_route` and
    :func:`repro.core.cdg.build_cdg` rely on (``decide`` +
    ``check_deliverable``), so the static analyses run against any
    registered scheme.  Virtual channels are elided: the element-level
    path geometry of every scheme here is vc-independent.
    """

    def __init__(self, scheme: RoutingScheme) -> None:
        self.scheme = scheme
        self.topo = scheme.topo

    def decide(self, el: ElementId, in_from: ElementId, header: Header) -> Decision:
        d = self.scheme.adapter.decide(el, in_from, 0, header)
        outputs = d.outputs[:1] if d.policy == "any" else d.outputs
        return Decision(
            outputs=tuple(out_el for out_el, _vc in outputs),
            rc=d.rc,
            serialize=d.serialize,
            drop=d.drop,
        )

    def check_deliverable(self, source: Coord, dest: Coord) -> None:
        self.scheme.check_deliverable(source, dest)

    def dead_nodes(self) -> Tuple[Coord, ...]:
        return self.scheme.dead_nodes()


#: RC is re-exported for scheme implementations
__all__ = [
    "RC",
    "RoutingScheme",
    "SchemeAudit",
    "SchemeRouteRelation",
    "VCKey",
    "find_vc_cycle",
]
