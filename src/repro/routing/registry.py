"""The routing-scheme registry.

Schemes register by identity string at import time
(``repro.routing.__init__`` imports every scheme module, so importing the
package populates the registry).  Everything that selects a scheme --
``build_network``, the CLI ``--scheme`` flag, the doctor's routing health
section, the shoot-out bench -- resolves names here, and an unknown name
raises :class:`~repro.core.config.ConfigError` with the registered
alternatives spelled out.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from ..core.config import ConfigError
from .base import RoutingScheme

_SCHEMES: Dict[str, Type[RoutingScheme]] = {}

#: scheme used when a spec names a network kind but no scheme
DEFAULT_SCHEME_FOR_KIND: Dict[str, str] = {}


def register_scheme(cls: Type[RoutingScheme], default_for_kind: bool = False):
    """Class decorator/registrar: add ``cls`` under its ``name``."""
    if not cls.name or not cls.kind:
        raise ValueError(f"{cls.__name__} must set both .name and .kind")
    if cls.name in _SCHEMES and _SCHEMES[cls.name] is not cls:
        raise ValueError(f"routing scheme {cls.name!r} registered twice")
    _SCHEMES[cls.name] = cls
    if default_for_kind:
        DEFAULT_SCHEME_FOR_KIND[cls.kind] = cls.name
    return cls


def scheme_names() -> List[str]:
    """All registered scheme identities, sorted."""
    return sorted(_SCHEMES)


def get_scheme(name: str) -> Type[RoutingScheme]:
    """The scheme class registered under ``name``."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise ConfigError(
            f"unknown routing scheme {name!r}; registered schemes: "
            + ", ".join(scheme_names())
        ) from None


def make_scheme(name: str, shape, faults=()) -> RoutingScheme:
    """Instantiate the scheme ``name`` on ``shape`` with standing faults."""
    return get_scheme(name)(shape, faults=faults)


def default_scheme(kind: str) -> str:
    """The scheme a bare network kind resolves to."""
    try:
        return DEFAULT_SCHEME_FOR_KIND[kind]
    except KeyError:
        raise ConfigError(
            f"unknown network kind {kind!r}; known kinds: "
            + ", ".join(sorted(DEFAULT_SCHEME_FOR_KIND))
        ) from None


def resolve_scheme(kind: Optional[str], scheme: str = "") -> Tuple[str, str]:
    """Resolve a (kind, scheme) pair where either side may be omitted.

    * both empty: the paper's network and scheme (``md-crossbar``/``dxb``);
    * scheme only: the scheme implies its network kind;
    * kind only: the kind's default scheme;
    * both: they must agree (a scheme routes exactly one kind).
    """
    if not scheme:
        kind = kind or "md-crossbar"
        return kind, default_scheme(kind)
    cls = get_scheme(scheme)
    if kind and kind != cls.kind:
        raise ConfigError(
            f"routing scheme {scheme!r} routes the {cls.kind!r} network, "
            f"not {kind!r}"
        )
    return cls.kind, scheme
