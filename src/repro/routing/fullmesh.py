"""Single-VC deadlock-free full-mesh routing: ``fullmesh_novc``.

Valley-free misrouting on the fully connected network
(:class:`~repro.topology.fullcrossbar.FullMesh`), after the VC-free
deadlock-free full-mesh routing construction of arXiv 2510.14730: one
virtual channel, minimal-first adaptivity, and an index-ordering rule
that makes the channel dependency graph acyclic without any VC split.

Rules, for a packet at node ``s`` addressed to ``d``:

* at the **source router** the wait set is ``policy="any"`` over the
  direct link ``s -> d`` first, then every *valley* intermediate ``v``
  with ``v < s`` **and** ``v < d`` (index order), skipping faulty nodes;
* at a **non-source router** (one misroute taken) the packet goes
  directly to ``d`` -- at most one misroute, so no livelock.

Deadlock-freedom on one VC: the only dependency between router-router
channels is first-hop ``(s -> v)`` waiting on second-hop ``(v -> d)``,
which the valley rule admits only when ``v < s`` and ``v < d``.  Two such
edges cannot chain -- ``(a -> b) -> (b -> c)`` needs ``b < c`` while
``(b -> c) -> (c -> e)`` needs ``c < b`` -- so every path in the CDG has
length at most one and the graph is trivially acyclic; the generic
(channel, vc) cycle check verifies it mechanically.

Fault model: router faults only (there is no crossbar to break; the
directly attached PE drops out exactly as on the MD crossbar).  A faulty
node is skipped as a valley and excluded from traffic; every surviving
pair still has its direct link, so all packets deliver under the
single-fault enumeration.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.config import ConfigError
from ..core.coords import Coord
from ..core.fault import Fault, FaultKind
from ..core.packet import RC, Header
from ..core.switch_logic import RoutingError, UnreachableDestinationError
from ..sim.adapter import SimDecision
from ..topology.base import ElementId, ElementKind, Topology, element_kind, pe, rtr
from ..topology.fullcrossbar import FullMesh
from .base import RoutingScheme
from .registry import register_scheme


class _FullMeshRegistry:
    """Duck-typed fault registry: the few queries the engine and the
    scheme layer make (`router_is_faulty`, `dead_pes`, `faults`)."""

    def __init__(self, faults: Tuple[Fault, ...]) -> None:
        self.faults = tuple(faults)
        self._dead = frozenset(f.coord for f in self.faults)

    def router_is_faulty(self, coord: Coord) -> bool:
        return tuple(coord) in self._dead

    def dead_pes(self) -> Tuple[Coord, ...]:
        return tuple(sorted(self._dead))


class _FullMeshLogic:
    """Duck-typed ``adapter.logic``: registry access for the engine's
    live-node computation plus the deliverability predicate."""

    def __init__(self, registry: _FullMeshRegistry) -> None:
        self.registry = registry

    def check_deliverable(self, source: Coord, dest: Coord) -> None:
        if self.registry.router_is_faulty(source):
            raise UnreachableDestinationError(
                f"source PE{tuple(source)} is disconnected (its router is faulty)"
            )
        if self.registry.router_is_faulty(dest):
            raise UnreachableDestinationError(
                f"destination PE{tuple(dest)} is disconnected (its router is faulty)"
            )


class FullMeshAdapter:
    """Valley-free single-VC routing on the full mesh."""

    required_vcs = 1

    def __init__(self, topo: FullMesh, logic: _FullMeshLogic) -> None:
        self.topo = topo
        self.logic = logic

    def decide(
        self, element: ElementId, in_from: ElementId, in_vc: int, header: Header
    ) -> SimDecision:
        if header.rc is not RC.NORMAL:
            raise RoutingError(
                "full-mesh routing carries point-to-point traffic only "
                f"(got RC={header.rc.name})"
            )
        if element_kind(element) is not ElementKind.RTR:
            raise RoutingError(f"element {element} does not route packets")
        c: Coord = element[1]
        if c == header.dest:
            return SimDecision(outputs=((pe(c), 0),), rc=RC.NORMAL)
        if element_kind(in_from) is not ElementKind.PE:
            # one misroute maximum: a relayed packet goes straight home
            return SimDecision(outputs=((rtr(header.dest), 0),), rc=RC.NORMAL)
        s, d = c[0], header.dest[0]
        outputs: List[Tuple[ElementId, int]] = [(rtr(header.dest), 0)]
        registry = self.logic.registry
        for v in range(min(s, d)):
            if not registry.router_is_faulty((v,)):
                outputs.append((rtr((v,)), 0))
        if len(outputs) == 1:
            return SimDecision(outputs=tuple(outputs), rc=RC.NORMAL)
        return SimDecision(outputs=tuple(outputs), rc=RC.NORMAL, policy="any")


class FullMeshNoVCScheme(RoutingScheme):
    """VC-free deadlock-free valley routing on the full mesh."""

    name = "fullmesh_novc"
    kind = "fullmesh"
    supports_faults = True
    doctor_shape = (5,)
    bench_shape = (6,)

    def build(self) -> Tuple[Topology, FullMeshAdapter, int]:
        n = self.shape[0] if len(self.shape) == 1 else None
        if n is None:
            raise ConfigError(
                f"the full mesh is one-dimensional; got shape {self.shape}"
            )
        for f in self.faults:
            if f.kind is not FaultKind.ROUTER:
                raise ConfigError(
                    "the full mesh has no crossbar switches; only router "
                    f"faults are meaningful (got {f})"
                )
        topo = FullMesh(n)
        for f in self.faults:
            f.validate(topo)
        logic = _FullMeshLogic(_FullMeshRegistry(self.faults))
        adapter = FullMeshAdapter(topo, logic)
        return topo, adapter, adapter.required_vcs


register_scheme(FullMeshNoVCScheme, default_for_kind=True)
