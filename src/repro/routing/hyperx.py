"""Fault-tolerant HyperX routing: ``hyperx_ft``.

The multi-dimensional crossbar *is* a HyperX: each dimension is an
all-to-all (the shared crossbar plays the role of HyperX's per-dimension
clique).  Following the high-performance fault-tolerant HyperX routing
recipe (arXiv 2404.04315), the scheme combines

* a **minimal adaptive lane** (VC 1): at every router a NORMAL packet may
  hop in *any* dimension where it still differs from the destination,
  provided that dimension's crossbar and the exit router are locally
  known healthy (the fault-aware candidate filter); and
* a **fault-tolerant escape lane** (VC 0): the paper's deterministic
  relation (:class:`~repro.core.switch_logic.SwitchLogic` -- dimension
  order plus the D-XB detour), which is itself proven deadlock-free and
  delivers under every single-fault placement.

Grant semantics are ``policy="any"`` with the escape branch last, so a
blocked packet always holds the escape option in its wait set: Duato's
condition with the *detour-capable* relation as the escape subnetwork.
Two invariants keep the escape argument intact:

* a packet whose RC leaves NORMAL (a detour leg) runs *entirely* on the
  escape lane -- the detour walk is deterministic state the adaptive lane
  must not fork; and
* when the escape decision itself rewrites RC (detour start at a router
  whose first-dimension crossbar is faulty), the decision is issued
  escape-only: a ``SimDecision`` carries one RC for all branches, so
  mixing a DETOUR escape with NORMAL adaptive candidates would corrupt
  whichever branch the grant picks.

Point-to-point traffic only, like the adaptive comparator.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.config import make_config
from ..core.coords import Coord, point_on_line
from ..core.packet import RC, Header
from ..core.switch_logic import SwitchLogic
from ..sim.adapter import SimDecision
from ..topology.base import ElementId, ElementKind, Topology, element_kind, pe, rtr
from ..topology.mdcrossbar import MDCrossbar
from .base import RoutingScheme
from .registry import register_scheme

#: virtual-channel roles (same convention as the adaptive comparator)
ESCAPE_VC = 0
ADAPTIVE_VC = 1


class HyperXFTAdapter:
    """Adaptive-with-escape fault-tolerant routing for the MD crossbar."""

    required_vcs = 2

    def __init__(self, logic: SwitchLogic) -> None:
        self.logic = logic
        self.topo: MDCrossbar = logic.topo

    def _escape(self, d) -> SimDecision:
        """A SwitchLogic decision mapped onto the escape lane."""
        return SimDecision(
            outputs=tuple((el, ESCAPE_VC) for el in d.outputs),
            rc=d.rc,
            serialize=d.serialize,
            drop=d.drop,
        )

    def decide(
        self, element: ElementId, in_from: ElementId, in_vc: int, header: Header
    ) -> SimDecision:
        kind = element_kind(element)
        if kind is ElementKind.RTR and header.rc is RC.NORMAL:
            return self._route_router(element, in_from, header)
        if kind is ElementKind.XB and header.rc is RC.NORMAL and in_vc == ADAPTIVE_VC:
            # adaptive lane through the crossbar: minimal exit; the router
            # admitted this dimension only with a healthy exit router
            _, k, line = element
            target = rtr(point_on_line(k, line, header.dest[k]))
            return SimDecision(outputs=((target, ADAPTIVE_VC),), rc=RC.NORMAL)
        # everything else -- detour legs, escape-lane crossbar transits --
        # is the deterministic facility's business
        return self._escape(self.logic.decide(element, in_from, header))

    def _route_router(
        self, element: ElementId, in_from: ElementId, h: Header
    ) -> SimDecision:
        c: Coord = element[1]
        if c == h.dest:
            return SimDecision(outputs=((pe(c), ESCAPE_VC),), rc=RC.NORMAL)
        esc = self.logic.decide(element, in_from, h)
        if esc.rc is not RC.NORMAL or esc.drop:
            # detour start: escape-only (one RC per decision, see module doc)
            return self._escape(esc)
        registry = self.logic.registry
        candidates: List[Tuple[ElementId, int]] = []
        for k in self.logic.config.order:
            if c[k] == h.dest[k]:
                continue
            xb_el = self.topo.crossbar_of(c, k)
            if registry.is_faulty(xb_el):
                continue
            exit_coord = c[:k] + (h.dest[k],) + c[k + 1:]
            if registry.router_is_faulty(exit_coord):
                continue
            candidates.append((xb_el, ADAPTIVE_VC))
        if not candidates:
            return self._escape(esc)
        candidates.extend((el, ESCAPE_VC) for el in esc.outputs)
        return SimDecision(outputs=tuple(candidates), rc=RC.NORMAL, policy="any")


class HyperXFTScheme(RoutingScheme):
    """Minimal-adaptive HyperX with the paper's relation as escape."""

    name = "hyperx_ft"
    kind = "md-crossbar"
    supports_faults = True
    doctor_shape = (3, 3)
    bench_shape = (4, 3)

    def build(self) -> Tuple[Topology, HyperXFTAdapter, int]:
        topo = MDCrossbar(self.shape)
        logic = SwitchLogic(topo, make_config(self.shape, faults=tuple(self.faults)))
        adapter = HyperXFTAdapter(logic)
        return topo, adapter, adapter.required_vcs

    def cdg_branches(self, decision: SimDecision) -> Sequence[Tuple[ElementId, int]]:
        # escape restriction: the deterministic fault-tolerant relation on
        # VC 0, whose acyclicity the tiered paper analysis establishes
        if decision.policy == "any":
            return decision.outputs[-1:]
        return decision.outputs


register_scheme(HyperXFTScheme)
