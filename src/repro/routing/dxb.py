"""The paper's scheme as a registered plug-in: ``dxb``.

Deterministic dimension-order routing with the D-XB detour facility and
the S-XB serialized broadcast (paper Sections 3-5).  This module adds no
routing rules of its own: it builds exactly the objects the repository
has always built -- :class:`~repro.core.switch_logic.SwitchLogic` wrapped
by :class:`~repro.sim.adapter.MDCrossbarAdapter` on one virtual channel --
so the extracted scheme is byte-identical to the pre-refactor wiring
(guarded by ``tests/routing/test_dxb_parity.py``).

The deadlock-freedom self-check defers to the full tiered CDG analysis
(:func:`repro.core.cdg.analyze_deadlock_freedom`), which also covers the
broadcast trees and the S-XB serialization barrier that the generic
unicast walk cannot see.
"""

from __future__ import annotations

from typing import Tuple

from ..core.config import make_config
from ..core.switch_logic import SwitchLogic
from ..sim.adapter import MDCrossbarAdapter
from ..topology.base import Topology
from ..topology.mdcrossbar import MDCrossbar
from .base import RoutingScheme, SchemeAudit
from .registry import register_scheme


class DXBScheme(RoutingScheme):
    """Deterministic DOR + D-XB detour + S-XB broadcast (the paper)."""

    name = "dxb"
    kind = "md-crossbar"
    supports_faults = True
    doctor_shape = (3, 3)
    bench_shape = (4, 3)

    def build(self) -> Tuple[Topology, MDCrossbarAdapter, int]:
        topo = MDCrossbar(self.shape)
        logic = SwitchLogic(topo, make_config(self.shape, faults=tuple(self.faults)))
        return topo, MDCrossbarAdapter(logic, scheme=self.name), 1

    def route_relation(self) -> SwitchLogic:
        """The switch logic *is* the route relation (single source of
        truth shared with the static analyses)."""
        return self.adapter.logic

    def check_cycle_free(self) -> SchemeAudit:
        from ..core.cdg import analyze_deadlock_freedom

        res = analyze_deadlock_freedom(self.topo, self.adapter.logic)
        return SchemeAudit(
            scheme=self.name,
            cycle_free=res.deadlock_free,
            num_edges=res.num_edges,
            detail="" if res.deadlock_free else str(res.hazard),
        )


register_scheme(DXBScheme, default_for_kind=True)
