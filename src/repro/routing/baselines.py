"""The comparison fabrics as registered plug-ins: ``mesh``, ``torus``,
``hypercube``.

Thin wrappers over :func:`repro.baselines.make_baseline`: dimension-order
routing on the mesh, dateline virtual-channel DOR on the torus (VC 1
after the wrap crossing breaks the ring cycle), and e-cube routing on the
hypercube.  All three are deterministic, so their full routing relation
is their CDG contribution and the generic cycle check applies as-is --
for the torus the (channel, vc) resolution is what proves the dateline
split: the same physical ring is cyclic at channel level and acyclic at
(channel, vc) level.
"""

from __future__ import annotations

from typing import Tuple

from ..baselines import make_baseline
from ..topology.base import Topology
from .base import RoutingScheme
from .registry import register_scheme


class _BaselineScheme(RoutingScheme):
    supports_faults = False

    def build(self) -> Tuple[Topology, object, int]:
        return make_baseline(self.kind, self.shape)


class MeshScheme(_BaselineScheme):
    """Dimension-order routing on the 2D/ND mesh (single VC)."""

    name = "mesh"
    kind = "mesh"
    doctor_shape = (3, 3)
    bench_shape = (4, 3)


class TorusScheme(_BaselineScheme):
    """Dateline DOR on the torus (two VCs break the ring cycles)."""

    name = "torus"
    kind = "torus"
    doctor_shape = (3, 3)
    bench_shape = (4, 3)


class HypercubeScheme(_BaselineScheme):
    """E-cube routing on the hypercube (single VC).

    Shape semantics follow ``make_baseline``: the number of dimensions is
    ``len(shape)`` (each extent is 2), e.g. shape ``(2, 2, 2)`` is the
    3-cube with 8 nodes.
    """

    name = "hypercube"
    kind = "hypercube"
    doctor_shape = (2, 2, 2)
    bench_shape = (2, 2, 2)


register_scheme(MeshScheme, default_for_kind=True)
register_scheme(TorusScheme, default_for_kind=True)
register_scheme(HypercubeScheme, default_for_kind=True)
