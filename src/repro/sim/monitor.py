"""Simulation observability: time-series sampling and event capture.

:class:`SimMonitor` subscribes to the engine's public hook bus
(``hooks.on_cycle_start``) and samples occupancy counters (in-flight
packets, buffered flits, blocked grant requests, active connections,
source-queue depth) through the engine's public observability API.  The
series expose congestion build-up, the serialization plateau of broadcast
storms, and the tell-tale flatline of a deadlock.  The peaks ride on
:mod:`repro.obs` gauges, so :meth:`SimMonitor.metrics` drops straight into
the mergeable metric pipeline.

:class:`TextTrace` renders the simulator's event log (injections, grants,
drops, completions) the old ``(cycle, message)`` way; since the
metrics/tracing subsystem landed it is a thin view over a log-only
:class:`repro.obs.trace.TraceRecorder` rather than an ad-hoc buffer --
structured capture belongs to :mod:`repro.obs.trace`.

Neither observer touches simulator internals: they are ordinary hook
subscribers, exactly like user instrumentation would be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import MetricSet
from ..obs.trace import TraceRecorder
from .engine import CycleEngine


@dataclass
class Sample:
    """One snapshot of the fabric."""

    cycle: int
    in_flight: int
    buffered_flits: int
    blocked_requests: int
    active_connections: int
    queued_packets: int

    def row(self) -> str:
        return (
            f"cycle={self.cycle:<7} in_flight={self.in_flight:<4} "
            f"buffered={self.buffered_flits:<5} blocked={self.blocked_requests:<4} "
            f"connections={self.active_connections:<4} queued={self.queued_packets}"
        )


class SimMonitor:
    """Samples fabric occupancy every ``interval`` cycles.

    Attach before running::

        mon = SimMonitor(sim, interval=10)
        sim.run(...)
        print(mon.summary())
        point_metrics.merge(mon.metrics())   # optional: join the pipeline

    The monitor is a passive ``on_cycle_start`` subscriber: unlike the old
    generator-based attachment it does not keep a drained simulation
    running.
    """

    #: gauge name per sampled quantity (the Sample field it mirrors)
    GAUGES: Tuple[Tuple[str, str], ...] = (
        ("monitor.in_flight", "in_flight"),
        ("monitor.buffered_flits", "buffered_flits"),
        ("monitor.blocked_requests", "blocked_requests"),
        ("monitor.active_connections", "active_connections"),
        ("monitor.queued_packets", "queued_packets"),
    )

    def __init__(self, sim: CycleEngine, interval: int = 10) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.sim = sim
        self.interval = interval
        self.samples: List[Sample] = []
        self._metrics = MetricSet()
        sim.hooks.on_cycle_start(self._on_cycle_start)

    def detach(self) -> None:
        """Stop sampling."""
        self.sim.hooks.unsubscribe(self._on_cycle_start)

    def _on_cycle_start(self, engine: CycleEngine) -> None:
        if engine.cycle % self.interval:
            return
        sample = Sample(
            cycle=engine.cycle,
            in_flight=len(engine.in_flight),
            buffered_flits=engine.buffered_flits(),
            blocked_requests=engine.blocked_requests(),
            active_connections=len(engine.connections),
            queued_packets=engine.queued_packets(),
        )
        self.samples.append(sample)
        self._metrics.counter("monitor.samples").inc()
        for gauge_name, field_name in self.GAUGES:
            self._metrics.gauge(gauge_name).observe(
                getattr(sample, field_name)
            )

    # -- analysis ------------------------------------------------------------
    def metrics(self) -> MetricSet:
        """The sampled series as mergeable gauges (+ a sample counter)."""
        return self._metrics

    def _peak(self, gauge_name: str) -> int:
        g = self._metrics.gauge(gauge_name)
        return int(g.max) if g.max is not None else 0

    def peak_in_flight(self) -> int:
        return self._peak("monitor.in_flight")

    def peak_buffered(self) -> int:
        return self._peak("monitor.buffered_flits")

    def stalled_tail(self) -> int:
        """Number of trailing samples with blocked requests but no change
        in buffered flits: a long tail is the signature of deadlock."""
        n = 0
        prev: Optional[Sample] = None
        for s in reversed(self.samples):
            if prev is not None and (
                s.buffered_flits != prev.buffered_flits or s.blocked_requests == 0
            ):
                break
            if s.blocked_requests > 0:
                n += 1
            prev = s
        return n

    def summary(self, last: int = 5) -> str:
        lines = [
            f"{len(self.samples)} samples every {self.interval} cycles; "
            f"peak in-flight {self.peak_in_flight()}, "
            f"peak buffered flits {self.peak_buffered()}"
        ]
        lines += ["  " + s.row() for s in self.samples[-last:]]
        return "\n".join(lines)


class TextTrace:
    """Bounded ``(cycle, message)`` view of the simulator's event log.

    Subscribe through the hook bus::

        trace = TextTrace(500)
        trace.attach(sim)            # sim.hooks.on_log under the hood

    Internally this is a log-only :class:`repro.obs.trace.TraceRecorder`;
    use that class directly for structured (JSONL, multi-event) capture.
    (The legacy path -- passing ``TextTrace(limit).hook`` as the
    simulator's ``trace`` argument -- still works and feeds the same
    buffer, but new code should use :meth:`attach`.)
    """

    def __init__(self, limit: int = 1000) -> None:
        self.limit = limit
        self.recorder = TraceRecorder(events=("log",), limit=limit)

    @property
    def events(self) -> List[Tuple[int, str]]:
        return [(r["cycle"], r["message"]) for r in self.recorder.records]

    def attach(self, sim: CycleEngine) -> "TextTrace":
        """Subscribe to ``sim``'s event log; returns self for chaining."""
        self.recorder.attach(sim)
        return self

    def hook(self, cycle: int, message: str) -> None:
        self.recorder._on_log(cycle, message)

    def matching(self, needle: str) -> List[Tuple[int, str]]:
        return [(c, m) for c, m in self.events if needle in m]

    def dump(self, last: int = 50) -> str:
        items = self.events[-last:]
        return "\n".join(f"[{c:>6}] {m}" for c, m in items)


def channel_load_heatmap(
    sim: CycleEngine, busy: Dict[int, int], cycles: int
) -> str:
    """ASCII per-PE heat of adjacent channel utilization (2D networks).

    Each cell shows the mean busy fraction of the channels touching that
    PE's router, 0-9 scaled; hotspots (e.g. the S-XB row under broadcast
    load) stand out.  Rendering lives in :mod:`repro.viz.heatmap`.
    """
    from ..viz.heatmap import render_router_heatmap

    if cycles <= 0:
        busy_fraction: Dict[int, float] = {}
    else:
        busy_fraction = {cid: n / cycles for cid, n in busy.items()}
    return render_router_heatmap(sim.topo, busy_fraction)
