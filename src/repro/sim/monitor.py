"""Simulation observability: time-series sampling and event capture.

:class:`SimMonitor` subscribes to the engine's public hook bus
(``hooks.on_cycle_start``) and samples occupancy counters (in-flight
packets, buffered flits, blocked grant requests, active connections,
source-queue depth) through the engine's public observability API.  The
series expose congestion build-up, the serialization plateau of broadcast
storms, and the tell-tale flatline of a deadlock.

:class:`TextTrace` captures the simulator's event log (injections, grants,
drops, completions) via the ``on_log`` hook into a bounded buffer for
post-mortem inspection.

Neither observer touches simulator internals: they are ordinary hook
subscribers, exactly like user instrumentation would be.  (Before the
engine/runtime split they attached as a pseudo-generator and poked private
attributes; that path is gone.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from .engine import CycleEngine


@dataclass
class Sample:
    """One snapshot of the fabric."""

    cycle: int
    in_flight: int
    buffered_flits: int
    blocked_requests: int
    active_connections: int
    queued_packets: int

    def row(self) -> str:
        return (
            f"cycle={self.cycle:<7} in_flight={self.in_flight:<4} "
            f"buffered={self.buffered_flits:<5} blocked={self.blocked_requests:<4} "
            f"connections={self.active_connections:<4} queued={self.queued_packets}"
        )


class SimMonitor:
    """Samples fabric occupancy every ``interval`` cycles.

    Attach before running::

        mon = SimMonitor(sim, interval=10)
        sim.run(...)
        print(mon.summary())

    The monitor is a passive ``on_cycle_start`` subscriber: unlike the old
    generator-based attachment it does not keep a drained simulation
    running.
    """

    def __init__(self, sim: CycleEngine, interval: int = 10) -> None:
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.sim = sim
        self.interval = interval
        self.samples: List[Sample] = []
        sim.hooks.on_cycle_start(self._on_cycle_start)

    def detach(self) -> None:
        """Stop sampling."""
        self.sim.hooks.unsubscribe(self._on_cycle_start)

    def _on_cycle_start(self, engine: CycleEngine) -> None:
        if engine.cycle % self.interval:
            return
        self.samples.append(
            Sample(
                cycle=engine.cycle,
                in_flight=len(engine.in_flight),
                buffered_flits=engine.buffered_flits(),
                blocked_requests=engine.blocked_requests(),
                active_connections=len(engine.connections),
                queued_packets=engine.queued_packets(),
            )
        )

    # -- analysis ------------------------------------------------------------
    def peak_in_flight(self) -> int:
        return max((s.in_flight for s in self.samples), default=0)

    def peak_buffered(self) -> int:
        return max((s.buffered_flits for s in self.samples), default=0)

    def stalled_tail(self) -> int:
        """Number of trailing samples with blocked requests but no change
        in buffered flits: a long tail is the signature of deadlock."""
        n = 0
        prev: Optional[Sample] = None
        for s in reversed(self.samples):
            if prev is not None and (
                s.buffered_flits != prev.buffered_flits or s.blocked_requests == 0
            ):
                break
            if s.blocked_requests > 0:
                n += 1
            prev = s
        return n

    def summary(self, last: int = 5) -> str:
        lines = [
            f"{len(self.samples)} samples every {self.interval} cycles; "
            f"peak in-flight {self.peak_in_flight()}, "
            f"peak buffered flits {self.peak_buffered()}"
        ]
        lines += ["  " + s.row() for s in self.samples[-last:]]
        return "\n".join(lines)


class TextTrace:
    """Bounded capture of the simulator's event log.

    Subscribe through the hook bus::

        trace = TextTrace(500)
        trace.attach(sim)            # sim.hooks.on_log under the hood

    (The legacy path -- passing ``TextTrace(limit).hook`` as the
    simulator's ``trace`` argument -- still works and feeds the same
    buffer, but new code should use :meth:`attach`.)
    """

    def __init__(self, limit: int = 1000) -> None:
        self.limit = limit
        self.events: Deque[Tuple[int, str]] = deque(maxlen=limit)

    def attach(self, sim: CycleEngine) -> "TextTrace":
        """Subscribe to ``sim``'s event log; returns self for chaining."""
        sim.hooks.on_log(self.hook)
        return self

    def hook(self, cycle: int, message: str) -> None:
        self.events.append((cycle, message))

    def matching(self, needle: str) -> List[Tuple[int, str]]:
        return [(c, m) for c, m in self.events if needle in m]

    def dump(self, last: int = 50) -> str:
        items = list(self.events)[-last:]
        return "\n".join(f"[{c:>6}] {m}" for c, m in items)


def channel_load_heatmap(
    sim: CycleEngine, busy: Dict[int, int], cycles: int
) -> str:
    """ASCII per-PE heat of adjacent channel utilization (2D networks).

    Each cell shows the mean busy fraction of the channels touching that
    PE's router, 0-9 scaled; hotspots (e.g. the S-XB row under broadcast
    load) stand out.
    """
    topo = sim.topo
    if len(topo.shape) != 2:
        raise ValueError("heatmap renders 2D networks only")
    nx_, ny = topo.shape
    rows = []
    for y in range(ny):
        cells = []
        for x in range(nx_):
            rtr_el = ("RTR", (x, y))
            cids = [c.cid for c in topo.channels_from(rtr_el)] + [
                c.cid for c in topo.channels_to(rtr_el)
            ]
            if cycles <= 0 or not cids:
                cells.append(".")
                continue
            frac = sum(busy.get(cid, 0) for cid in cids) / (len(cids) * cycles)
            cells.append(str(min(9, int(frac * 10))))
        rows.append(" ".join(cells))
    return "\n".join(rows)
