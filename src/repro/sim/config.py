"""Simulator configuration.

The SR2201 transmits packets with cut-through routing (paper Section 3.2):
the header flit advances as soon as its output port is free, and a blocked
packet keeps every channel it has acquired.  ``buffer_depth`` selects the
flavour: shallow buffers give wormhole-like behaviour (flits strung across
the path -- required to reproduce the paper's deadlock figures), while
``buffer_depth >= packet length`` gives virtual cut-through (a blocked
packet collapses into one buffer and releases its upstream channels as the
tail drains).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Switching(str, enum.Enum):
    """Named buffer presets; both run the same flit pipeline."""

    WORMHOLE = "wormhole"
    VIRTUAL_CUT_THROUGH = "vct"


@dataclass(frozen=True)
class SimConfig:
    """Knobs of the cycle-driven flit-level simulator."""

    #: flit capacity of each (virtual) channel's input buffer
    buffer_depth: int = 2
    #: virtual channels per physical channel (MD crossbar needs 1; the
    #: torus baseline's dimension-order routing needs 2 for the dateline)
    num_vcs: int = 1
    #: declare deadlock after this many cycles without any flit movement
    #: while packets are in flight (the watchdog fires on exactly the
    #: ``stall_limit``-th stalled cycle)
    stall_limit: int = 1000
    #: hard stop for a run (safety net; experiments set their own horizon)
    max_cycles: int = 1_000_000
    #: flits per packet used by generators that do not specify a length
    default_packet_length: int = 4
    #: disable the active-set fast path (idle-cycle fast-forward and bulk
    #: flit-run transfer) and walk every fabric entity every cycle, as the
    #: pre-active-set engine did.  The results must be byte-identical either
    #: way -- this escape hatch exists as the parity oracle for tests and
    #: for ``repro bench``'s fast-vs-legacy drift gate.
    legacy_scan: bool = False
    #: recover from detected deadlock online instead of halting: drain one
    #: victim packet of the cyclic wait back out of the fabric and
    #: re-inject it (a DBR-style rotate, delivery preserved), then resume
    recovery: bool = False
    #: which cycle member is rotated out: ``"youngest"`` (largest pid --
    #: the least sunk progress) or ``"oldest"`` (smallest pid)
    recovery_victim: str = "youngest"
    #: cycle driver: ``"active"`` (default, the PR 4 active-set fast
    #: path) or ``"soa"`` (the batched structure-of-arrays kernel in
    #: :mod:`repro.sim.soa` -- vectorized flit state and grant
    #: arbitration, built for full-machine shapes).  ``legacy_scan=True``
    #: still forces the full-scan oracle regardless.  All drivers
    #: produce byte-identical :meth:`SimResult.fingerprint` outputs; the
    #: SoA kernel falls back to the active driver whenever a subscribed
    #: hook or fabric feature needs the scalar path (see
    #: ``NetworkSimulator.engine_used``).
    engine: str = "active"
    #: recovery actions allowed per run before the watchdog escalates to
    #: the ordinary DeadlockReport halt (livelock bound)
    recovery_limit: int = 16

    def __post_init__(self) -> None:
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        if self.num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        if self.stall_limit < 1:
            raise ValueError("stall_limit must be >= 1")
        if self.recovery_victim not in ("youngest", "oldest"):
            raise ValueError(
                "recovery_victim must be 'youngest' or 'oldest'"
            )
        if self.recovery_limit < 1:
            raise ValueError("recovery_limit must be >= 1")
        if self.engine not in ("active", "soa"):
            raise ValueError("engine must be 'active' or 'soa'")

    @staticmethod
    def wormhole(**kw) -> "SimConfig":
        """Shallow-buffer cut-through (the paper's deadlock-relevant mode)."""
        kw.setdefault("buffer_depth", 2)
        return SimConfig(**kw)

    @staticmethod
    def virtual_cut_through(packet_length: int = 4, **kw) -> "SimConfig":
        """Buffers deep enough to swallow a whole blocked packet."""
        kw.setdefault("buffer_depth", max(2, packet_length))
        kw.setdefault("default_packet_length", packet_length)
        return SimConfig(**kw)
