"""Statistics over simulation results: latency distributions, accepted
throughput, channel utilization and latency-versus-load sweeps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.packet import Packet
from .network import NetworkSimulator, SimResult


@dataclass
class LatencyStats:
    """Latency distribution summary over measured packets.

    With no measured packets every distribution field -- including ``max``
    and ``min`` -- is NaN.  The old sentinel (``max=0, min=0`` alongside
    NaN means) looked like a real zero-latency observation to anything
    aggregating across points (``min()`` over a sweep, plot axes,
    regression baselines); NaN is unambiguous and propagates instead of
    silently poisoning the aggregate.  Check ``count == 0`` (or
    ``math.isnan``) before consuming the fields.
    """

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    max: float
    min: float

    @staticmethod
    def from_packets(packets: Sequence[Packet]) -> "LatencyStats":
        lats = np.array(
            [p.latency for p in packets if p.latency is not None], dtype=float
        )
        if lats.size == 0:
            nan = float("nan")
            return LatencyStats(0, nan, nan, nan, nan, nan, nan)
        return LatencyStats(
            count=int(lats.size),
            mean=float(lats.mean()),
            median=float(np.median(lats)),
            p95=float(np.percentile(lats, 95)),
            p99=float(np.percentile(lats, 99)),
            max=float(lats.max()),
            min=float(lats.min()),
        )

    def row(self) -> str:
        return (
            f"n={self.count:6d} mean={self.mean:8.2f} median={self.median:7.1f} "
            f"p95={self.p95:8.1f} p99={self.p99:8.1f} max={self.max:6.0f}"
        )


@dataclass
class ThroughputStats:
    """Accepted throughput in flits per node per cycle over a window."""

    delivered_packets: int
    delivered_flits: int
    cycles: int
    nodes: int

    @property
    def flits_per_node_per_cycle(self) -> float:
        if self.cycles == 0 or self.nodes == 0:
            return 0.0
        return self.delivered_flits / (self.cycles * self.nodes)

    @staticmethod
    def from_result(
        result: SimResult, nodes: int, window: Optional[int] = None
    ) -> "ThroughputStats":
        cycles = window if window is not None else result.cycles
        flits = sum(p.length for p in result.delivered)
        return ThroughputStats(
            delivered_packets=len(result.delivered),
            delivered_flits=flits,
            cycles=cycles,
            nodes=nodes,
        )


def channel_utilization(
    result: SimResult, sim: NetworkSimulator
) -> Dict[int, float]:
    """Busy fraction per channel cid over the run."""
    if result.cycles == 0:
        return {}
    return {
        cid: busy / result.cycles for cid, busy in result.channel_busy.items()
    }


def top_utilized_channels(
    result: SimResult, sim: NetworkSimulator, k: int = 10
) -> List[str]:
    util = channel_utilization(result, sim)
    chans = {c.cid: c for c in sim.topo.channels()}
    top = sorted(util.items(), key=lambda kv: kv[1], reverse=True)[:k]
    return [f"{chans[cid]!r}: {frac:.2%}" for cid, frac in top]


@dataclass
class LoadPoint:
    """One point of a latency-versus-offered-load curve.

    ``recoveries`` counts online deadlock-recovery rotations the run
    performed (0 unless the engine ran with ``recovery=True`` and its
    watchdog fired) -- surfaced here so sweep-scale consumers (the run
    ledger, ``repro report --sweep``) see rotation counts without
    re-running points.
    """

    offered_load: float
    accepted_load: float
    latency: LatencyStats
    deadlocked: bool
    cycles: int
    recoveries: int = 0

    def row(self) -> str:
        return (
            f"load={self.offered_load:5.3f} accepted={self.accepted_load:5.3f} "
            f"{self.latency.row()}"
            + ("  [DEADLOCK]" if self.deadlocked else "")
            + (
                f"  [{self.recoveries} recovery rotation(s)]"
                if self.recoveries
                else ""
            )
        )
