"""Fabric state of the flit-level simulator: flits in flight, virtual
channels, switch connections and pending grant requests.

The resource model mirrors cut-through hardware (paper Section 3.2):

* every unidirectional channel has, per virtual channel, an input FIFO at
  its downstream element and an *owner* -- the packet currently granted the
  upstream output port.  The owner holds the port from header grant until
  its tail flit has been pushed into the FIFO;
* a switch forwards a packet through a :class:`Connection` from one input
  (channel, vc) to one or more outputs; multicast connections move a flit
  only when every branch has buffer space (the branches carry copies in
  lockstep, as a crossbar broadcast does);
* a header that cannot be granted yet is a :class:`PendingRequest`;
  non-serialized requests *reserve* output ports progressively as they free
  up and hold the reservations while waiting for the rest -- exactly the
  acquire-and-hold behaviour that deadlocks the naive broadcast of the
  paper's Fig. 5.  Serialized requests (the S-XB) are granted atomically in
  FIFO order instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Set, Tuple

from ..core.packet import FlitKind, Header, Packet
from ..topology.base import Channel, ElementId
from .adapter import SimDecision

#: (channel cid, virtual channel index)
VCKey = Tuple[int, int]


def flit_body_run(flits, pid: int, limit: int) -> int:
    """Length of the run of ``pid``'s body flits at the head of ``flits``
    (a buffer or an injection supply), capped at ``limit``.  A bulk
    flit-run transfer may move exactly this many flits without crossing an
    observable event: body flits carry no header, trigger no grant,
    release or delivery, and emit nothing on the hook bus."""
    run = 0
    for flit in flits:
        if flit.pid != pid or not flit.is_body:
            break
        run += 1
        if run >= limit:
            break
    return run


class SimFlit:
    """A flit in flight.  Only head flits carry a header (switches rewrite
    the RC bit on the header as the packet moves, so each multicast branch
    gets its own copy).

    A hand-rolled slots class rather than a dataclass: flits are the
    hottest objects in the simulator, and the transfer loop tests their
    kind several times per move, so ``is_head``/``is_tail``/``is_body``
    are precomputed plain attributes (``kind`` never changes after
    construction).  ``is_body`` means neither head nor tail: carries no
    header, triggers no grant, release or delivery event when it moves --
    the flits the engine's bulk-transfer window may move as a run.
    """

    __slots__ = ("pid", "kind", "seq", "header", "is_head", "is_tail", "is_body")

    def __init__(
        self,
        pid: int,
        kind: FlitKind,
        seq: int,
        header: Optional[Header] = None,
    ) -> None:
        self.pid = pid
        self.kind = kind
        self.seq = seq
        self.header = header
        self.is_head = kind is FlitKind.HEAD or kind is FlitKind.HEAD_TAIL
        self.is_tail = kind is FlitKind.TAIL or kind is FlitKind.HEAD_TAIL
        self.is_body = kind is FlitKind.BODY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimFlit(pid={self.pid}, kind={self.kind.name}, seq={self.seq})"


@dataclass(slots=True)
class VCState:
    """One virtual channel of one physical channel."""

    channel: Channel
    vc: int
    capacity: int
    buffer: Deque[SimFlit] = field(default_factory=deque)
    #: packet granted the upstream output port, None when free
    owner: Optional[int] = None

    @property
    def key(self) -> VCKey:
        return (self.channel.cid, self.vc)

    @property
    def free_space(self) -> int:
        return self.capacity - len(self.buffer)

    def head(self) -> Optional[SimFlit]:
        return self.buffer[0] if self.buffer else None

    def body_run(self, pid: int, limit: int) -> int:
        """Length of the run of ``pid``'s body flits at the buffer head,
        capped at ``limit`` (see :func:`flit_body_run`)."""
        return flit_body_run(self.buffer, pid, limit)

    def popleft_checked(self, pid: int) -> SimFlit:
        flit = self.buffer.popleft()
        if flit.pid != pid:  # pragma: no cover - guards an engine invariant
            raise AssertionError(
                f"flit of packet {flit.pid} at head of {self.channel} "
                f"while connection belongs to packet {pid}"
            )
        return flit


@dataclass(slots=True)
class Connection:
    """An established input->outputs circuit through a switch.

    ``cin`` is None for the injection pseudo-connection at a PE, whose flits
    come from ``supply`` instead of an input buffer.
    """

    pid: int
    element: ElementId
    cin: Optional[VCKey]
    couts: Tuple[VCKey, ...]
    #: flits not yet transmitted, for injection connections only
    supply: Optional[Deque[SimFlit]] = None
    started_at: int = 0

    @property
    def is_injection(self) -> bool:
        return self.cin is None


@dataclass(slots=True)
class PendingRequest:
    """A routed header waiting for its output grant at a switch."""

    pid: int
    element: ElementId
    cin: VCKey
    decision: SimDecision
    wanted: Tuple[VCKey, ...]
    reserved: Set[VCKey] = field(default_factory=set)
    arrived_at: int = 0

    @property
    def missing(self) -> Tuple[VCKey, ...]:
        return tuple(k for k in self.wanted if k not in self.reserved)

    @property
    def complete(self) -> bool:
        return not self.missing


@dataclass(slots=True)
class InFlightPacket:
    """Book-keeping for one injected packet."""

    packet: Packet
    expected_deliveries: int
    deliveries: int = 0
    dropped: bool = False
    #: PEs that have received this packet (used to rebase a broadcast's
    #: expectation when a PE dies mid-spread)
    served: set = field(default_factory=set)

    @property
    def done(self) -> bool:
        return self.dropped or self.deliveries >= self.expected_deliveries
