"""Fabric state of the flit-level simulator: flits in flight, virtual
channels, switch connections and pending grant requests.

The resource model mirrors cut-through hardware (paper Section 3.2):

* every unidirectional channel has, per virtual channel, an input FIFO at
  its downstream element and an *owner* -- the packet currently granted the
  upstream output port.  The owner holds the port from header grant until
  its tail flit has been pushed into the FIFO;
* a switch forwards a packet through a :class:`Connection` from one input
  (channel, vc) to one or more outputs; multicast connections move a flit
  only when every branch has buffer space (the branches carry copies in
  lockstep, as a crossbar broadcast does);
* a header that cannot be granted yet is a :class:`PendingRequest`;
  non-serialized requests *reserve* output ports progressively as they free
  up and hold the reservations while waiting for the rest -- exactly the
  acquire-and-hold behaviour that deadlocks the naive broadcast of the
  paper's Fig. 5.  Serialized requests (the S-XB) are granted atomically in
  FIFO order instead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Set, Tuple

from ..core.packet import FlitKind, Header, Packet
from ..topology.base import Channel, ElementId
from .adapter import SimDecision

#: (channel cid, virtual channel index)
VCKey = Tuple[int, int]


@dataclass
class SimFlit:
    """A flit in flight.  Only head flits carry a header (switches rewrite
    the RC bit on the header as the packet moves, so each multicast branch
    gets its own copy)."""

    pid: int
    kind: FlitKind
    seq: int
    header: Optional[Header] = None

    @property
    def is_head(self) -> bool:
        return self.kind in (FlitKind.HEAD, FlitKind.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self.kind in (FlitKind.TAIL, FlitKind.HEAD_TAIL)


@dataclass
class VCState:
    """One virtual channel of one physical channel."""

    channel: Channel
    vc: int
    capacity: int
    buffer: Deque[SimFlit] = field(default_factory=deque)
    #: packet granted the upstream output port, None when free
    owner: Optional[int] = None

    @property
    def key(self) -> VCKey:
        return (self.channel.cid, self.vc)

    @property
    def free_space(self) -> int:
        return self.capacity - len(self.buffer)

    def head(self) -> Optional[SimFlit]:
        return self.buffer[0] if self.buffer else None

    def popleft_checked(self, pid: int) -> SimFlit:
        flit = self.buffer.popleft()
        if flit.pid != pid:  # pragma: no cover - guards an engine invariant
            raise AssertionError(
                f"flit of packet {flit.pid} at head of {self.channel} "
                f"while connection belongs to packet {pid}"
            )
        return flit


@dataclass
class Connection:
    """An established input->outputs circuit through a switch.

    ``cin`` is None for the injection pseudo-connection at a PE, whose flits
    come from ``supply`` instead of an input buffer.
    """

    pid: int
    element: ElementId
    cin: Optional[VCKey]
    couts: Tuple[VCKey, ...]
    #: flits not yet transmitted, for injection connections only
    supply: Optional[Deque[SimFlit]] = None
    started_at: int = 0

    @property
    def is_injection(self) -> bool:
        return self.cin is None


@dataclass
class PendingRequest:
    """A routed header waiting for its output grant at a switch."""

    pid: int
    element: ElementId
    cin: VCKey
    decision: SimDecision
    wanted: Tuple[VCKey, ...]
    reserved: Set[VCKey] = field(default_factory=set)
    arrived_at: int = 0

    @property
    def missing(self) -> Tuple[VCKey, ...]:
        return tuple(k for k in self.wanted if k not in self.reserved)

    @property
    def complete(self) -> bool:
        return not self.missing


@dataclass
class InFlightPacket:
    """Book-keeping for one injected packet."""

    packet: Packet
    expected_deliveries: int
    deliveries: int = 0
    dropped: bool = False
    #: PEs that have received this packet (used to rebase a broadcast's
    #: expectation when a PE dies mid-spread)
    served: set = field(default_factory=set)

    @property
    def done(self) -> bool:
        return self.dropped or self.deliveries >= self.expected_deliveries
