"""Routing adapters: how the simulator asks a network for next hops.

The simulator is topology-agnostic; it needs, for each switch element, a
next-hop decision given the input channel and the header.  Adapters provide
that:

* :class:`MDCrossbarAdapter` wraps the paper's distributed
  :class:`~repro.core.switch_logic.SwitchLogic` (single virtual channel);
* the baselines package provides adapters for mesh / torus / hypercube
  dimension-order routing (the torus one uses the dateline virtual-channel
  split).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Tuple

from ..core.packet import RC, Header
from ..core.switch_logic import SwitchLogic
from ..topology.base import ElementId, Topology


@dataclass(frozen=True)
class SimDecision:
    """A grant request: output (element, virtual channel) pairs.

    ``policy`` selects the grant semantics:

    * ``"all"`` (default) -- the packet needs *every* listed output
      (unicast with one entry, multicast with several; ports are acquired
      progressively and held);
    * ``"any"`` -- the packet takes the *first free* output in list order
      (adaptive routing: earlier entries are the preferred adaptive
      choices, the last entry is the escape channel).

    ``serialize`` requests the atomic FIFO one-at-a-time grant used by the
    S-XB; ``drop`` discards the packet (destination dead).  ``rc`` is the
    RC bit the forwarded copies carry.
    """

    outputs: Tuple[Tuple[ElementId, int], ...]
    rc: RC
    serialize: bool = False
    drop: bool = False
    policy: str = "all"


class RoutingAdapter(Protocol):
    """What the simulator needs from a routed network."""

    topo: Topology

    def decide(
        self, element: ElementId, in_from: ElementId, in_vc: int, header: Header
    ) -> SimDecision:
        """Next-hop decision at ``element`` for a header that arrived from
        ``in_from`` on virtual channel ``in_vc``."""
        ...


class MDCrossbarAdapter:
    """The SR2201 network: defer to the distributed switch logic, VC 0.

    Decisions are memoized per ``(element, input, source, dest, rc)``: the
    switch logic is deterministic and stateless for a fixed fault
    configuration, so under steady traffic the simulator's route phase hits
    the cache instead of re-running the distributed rules.  Swapping
    :attr:`logic` (an online facility reconfiguration) invalidates the
    cache.
    """

    def __init__(self, logic: SwitchLogic) -> None:
        self._logic = logic
        self.topo = logic.topo
        self._cache: dict = {}

    @property
    def logic(self) -> SwitchLogic:
        return self._logic

    @logic.setter
    def logic(self, new_logic: SwitchLogic) -> None:
        self._logic = new_logic
        self._cache.clear()

    def decide(
        self, element: ElementId, in_from: ElementId, in_vc: int, header: Header
    ) -> SimDecision:
        key = (element, in_from, header.source, header.dest, header.rc)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        d = self._logic.decide(element, in_from, header)
        decision = SimDecision(
            outputs=tuple((el, 0) for el in d.outputs),
            rc=d.rc,
            serialize=d.serialize,
            drop=d.drop,
        )
        self._cache[key] = decision
        return decision
