"""Routing adapters: how the simulator asks a network for next hops.

The simulator is topology-agnostic; it needs, for each switch element, a
next-hop decision given the input channel and the header.  Adapters provide
that:

* :class:`MDCrossbarAdapter` wraps the paper's distributed
  :class:`~repro.core.switch_logic.SwitchLogic` (single virtual channel);
* the baselines package provides adapters for mesh / torus / hypercube
  dimension-order routing (the torus one uses the dateline virtual-channel
  split).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Protocol, Tuple

from ..core.packet import RC, Header
from ..core.switch_logic import SwitchLogic
from ..topology.base import ElementId, Topology


@dataclass(frozen=True)
class SimDecision:
    """A grant request: output (element, virtual channel) pairs.

    ``policy`` selects the grant semantics:

    * ``"all"`` (default) -- the packet needs *every* listed output
      (unicast with one entry, multicast with several; ports are acquired
      progressively and held);
    * ``"any"`` -- the packet takes the *first free* output in list order
      (adaptive routing: earlier entries are the preferred adaptive
      choices, the last entry is the escape channel).

    ``serialize`` requests the atomic FIFO one-at-a-time grant used by the
    S-XB; ``drop`` discards the packet (destination dead).  ``rc`` is the
    RC bit the forwarded copies carry.
    """

    outputs: Tuple[Tuple[ElementId, int], ...]
    rc: RC
    serialize: bool = False
    drop: bool = False
    policy: str = "all"


class RoutingAdapter(Protocol):
    """What the simulator needs from a routed network."""

    topo: Topology

    def decide(
        self, element: ElementId, in_from: ElementId, in_vc: int, header: Header
    ) -> SimDecision:
        """Next-hop decision at ``element`` for a header that arrived from
        ``in_from`` on virtual channel ``in_vc``."""
        ...


def decide_batch(adapter, queries):
    """Batch route lookup: one :class:`SimDecision` per query.

    ``queries`` is a sequence of ``(element, in_from, in_vc, header)``
    tuples.  The SoA driver collects every unrouted header of a cycle and
    resolves them in one call; adapters that maintain a decision memo can
    answer the common all-hits case without per-query method dispatch.
    Falls back to looping ``adapter.decide`` -- decisions are pure, so
    batch and scalar lookups are interchangeable.  Adapters may provide
    their own ``decide_batch(queries)`` with identical semantics.
    """
    batch = getattr(adapter, "decide_batch", None)
    if batch is not None:
        return batch(queries)
    decide = adapter.decide
    return [decide(el, src, vc, hdr) for el, src, vc, hdr in queries]


#: default bound on the route-decision memo.  Uniform traffic on an 8x8
#: network touches a few thousand distinct (element, input, dest, rc)
#: keys, so the default leaves ample headroom while still bounding a
#: long many-fault run; a much smaller bound would thrash on the
#: standard sweep shapes.
DEFAULT_MEMO_CAPACITY = 65536


class MDCrossbarAdapter:
    """The SR2201 network: defer to the distributed switch logic, VC 0.

    Decisions are memoized per ``(scheme, element, input, dest, rc)`` -- the
    rules never read the source coordinate: the switch logic is
    deterministic and stateless for a fixed fault configuration, so
    under steady traffic the simulator's route phase hits the cache
    instead of re-running the distributed rules.  The memo is an
    LRU bounded by ``memo_capacity`` and its hit/miss/eviction counters
    are exposed through :meth:`cache_info` (the ``RouteCacheStats``
    collector exports them into the metrics digest).  Swapping
    :attr:`logic` (an online facility reconfiguration) invalidates the
    cache but keeps the cumulative counters.
    """

    def __init__(
        self,
        logic: SwitchLogic,
        memo_capacity: int = DEFAULT_MEMO_CAPACITY,
        scheme: str = "dxb",
    ) -> None:
        if memo_capacity < 1:
            raise ValueError("memo_capacity must be >= 1")
        self._logic = logic
        self.topo = logic.topo
        #: routing-scheme identity; part of the memo key so a memo entry
        #: produced under one scheme can never answer for another
        self.scheme = scheme
        self._capacity = memo_capacity
        self._cache: "OrderedDict[tuple, SimDecision]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def logic(self) -> SwitchLogic:
        return self._logic

    @logic.setter
    def logic(self, new_logic: SwitchLogic) -> None:
        self._logic = new_logic
        self._cache.clear()

    def reset_cache(self) -> None:
        """Clear the memo *and* zero its counters, as a freshly built
        adapter's would be.  The warm-worker runtime calls this before
        reusing a network for a metrics-bearing sweep point, so the
        ``cache_info`` counters -- exported into the metrics digest by
        ``RouteCacheStats`` -- match a cold build's byte-for-byte."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def cache_info(self) -> Dict[str, int]:
        """Memo statistics: cumulative hits / misses / evictions plus the
        current size and the configured capacity."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "size": len(self._cache),
            "capacity": self._capacity,
        }

    def decide(
        self, element: ElementId, in_from: ElementId, in_vc: int, header: Header
    ) -> SimDecision:
        key = (self.scheme, element, in_from, header.dest, header.rc)
        cache = self._cache
        hit = cache.get(key)
        if hit is not None:
            self._hits += 1
            cache.move_to_end(key)
            return hit
        self._misses += 1
        d = self._logic.decide(element, in_from, header)
        decision = SimDecision(
            outputs=tuple((el, 0) for el in d.outputs),
            rc=d.rc,
            serialize=d.serialize,
            drop=d.drop,
        )
        cache[key] = decision
        if len(cache) > self._capacity:
            cache.popitem(last=False)
            self._evictions += 1
        return decision

    def decide_batch(self, queries):
        """Memo-first batch lookup (see :func:`decide_batch`): resolves
        each query against the LRU directly and only drops to
        :meth:`decide` on a miss, so a steady-traffic batch costs one
        dict probe per header."""
        cache = self._cache
        scheme = self.scheme
        out = []
        for el, src, vc, hdr in queries:
            key = (scheme, el, src, hdr.dest, hdr.rc)
            hit = cache.get(key)
            if hit is not None:
                self._hits += 1
                cache.move_to_end(key)
                out.append(hit)
            else:
                out.append(self.decide(el, src, vc, hdr))
        return out
