"""The batched structure-of-arrays cycle driver (``SimConfig(engine="soa")``).

The object-per-flit engine tops out around half a million cycles/sec even
with the active-set fast path: every cycle walks Python deques of
:class:`~repro.sim.fabric.SimFlit` objects.  Full-machine shapes (the
SR2201/2048's 16x16x8 hyper-crossbar has ~20k channels) need the flit
state itself batched.  :class:`SoAKernel` keeps the hot fabric state in
preallocated numpy arrays -- per-channel flit ring buffers (packet id /
flit kind / sequence), channel owners, connection tables, candidate masks
-- and executes the same five phases with vectorized masks and array
reductions:

* **eject** drains every pending PE buffer with one gather, locating tail
  flits by a flag-matrix reduction (per-tail delivery bookkeeping stays
  scalar: deliveries are rare relative to flit moves);
* **route** filters the candidate mask down to genuinely unrouted headers
  with vector comparisons, then resolves them through the adapter's batch
  lookup (:func:`~repro.sim.adapter.decide_batch`, memo-first);
* **grant** resolves each crossbar's input-port conflicts with a
  first-request-per-output ``np.unique`` reduction instead of the
  per-:class:`~repro.sim.fabric.PendingRequest` Python loop (the scalar
  sequential grant is equivalent to it for single-output ``"all"``-policy
  requests, the only kind the vector path accepts; adaptive ``"any"``
  requests drop the cycle's grant phase to an exact scalar loop);
* **transfer** moves one flit per established connection with fancy-indexed
  ring-buffer pops and pushes.  The scalar engine iterates connections in
  dict insertion order, and that order is observable: a connection whose
  destination buffer is full (or source buffer empty) at phase start still
  moves if the draining (or supplying) connection comes *earlier* in the
  iteration.  The kernel therefore splits the phase: order-independent
  movers (source ready and destination space at phase start) apply
  vectorized, and the small conditional set resolves in ascending
  connection order against the recorded enabler orders -- byte-identical
  to the sequential scan;
* **inject** mirrors the scalar phase (generators are arbitrary Python
  callbacks and injection order rides on engine state the kernel shares).

**Parity discipline.**  The kernel shares the engine's canonical workload
state (``in_flight``, ``delivered``, ``dropped``, ``source_queues``,
scheduled sends, counters) and mutates it directly; only the fabric hot
state is mirrored into arrays.  On any exit -- drained, horizon, stall,
or fallback -- :meth:`SoAKernel.sync_out` rebuilds the engine's object
state (buffers, owners, connection dict in insertion order, pending
list, candidate sets) exactly as the scalar drivers would have left it,
so results are byte-identical across ``soa`` / ``active`` /
``legacy_scan`` and a run may switch drivers mid-flight.

**Scalar fallback.**  The kernel handles the fabric features the paper's
full-machine workloads exercise: one virtual channel, unicast
single-output ``"all"`` decisions, adaptive ``"any"`` decisions, and
drop decisions.  Anything else -- serialized S-XB grants, multicast
fan-out, more than one VC, or a subscribed per-event hook
(``cycle_start`` / ``phase_end`` / ``inject`` / ``grant`` / ``block`` /
``deliver`` / ``log``; the terminal ``deadlock`` / ``recovery`` hooks
are fine) -- makes it bail *before* mutating anything mid-phase and hand
the run to the active driver, recording the reason on
``engine.engine_fallback``.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from ..core.packet import FlitKind
from .adapter import decide_batch
from .fabric import Connection, PendingRequest, SimFlit

_HEAD = int(FlitKind.HEAD)
_BODY = int(FlitKind.BODY)
_TAIL = int(FlitKind.TAIL)
_HEAD_TAIL = int(FlitKind.HEAD_TAIL)

#: hooks whose subscribers need the scalar engine's per-event call sites
SCALAR_HOOKS: Tuple[str, ...] = (
    "cycle_start",
    "phase_end",
    "inject",
    "grant",
    "block",
    "deliver",
    "log",
)


class _PendRec:
    """A pending grant request in kernel form (keeps the decision object
    so :meth:`SoAKernel.sync_out` can rebuild the exact
    :class:`PendingRequest`)."""

    __slots__ = ("pid", "cin", "wanted", "decision", "arrived")

    def __init__(self, pid, cin, wanted, decision, arrived) -> None:
        self.pid = pid
        self.cin = cin
        #: VCKey tuple, engine format (vc is always 0 here)
        self.wanted = wanted
        self.decision = decision
        self.arrived = arrived


class SoAKernel:
    """Array-state mirror of one :class:`~repro.sim.engine.CycleEngine`.

    Static topology tables are built once per engine; the mutable arrays
    are (re)filled from the engine's object state by :meth:`materialize`
    each time the run loop enters the kernel, and written back by
    :meth:`sync_out` on every exit, so the engine's observable state is
    always canonical outside :meth:`drive`.
    """

    def __init__(self, eng) -> None:
        self.eng = eng
        self.cap = eng.config.buffer_depth
        cids = [key[0] for key in eng.vcs]
        self.V = max(cids) + 1 if cids else 0
        V = self.V
        # ---- static topology tables
        self.is_pe = np.zeros(V, dtype=bool)
        self.pe_order = np.full(V, V + 1, dtype=np.int64)
        self.pe_coord: List[Optional[tuple]] = [None] * V
        for i, (coord, (cid, _)) in enumerate(eng._pe_inputs):
            self.is_pe[cid] = True
            self.pe_order[cid] = i
            self.pe_coord[cid] = coord
        self.el_of: List[Optional[tuple]] = [None] * V
        for (cid, _), el in eng._element_of_input.items():
            self.el_of[cid] = el
        self.chan_src: List[Optional[tuple]] = [None] * V
        for (cid, _), vc in eng.vcs.items():
            self.chan_src[cid] = vc.channel.src
        self.coords = list(eng.topo.node_coords())
        self.pe_slot = {c: p for p, c in enumerate(self.coords)}
        self.inj_cid = {c: key[0] for c, key in eng._inj_key.items()}
        P = len(self.coords)
        # ---- mutable fabric arrays
        self.buf_pid = np.zeros((V, self.cap), dtype=np.int64)
        self.buf_kind = np.zeros((V, self.cap), dtype=np.int64)
        self.buf_seq = np.zeros((V, self.cap), dtype=np.int64)
        self.buf_start = np.zeros(V, dtype=np.int64)
        self.buf_len = np.zeros(V, dtype=np.int64)
        self.owner = np.full(V, -1, dtype=np.int64)
        self.route_cand = np.zeros(V, dtype=bool)
        self.eject_pend = np.zeros(V, dtype=bool)
        self.pend_cin = np.zeros(V, dtype=bool)
        self.busy_delta = np.zeros(V, dtype=np.int64)
        # fabric connections, indexed by input channel cid
        self.fc_alive = np.zeros(V, dtype=bool)
        self.fc_pid = np.zeros(V, dtype=np.int64)
        self.fc_cout = np.full(V, -1, dtype=np.int64)
        self.fc_order = np.zeros(V, dtype=np.int64)
        self.fc_started = np.zeros(V, dtype=np.int64)
        # injection connections, indexed by PE slot
        self.ic_alive = np.zeros(P, dtype=bool)
        self.ic_pid = np.zeros(P, dtype=np.int64)
        self.ic_cout = np.zeros(P, dtype=np.int64)
        self.ic_sent = np.zeros(P, dtype=np.int64)
        self.ic_len = np.zeros(P, dtype=np.int64)
        self.ic_order = np.zeros(P, dtype=np.int64)
        self.ic_started = np.zeros(P, dtype=np.int64)
        self.ic_packet: List[Optional[object]] = [None] * P
        self.pending: List[_PendRec] = []
        self.any_count = 0
        self.hdr_by_pid: dict = {}
        self.order_counter = 0
        self.nconns = 0
        self.flit_moves = 0
        self.last_progress = 0
        self.fallback_reason: Optional[str] = None

    # ----------------------------------------------------------- lifecycle
    def _no(self, reason: str) -> bool:
        self.fallback_reason = reason
        return False

    def materialize(self) -> bool:
        """Fill the arrays from the engine's object state.  Returns False
        (with :attr:`fallback_reason` set) when the state needs a scalar
        driver; nothing is mutated in that case."""
        eng = self.eng
        if eng.config.num_vcs != 1:
            return self._no("num_vcs > 1")
        for name in SCALAR_HOOKS:
            if getattr(eng.hooks, name):
                return self._no(f"hook '{name}' subscribed")
        if any(eng.serial_queues.values()):
            return self._no("serialized (S-XB) request in flight")
        for req in eng.pending:
            if req.decision.serialize or req.reserved:
                return self._no("partially reserved request in flight")
            if req.decision.policy != "any" and len(req.wanted) != 1:
                return self._no("multicast request in flight")
        for conn in eng.connections.values():
            if len(conn.couts) > 1:
                return self._no("multicast connection in flight")
        # ---- buffers and owners
        self.buf_len[:] = 0
        self.buf_start[:] = 0
        self.owner[:] = -1
        self.hdr_by_pid.clear()
        for (cid, _), vc in eng.vcs.items():
            self.owner[cid] = -1 if vc.owner is None else vc.owner
            if vc.buffer:
                for j, flit in enumerate(vc.buffer):
                    self.buf_pid[cid, j] = flit.pid
                    self.buf_kind[cid, j] = int(flit.kind)
                    self.buf_seq[cid, j] = flit.seq
                    if flit.header is not None:
                        self.hdr_by_pid[flit.pid] = flit.header
                self.buf_len[cid] = len(vc.buffer)
        # ---- candidate masks
        self.route_cand[:] = False
        for cid, _ in eng._route_candidates:
            self.route_cand[cid] = True
        self.eject_pend[:] = False
        for cid, _ in eng._eject_pending:
            self.eject_pend[cid] = True
        self.pend_cin[:] = False
        for cid, _ in eng._pending_by_cin:
            self.pend_cin[cid] = True
        # ---- connections (dict insertion order becomes the order stamp)
        self.fc_alive[:] = False
        self.fc_cout[:] = -1
        self.ic_alive[:] = False
        for p in range(len(self.ic_packet)):
            self.ic_packet[p] = None
        for idx, conn in enumerate(eng.connections.values()):
            if conn.cin is None:
                p = self.pe_slot[conn.element[1]]
                inf = eng.in_flight[conn.pid]
                self.ic_alive[p] = True
                self.ic_pid[p] = conn.pid
                self.ic_cout[p] = conn.couts[0][0]
                self.ic_sent[p] = conn.supply[0].seq
                self.ic_len[p] = inf.packet.length
                self.ic_order[p] = idx
                self.ic_started[p] = conn.started_at
                self.ic_packet[p] = inf.packet
                self.hdr_by_pid.setdefault(conn.pid, inf.packet.header)
            else:
                cid = conn.cin[0]
                self.fc_alive[cid] = True
                self.fc_pid[cid] = conn.pid
                self.fc_cout[cid] = conn.couts[0][0] if conn.couts else -1
                self.fc_order[cid] = idx
                self.fc_started[cid] = conn.started_at
        self.order_counter = len(eng.connections)
        self.nconns = len(eng.connections)
        # ---- pending requests
        self.pending = [
            _PendRec(r.pid, r.cin[0], r.wanted, r.decision, r.arrived_at)
            for r in eng.pending
        ]
        self.any_count = sum(
            1 for r in self.pending if r.decision.policy == "any"
        )
        self.busy_delta[:] = 0
        self.flit_moves = eng.flit_moves
        self.last_progress = eng._last_progress
        self.fallback_reason = None
        return True

    def sync_out(self) -> None:
        """Write the array state back into the engine's object state,
        byte-identical to what the scalar drivers would hold."""
        eng = self.eng
        cap = self.cap
        hdr = self.hdr_by_pid
        for (cid, _), vc in eng.vcs.items():
            o = self.owner[cid]
            vc.owner = None if o < 0 else int(o)
            buf = vc.buffer
            buf.clear()
            n = int(self.buf_len[cid])
            start = int(self.buf_start[cid])
            for j in range(n):
                s = (start + j) % cap
                pid = int(self.buf_pid[cid, s])
                kind = FlitKind(int(self.buf_kind[cid, s]))
                buf.append(
                    SimFlit(
                        pid=pid,
                        kind=kind,
                        seq=int(self.buf_seq[cid, s]),
                        header=hdr.get(pid)
                        if kind in (FlitKind.HEAD, FlitKind.HEAD_TAIL)
                        else None,
                    )
                )
        conns = []
        for cid in np.nonzero(self.fc_alive)[0].tolist():
            cout = int(self.fc_cout[cid])
            conns.append(
                (
                    int(self.fc_order[cid]),
                    Connection(
                        pid=int(self.fc_pid[cid]),
                        element=self.el_of[cid],
                        cin=(cid, 0),
                        couts=() if cout < 0 else ((cout, 0),),
                        started_at=int(self.fc_started[cid]),
                    ),
                )
            )
        for p in np.nonzero(self.ic_alive)[0].tolist():
            packet = self.ic_packet[p]
            supply = deque()
            length = int(self.ic_len[p])
            for seq in range(int(self.ic_sent[p]), length):
                supply.append(
                    SimFlit(
                        pid=packet.pid,
                        kind=_flit_kind(seq, length),
                        seq=seq,
                        header=packet.header if seq == 0 else None,
                    )
                )
            conns.append(
                (
                    int(self.ic_order[p]),
                    Connection(
                        pid=int(self.ic_pid[p]),
                        element=("PE", self.coords[p]),
                        cin=None,
                        couts=((int(self.ic_cout[p]), 0),),
                        supply=supply,
                        started_at=int(self.ic_started[p]),
                    ),
                )
            )
        eng.connections.clear()
        for _, conn in sorted(conns, key=lambda t: t[0]):
            eng.connections[(conn.element, conn.cin)] = conn
        eng.pending = [
            PendingRequest(
                pid=r.pid,
                element=self.el_of[r.cin],
                cin=(r.cin, 0),
                decision=r.decision,
                wanted=r.wanted,
                arrived_at=r.arrived,
            )
            for r in self.pending
        ]
        eng._pending_by_cin = {r.cin for r in eng.pending}
        eng._route_candidates = {
            (int(c), 0) for c in np.nonzero(self.route_cand)[0]
        }
        eng._eject_pending = {
            (int(c), 0) for c in np.nonzero(self.eject_pend)[0]
        }
        for cid in np.nonzero(self.busy_delta)[0].tolist():
            eng.channel_busy[cid] = eng.channel_busy.get(cid, 0) + int(
                self.busy_delta[cid]
            )
        self.busy_delta[:] = 0
        eng.flit_moves = self.flit_moves
        eng._last_progress = self.last_progress

    # -------------------------------------------------------------- driver
    def drive(self, horizon: int, until_drained: bool) -> str:
        """Run cycles until an exit condition; always leaves the engine's
        object state canonical.  Returns ``"done"`` (drained / horizon /
        caller should re-check), ``"stalled"`` (the watchdog condition
        holds -- the engine's run loop diagnoses and recovers), or
        ``"bail"`` (unsupported state; :attr:`fallback_reason` says why;
        the active driver picks the cycle up mid-flight)."""
        eng = self.eng
        if not self.materialize():
            return "bail"
        stall_limit = eng.config.stall_limit
        while eng.cycle < horizon:
            if (
                until_drained
                and not eng.pending_work()
                and not eng.generators
            ):
                break
            if self._idle():
                target = eng._next_event_cycle(horizon)
                if target is not None and target > eng.cycle:
                    eng.cycle = target
                    continue
            self.phase_eject()
            bail = self.phase_route()
            if bail is not None:
                self.sync_out()
                self.fallback_reason = bail
                return "bail"
            self.phase_grant()
            self.phase_transfer()
            self.phase_inject()
            eng.cycle += 1
            if (
                eng.in_flight
                and eng.cycle - self.last_progress >= stall_limit
            ):
                self.sync_out()
                return "stalled"
        self.sync_out()
        return "done"

    def _idle(self) -> bool:
        eng = self.eng
        if (
            eng.in_flight
            or self.nconns
            or self.pending
            or eng._nonempty_sources
        ):
            return False
        return not (self.route_cand.any() or self.eject_pend.any())

    # -------------------------------------------------------------- phases
    def phase_eject(self) -> None:
        e = np.nonzero(self.eject_pend)[0]
        if e.size == 0:
            return
        self.eject_pend[e] = False
        e = e[np.argsort(self.pe_order[e], kind="stable")]
        lens = self.buf_len[e]
        nz = lens > 0
        if not nz.all():
            e = e[nz]
            lens = lens[nz]
        if e.size == 0:
            return
        eng = self.eng
        self.flit_moves += int(lens.sum())
        self.last_progress = eng.cycle
        cap = self.cap
        offs = np.arange(cap)
        slots = (self.buf_start[e][:, None] + offs[None, :]) % cap
        kinds = self.buf_kind[e[:, None], slots]
        valid = offs[None, :] < lens[:, None]
        tails = valid & ((kinds == _TAIL) | (kinds == _HEAD_TAIL))
        rows, cols = np.nonzero(tails)
        if rows.size:
            in_flight = eng.in_flight
            tpids = self.buf_pid[e[rows], slots[rows, cols]]
            for r, pid in zip(rows.tolist(), tpids.tolist()):
                inf = in_flight.get(pid)
                if inf is None:
                    continue
                coord = self.pe_coord[int(e[r])]
                inf.deliveries += 1
                inf.served.add(coord)
                if inf.done:
                    inf.packet.delivered_at = eng.cycle
                    eng.delivered.append(inf.packet)
                    del in_flight[pid]
                    self.hdr_by_pid.pop(pid, None)
        self.buf_len[e] = 0

    def phase_route(self) -> Optional[str]:
        """Route every fresh header; returns a fallback reason (bailing
        *before* any route effect is applied) or None."""
        cand = np.nonzero(self.route_cand)[0]
        if cand.size == 0:
            return None
        pe = self.is_pe[cand]
        if pe.any():
            self.route_cand[cand[pe]] = False  # ejection handles PE inputs
            cand = cand[~pe]
        empty = self.buf_len[cand] == 0
        if empty.any():
            self.route_cand[cand[empty]] = False
            cand = cand[~empty]
        if cand.size == 0:
            return None
        heads = self.buf_kind[cand, self.buf_start[cand]]
        headish = (heads == _HEAD) | (heads == _HEAD_TAIL)
        cand = cand[headish]  # non-heads stay candidates (HoL wait)
        if cand.size == 0:
            return None
        busy = self.fc_alive[cand] | self.pend_cin[cand]
        cand = cand[~busy]  # already connected/requested: stay candidates
        if cand.size == 0:
            return None
        eng = self.eng
        pids = self.buf_pid[cand, self.buf_start[cand]]
        cand_l = cand.tolist()
        pids_l = pids.tolist()
        hdr = self.hdr_by_pid
        queries = [
            (self.el_of[cid], self.chan_src[cid], 0, hdr[pid])
            for cid, pid in zip(cand_l, pids_l)
        ]
        try:
            decisions = decide_batch(eng.adapter, queries)
        except Exception as exc:
            from ..core.switch_logic import RoutingError

            if isinstance(exc, RoutingError):
                # decisions are pure: the scalar route phase will hit the
                # same error and run the unroutable-packet kill path
                return "unroutable packet (online reconfiguration)"
            raise
        # one pass, nothing committed until every decision checks out --
        # a bail mid-batch must leave the fabric untouched (only the
        # wanted memo fills in, and that is a pure topology cache)
        cycle = eng.cycle
        memo = eng._wanted_memo
        el_of = self.el_of
        new_recs: List[_PendRec] = []
        new_any = 0
        drops: List[Tuple[int, int]] = []
        for cid, pid, d in zip(cand_l, pids_l, decisions):
            if d.drop:
                drops.append((cid, pid))
                continue
            if d.serialize:
                return "serialized (S-XB) decision"
            if d.policy != "any":
                if len(d.outputs) != 1:
                    return "multicast decision"
            elif not d.outputs:
                return "adaptive decision with no outputs"
            el = el_of[cid]
            wkey = (el, d.outputs)
            wanted = memo.get(wkey)
            if wanted is None:
                wanted = tuple(
                    (eng.topo.channel(el, out_el).cid, out_vc)
                    for out_el, out_vc in d.outputs
                )
                memo[wkey] = wanted
            new_recs.append(_PendRec(pid, cid, wanted, d, cycle))
            if d.policy == "any":
                new_any += 1
        for cid, pid in drops:
            self.fc_alive[cid] = True
            self.fc_pid[cid] = pid
            self.fc_cout[cid] = -1
            self.fc_order[cid] = self.order_counter
            self.order_counter += 1
            self.fc_started[cid] = cycle
            self.nconns += 1
            inf = eng.in_flight.get(pid)
            if inf is not None:
                inf.dropped = True
        self.pending.extend(new_recs)
        self.any_count += new_any
        self.route_cand[cand] = False
        if new_recs:
            self.pend_cin[
                np.fromiter(
                    (r.cin for r in new_recs), np.int64, count=len(new_recs)
                )
            ] = True
        return None

    def phase_grant(self) -> None:
        pend = self.pending
        if not pend:
            return
        if self.any_count == 0:
            # every request is single-output "all": the sequential scan
            # grants each free output to its first requester in arrival
            # order, which is exactly the first-occurrence reduction
            outs = np.fromiter(
                (r.wanted[0][0] for r in pend), dtype=np.int64, count=len(pend)
            )
            free = self.owner[outs] == -1
            if not free.any():
                return
            idx_free = np.nonzero(free)[0]
            _, first = np.unique(outs[idx_free], return_index=True)
            win = idx_free[first]
            win.sort()  # establishment (and fc_order) in arrival order
            wl = win.tolist()
            wrecs = [pend[i] for i in wl]
            n = len(wrecs)
            cins = np.fromiter((r.cin for r in wrecs), np.int64, count=n)
            pids = np.fromiter((r.pid for r in wrecs), np.int64, count=n)
            wouts = outs[win]
            self.owner[wouts] = pids
            self.fc_alive[cins] = True
            self.fc_pid[cins] = pids
            self.fc_cout[cins] = wouts
            self.fc_order[cins] = self.order_counter + np.arange(n)
            self.order_counter += n
            self.fc_started[cins] = self.eng.cycle
            self.pend_cin[cins] = False
            self.nconns += n
            self.last_progress = self.eng.cycle
            hdrs = self.hdr_by_pid
            for r in wrecs:
                h = hdrs[r.pid]
                rc = r.decision.rc
                if h.rc != rc:
                    # the switch rewrites the RC bit as the header passes
                    hdrs[r.pid] = h.with_rc(rc)
            if n == len(pend):
                self.pending = []
            else:
                wset = set(wl)
                self.pending = [
                    r for i, r in enumerate(pend) if i not in wset
                ]
            return
        # adaptive requests present: exact scalar sequential grant
        owner = self.owner
        remaining = []
        for rec in pend:
            if rec.decision.policy == "any":
                chosen = next(
                    (k[0] for k in rec.wanted if owner[k[0]] == -1), None
                )
                if chosen is None:
                    remaining.append(rec)
                    continue
                rec.wanted = ((chosen, 0),)
                self.any_count -= 1
                self._establish(rec, chosen)
            else:
                out = rec.wanted[0][0]
                if owner[out] == -1:
                    self._establish(rec, out)
                else:
                    remaining.append(rec)
        self.pending = remaining

    def _establish(self, rec: _PendRec, out: int) -> None:
        self.owner[out] = rec.pid
        hdr = self.hdr_by_pid[rec.pid]
        if hdr.rc != rec.decision.rc:
            # the switch rewrites the RC bit as the header passes
            self.hdr_by_pid[rec.pid] = hdr.with_rc(rec.decision.rc)
        cin = rec.cin
        self.fc_alive[cin] = True
        self.fc_pid[cin] = rec.pid
        self.fc_cout[cin] = out
        self.fc_order[cin] = self.order_counter
        self.order_counter += 1
        self.fc_started[cin] = self.eng.cycle
        self.nconns += 1
        self.pend_cin[cin] = False
        self.last_progress = self.eng.cycle

    def phase_transfer(self) -> None:
        f = np.nonzero(self.fc_alive)[0]
        i = np.nonzero(self.ic_alive)[0]
        if f.size == 0 and i.size == 0:
            return
        cap = self.cap
        buf_len = self.buf_len
        fl = buf_len[f]
        fhead_pid = self.buf_pid[f, self.buf_start[f]]
        fsrc_ok = (fl > 0) & (fhead_pid == self.fc_pid[f])
        fdst = self.fc_cout[f]
        fdrop = fdst < 0
        fdst_safe = np.where(fdrop, 0, fdst)
        fdst_ok = fdrop | (buf_len[fdst_safe] < cap)
        fm0 = fsrc_ok & fdst_ok
        idst = self.ic_cout[i]
        im0 = buf_len[idst] < cap
        # conditional movers: blocked at phase start but enabled by an
        # earlier-in-order mover draining their destination (or supplying
        # their empty source), matching the scalar dict-order scan
        fsrc_pot = (~fsrc_ok) & (fl == 0)
        fdst_pot = (~fdst_ok) & self.fc_alive[fdst_safe] & ~fdrop
        fcond = (~fm0) & (fsrc_ok | fsrc_pot) & (fdst_ok | fdst_pot)
        icond = (~im0) & self.fc_alive[idst]
        extras: List[Tuple[int, str, int]] = []
        if fcond.any() or icond.any():
            extras = self._resolve_conditional(
                f, fm0, fcond, i, im0, icond
            )
        moved = False
        fm = f[fm0]
        if fm.size:
            moved = True
            self._apply_fabric(fm)
        im = i[im0]
        if im.size:
            moved = True
            self._apply_injection(im)
        for _, kind, idx in extras:
            moved = True
            if kind == "f":
                self._apply_fabric(np.array([idx], dtype=np.int64))
            else:
                self._apply_injection(np.array([idx], dtype=np.int64))
        if moved:
            self.last_progress = self.eng.cycle

    def _resolve_conditional(self, f, fm0, fcond, i, im0, icond):
        """Decide the order-dependent movers with one ascending pass (an
        enabler always has a strictly smaller connection order)."""
        V = self.V
        filler_ord = np.full(V, -1, dtype=np.int64)
        filler_isf = np.zeros(V, dtype=bool)
        filler_id = np.zeros(V, dtype=np.int64)
        fout = self.fc_cout[f]
        fnz = f[fout >= 0]
        filler_ord[self.fc_cout[fnz]] = self.fc_order[fnz]
        filler_isf[self.fc_cout[fnz]] = True
        filler_id[self.fc_cout[fnz]] = fnz
        filler_ord[self.ic_cout[i]] = self.ic_order[i]
        filler_id[self.ic_cout[i]] = i
        moved_f = np.zeros(V, dtype=bool)
        moved_f[f[fm0]] = True
        moved_i = np.zeros(len(self.ic_alive), dtype=bool)
        moved_i[i[im0]] = True
        cands = [
            (int(self.fc_order[cid]), "f", int(cid))
            for cid in f[fcond].tolist()
        ] + [
            (int(self.ic_order[p]), "i", int(p)) for p in i[icond].tolist()
        ]
        cands.sort()
        cap = self.cap
        buf_len = self.buf_len
        extras = []
        for order_c, kind, idx in cands:
            if kind == "f":
                cid = idx
                src_ok = buf_len[cid] > 0 and (
                    self.buf_pid[cid, self.buf_start[cid]]
                    == self.fc_pid[cid]
                )
                if not src_ok and buf_len[cid] == 0:
                    fo = filler_ord[cid]
                    if 0 <= fo < order_c:
                        fid = int(filler_id[cid])
                        src_ok = (
                            moved_f[fid]
                            if filler_isf[cid]
                            else moved_i[fid]
                        )
                d = int(self.fc_cout[cid])
                dst_ok = d < 0 or buf_len[d] < cap
                if not dst_ok and self.fc_alive[d]:
                    dst_ok = self.fc_order[d] < order_c and moved_f[d]
                if src_ok and dst_ok:
                    moved_f[cid] = True
                    extras.append((order_c, kind, cid))
            else:
                p = idx
                d = int(self.ic_cout[p])
                dst_ok = buf_len[d] < cap
                if not dst_ok and self.fc_alive[d]:
                    dst_ok = self.fc_order[d] < order_c and moved_f[d]
                if dst_ok:
                    moved_i[p] = True
                    extras.append((order_c, kind, p))
        return extras

    def _apply_fabric(self, fm) -> None:
        """Move one flit through each fabric connection in ``fm`` (pops
        before pushes, so a buffer popped and refilled in the same cycle
        lands its newcomer behind the survivors)."""
        cap = self.cap
        s = self.buf_start[fm]
        v_pid = self.buf_pid[fm, s]
        v_kind = self.buf_kind[fm, s]
        v_seq = self.buf_seq[fm, s]
        self.buf_start[fm] = (s + 1) % cap
        self.buf_len[fm] -= 1
        d = self.fc_cout[fm]
        push = d >= 0
        dp = d[push]
        if dp.size:
            slot = (self.buf_start[dp] + self.buf_len[dp]) % cap
            self.buf_pid[dp, slot] = v_pid[push]
            self.buf_kind[dp, slot] = v_kind[push]
            self.buf_seq[dp, slot] = v_seq[push]
            self.buf_len[dp] += 1
            self.busy_delta[dp] += 1
            kp = v_kind[push]
            headish = (kp == _HEAD) | (kp == _HEAD_TAIL)
            self.route_cand[dp[headish]] = True
            self.eject_pend[dp[self.is_pe[dp]]] = True
        tailish = (v_kind == _TAIL) | (v_kind == _HEAD_TAIL)
        td = fm[tailish]
        if td.size:
            douts = self.fc_cout[td]
            rel = douts[douts >= 0]
            self.owner[rel] = -1
            self.fc_alive[td] = False
            self.nconns -= int(td.size)
            nonempty = self.buf_len[td] > 0
            self.route_cand[td[nonempty]] = True
            drops = td[douts < 0]
            if drops.size:
                eng = self.eng
                for cid in drops[
                    np.argsort(self.fc_order[drops], kind="stable")
                ].tolist():
                    pid = int(self.fc_pid[cid])
                    inf = eng.in_flight.pop(pid, None)
                    if inf is not None:
                        eng.dropped.append(inf.packet)
                    self.hdr_by_pid.pop(pid, None)
        self.flit_moves += int(fm.size)

    def _apply_injection(self, im) -> None:
        cap = self.cap
        seq = self.ic_sent[im]
        ln = self.ic_len[im]
        kind = np.where(
            ln == 1,
            _HEAD_TAIL,
            np.where(
                seq == 0, _HEAD, np.where(seq == ln - 1, _TAIL, _BODY)
            ),
        )
        d = self.ic_cout[im]
        slot = (self.buf_start[d] + self.buf_len[d]) % cap
        self.buf_pid[d, slot] = self.ic_pid[im]
        self.buf_kind[d, slot] = kind
        self.buf_seq[d, slot] = seq
        self.buf_len[d] += 1
        self.busy_delta[d] += 1
        headish = (kind == _HEAD) | (kind == _HEAD_TAIL)
        self.route_cand[d[headish]] = True
        self.ic_sent[im] += 1
        done = seq == ln - 1
        t = im[done]
        if t.size:
            self.owner[self.ic_cout[t]] = -1
            self.ic_alive[t] = False
            self.nconns -= int(t.size)
            for p in t.tolist():
                self.ic_packet[p] = None
        self.flit_moves += int(im.size)

    def phase_inject(self) -> None:
        eng = self.eng
        due = eng._scheduled.pop(eng.cycle, None)
        if due:
            for p in due:
                p.injected_at = eng.cycle
                eng.send(p)
        for gen in eng.generators:
            gen(eng)
        if not eng._nonempty_sources:
            return
        owner = self.owner
        for coord in list(eng._nonempty_sources):
            queue = eng.source_queues[coord]
            if not queue:
                eng._nonempty_sources.discard(coord)
                continue
            cid = self.inj_cid[coord]
            if owner[cid] != -1:
                continue
            packet = queue.popleft()
            if not queue:
                eng._nonempty_sources.discard(coord)
            owner[cid] = packet.pid
            p = self.pe_slot[coord]
            self.ic_alive[p] = True
            self.ic_pid[p] = packet.pid
            self.ic_cout[p] = cid
            self.ic_sent[p] = 0
            self.ic_len[p] = packet.length
            self.ic_order[p] = self.order_counter
            self.order_counter += 1
            self.ic_started[p] = eng.cycle
            self.ic_packet[p] = packet
            self.nconns += 1
            self.hdr_by_pid[packet.pid] = packet.header
            from .fabric import InFlightPacket

            eng.in_flight[packet.pid] = InFlightPacket(
                packet=packet,
                expected_deliveries=eng.expected_deliveries(packet),
            )
            eng.injected += 1
            self.last_progress = eng.cycle


def _flit_kind(seq: int, length: int) -> FlitKind:
    if length == 1:
        return FlitKind.HEAD_TAIL
    if seq == 0:
        return FlitKind.HEAD
    if seq == length - 1:
        return FlitKind.TAIL
    return FlitKind.BODY
