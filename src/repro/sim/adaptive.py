"""Adaptive routing on the MD crossbar: the related-work comparator.

The paper's Section 1 cites the adaptive-routing literature (Linder/Harden,
Duato, Glass/Ni, Dally/Aoki, ...) as the other road to fault tolerance and
performance; the SR2201 deliberately chose deterministic dimension-order
routing plus the detour facility.  This module implements the road not
taken so the trade-off is measurable: a **minimal fully-adaptive router**
built with Duato's methodology --

* two virtual channels per physical channel;
* VC 1 is the *adaptive* lane: at each router the packet may enter the
  crossbar of **any** dimension in which it still needs to move;
* VC 0 is the *escape* lane: strict dimension-order routing, whose channel
  dependency graph is acyclic;
* grant semantics are "first free of [adaptive choices..., escape]"
  (``SimDecision.policy = "any"``), so a blocked packet always has the
  escape path in its wait set and the escape subnetwork drains -- Duato's
  deadlock-freedom condition.

Point-to-point only: the hardware broadcast and detour facilities are the
paper's deterministic mechanisms and stay on the deterministic adapter.
Use ``SimConfig(num_vcs=2)``.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.config import RoutingConfig, make_config
from ..core.coords import Coord
from ..core.packet import RC, Header
from ..sim.adapter import SimDecision
from ..topology.base import ElementId, element_kind, ElementKind, pe, rtr
from ..topology.mdcrossbar import MDCrossbar

#: escape and adaptive virtual-channel indices
ESCAPE_VC = 0
ADAPTIVE_VC = 1


class AdaptiveMDAdapter:
    """Minimal fully-adaptive routing for point-to-point MD crossbar
    traffic (Duato escape-channel construction)."""

    required_vcs = 2

    def __init__(self, topo: MDCrossbar, config: RoutingConfig | None = None) -> None:
        self.topo = topo
        self.config = config or make_config(topo.shape)
        if self.config.all_faults():
            raise ValueError(
                "the adaptive comparator models the fault-free network; "
                "fault tolerance is the deterministic facility's job"
            )
        self._sim = None

    def attach(self, sim) -> None:
        """Called by the simulator: enables the one-hop-lookahead congestion
        heuristic (a router can see its own crossbars' output ports -- they
        are the same LSI neighbourhood)."""
        self._sim = sim

    def _exit_busy(self, c: Coord, k: int, dest: Coord) -> bool:
        """Is the dimension-``k`` crossbar's exit port toward ``dest``
        currently held or backed up?"""
        if self._sim is None:
            return False
        exit_coord = c[:k] + (dest[k],) + c[k + 1 :]
        ch = self.topo.channel(self.topo.crossbar_of(c, k), rtr(exit_coord))
        vc = self._sim.vcs[(ch.cid, ADAPTIVE_VC)]
        return vc.owner is not None or vc.free_space <= 0

    def decide(
        self, element: ElementId, in_from: ElementId, in_vc: int, header: Header
    ) -> SimDecision:
        if header.rc is not RC.NORMAL:
            raise ValueError(
                "adaptive routing carries point-to-point traffic only "
                f"(got RC={header.rc.name})"
            )
        kind = element_kind(element)
        if kind is ElementKind.RTR:
            return self._route_router(element[1], header)
        if kind is ElementKind.XB:
            return self._route_xb(element, in_vc, header)
        raise ValueError(f"element {element} does not route packets")

    def _route_router(self, c: Coord, h: Header) -> SimDecision:
        if c == h.dest:
            return SimDecision(outputs=((pe(c), 0),), rc=RC.NORMAL)
        differing = [k for k in self.config.order if c[k] != h.dest[k]]
        # one-hop lookahead: prefer dimensions whose crossbar exit toward
        # the destination is currently idle
        ranked = sorted(differing, key=lambda k: self._exit_busy(c, k, h.dest))
        candidates: List[Tuple[ElementId, int]] = [
            (self.topo.crossbar_of(c, k), ADAPTIVE_VC) for k in ranked
        ]
        # the escape: dimension-order on VC 0, always last in preference
        candidates.append((self.topo.crossbar_of(c, differing[0]), ESCAPE_VC))
        return SimDecision(outputs=tuple(candidates), rc=RC.NORMAL, policy="any")

    def _route_xb(self, el: ElementId, in_vc: int, h: Header) -> SimDecision:
        # The lane is chosen at the router for the whole RTR->XB->RTR hop;
        # the crossbar continues on the same virtual channel.  (Letting an
        # adaptive packet dip into the escape lane mid-hop would use escape
        # channels out of dimension order and re-introduce the cycle the
        # escape network exists to break.)
        _, k, line = el
        from ..core.coords import point_on_line

        target = rtr(point_on_line(k, line, h.dest[k]))
        return SimDecision(outputs=((target, in_vc),), rc=RC.NORMAL)
