"""Cycle-driven flit-level simulator for cut-through routed networks."""

from .adaptive import ADAPTIVE_VC, ESCAPE_VC, AdaptiveMDAdapter
from .adapter import MDCrossbarAdapter, RoutingAdapter, SimDecision
from .config import SimConfig, Switching
from .engine import (
    BLOCK_KINDS,
    PHASES,
    BlockEvent,
    CycleEngine,
    HookBus,
    RecoveryEvent,
    find_pid_cycle,
)
from .fabric import Connection, InFlightPacket, PendingRequest, SimFlit, VCState
from .monitor import Sample, SimMonitor, TextTrace, channel_load_heatmap
from .network import (
    DeadlockError,
    DeadlockReport,
    NetworkSimulator,
    ReconfigReport,
    SimResult,
)

__all__ = [
    "BLOCK_KINDS",
    "BlockEvent",
    "CycleEngine",
    "HookBus",
    "PHASES",
    "find_pid_cycle",
    "ADAPTIVE_VC",
    "AdaptiveMDAdapter",
    "ESCAPE_VC",
    "Connection",
    "DeadlockError",
    "DeadlockReport",
    "InFlightPacket",
    "MDCrossbarAdapter",
    "NetworkSimulator",
    "PendingRequest",
    "ReconfigReport",
    "RecoveryEvent",
    "RoutingAdapter",
    "Sample",
    "SimMonitor",
    "TextTrace",
    "channel_load_heatmap",
    "SimConfig",
    "SimDecision",
    "SimFlit",
    "SimResult",
    "Switching",
    "VCState",
]
