"""Cycle-driven flit-level network simulator.

Executes any routed topology (via a :class:`~repro.sim.adapter.RoutingAdapter`)
under cut-through switching with the resource model of
:mod:`repro.sim.fabric`.  Each cycle runs five phases:

1. **eject** -- PEs drain their input buffers (a destination always sinks,
   so ejection channels never deadlock by themselves);
2. **route** -- header flits at buffer heads are routed by the adapter and
   become pending grant requests;
3. **grant** -- serialized (S-XB) requests are granted atomically in FIFO
   order, reserving the whole crossbar; other requests reserve free output
   ports progressively, in arrival order, and connect when complete;
4. **transfer** -- every connection moves at most one flit, multicast
   branches in lockstep, one flit per physical channel per cycle; a tail
   flit releases the connection's output ports;
5. **inject** -- queued packets at PEs take the injection channel when free.

A watchdog declares deadlock when packets are in flight but nothing has
moved for ``stall_limit`` cycles, then extracts the cyclic wait from the
pending requests' wait-for graph -- reproducing the paper's Figs. 5 and 9
dynamically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..core.coords import Coord
from ..core.packet import FlitKind, Header, Packet, RC
from ..topology.base import Channel, ElementId, ElementKind, element_kind
from .adapter import RoutingAdapter, SimDecision
from .config import SimConfig
from .fabric import (
    Connection,
    InFlightPacket,
    PendingRequest,
    SimFlit,
    VCKey,
    VCState,
)


@dataclass
class DeadlockReport:
    """Diagnosis of a detected deadlock."""

    cycle: int
    #: packet ids forming the cyclic wait, in order
    cycle_pids: Tuple[int, ...]
    #: pid -> (element it is blocked at, channels it waits for, their holders)
    waits: Dict[int, Tuple[ElementId, Tuple[Channel, ...], Tuple[int, ...]]]
    #: every in-flight pid at detection time
    blocked_pids: Tuple[int, ...]

    def describe(self) -> str:
        lines = [f"deadlock detected at cycle {self.cycle}; cyclic wait:"]
        for pid in self.cycle_pids:
            el, chans, holders = self.waits[pid]
            chan_s = ", ".join(repr(c) for c in chans)
            lines.append(
                f"  packet {pid} blocked at {el} waiting for [{chan_s}] "
                f"held by {sorted(set(holders))}"
            )
        return "\n".join(lines)


class DeadlockError(RuntimeError):
    """Raised by :meth:`NetworkSimulator.run` when ``raise_on_deadlock``."""

    def __init__(self, report: DeadlockReport) -> None:
        super().__init__(report.describe())
        self.report = report


@dataclass
class ReconfigReport:
    """What an online fault event cost (see ``inject_fault``)."""

    cycle: int
    fault: object
    lost_packets: List[Packet]
    new_sxb_line: Tuple[int, ...]
    new_order: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"cycle {self.cycle}: {self.fault}; lost {len(self.lost_packets)} "
            f"in-transit packets; facility reconfigured "
            f"(order {self.new_order}, S-XB line {self.new_sxb_line})"
        )


@dataclass
class SimResult:
    """Outcome of a simulation run."""

    cycles: int
    delivered: List[Packet]
    dropped: List[Packet]
    deadlock: Optional[DeadlockReport]
    flit_moves: int
    injected: int
    #: busy cycles per channel cid (a flit crossed the physical link)
    channel_busy: Dict[int, int]
    in_flight_at_end: int

    @property
    def deadlocked(self) -> bool:
        return self.deadlock is not None

    @property
    def latencies(self) -> List[int]:
        return [p.latency for p in self.delivered if p.latency is not None]

    @property
    def mean_latency(self) -> float:
        lats = self.latencies
        return sum(lats) / len(lats) if lats else float("nan")

    def throughput_flits_per_cycle(self) -> float:
        """Delivered payload flits per cycle (unicast deliveries only count
        once; broadcast copies count per recipient)."""
        if self.cycles == 0:
            return 0.0
        return self.flit_moves / self.cycles


class NetworkSimulator:
    """Flit-level simulator over an adapter-routed topology."""

    def __init__(
        self,
        adapter: RoutingAdapter,
        config: Optional[SimConfig] = None,
        trace: Optional[Callable[[int, str], None]] = None,
    ) -> None:
        self.adapter = adapter
        self.topo = adapter.topo
        self.config = config or SimConfig()
        if hasattr(adapter, "attach"):
            adapter.attach(self)
        self.trace = trace
        self.cycle = 0
        self._vcs: Dict[VCKey, VCState] = {}
        for ch in self.topo.channels():
            for v in range(self.config.num_vcs):
                self._vcs[(ch.cid, v)] = VCState(
                    channel=ch, vc=v, capacity=self.config.buffer_depth
                )
        # input VC keys per switch element, in deterministic order
        self._inputs: Dict[ElementId, List[VCKey]] = {}
        self._pe_inputs: List[Tuple[Coord, VCKey]] = []
        for el in self.topo.elements():
            kind = element_kind(el)
            if kind is ElementKind.PE:
                for ch in self.topo.channels_to(el):
                    for v in range(self.config.num_vcs):
                        self._pe_inputs.append((el[1], (ch.cid, v)))
                continue
            keys: List[VCKey] = []
            for ch in self.topo.channels_to(el):
                for v in range(self.config.num_vcs):
                    keys.append((ch.cid, v))
            self._inputs[el] = keys

        self._connections: Dict[Tuple[ElementId, Optional[VCKey]], Connection] = {}
        self._pending: List[PendingRequest] = []
        self._pending_by_cin: Set[VCKey] = set()
        #: input VC keys that may hold an unrouted header (performance:
        #: the route phase scans this small set instead of every buffer)
        self._route_candidates: Set[VCKey] = set()
        #: element owning each switch-input key, precomputed
        self._element_of_input: Dict[VCKey, ElementId] = {}
        for el, keys in self._inputs.items():
            for key in keys:
                self._element_of_input[key] = el
        self._serial_queues: Dict[ElementId, Deque[PendingRequest]] = {}
        self._source_queues: Dict[Coord, Deque[Packet]] = {
            c: deque() for c in self.topo.node_coords()
        }
        self._nonempty_sources: Set[Coord] = set()
        self._scheduled: Dict[int, List[Packet]] = {}
        self._generators: List[Callable[["NetworkSimulator"], None]] = []
        self._in_flight: Dict[int, InFlightPacket] = {}
        self._delivered: List[Packet] = []
        self._dropped: List[Packet] = []
        self._flit_moves = 0
        self._injected = 0
        self._channel_busy: Dict[int, int] = {}
        self._last_progress = 0
        self._deadlock: Optional[DeadlockReport] = None
        self._delivery_listeners: List[Callable[[Packet, Coord, int], None]] = []
        self._live_nodes = [
            c
            for c in self.topo.node_coords()
            if not self._node_is_dead(c)
        ]

    # ------------------------------------------------------------- helpers
    def _node_is_dead(self, coord: Coord) -> bool:
        logic = getattr(self.adapter, "logic", None)
        if logic is None:
            return False
        return logic.registry.router_is_faulty(coord)

    @property
    def live_nodes(self) -> Sequence[Coord]:
        return tuple(self._live_nodes)

    def _log(self, msg: str) -> None:
        if self.trace is not None:
            self.trace(self.cycle, msg)

    # ------------------------------------------------------------ workload
    def send(self, packet: Packet, at_cycle: Optional[int] = None) -> None:
        """Queue a packet for injection at its source PE.

        ``at_cycle`` defers queueing (used by the scripted figure
        scenarios); by default the packet enters the source queue now.
        """
        if at_cycle is not None and at_cycle > self.cycle:
            self._scheduled.setdefault(at_cycle, []).append(packet)
            return
        src = packet.source
        if src not in self._source_queues:
            raise ValueError(f"unknown source PE {src}")
        if self._node_is_dead(src):
            raise ValueError(f"source PE {src} is disconnected by the fault")
        packet.injected_at = self.cycle if packet.injected_at is None else packet.injected_at
        self._source_queues[src].append(packet)
        self._nonempty_sources.add(src)

    def add_generator(self, fn: Callable[["NetworkSimulator"], None]) -> None:
        """Register a per-cycle traffic generator callback."""
        self._generators.append(fn)

    def add_delivery_listener(
        self, fn: Callable[[Packet, Coord, int], None]
    ) -> None:
        """Register ``fn(packet, pe_coord, cycle)``, called whenever a tail
        flit is ejected at a PE (once per recipient for broadcasts).  Used
        by the software collectives, which react to message arrival the way
        a PE's message handler would."""
        self._delivery_listeners.append(fn)

    def expected_deliveries(self, packet: Packet) -> int:
        if packet.header.rc in (RC.BROADCAST_REQUEST, RC.BROADCAST):
            return len(self._live_nodes)
        return 1

    # -------------------------------------------------- online fault events
    def inject_fault(self, fault) -> "ReconfigReport":
        """A switch fails *while the network is running*.

        Models what the hardware facility's "information ... is set in
        advance" looks like at the moment of failure: the facility
        reconfigures (new fault bits, possibly a substituted S-XB/D-XB per
        rules R1/R2), and every packet currently holding a channel into or
        out of the dead switch is lost -- cut-through hardware cannot
        un-send flits; recovery of lost messages belongs to the software
        layers above.  Subsequent packets route around the fault.

        Only available on MD crossbar adapters (the facility under study).
        Raises :class:`~repro.core.config.ConfigError` if the accumulated
        fault set is beyond the facility (rule R1/R2 infeasible).
        """
        from ..core.switch_logic import SwitchLogic

        logic = getattr(self.adapter, "logic", None)
        if logic is None:
            raise TypeError("inject_fault needs an MD crossbar adapter")
        new_cfg = logic.config.with_faults(logic.config.all_faults() + (fault,))
        new_logic = SwitchLogic(self.topo, new_cfg)

        dead_el = fault.element
        touching = {
            ch.cid
            for ch in list(self.topo.channels_from(dead_el))
            + list(self.topo.channels_to(dead_el))
        }
        victims: Set[int] = set()
        for key, vc in self._vcs.items():
            if key[0] in touching:
                if vc.owner is not None:
                    victims.add(vc.owner)
                victims.update(f.pid for f in vc.buffer)
        for conn in self._connections.values():
            if conn.element == dead_el:
                victims.add(conn.pid)
        lost = [self._kill_packet(pid) for pid in sorted(victims)]
        self.adapter.logic = new_logic
        self._live_nodes = [
            c for c in self.topo.node_coords() if not self._node_is_dead(c)
        ]
        # rebase surviving broadcasts: a dead PE will never take delivery
        live = set(self._live_nodes)
        for pid, inf in list(self._in_flight.items()):
            if inf.packet.header.rc in (RC.BROADCAST_REQUEST, RC.BROADCAST):
                inf.expected_deliveries = len(inf.served) + len(
                    live - inf.served
                )
                if inf.done:
                    inf.packet.delivered_at = self.cycle
                    self._delivered.append(inf.packet)
                    del self._in_flight[pid]
        self._last_progress = self.cycle
        self._log(f"fault injected: {fault}; {len(lost)} packets lost")
        return ReconfigReport(
            cycle=self.cycle,
            fault=fault,
            lost_packets=[p for p in lost if p is not None],
            new_sxb_line=new_cfg.sxb_line,
            new_order=new_cfg.order,
        )

    def _kill_packet(self, pid: int) -> Optional[Packet]:
        """Remove every trace of a packet from the fabric."""
        for key in [k for k, c in self._connections.items() if c.pid == pid]:
            conn = self._connections.pop(key)
            for cout in conn.couts:
                if self._vcs[cout].owner == pid:
                    self._vcs[cout].owner = None
        self._pending = [r for r in self._pending if r.pid != pid]
        for q in self._serial_queues.values():
            for r in list(q):
                if r.pid == pid:
                    q.remove(r)
        for vc in self._vcs.values():
            if vc.owner == pid:
                vc.owner = None
            if any(f.pid == pid for f in vc.buffer):
                vc.buffer = type(vc.buffer)(
                    f for f in vc.buffer if f.pid != pid
                )
        self._pending_by_cin = {
            k
            for k in self._pending_by_cin
            if any(r.cin == k for r in self._pending)
            or any(
                r.cin == k for q in self._serial_queues.values() for r in q
            )
        }
        inf = self._in_flight.pop(pid, None)
        if inf is not None:
            self._dropped.append(inf.packet)
            return inf.packet
        return None

    # -------------------------------------------------------------- phases
    def _phase_eject(self) -> None:
        for coord, key in self._pe_inputs:
            vc = self._vcs[key]
            while vc.buffer:
                flit = vc.buffer.popleft()
                self._flit_moves += 1
                self._last_progress = self.cycle
                if flit.is_tail:
                    inf = self._in_flight.get(flit.pid)
                    if inf is not None:
                        inf.deliveries += 1
                        inf.served.add(coord)
                        for listener in self._delivery_listeners:
                            listener(inf.packet, coord, self.cycle)
                        if inf.done:
                            inf.packet.delivered_at = self.cycle
                            self._delivered.append(inf.packet)
                            del self._in_flight[flit.pid]
                            self._log(f"packet {flit.pid} completed at PE{coord}")

    def _phase_route(self) -> None:
        done: List[VCKey] = []
        for key in list(self._route_candidates):
            el = self._element_of_input.get(key)
            if el is None:  # a PE input: ejection handles it
                done.append(key)
                continue
            vc = self._vcs[key]
            head = vc.head()
            if head is None:
                done.append(key)
                continue
            if not head.is_head:
                continue  # a header queued behind another packet's flits
            if (el, key) in self._connections or key in self._pending_by_cin:
                continue
            if True:
                assert head.header is not None
                try:
                    decision = self.adapter.decide(
                        el, vc.channel.src, key[1], head.header
                    )
                except Exception as exc:
                    from ..core.switch_logic import RoutingError

                    if not isinstance(exc, RoutingError):
                        raise
                    # a packet caught mid-flight by an online facility
                    # reconfiguration can land in a state the new rules do
                    # not produce (e.g. RC=DETOUR at a crossbar that is no
                    # longer the D-XB); cut-through hardware would lose it
                    self._log(f"packet {head.pid} unroutable at {el}: {exc}")
                    self._kill_packet(head.pid)
                    continue
                if decision.drop:
                    conn = Connection(
                        pid=head.pid,
                        element=el,
                        cin=key,
                        couts=(),
                        started_at=self.cycle,
                    )
                    self._connections[(el, key)] = conn
                    inf = self._in_flight.get(head.pid)
                    if inf is not None:
                        inf.dropped = True
                    self._log(f"packet {head.pid} dropped at {el}")
                    done.append(key)
                    continue
                wanted = tuple(
                    (self.topo.channel(el, out_el).cid, out_vc)
                    for out_el, out_vc in decision.outputs
                )
                req = PendingRequest(
                    pid=head.pid,
                    element=el,
                    cin=key,
                    decision=decision,
                    wanted=wanted,
                    arrived_at=self.cycle,
                )
                self._pending_by_cin.add(key)
                done.append(key)
                if decision.serialize:
                    self._serial_queues.setdefault(el, deque()).append(req)
                else:
                    self._pending.append(req)
        for key in done:
            self._route_candidates.discard(key)

    def _phase_grant(self) -> None:
        # serialized grants first: FIFO, atomic, reserving the whole switch
        for el, queue in self._serial_queues.items():
            if not queue:
                continue
            req = queue[0]
            if all(self._vcs[k].owner is None for k in req.wanted):
                queue.popleft()
                self._establish(req)
                self._log(
                    f"S-XB {el} grants serialized multicast to packet {req.pid}"
                )
        # progressive reservations, oldest request first
        blocked = {el for el, q in self._serial_queues.items() if q}
        remaining: List[PendingRequest] = []
        for req in self._pending:
            if req.element in blocked:
                remaining.append(req)
                continue
            if req.decision.policy == "any":
                # adaptive grant: take the first free candidate this cycle
                chosen = next(
                    (k for k in req.wanted if self._vcs[k].owner is None),
                    None,
                )
                if chosen is None:
                    remaining.append(req)
                    continue
                self._vcs[chosen].owner = req.pid
                req.wanted = (chosen,)
                req.reserved.add(chosen)
                self._establish(req, owners_set=True)
                continue
            for k in req.missing:
                vc = self._vcs[k]
                if vc.owner is None:
                    vc.owner = req.pid
                    req.reserved.add(k)
            if req.complete:
                self._establish(req, owners_set=True)
            else:
                remaining.append(req)
        self._pending = remaining

    def _establish(self, req: PendingRequest, owners_set: bool = False) -> None:
        if not owners_set:
            for k in req.wanted:
                self._vcs[k].owner = req.pid
        vc_in = self._vcs[req.cin]
        head = vc_in.head()
        assert head is not None and head.is_head and head.pid == req.pid
        assert head.header is not None
        # the switch rewrites the RC bit as the header passes
        new_header = head.header.with_rc(req.decision.rc)
        head.header = new_header
        conn = Connection(
            pid=req.pid,
            element=req.element,
            cin=req.cin,
            couts=req.wanted,
            started_at=self.cycle,
        )
        self._connections[(req.element, req.cin)] = conn
        self._pending_by_cin.discard(req.cin)
        self._last_progress = self.cycle

    def _phase_transfer(self) -> None:
        used_links: Set[int] = set()
        finished: List[Tuple[ElementId, Optional[VCKey]]] = []
        for conn_key, conn in self._connections.items():
            if conn.is_injection:
                assert conn.supply is not None
                flit = conn.supply[0] if conn.supply else None
            else:
                assert conn.cin is not None
                flit = self._vcs[conn.cin].head()
                if flit is not None and flit.pid != conn.pid:
                    flit = None  # next packet's flits queued behind our tail
            if flit is None:
                continue
            # all branches must accept the flit this cycle (lockstep copy)
            ready = True
            for k in conn.couts:
                vc = self._vcs[k]
                if vc.free_space <= 0 or k[0] in used_links:
                    ready = False
                    break
            if not ready:
                continue
            if conn.is_injection:
                conn.supply.popleft()
            else:
                self._vcs[conn.cin].popleft_checked(conn.pid)
            single = len(conn.couts) == 1
            for k in conn.couts:
                vc = self._vcs[k]
                if single:
                    clone = flit  # popped: safe to move instead of copy
                else:
                    clone = SimFlit(
                        pid=flit.pid,
                        kind=flit.kind,
                        seq=flit.seq,
                        header=flit.header,
                    )
                vc.buffer.append(clone)
                if flit.is_head:
                    self._route_candidates.add(k)
                used_links.add(k[0])
                self._channel_busy[k[0]] = self._channel_busy.get(k[0], 0) + 1
            self._flit_moves += 1
            self._last_progress = self.cycle
            if flit.is_tail:
                for k in conn.couts:
                    self._vcs[k].owner = None
                if conn.cin is not None and self._vcs[conn.cin].buffer:
                    self._route_candidates.add(conn.cin)
                finished.append(conn_key)
                if not conn.couts:  # drop connection swallowed the packet
                    inf = self._in_flight.pop(conn.pid, None)
                    if inf is not None:
                        self._dropped.append(inf.packet)
        for key in finished:
            del self._connections[key]

    def _phase_inject(self) -> None:
        due = self._scheduled.pop(self.cycle, None)
        if due:
            for p in due:
                p.injected_at = self.cycle
                self.send(p)
        for gen in self._generators:
            gen(self)
        for coord in list(self._nonempty_sources):
            queue = self._source_queues[coord]
            if not queue:
                self._nonempty_sources.discard(coord)
                continue
            inj = self.topo.injection_channel(coord)
            key = (inj.cid, 0)
            vc = self._vcs[key]
            if vc.owner is not None:
                continue
            packet = queue.popleft()
            if not queue:
                self._nonempty_sources.discard(coord)
            vc.owner = packet.pid
            flits: Deque[SimFlit] = deque()
            kinds = packet.flit_kinds()
            for i, kind in enumerate(kinds):
                flits.append(
                    SimFlit(
                        pid=packet.pid,
                        kind=kind,
                        seq=i,
                        header=packet.header if i == 0 else None,
                    )
                )
            conn = Connection(
                pid=packet.pid,
                element=("PE", coord),
                cin=None,
                couts=(key,),
                supply=flits,
                started_at=self.cycle,
            )
            self._connections[(("PE", coord), None)] = conn
            self._in_flight[packet.pid] = InFlightPacket(
                packet=packet,
                expected_deliveries=self.expected_deliveries(packet),
            )
            self._injected += 1
            self._last_progress = self.cycle
            self._log(f"packet {packet.pid} injected at PE{coord}")

    # -------------------------------------------------------------- driver
    def step(self) -> None:
        self._phase_eject()
        self._phase_route()
        self._phase_grant()
        self._phase_transfer()
        self._phase_inject()
        self.cycle += 1

    def pending_work(self) -> bool:
        return bool(
            self._in_flight
            or self._scheduled
            or any(self._source_queues.values())
        )

    def run(
        self,
        max_cycles: Optional[int] = None,
        until_drained: bool = True,
        raise_on_deadlock: bool = False,
    ) -> SimResult:
        """Run until drained (or ``max_cycles``); returns the result.

        Detects deadlock via the stall watchdog; with ``raise_on_deadlock``
        a :class:`DeadlockError` carries the report, otherwise the result's
        ``deadlock`` field does.
        """
        horizon = self.cycle + (max_cycles if max_cycles is not None else self.config.max_cycles)
        while self.cycle < horizon:
            if until_drained and not self.pending_work() and not self._generators:
                break
            self.step()
            if (
                self._in_flight
                and self.cycle - self._last_progress > self.config.stall_limit
            ):
                if self._fabric_quiescent():
                    # nothing is moving because nothing is left in the
                    # fabric: an online reconfiguration orphaned these
                    # packets' remaining deliveries.  Account them as lost.
                    for pid in list(self._in_flight):
                        self._log(f"packet {pid} orphaned by reconfiguration")
                        self._kill_packet(pid)
                    continue
                self._deadlock = self._diagnose_deadlock()
                if raise_on_deadlock:
                    raise DeadlockError(self._deadlock)
                break
        return self.result()

    def _fabric_quiescent(self) -> bool:
        """No connection, request or buffered flit anywhere."""
        return (
            not self._connections
            and not self._pending
            and not any(self._serial_queues.values())
            and all(not vc.buffer for vc in self._vcs.values())
        )

    def result(self) -> SimResult:
        return SimResult(
            cycles=self.cycle,
            delivered=list(self._delivered),
            dropped=list(self._dropped),
            deadlock=self._deadlock,
            flit_moves=self._flit_moves,
            injected=self._injected,
            channel_busy=dict(self._channel_busy),
            in_flight_at_end=len(self._in_flight),
        )

    # ------------------------------------------------------------ deadlock
    def _diagnose_deadlock(self) -> DeadlockReport:
        waits: Dict[int, Tuple[ElementId, Tuple[Channel, ...], Tuple[int, ...]]] = {}
        edges: Dict[int, Set[int]] = {}

        def note(req: PendingRequest, missing: Sequence[VCKey], holders: Sequence[int]) -> None:
            chans = tuple(self._vcs[k].channel for k in missing)
            waits[req.pid] = (req.element, chans, tuple(holders))
            edges.setdefault(req.pid, set()).update(holders)

        for req in self._pending:
            holders = []
            missing = req.missing
            for k in missing:
                owner = self._vcs[k].owner
                if owner is not None and owner != req.pid:
                    holders.append(owner)
            q = self._serial_queues.get(req.element)
            if q:
                holders.append(q[0].pid)
            note(req, missing, holders)
        for el, q in self._serial_queues.items():
            for i, req in enumerate(q):
                holders = []
                for k in req.missing:
                    owner = self._vcs[k].owner
                    if owner is not None and owner != req.pid:
                        holders.append(owner)
                if i > 0:
                    holders.append(q[0].pid)
                note(req, req.missing, holders)
        # connections stalled on a full downstream buffer whose head flit
        # belongs to another packet (its undrained tail blocks our advance)
        for conn in self._connections.values():
            for k in conn.couts:
                vc = self._vcs[k]
                if vc.free_space > 0:
                    continue
                head = vc.head()
                if head is not None and head.pid != conn.pid:
                    edges.setdefault(conn.pid, set()).add(head.pid)
                    el, chans, holders = waits.get(
                        conn.pid, (conn.element, (), ())
                    )
                    waits[conn.pid] = (
                        el,
                        chans + (vc.channel,),
                        holders + (head.pid,),
                    )
        cycle_pids = _find_pid_cycle(edges)
        return DeadlockReport(
            cycle=self.cycle,
            cycle_pids=tuple(cycle_pids),
            waits=waits,
            blocked_pids=tuple(sorted(self._in_flight)),
        )


def _find_pid_cycle(edges: Dict[int, Set[int]]) -> List[int]:
    """Any cycle in the packet wait-for graph (empty if none found)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    parent: Dict[int, int] = {}

    for start in edges:
        if color.get(start, WHITE) is not WHITE:
            continue
        stack = [(start, iter(sorted(edges.get(start, ()))))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                st = color.get(nxt, WHITE)
                if st == GRAY:
                    # nxt is an ancestor on the DFS stack: walk back to it
                    path = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        path.append(cur)
                    return list(reversed(path))
                if st == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return []
