"""The user-facing simulator: a thin facade over the cycle engine.

The phase pipeline, fabric state and hook bus live in
:mod:`repro.sim.engine` (the engine layer).  :class:`NetworkSimulator`
specializes the engine with the MD-crossbar-specific machinery the
experiments need -- today that is the *online fault event*
(:meth:`NetworkSimulator.inject_fault`), which models a switch dying while
the network is running and the facility reconfiguring around it.

Everything observable is public: read ``sim.vcs``, ``sim.connections``,
``sim.in_flight`` etc. or subscribe to ``sim.hooks``; nothing outside
:mod:`repro.sim` should ever touch a ``_``-prefixed attribute of the
simulator.
"""

from __future__ import annotations

from typing import Set

from ..core.packet import RC
from .engine import (  # noqa: F401  (re-exported for compatibility)
    CycleEngine,
    DeadlockError,
    DeadlockReport,
    HookBus,
    PHASES,
    ReconfigReport,
    RecoveryEvent,
    SimResult,
    find_pid_cycle,
)

#: legacy alias; prefer :func:`repro.sim.engine.find_pid_cycle`
_find_pid_cycle = find_pid_cycle


class NetworkSimulator(CycleEngine):
    """Flit-level simulator over an adapter-routed topology.

    All simulation mechanics are inherited from :class:`CycleEngine`; this
    class adds the online-fault facility of the MD crossbar network.
    """

    # -------------------------------------------------- online fault events
    def inject_fault(self, fault) -> ReconfigReport:
        """A switch fails *while the network is running*.

        Models what the hardware facility's "information ... is set in
        advance" looks like at the moment of failure: the facility
        reconfigures (new fault bits, possibly a substituted S-XB/D-XB per
        rules R1/R2), and every packet currently holding a channel into or
        out of the dead switch is lost -- cut-through hardware cannot
        un-send flits; recovery of lost messages belongs to the software
        layers above.  Subsequent packets route around the fault.

        Only available on MD crossbar adapters (the facility under study).
        Raises :class:`~repro.core.config.ConfigError` if the accumulated
        fault set is beyond the facility (rule R1/R2 infeasible).
        """
        from ..core.switch_logic import SwitchLogic

        logic = getattr(self.adapter, "logic", None)
        if logic is None:
            raise TypeError("inject_fault needs an MD crossbar adapter")
        new_cfg = logic.config.with_faults(logic.config.all_faults() + (fault,))
        new_logic = SwitchLogic(self.topo, new_cfg)

        dead_el = fault.element
        touching = {
            ch.cid
            for ch in list(self.topo.channels_from(dead_el))
            + list(self.topo.channels_to(dead_el))
        }
        victims: Set[int] = set()
        for key, vc in self.vcs.items():
            if key[0] in touching:
                if vc.owner is not None:
                    victims.add(vc.owner)
                victims.update(f.pid for f in vc.buffer)
        for conn in self.connections.values():
            if conn.element == dead_el:
                victims.add(conn.pid)
        lost = [self.kill_packet(pid) for pid in sorted(victims)]
        self.adapter.logic = new_logic
        self._live_nodes = tuple(
            c for c in self.topo.node_coords() if not self._node_is_dead(c)
        )
        # rebase surviving broadcasts: a dead PE will never take delivery
        live = set(self._live_nodes)
        for pid, inf in list(self.in_flight.items()):
            if inf.packet.header.rc in (RC.BROADCAST_REQUEST, RC.BROADCAST):
                inf.expected_deliveries = len(inf.served) + len(
                    live - inf.served
                )
                if inf.done:
                    inf.packet.delivered_at = self.cycle
                    self.delivered.append(inf.packet)
                    del self.in_flight[pid]
        self._last_progress = self.cycle
        self.log(f"fault injected: {fault}; {len(lost)} packets lost")
        return ReconfigReport(
            cycle=self.cycle,
            fault=fault,
            lost_packets=[p for p in lost if p is not None],
            new_sxb_line=new_cfg.sxb_line,
            new_order=new_cfg.order,
        )
