"""The cycle engine: phase pipeline, fabric state and the public hook bus.

This is the **engine layer** of the simulator.  :class:`CycleEngine` owns
the fabric resource state (:mod:`repro.sim.fabric`) and executes the five
per-cycle phases of cut-through switching:

1. **eject** -- PEs drain their input buffers (a destination always sinks,
   so ejection channels never deadlock by themselves);
2. **route** -- header flits at buffer heads are routed by the adapter and
   become pending grant requests;
3. **grant** -- serialized (S-XB) requests are granted atomically in FIFO
   order, reserving the whole crossbar; other requests reserve free output
   ports progressively, in arrival order, and connect when complete;
4. **transfer** -- every connection moves at most one flit, multicast
   branches in lockstep, one flit per physical channel per cycle; a tail
   flit releases the connection's output ports;
5. **inject** -- queued packets at PEs take the injection channel when free.

A watchdog declares deadlock when packets are in flight but nothing has
moved for ``stall_limit`` cycles (it fires on exactly the
``stall_limit``-th stalled cycle), then extracts the cyclic wait from the
pending requests' wait-for graph -- reproducing the paper's Figs. 5 and 9
dynamically.  With ``config.recovery`` the engine instead breaks the
detected cycle online: one victim packet's flits are drained back out of
the fabric and the packet is re-queued at its source (a DBR-style
rotate), bounded by ``config.recovery_limit`` before the watchdog
escalates to the ordinary :class:`DeadlockReport` halt.

Instrumentation attaches through the :class:`HookBus` -- never by poking
engine internals:

* ``on_cycle_start(engine)``            -- before the eject phase of a cycle;
* ``on_phase_end(engine, phase)``       -- after each of the five phases;
* ``on_inject(engine, packet, coord, queued)`` -- a packet entered the
  source queue (``queued=True``, fired from :meth:`CycleEngine.send`) or
  took the injection channel into the fabric (``queued=False``, fired
  from the inject phase);
* ``on_grant(engine, connection)``      -- a request was granted a switch;
* ``on_block(engine, event)``           -- a packet failed to make progress
  this cycle (a :class:`BlockEvent`: refused grant, S-XB serialization
  wait, head-of-line wait behind another packet, or a transfer stalled on
  a full downstream buffer).  Emitted once per blocked resource per cycle;
* ``on_deliver(packet, coord, cycle)``  -- a tail flit ejected at a PE
  (once per recipient for broadcasts);
* ``on_deadlock(engine, report)``       -- the stall watchdog fired and the
  run is halting (never fired for a cycle that recovery broke);
* ``on_recovery(engine, event)``        -- a recovery action broke a
  detected cycle (a :class:`RecoveryEvent`: victim pid, attempt number,
  the cyclic-wait pids);
* ``on_log(cycle, message)``            -- the engine's event log.

:class:`~repro.sim.monitor.SimMonitor`, :class:`~repro.sim.monitor.TextTrace`
and the software collectives are all hook subscribers.  The observable
fabric state (``vcs``, ``connections``, ``pending``, ``serial_queues``,
``source_queues``, ``in_flight`` and the counters) is public: hooks may
read it freely; only the engine writes it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..core.coords import Coord
from ..core.packet import Packet, RC
from ..topology.base import Channel, ElementId, ElementKind, element_kind
from .adapter import RoutingAdapter
from .config import SimConfig
from .fabric import (
    Connection,
    InFlightPacket,
    PendingRequest,
    SimFlit,
    VCKey,
    VCState,
    flit_body_run,
)

#: the five phases, in execution order (the names ``on_phase_end`` reports)
PHASES: Tuple[str, ...] = ("eject", "route", "grant", "transfer", "inject")

#: shortest bulk flit-run transfer window worth taking: below this the
#: window bookkeeping costs more than the per-cycle phases it replaces
MIN_STREAM_WINDOW = 2

#: the ``why`` values a :class:`BlockEvent` can carry, in the order the
#: engine emits them within one cycle
BLOCK_KINDS: Tuple[str, ...] = ("serial", "grant", "hol", "transfer")


@dataclass
class BlockEvent:
    """One packet's failure to make progress during one cycle.

    ``why`` is one of :data:`BLOCK_KINDS`:

    * ``"serial"``   -- waiting in an S-XB serialization queue;
    * ``"grant"``    -- a progressive request still missing output ports;
    * ``"hol"``      -- the header is queued behind another packet's flits
      in an input buffer (cut-through head-of-line blocking);
    * ``"transfer"`` -- an established connection could not move its flit
      (full downstream buffer or the physical link was used this cycle).

    ``wanted`` names the (channel cid, vc) resources the packet is waiting
    for -- for attribution, the first entry is the refusing port.
    """

    pid: int
    element: ElementId
    wanted: Tuple[VCKey, ...]
    why: str


class HookBus:
    """Subscription lists for the engine's instrumentation events.

    Each attribute is a plain list of callables, appended in subscription
    order and invoked in that order.  The ``on_*`` helpers return the
    callable so they can be used as decorators::

        @sim.hooks.on_deliver
        def saw(packet, coord, cycle): ...
    """

    __slots__ = (
        "cycle_start",
        "phase_end",
        "inject",
        "grant",
        "block",
        "deliver",
        "deadlock",
        "recovery",
        "log",
    )

    def __init__(self) -> None:
        self.cycle_start: List[Callable[["CycleEngine"], None]] = []
        self.phase_end: List[Callable[["CycleEngine", str], None]] = []
        self.inject: List[
            Callable[["CycleEngine", Packet, Coord, bool], None]
        ] = []
        self.grant: List[Callable[["CycleEngine", Connection], None]] = []
        self.block: List[Callable[["CycleEngine", BlockEvent], None]] = []
        self.deliver: List[Callable[[Packet, Coord, int], None]] = []
        self.deadlock: List[Callable[["CycleEngine", "DeadlockReport"], None]] = []
        self.recovery: List[Callable[["CycleEngine", "RecoveryEvent"], None]] = []
        self.log: List[Callable[[int, str], None]] = []

    def on_cycle_start(self, fn: Callable[["CycleEngine"], None]):
        self.cycle_start.append(fn)
        return fn

    def on_phase_end(self, fn: Callable[["CycleEngine", str], None]):
        self.phase_end.append(fn)
        return fn

    def on_inject(
        self, fn: Callable[["CycleEngine", Packet, Coord, bool], None]
    ):
        self.inject.append(fn)
        return fn

    def on_grant(self, fn: Callable[["CycleEngine", Connection], None]):
        self.grant.append(fn)
        return fn

    def on_block(self, fn: Callable[["CycleEngine", BlockEvent], None]):
        self.block.append(fn)
        return fn

    def on_deliver(self, fn: Callable[[Packet, Coord, int], None]):
        self.deliver.append(fn)
        return fn

    def on_deadlock(self, fn: Callable[["CycleEngine", "DeadlockReport"], None]):
        self.deadlock.append(fn)
        return fn

    def on_recovery(self, fn: Callable[["CycleEngine", "RecoveryEvent"], None]):
        self.recovery.append(fn)
        return fn

    def on_log(self, fn: Callable[[int, str], None]):
        self.log.append(fn)
        return fn

    def unsubscribe(self, fn) -> None:
        """Remove ``fn`` from every event it is subscribed to."""
        for name in self.__slots__:
            lst = getattr(self, name)
            while fn in lst:
                lst.remove(fn)


@dataclass
class DeadlockReport:
    """Diagnosis of a detected deadlock."""

    cycle: int
    #: packet ids forming the cyclic wait, in order
    cycle_pids: Tuple[int, ...]
    #: pid -> (element it is blocked at, channels it waits for, their holders)
    waits: Dict[int, Tuple[ElementId, Tuple[Channel, ...], Tuple[int, ...]]]
    #: every in-flight pid at detection time
    blocked_pids: Tuple[int, ...]

    def describe(self) -> str:
        lines = [f"deadlock detected at cycle {self.cycle}; cyclic wait:"]
        for pid in self.cycle_pids:
            el, chans, holders = self.waits[pid]
            chan_s = ", ".join(repr(c) for c in chans)
            lines.append(
                f"  packet {pid} blocked at {el} waiting for [{chan_s}] "
                f"held by {sorted(set(holders))}"
            )
        return "\n".join(lines)


class DeadlockError(RuntimeError):
    """Raised by :meth:`CycleEngine.run` when ``raise_on_deadlock``."""

    def __init__(self, report: DeadlockReport) -> None:
        super().__init__(report.describe())
        self.report = report


@dataclass
class RecoveryEvent:
    """One online deadlock-recovery action (``config.recovery``).

    The watchdog detected a cyclic wait, picked ``victim`` out of
    ``cycle_pids`` by the configured policy, drained its flits back out
    of the fabric and re-queued it at its source.  ``attempt`` counts
    recoveries so far in this run (1-based), bounded by
    ``config.recovery_limit``.
    """

    cycle: int
    victim: int
    attempt: int
    cycle_pids: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"cycle {self.cycle}: recovery {self.attempt} rotated packet "
            f"{self.victim} out of cyclic wait {list(self.cycle_pids)}"
        )


@dataclass
class ReconfigReport:
    """What an online fault event cost (see ``NetworkSimulator.inject_fault``)."""

    cycle: int
    fault: object
    lost_packets: List[Packet]
    new_sxb_line: Tuple[int, ...]
    new_order: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"cycle {self.cycle}: {self.fault}; lost {len(self.lost_packets)} "
            f"in-transit packets; facility reconfigured "
            f"(order {self.new_order}, S-XB line {self.new_sxb_line})"
        )


@dataclass
class SimResult:
    """Outcome of a simulation run."""

    cycles: int
    delivered: List[Packet]
    dropped: List[Packet]
    deadlock: Optional[DeadlockReport]
    flit_moves: int
    injected: int
    #: busy cycles per channel cid (a flit crossed the physical link)
    channel_busy: Dict[int, int]
    in_flight_at_end: int
    #: deadlock-recovery actions taken (0 unless ``config.recovery``);
    #: ``injected`` counts fabric injections, so a recovered packet
    #: contributes one extra injection per rotation
    recoveries: int = 0
    #: victim pid per recovery action, in order
    recovery_victims: Tuple[int, ...] = ()

    @property
    def deadlocked(self) -> bool:
        return self.deadlock is not None

    @property
    def latencies(self) -> List[int]:
        return [p.latency for p in self.delivered if p.latency is not None]

    @property
    def mean_latency(self) -> float:
        lats = self.latencies
        return sum(lats) / len(lats) if lats else float("nan")

    def throughput_flits_per_cycle(self) -> float:
        """Delivered payload flits per cycle (unicast deliveries only count
        once; broadcast copies count per recipient)."""
        if self.cycles == 0:
            return 0.0
        return self.flit_moves / self.cycles

    def fingerprint(self) -> Tuple:
        """A compact, order-sensitive identity of the run, for parity and
        regression tests.  Packet ids are rebased to the smallest id seen
        so the fingerprint is stable across processes (pids are a
        process-global counter)."""
        pids = [p.pid for p in self.delivered + self.dropped]
        pids.extend(self.recovery_victims)
        if self.deadlock is not None:
            pids.extend(self.deadlock.cycle_pids)
        base = min(pids) if pids else 0
        return (
            self.cycles,
            tuple(
                (p.pid - base, p.injected_at, p.delivered_at)
                for p in self.delivered
            ),
            tuple(p.pid - base for p in self.dropped),
            None
            if self.deadlock is None
            else (
                self.deadlock.cycle,
                tuple(p - base for p in self.deadlock.cycle_pids),
            ),
            self.flit_moves,
            self.injected,
            self.in_flight_at_end,
            self.recoveries,
            tuple(v - base for v in self.recovery_victims),
        )


class CycleEngine:
    """Phase pipeline over an adapter-routed topology.

    The engine is the only writer of the fabric state; observers subscribe
    to :attr:`hooks`.  The workload API (:meth:`send`, :meth:`add_generator`)
    and the run loop live here too; the MD-crossbar-specific online fault
    machinery lives on the :class:`~repro.sim.network.NetworkSimulator`
    facade.
    """

    def __init__(
        self,
        adapter: RoutingAdapter,
        config: Optional[SimConfig] = None,
        trace: Optional[Callable[[int, str], None]] = None,
        hooks: Optional[HookBus] = None,
    ) -> None:
        self.adapter = adapter
        self.topo = adapter.topo
        self.config = config or SimConfig()
        self.hooks = hooks or HookBus()
        if trace is not None:
            # legacy event-log path; prefer hooks.on_log / TextTrace.attach
            self.hooks.log.append(trace)
        self.trace = trace
        if hasattr(adapter, "attach"):
            adapter.attach(self)
        self.cycle = 0
        #: virtual-channel state per (channel cid, vc index)
        self.vcs: Dict[VCKey, VCState] = {}
        for ch in self.topo.channels():
            for v in range(self.config.num_vcs):
                self.vcs[(ch.cid, v)] = VCState(
                    channel=ch, vc=v, capacity=self.config.buffer_depth
                )
        # input VC keys per switch element, in deterministic order
        self._inputs: Dict[ElementId, List[VCKey]] = {}
        self._pe_inputs: List[Tuple[Coord, VCKey]] = []
        for el in self.topo.elements():
            kind = element_kind(el)
            if kind is ElementKind.PE:
                for ch in self.topo.channels_to(el):
                    for v in range(self.config.num_vcs):
                        self._pe_inputs.append((el[1], (ch.cid, v)))
                continue
            keys: List[VCKey] = []
            for ch in self.topo.channels_to(el):
                for v in range(self.config.num_vcs):
                    keys.append((ch.cid, v))
            self._inputs[el] = keys
        # active-set bookkeeping for the ejection channels: the fast path
        # ejects only buffers a transfer landed flits into, iterated in
        # ``_pe_inputs`` order (delivery order is fingerprint-visible)
        self._pe_key_order: Dict[VCKey, int] = {
            key: i for i, (_, key) in enumerate(self._pe_inputs)
        }
        self._pe_coord_of: Dict[VCKey, Coord] = {
            key: coord for coord, key in self._pe_inputs
        }
        self._eject_pending: Set[VCKey] = set()
        #: elements whose S-XB serialization queue is non-empty
        self._serial_active: Set[ElementId] = set()

        #: established switch connections, keyed by (element, input VC)
        self.connections: Dict[Tuple[ElementId, Optional[VCKey]], Connection] = {}
        #: non-serialized grant requests, in arrival order
        self.pending: List[PendingRequest] = []
        self._pending_by_cin: Set[VCKey] = set()
        #: input VC keys that may hold an unrouted header (performance:
        #: the route phase scans this small set instead of every buffer)
        self._route_candidates: Set[VCKey] = set()
        #: (element, decision.outputs) -> wanted VCKey tuple.  Routing the
        #: same decision at the same switch always wants the same output
        #: keys, so the route phase resolves channels through this memo
        #: instead of re-querying the topology per header (bounded by the
        #: distinct output sets the routing logic produces per switch).
        self._wanted_memo: Dict[Tuple, Tuple[VCKey, ...]] = {}
        #: element owning each switch-input key, precomputed
        self._element_of_input: Dict[VCKey, ElementId] = {}
        for el, keys in self._inputs.items():
            for key in keys:
                self._element_of_input[key] = el
        #: serialized (S-XB) FIFO queues per element
        self.serial_queues: Dict[ElementId, Deque[PendingRequest]] = {}
        #: packets queued at each source PE, awaiting injection
        self.source_queues: Dict[Coord, Deque[Packet]] = {
            c: deque() for c in self.topo.node_coords()
        }
        self._nonempty_sources: Set[Coord] = set()
        #: injection-channel VC key per PE, precomputed for the inject phase
        self._inj_key: Dict[Coord, VCKey] = {
            c: (self.topo.injection_channel(c).cid, 0)
            for c in self.topo.node_coords()
        }
        self._scheduled: Dict[int, List[Packet]] = {}
        #: per-cycle traffic generator callbacks (run in the inject phase)
        self.generators: List[Callable[["CycleEngine"], None]] = []
        #: packets injected but not yet fully delivered, by pid
        self.in_flight: Dict[int, InFlightPacket] = {}
        self.delivered: List[Packet] = []
        self.dropped: List[Packet] = []
        self.flit_moves = 0
        self.injected = 0
        self.channel_busy: Dict[int, int] = {}
        self._last_progress = 0
        self.deadlock: Optional[DeadlockReport] = None
        #: recovery actions taken this run (see ``config.recovery``)
        self.recoveries = 0
        self.recovery_victims: List[int] = []
        #: which cycle driver actually ran, and why the SoA kernel handed
        #: a run back to the active driver (None when it never did)
        self.engine_used = (
            "legacy_scan" if self.config.legacy_scan else self.config.engine
        )
        self.engine_fallback: Optional[str] = None
        self._soa = None  # lazily built SoAKernel (static tables survive)
        # a tuple so the hot ``live_nodes`` property can hand it out
        # without copying (generators read it every cycle)
        self._live_nodes = tuple(
            c
            for c in self.topo.node_coords()
            if not self._node_is_dead(c)
        )

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Return the engine to its just-constructed state, keeping the
        built fabric.

        Everything expensive survives -- the topology, the adapter, the
        precomputed input/injection tables and the pure-topology wanted
        memo -- while every piece of mutable run state (buffers,
        connections, queues, counters, the deadlock report, the hook bus)
        is restored to what ``__init__`` left it.  A reset engine must
        behave byte-identically to a freshly built one; the warm-worker
        runtime (:mod:`repro.runtime.session`) leans on this to reuse
        networks across sweep points, and ``tests/sim/test_reset.py``
        holds it to fingerprint parity.

        Workload and instrumentation do not survive: generators,
        scheduled sends and every hook subscription are dropped
        (collectors must be re-attached), mirroring a fresh construction.
        Live nodes are recomputed from the adapter's *current* logic --
        a caller undoing an online fault event must restore the pristine
        logic first (see ``NetworkCache``).
        """
        self.cycle = 0
        for vc in self.vcs.values():
            vc.buffer.clear()
            vc.owner = None
        self._eject_pending.clear()
        self._serial_active.clear()
        self.connections.clear()
        self.pending.clear()
        self._pending_by_cin.clear()
        self._route_candidates.clear()
        self.serial_queues.clear()
        for q in self.source_queues.values():
            q.clear()
        self._nonempty_sources.clear()
        self._scheduled.clear()
        self.generators.clear()
        self.in_flight.clear()
        # fresh lists: past SimResults got copies, but external holders of
        # the live attributes must not see a reused engine's traffic
        self.delivered = []
        self.dropped = []
        self.flit_moves = 0
        self.injected = 0
        self.channel_busy.clear()
        self._last_progress = 0
        self.deadlock = None
        self.recoveries = 0
        self.recovery_victims = []
        self.engine_used = (
            "legacy_scan" if self.config.legacy_scan else self.config.engine
        )
        self.engine_fallback = None
        self.hooks = HookBus()
        if self.trace is not None:
            self.hooks.log.append(self.trace)
        self._live_nodes = tuple(
            c for c in self.topo.node_coords() if not self._node_is_dead(c)
        )

    # ------------------------------------------------------------- helpers
    def _node_is_dead(self, coord: Coord) -> bool:
        logic = getattr(self.adapter, "logic", None)
        if logic is None:
            return False
        return logic.registry.router_is_faulty(coord)

    @property
    def live_nodes(self) -> Sequence[Coord]:
        return self._live_nodes

    def log(self, msg: str) -> None:
        """Emit an event-log line to the ``on_log`` subscribers."""
        for fn in self.hooks.log:
            fn(self.cycle, msg)

    # --------------------------------------------------------- observability
    def buffered_flits(self) -> int:
        """Total flits sitting in channel buffers."""
        return sum(len(vc.buffer) for vc in self.vcs.values())

    def queued_packets(self) -> int:
        """Packets waiting in source queues (not yet injected)."""
        return sum(len(q) for q in self.source_queues.values())

    def blocked_requests(self) -> int:
        """Grant requests waiting for output ports (incl. serialized)."""
        return len(self.pending) + sum(
            len(q) for q in self.serial_queues.values()
        )

    # ------------------------------------------------------------ workload
    def send(self, packet: Packet, at_cycle: Optional[int] = None) -> None:
        """Queue a packet for injection at its source PE.

        ``at_cycle`` defers queueing (used by the scripted figure
        scenarios); by default the packet enters the source queue now.
        """
        if at_cycle is not None and at_cycle > self.cycle:
            self._scheduled.setdefault(at_cycle, []).append(packet)
            return
        src = packet.source
        if src not in self.source_queues:
            raise ValueError(f"unknown source PE {src}")
        if self._node_is_dead(src):
            raise ValueError(f"source PE {src} is disconnected by the fault")
        packet.injected_at = self.cycle if packet.injected_at is None else packet.injected_at
        self.source_queues[src].append(packet)
        self._nonempty_sources.add(src)
        if self.hooks.inject:
            for fn in self.hooks.inject:
                fn(self, packet, src, True)

    def add_generator(self, fn: Callable[["CycleEngine"], None]) -> None:
        """Register a per-cycle traffic generator callback.

        Generators *produce workload* and therefore keep the run loop alive
        (``until_drained`` never breaks while generators are registered);
        passive observers should subscribe to :attr:`hooks` instead.
        """
        self.generators.append(fn)

    def add_delivery_listener(
        self, fn: Callable[[Packet, Coord, int], None]
    ) -> None:
        """Register ``fn(packet, pe_coord, cycle)``, called whenever a tail
        flit is ejected at a PE (once per recipient for broadcasts).  Used
        by the software collectives, which react to message arrival the way
        a PE's message handler would.  Equivalent to ``hooks.on_deliver``."""
        self.hooks.deliver.append(fn)

    def expected_deliveries(self, packet: Packet) -> int:
        if packet.header.rc in (RC.BROADCAST_REQUEST, RC.BROADCAST):
            return len(self._live_nodes)
        return 1

    def _scrub_packet(self, pid: int) -> None:
        """Drain every trace of a packet out of the fabric: connections,
        requests, queue entries, buffered flits and channel ownership.
        Does not touch ``in_flight`` -- :meth:`kill_packet` drops the
        packet afterwards, deadlock recovery re-queues it instead."""
        for key in [k for k, c in self.connections.items() if c.pid == pid]:
            conn = self.connections.pop(key)
            for cout in conn.couts:
                if self.vcs[cout].owner == pid:
                    self.vcs[cout].owner = None
        self.pending = [r for r in self.pending if r.pid != pid]
        for el, q in self.serial_queues.items():
            for r in list(q):
                if r.pid == pid:
                    q.remove(r)
            if not q:
                self._serial_active.discard(el)
        for key, vc in self.vcs.items():
            if vc.owner == pid:
                vc.owner = None
            if any(f.pid == pid for f in vc.buffer):
                vc.buffer = type(vc.buffer)(
                    f for f in vc.buffer if f.pid != pid
                )
                if vc.buffer:
                    # removing the scrubbed flits can expose another
                    # packet's header (or undelivered flits) at the head
                    # of the buffer: re-activate it for the fast path
                    if key in self._pe_key_order:
                        self._eject_pending.add(key)
                    elif vc.buffer[0].is_head:
                        self._route_candidates.add(key)
        self._pending_by_cin = {
            k
            for k in self._pending_by_cin
            if any(r.cin == k for r in self.pending)
            or any(
                r.cin == k for q in self.serial_queues.values() for r in q
            )
        }

    def kill_packet(self, pid: int) -> Optional[Packet]:
        """Remove every trace of a packet from the fabric."""
        self._scrub_packet(pid)
        inf = self.in_flight.pop(pid, None)
        if inf is not None:
            self.dropped.append(inf.packet)
            return inf.packet
        return None

    # -------------------------------------------------------------- phases
    def phase_eject(self) -> None:
        deliver_hooks = self.hooks.deliver
        if self.config.legacy_scan:
            inputs: Sequence[Tuple[Coord, VCKey]] = self._pe_inputs
            self._eject_pending.clear()
        elif self._eject_pending:
            # only buffers that received flits since the last ejection --
            # sorted into ``_pe_inputs`` order because the delivery order
            # (and hence the fingerprint) depends on it
            inputs = [
                (self._pe_coord_of[k], k)
                for k in sorted(
                    self._eject_pending, key=self._pe_key_order.__getitem__
                )
            ]
            self._eject_pending.clear()
        else:
            return
        log_on = bool(self.hooks.log)
        for coord, key in inputs:
            buf = self.vcs[key].buffer
            while buf:
                flit = buf.popleft()
                self.flit_moves += 1
                self._last_progress = self.cycle
                if flit.is_tail:
                    inf = self.in_flight.get(flit.pid)
                    if inf is not None:
                        inf.deliveries += 1
                        inf.served.add(coord)
                        for listener in deliver_hooks:
                            listener(inf.packet, coord, self.cycle)
                        if inf.done:
                            inf.packet.delivered_at = self.cycle
                            self.delivered.append(inf.packet)
                            del self.in_flight[flit.pid]
                            if log_on:
                                self.log(
                                    f"packet {flit.pid} completed at PE{coord}"
                                )

    def phase_route(self) -> None:
        done: List[VCKey] = []
        vcs = self.vcs
        element_of_input = self._element_of_input
        connections = self.connections
        pending_by_cin = self._pending_by_cin
        # sorted: candidate order decides pending-list order, which decides
        # grant-conflict winners -- set iteration order must never leak
        # into results (and the SoA kernel routes in the same vkey order)
        for key in sorted(self._route_candidates):
            el = element_of_input.get(key)
            if el is None:  # a PE input: ejection handles it
                done.append(key)
                continue
            vc = vcs[key]
            buf = vc.buffer
            head = buf[0] if buf else None
            if head is None:
                done.append(key)
                continue
            if not head.is_head:
                continue  # a header queued behind another packet's flits
            if (el, key) in connections or key in pending_by_cin:
                continue
            assert head.header is not None
            try:
                decision = self.adapter.decide(
                    el, vc.channel.src, key[1], head.header
                )
            except Exception as exc:
                from ..core.switch_logic import RoutingError

                if not isinstance(exc, RoutingError):
                    raise
                # a packet caught mid-flight by an online facility
                # reconfiguration can land in a state the new rules do
                # not produce (e.g. RC=DETOUR at a crossbar that is no
                # longer the D-XB); cut-through hardware would lose it
                self.log(f"packet {head.pid} unroutable at {el}: {exc}")
                self.kill_packet(head.pid)
                continue
            if decision.drop:
                conn = Connection(
                    pid=head.pid,
                    element=el,
                    cin=key,
                    couts=(),
                    started_at=self.cycle,
                )
                self.connections[(el, key)] = conn
                inf = self.in_flight.get(head.pid)
                if inf is not None:
                    inf.dropped = True
                self.log(f"packet {head.pid} dropped at {el}")
                done.append(key)
                continue
            wkey = (el, decision.outputs)
            wanted = self._wanted_memo.get(wkey)
            if wanted is None:
                wanted = tuple(
                    (self.topo.channel(el, out_el).cid, out_vc)
                    for out_el, out_vc in decision.outputs
                )
                self._wanted_memo[wkey] = wanted
            req = PendingRequest(
                pid=head.pid,
                element=el,
                cin=key,
                decision=decision,
                wanted=wanted,
                arrived_at=self.cycle,
            )
            self._pending_by_cin.add(key)
            done.append(key)
            if decision.serialize:
                self.serial_queues.setdefault(el, deque()).append(req)
                self._serial_active.add(el)
            else:
                self.pending.append(req)
        for key in done:
            self._route_candidates.discard(key)

    def phase_grant(self) -> None:
        # serialized grants first: FIFO, atomic, reserving the whole switch.
        # ``_serial_active`` tracks the non-empty queues, but when any is
        # active the scan must still walk ``serial_queues`` itself so the
        # grant (and log-line) order matches the legacy full scan exactly.
        if self._serial_active or self.config.legacy_scan:
            for el, queue in self.serial_queues.items():
                if not queue:
                    continue
                req = queue[0]
                if all(self.vcs[k].owner is None for k in req.wanted):
                    queue.popleft()
                    if not queue:
                        self._serial_active.discard(el)
                    self._establish(req)
                    if self.hooks.log:
                        self.log(
                            f"S-XB {el} grants serialized multicast "
                            f"to packet {req.pid}"
                        )
        # progressive reservations, oldest request first
        if self.config.legacy_scan:
            blocked = {el for el, q in self.serial_queues.items() if q}
        else:
            blocked = self._serial_active
        remaining: List[PendingRequest] = []
        vcs = self.vcs
        for req in self.pending:
            if req.element in blocked:
                remaining.append(req)
                continue
            if req.decision.policy == "any":
                # adaptive grant: take the first free candidate this cycle
                chosen = next(
                    (k for k in req.wanted if vcs[k].owner is None),
                    None,
                )
                if chosen is None:
                    remaining.append(req)
                    continue
                vcs[chosen].owner = req.pid
                req.wanted = (chosen,)
                req.reserved.add(chosen)
                self._establish(req, owners_set=True)
                continue
            reserved = req.reserved
            complete = True
            for k in req.wanted:
                if k in reserved:
                    continue
                vc = vcs[k]
                if vc.owner is None:
                    vc.owner = req.pid
                    reserved.add(k)
                else:
                    complete = False
            if complete:
                self._establish(req, owners_set=True)
            else:
                remaining.append(req)
        self.pending = remaining
        if self.hooks.block:
            self._emit_block_events()

    def _emit_block_events(self) -> None:
        """Report every packet that failed to advance through grant this
        cycle: serialized queue members, refused progressive requests, and
        headers stuck behind another packet's flits in an input buffer.
        Runs after the grant phase so freshly granted headers are not
        counted; transfer stalls are reported from the transfer phase."""
        fns = self.hooks.block
        for el, queue in self.serial_queues.items():
            for req in queue:
                ev = BlockEvent(
                    pid=req.pid,
                    element=el,
                    wanted=req.missing or req.wanted,
                    why="serial",
                )
                for fn in fns:
                    fn(self, ev)
        for req in self.pending:
            ev = BlockEvent(
                pid=req.pid,
                element=req.element,
                wanted=req.missing or req.wanted,
                why="grant",
            )
            for fn in fns:
                fn(self, ev)
        # headers queued behind other traffic: they wait for their own
        # input channel to drain (the resource named in ``wanted``)
        for key in self._route_candidates:
            el = self._element_of_input.get(key)
            if el is None:
                continue
            for i, flit in enumerate(self.vcs[key].buffer):
                if i > 0 and flit.is_head:
                    ev = BlockEvent(
                        pid=flit.pid, element=el, wanted=(key,), why="hol"
                    )
                    for fn in fns:
                        fn(self, ev)

    def _establish(self, req: PendingRequest, owners_set: bool = False) -> None:
        if not owners_set:
            for k in req.wanted:
                self.vcs[k].owner = req.pid
        vc_in = self.vcs[req.cin]
        head = vc_in.head()
        assert head is not None and head.is_head and head.pid == req.pid
        assert head.header is not None
        # the switch rewrites the RC bit as the header passes
        new_header = head.header.with_rc(req.decision.rc)
        head.header = new_header
        conn = Connection(
            pid=req.pid,
            element=req.element,
            cin=req.cin,
            couts=req.wanted,
            started_at=self.cycle,
        )
        self.connections[(req.element, req.cin)] = conn
        self._pending_by_cin.discard(req.cin)
        self._last_progress = self.cycle
        for fn in self.hooks.grant:
            fn(self, conn)

    def phase_transfer(self) -> None:
        used_links: Set[int] = set()
        finished: List[Tuple[ElementId, Optional[VCKey]]] = []
        block_fns = self.hooks.block
        vcs = self.vcs
        pe_keys = self._pe_key_order
        eject_pending = self._eject_pending
        route_candidates = self._route_candidates
        channel_busy = self.channel_busy
        for conn_key, conn in self.connections.items():
            cin = conn.cin
            if cin is None:  # injection pseudo-connection
                supply = conn.supply
                flit = supply[0] if supply else None
            else:
                buf = vcs[cin].buffer
                flit = buf[0] if buf else None
                if flit is not None and flit.pid != conn.pid:
                    flit = None  # next packet's flits queued behind our tail
            if flit is None:
                continue
            couts = conn.couts
            # all branches must accept the flit this cycle (lockstep copy)
            ready = True
            stalled_on: Optional[VCKey] = None
            for k in couts:
                vc = vcs[k]
                if len(vc.buffer) >= vc.capacity or k[0] in used_links:
                    ready = False
                    stalled_on = k
                    break
            if not ready:
                if block_fns:
                    ev = BlockEvent(
                        pid=conn.pid,
                        element=conn.element,
                        wanted=(stalled_on,),
                        why="transfer",
                    )
                    for fn in block_fns:
                        fn(self, ev)
                continue
            if cin is None:
                conn.supply.popleft()
            else:
                buf.popleft()  # == flit: peeked and pid-checked above
            single = len(couts) == 1
            is_head = flit.is_head
            for k in couts:
                if single:
                    clone = flit  # popped: safe to move instead of copy
                else:
                    clone = SimFlit(
                        pid=flit.pid,
                        kind=flit.kind,
                        seq=flit.seq,
                        header=flit.header,
                    )
                vcs[k].buffer.append(clone)
                if is_head:
                    route_candidates.add(k)
                if k in pe_keys:
                    eject_pending.add(k)
                cid = k[0]
                used_links.add(cid)
                channel_busy[cid] = channel_busy.get(cid, 0) + 1
            self.flit_moves += 1
            self._last_progress = self.cycle
            if flit.is_tail:
                for k in couts:
                    vcs[k].owner = None
                if cin is not None and vcs[cin].buffer:
                    route_candidates.add(cin)
                finished.append(conn_key)
                if not couts:  # drop connection swallowed the packet
                    inf = self.in_flight.pop(conn.pid, None)
                    if inf is not None:
                        self.dropped.append(inf.packet)
        for key in finished:
            del self.connections[key]

    def phase_inject(self) -> None:
        due = self._scheduled.pop(self.cycle, None)
        if due:
            for p in due:
                p.injected_at = self.cycle
                self.send(p)
        for gen in self.generators:
            gen(self)
        for coord in list(self._nonempty_sources):
            queue = self.source_queues[coord]
            if not queue:
                self._nonempty_sources.discard(coord)
                continue
            key = self._inj_key[coord]
            vc = self.vcs[key]
            if vc.owner is not None:
                continue
            packet = queue.popleft()
            if not queue:
                self._nonempty_sources.discard(coord)
            vc.owner = packet.pid
            flits: Deque[SimFlit] = deque()
            kinds = packet.flit_kinds()
            for i, kind in enumerate(kinds):
                flits.append(
                    SimFlit(
                        pid=packet.pid,
                        kind=kind,
                        seq=i,
                        header=packet.header if i == 0 else None,
                    )
                )
            conn = Connection(
                pid=packet.pid,
                element=("PE", coord),
                cin=None,
                couts=(key,),
                supply=flits,
                started_at=self.cycle,
            )
            self.connections[(("PE", coord), None)] = conn
            self.in_flight[packet.pid] = InFlightPacket(
                packet=packet,
                expected_deliveries=self.expected_deliveries(packet),
            )
            self.injected += 1
            self._last_progress = self.cycle
            if self.hooks.inject:
                for fn in self.hooks.inject:
                    fn(self, packet, coord, False)
            if self.hooks.log:
                self.log(f"packet {packet.pid} injected at PE{coord}")

    # -------------------------------------------------------------- driver
    def step(self) -> None:
        hooks = self.hooks
        if hooks.cycle_start:
            for fn in hooks.cycle_start:
                fn(self)
        if hooks.phase_end:
            self.phase_eject()
            for fn in hooks.phase_end:
                fn(self, "eject")
            self.phase_route()
            for fn in hooks.phase_end:
                fn(self, "route")
            self.phase_grant()
            for fn in hooks.phase_end:
                fn(self, "grant")
            self.phase_transfer()
            for fn in hooks.phase_end:
                fn(self, "transfer")
            self.phase_inject()
            for fn in hooks.phase_end:
                fn(self, "inject")
        else:
            self.phase_eject()
            self.phase_route()
            self.phase_grant()
            self.phase_transfer()
            self.phase_inject()
        self.cycle += 1

    def pending_work(self) -> bool:
        if self.config.legacy_scan:
            return bool(
                self.in_flight
                or self._scheduled
                or any(self.source_queues.values())
            )
        return bool(
            self.in_flight or self._scheduled or self._nonempty_sources
        )

    # ---------------------------------------------------- active-set driver
    def _idle(self) -> bool:
        """Nothing anywhere in the fabric can act this cycle (only a
        scheduled ``send`` or a generator wake could create work)."""
        return not (
            self.in_flight
            or self.connections
            or self.pending
            or self._serial_active
            or self._route_candidates
            or self._eject_pending
            or self._nonempty_sources
        )

    def _next_event_cycle(self, horizon: int) -> Optional[int]:
        """Earliest future cycle at which new work can appear while the
        fabric is idle, or None when some generator's wake cycle is
        unknowable (an opaque generator, or one that is active right now)
        -- in which case the caller must step cycle by cycle."""
        nxt = horizon
        for gen in self.generators:
            wake_fn = getattr(gen, "next_wake", None)
            if wake_fn is None:
                return None
            wake = wake_fn(self.cycle)
            if wake is None:
                continue
            if wake <= self.cycle:
                return None
            if wake < nxt:
                nxt = wake
        if self._scheduled:
            nxt = min(nxt, min(self._scheduled))
        return nxt

    def _stream_window(self, horizon: int) -> int:
        """Number of cycles every established connection can stream body
        flits for without crossing an observable event (a header move, a
        tail move, a grant, an ejection completing, an injection, or a
        generator wake).  0 means the window machinery does not apply and
        the engine must take an ordinary :meth:`step`.

        During such a window every connection moves exactly one body flit
        per cycle: each filled output is itself the input of a streaming
        connection (headers are all parked, so every downstream circuit is
        established), so fills and drains balance and one free slot at the
        window start stays free throughout -- buffer occupancies are
        invariant, which is what makes the bulk move order-independent.
        """
        if (
            self._route_candidates
            or self.pending
            or self._serial_active
            or self._eject_pending
            or self._nonempty_sources
            or not self.connections
        ):
            return 0
        k = horizon - self.cycle
        for gen in self.generators:
            wake_fn = getattr(gen, "next_wake", None)
            if wake_fn is None:
                return 0
            wake = wake_fn(self.cycle)
            if wake is None:
                continue
            if wake <= self.cycle:
                return 0
            k = min(k, wake - self.cycle)
        if self._scheduled:
            k = min(k, min(self._scheduled) - self.cycle)
        if k < MIN_STREAM_WINDOW:
            return 0
        drained = {
            c.cin for c in self.connections.values() if c.cin is not None
        }
        for conn in self.connections.values():
            flits = (
                conn.supply
                if conn.is_injection
                else self.vcs[conn.cin].buffer
            )
            run = flit_body_run(flits, conn.pid, k)
            if run == 0:
                return 0
            k = min(k, run)
            for key in conn.couts:
                vc = self.vcs[key]
                if key in self._pe_key_order:
                    # the PE sinks a flit per cycle; the window may not
                    # swallow a head or tail already sitting in the buffer
                    if any(not f.is_body for f in vc.buffer):
                        return 0
                else:
                    if vc.free_space <= 0:
                        return 0
                    if key not in drained:
                        # nothing drains this buffer during the window
                        k = min(k, vc.free_space)
            if k < MIN_STREAM_WINDOW:
                return 0
        # one flit per physical link per cycle: every cout must be distinct
        links = [key[0] for c in self.connections.values() for key in c.couts]
        if len(links) != len(set(links)):
            return 0
        return k

    def _advance_stream_window(self, k: int) -> None:
        """Move ``k`` body flits through every connection at once --
        exactly what ``k`` ordinary transfer phases would have done, with
        the per-flit deque churn collapsed into one bulk move."""
        for conn in self.connections.values():
            src = (
                conn.supply
                if conn.is_injection
                else self.vcs[conn.cin].buffer
            )
            moved = [src.popleft() for _ in range(k)]
            single = len(conn.couts) == 1
            for key in conn.couts:
                vc = self.vcs[key]
                if key in self._pe_key_order:
                    # the PE ejects one flit per cycle while k land: the
                    # initial content and k-1 of the newcomers drain, the
                    # last flit is still in the buffer at window end
                    self.flit_moves += len(vc.buffer) + k - 1
                    vc.buffer.clear()
                    vc.buffer.append(moved[-1])
                    self._eject_pending.add(key)
                elif single:
                    vc.buffer.extend(moved)
                else:
                    vc.buffer.extend(
                        SimFlit(pid=f.pid, kind=f.kind, seq=f.seq)
                        for f in moved
                    )
                self.channel_busy[key[0]] = (
                    self.channel_busy.get(key[0], 0) + k
                )
            self.flit_moves += k
        self.cycle += k
        self._last_progress = self.cycle - 1

    def run(
        self,
        max_cycles: Optional[int] = None,
        until_drained: bool = True,
        raise_on_deadlock: bool = False,
    ) -> SimResult:
        """Run until drained (or ``max_cycles``); returns the result.

        Detects deadlock via the stall watchdog; with ``raise_on_deadlock``
        a :class:`DeadlockError` carries the report, otherwise the result's
        ``deadlock`` field does.  With ``config.recovery`` the watchdog
        first attempts an online recovery (:meth:`_try_recover`) and only
        halts once the cycle is unbreakable or ``recovery_limit`` is
        spent.

        Unless ``config.legacy_scan`` is set or a per-cycle hook
        (``cycle_start``/``phase_end``) is subscribed, the loop takes the
        active-set fast path: idle stretches are skipped to the next
        generator wake or scheduled send, and steady-state body-flit
        streams advance as bulk windows.  With ``config.engine == "soa"``
        the batched :class:`~repro.sim.soa.SoAKernel` drives the cycles
        instead, handing back to the active driver on any fabric feature
        it does not vectorize (``engine_used`` / ``engine_fallback``
        record the outcome).  Either way the results are byte-identical
        to stepping every cycle.
        """
        horizon = self.cycle + (max_cycles if max_cycles is not None else self.config.max_cycles)
        legacy = self.config.legacy_scan
        hooks = self.hooks
        soa = None
        if self.config.engine == "soa" and not legacy:
            soa = self._soa_kernel()
            self.engine_used = "soa"
        while self.cycle < horizon:
            if until_drained and not self.pending_work() and not self.generators:
                break
            if soa is not None:
                outcome = soa.drive(horizon, until_drained)
                if outcome == "bail":
                    self.engine_used = "active"
                    self.engine_fallback = soa.fallback_reason
                    soa = None
                    continue
                if outcome != "stalled":
                    continue
                # stalled: the kernel synced out on the exact detection
                # cycle -- fall through to the watchdog block unstepped
            else:
                if not (legacy or hooks.cycle_start or hooks.phase_end):
                    if self._idle():
                        target = self._next_event_cycle(horizon)
                        if target is not None and target > self.cycle:
                            # skipping idle cycles is not progress: the
                            # watchdog baseline must stay where the last
                            # real flit movement left it, exactly as a
                            # cycle-by-cycle legacy scan would leave it
                            self.cycle = target
                            continue
                    else:
                        k = self._stream_window(horizon)
                        if k:
                            self._advance_stream_window(k)
                            continue
                self.step()
            if (
                self.in_flight
                and self.cycle - self._last_progress >= self.config.stall_limit
            ):
                if self.fabric_quiescent():
                    # nothing is moving because nothing is left in the
                    # fabric: an online reconfiguration orphaned these
                    # packets' remaining deliveries.  Account them as lost.
                    for pid in list(self.in_flight):
                        self.log(f"packet {pid} orphaned by reconfiguration")
                        self.kill_packet(pid)
                    continue
                report = self.diagnose_deadlock()
                if self.config.recovery and self._try_recover(report):
                    continue
                self.deadlock = report
                for fn in self.hooks.deadlock:
                    fn(self, self.deadlock)
                if raise_on_deadlock:
                    raise DeadlockError(self.deadlock)
                break
        return self.result()

    def _soa_kernel(self):
        """The engine's :class:`~repro.sim.soa.SoAKernel`, built lazily
        (its static topology tables survive resets and repeated runs)."""
        if self._soa is None:
            from .soa import SoAKernel

            self._soa = SoAKernel(self)
        return self._soa

    def fabric_quiescent(self) -> bool:
        """No connection, request or buffered flit anywhere."""
        return (
            not self.connections
            and not self.pending
            and not any(self.serial_queues.values())
            and all(not vc.buffer for vc in self.vcs.values())
        )

    def result(self) -> SimResult:
        return SimResult(
            cycles=self.cycle,
            delivered=list(self.delivered),
            dropped=list(self.dropped),
            deadlock=self.deadlock,
            flit_moves=self.flit_moves,
            injected=self.injected,
            channel_busy=dict(self.channel_busy),
            in_flight_at_end=len(self.in_flight),
            recoveries=self.recoveries,
            recovery_victims=tuple(self.recovery_victims),
        )

    # ------------------------------------------------------------ deadlock
    def _try_recover(self, report: DeadlockReport) -> bool:
        """Break a detected cyclic wait online (``config.recovery``).

        Picks one victim out of ``report.cycle_pids`` by the configured
        policy, drains its flits back out of the fabric (releasing every
        channel it holds, which un-blocks the rest of the cycle) and
        re-queues the original packet at its source PE -- the DBR-style
        rotate.  The packet keeps its pid and ``injected_at``, so its
        eventual latency includes the full recovery cost and fingerprints
        stay pid-stable.

        Returns False to escalate to the ordinary deadlock halt: when the
        per-run ``recovery_limit`` is exhausted, when no cycle was found,
        or when every cycle member has already reached a recipient (a
        partially-delivered broadcast cannot be rotated without
        duplicating deliveries).
        """
        if self.recoveries >= self.config.recovery_limit:
            return False
        eligible = [
            pid
            for pid in report.cycle_pids
            if pid in self.in_flight
            and self.in_flight[pid].deliveries == 0
            and not self.in_flight[pid].dropped
        ]
        if not eligible:
            return False
        pick = max if self.config.recovery_victim == "youngest" else min
        victim = pick(eligible)
        packet = self.in_flight.pop(victim).packet
        self._scrub_packet(victim)
        self.recoveries += 1
        self.recovery_victims.append(victim)
        # re-queue at the source: the next inject phase drains it back
        # into the fabric (``send`` preserves the original ``injected_at``
        # and re-fires the queued-inject hook)
        self.send(packet)
        self._last_progress = self.cycle
        event = RecoveryEvent(
            cycle=self.cycle,
            victim=victim,
            attempt=self.recoveries,
            cycle_pids=report.cycle_pids,
        )
        for fn in self.hooks.recovery:
            fn(self, event)
        if self.hooks.log:
            self.log(event.describe())
        return True

    def diagnose_deadlock(self) -> DeadlockReport:
        waits: Dict[int, Tuple[ElementId, Tuple[Channel, ...], Tuple[int, ...]]] = {}
        edges: Dict[int, Set[int]] = {}

        def note(req: PendingRequest, missing: Sequence[VCKey], holders: Sequence[int]) -> None:
            chans = tuple(self.vcs[k].channel for k in missing)
            waits[req.pid] = (req.element, chans, tuple(holders))
            edges.setdefault(req.pid, set()).update(holders)

        for req in self.pending:
            holders = []
            missing = req.missing
            for k in missing:
                owner = self.vcs[k].owner
                if owner is not None and owner != req.pid:
                    holders.append(owner)
            q = self.serial_queues.get(req.element)
            if q:
                holders.append(q[0].pid)
            note(req, missing, holders)
        for el, q in self.serial_queues.items():
            for i, req in enumerate(q):
                holders = []
                for k in req.missing:
                    owner = self.vcs[k].owner
                    if owner is not None and owner != req.pid:
                        holders.append(owner)
                if i > 0:
                    holders.append(q[0].pid)
                note(req, req.missing, holders)
        # connections stalled on a full downstream buffer whose head flit
        # belongs to another packet (its undrained tail blocks our advance)
        for conn in self.connections.values():
            for k in conn.couts:
                vc = self.vcs[k]
                if vc.free_space > 0:
                    continue
                head = vc.head()
                if head is not None and head.pid != conn.pid:
                    edges.setdefault(conn.pid, set()).add(head.pid)
                    el, chans, holders = waits.get(
                        conn.pid, (conn.element, (), ())
                    )
                    waits[conn.pid] = (
                        el,
                        chans + (vc.channel,),
                        holders + (head.pid,),
                    )
        cycle_pids = find_pid_cycle(edges)
        return DeadlockReport(
            cycle=self.cycle,
            cycle_pids=tuple(cycle_pids),
            waits=waits,
            blocked_pids=tuple(sorted(self.in_flight)),
        )


def find_pid_cycle(edges: Dict[int, Set[int]]) -> List[int]:
    """Any cycle in the packet wait-for graph (empty if none found)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    parent: Dict[int, int] = {}

    for start in edges:
        if color.get(start, WHITE) is not WHITE:
            continue
        stack = [(start, iter(sorted(edges.get(start, ()))))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                st = color.get(nxt, WHITE)
                if st == GRAY:
                    # nxt is an ancestor on the DFS stack: walk back to it
                    path = [node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        path.append(cur)
                    return list(reversed(path))
                if st == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return []
