"""Command-line tools: ``python -m repro <command> ...``.

Subcommands:

* ``route``     -- print the route of a transfer or broadcast, with faults
* ``check``     -- deadlock analysis (tiered CDG + ordering certificate)
* ``census``    -- single- or two-fault tolerance census
* ``simulate``  -- run uniform traffic and print latency statistics
* ``sweep``     -- latency-vs-load sweep over the runtime executors
* ``trace``     -- capture a structured JSONL event trace of one run
* ``report``    -- span/metric report from a live run or a saved trace
* ``bench``     -- pinned perf suite with regression comparison
* ``figures``   -- replay the paper's Figs. 5/6/9/10 scenarios
* ``machine``   -- describe an SR2201 configuration
* ``kernels``   -- run application kernels across topologies
* ``collectives`` -- hardware vs software broadcast and barrier costs
* ``replay``    -- replay a recorded workload trace (JSONL)
* ``doctor``    -- cross-validate every analysis layer for a configuration

Examples::

    python -m repro route --shape 4x3 --src 0,0 --dst 2,2 --fault rtr:2,0
    python -m repro check --shape 4x3 --fault rtr:2,0 --detour naive
    python -m repro census --shape 4x3 --pairs
    python -m repro simulate --shape 8x8 --load 0.3 --cycles 600
    python -m repro sweep --shape 8x8 --loads 0.05:0.4:8 --jobs 4 --json
    python -m repro sweep --shape 8x8 --loads 0.05:0.4:8 --scheme hyperx_ft
    python -m repro sweep --shape 4x3 --loads 0.1,0.3 --metrics
    python -m repro trace --shape 4x3 --load 0.2 --cycles 100 --out run.jsonl
    python -m repro machine --config SR2201/2048

``--scheme`` selects a registered routing scheme (see ``repro.routing``);
``--detour`` picks the paper facility's D-XB variant (safe vs naive) and
only applies to the default ``dxb`` scheme.  ``--recovery`` (on sweep,
trace, report and figures) switches the engine from deadlock *avoidance*
to online deadlock *recovery*: detected cycles are broken by rotating one
victim packet back to its source instead of halting the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from .core import (
    Broadcast,
    Fault,
    SwitchLogic,
    Unicast,
    analyze_deadlock_freedom,
    compute_route,
    make_config,
)
from .core.config import BroadcastMode, ConfigError, DetourScheme
from .topology import MDCrossbar


def parse_shape(text: str):
    try:
        return tuple(int(v) for v in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad shape {text!r}; use e.g. 4x3")


def parse_coord(text: str):
    try:
        return tuple(int(v) for v in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad coordinate {text!r}; use e.g. 2,0")


def parse_fault(text: str) -> Fault:
    """``rtr:x,y[,z]`` or ``xb:<dim>:<line coords>``."""
    kind, _, rest = text.partition(":")
    if kind == "rtr":
        return Fault.router(parse_coord(rest))
    if kind == "xb":
        dim_s, _, line_s = rest.partition(":")
        try:
            return Fault.crossbar(int(dim_s), parse_coord(line_s) if line_s else ())
        except ValueError:
            pass
    raise argparse.ArgumentTypeError(
        f"bad fault {text!r}; use rtr:x,y or xb:dim:line (e.g. xb:0:1)"
    )


def _build(args) -> tuple:
    topo = MDCrossbar(args.shape)
    cfg = make_config(
        args.shape,
        faults=tuple(args.fault or ()),
        detour_scheme=DetourScheme(args.detour),
        broadcast_mode=BroadcastMode(args.broadcast),
    )
    return topo, SwitchLogic(topo, cfg)


def _build_sim(args, stall_limit: int):
    """A simulator honoring ``--scheme``/``--recovery``/``--engine``
    (trace/report).

    An explicit routing scheme dispatches through the
    :mod:`repro.routing` registry; the default keeps the legacy paper
    facility path, which additionally honors ``--detour``/``--broadcast``.
    """
    from .sim import MDCrossbarAdapter, NetworkSimulator, SimConfig

    recovery = bool(getattr(args, "recovery", False))
    engine = getattr(args, "engine", "active") or "active"
    scheme = getattr(args, "scheme", "") or ""
    if scheme in ("", "dxb"):
        _, logic = _build(args)
        return NetworkSimulator(
            MDCrossbarAdapter(logic),
            SimConfig(
                stall_limit=stall_limit, recovery=recovery, engine=engine
            ),
        )
    from .routing import make_scheme

    sch = make_scheme(scheme, args.shape, faults=tuple(args.fault or ()))
    return NetworkSimulator(
        sch.adapter,
        SimConfig(
            num_vcs=sch.num_vcs,
            stall_limit=stall_limit,
            recovery=recovery,
            engine=engine,
        ),
    )


def _note_engine_fallback(args, sim) -> None:
    """One stderr line when a requested ``--engine soa`` run was handed
    to the scalar driver (trace/report always subscribe per-cycle hooks,
    which the kernel does not support) -- the fallback is correct by
    contract but should never be silent at the CLI."""
    if getattr(args, "engine", "active") == "soa" and sim.engine_used != "soa":
        print(
            f"note: soa engine fell back to the scalar driver "
            f"({sim.engine_fallback})",
            file=sys.stderr,
        )


def _add_scheme(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scheme", default="",
        help="routing scheme from the repro.routing registry "
             "(dxb/adaptive/hyperx_ft/mesh/torus/hypercube/fullmesh_novc; "
             "default: the kind's default scheme)",
    )


def _add_engine(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--engine", choices=("active", "soa"), default="active",
        help="cycle driver: the scalar active-set engine (default) or "
             "the batched structure-of-arrays kernel "
             "(fingerprint-identical; soa hands unsupported state back "
             "to the scalar driver mid-run)",
    )


def _add_recovery(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--recovery", action="store_true",
        help="recover from detected deadlock online (drain one victim of "
             "the cyclic wait and re-inject it) instead of halting",
    )


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--shape", type=parse_shape, default=(4, 3), help="e.g. 4x3 or 4x4x4")
    p.add_argument(
        "--fault", type=parse_fault, action="append",
        help="rtr:x,y or xb:dim:line; repeatable for multi-fault analysis",
    )
    p.add_argument(
        "--detour", choices=[s.value for s in DetourScheme], default="safe",
        help="detour scheme: safe (D-XB = S-XB, paper Sec. 5) or naive",
    )
    p.add_argument(
        "--broadcast", choices=[m.value for m in BroadcastMode],
        default="serialized", help="broadcast facility mode",
    )


def cmd_route(args) -> int:
    from .viz import render_rc_legend, render_route

    topo, logic = _build(args)
    if args.bcast:
        tree = compute_route(topo, logic, Broadcast(args.src))
        print(f"broadcast from PE{args.src}: {len(tree.delivered)} PEs covered")
        show = args.dst or max(topo.node_coords())
        print(render_route(tree, show))
    else:
        if args.dst is None:
            print("route: --dst is required for point-to-point", file=sys.stderr)
            return 2
        tree = compute_route(topo, logic, Unicast(args.src, args.dst))
        print(render_route(tree, args.dst))
        print(f"crossbar hops: {tree.xb_hops_to(args.dst)}")
    print(render_rc_legend())
    return 0


def cmd_check(args) -> int:
    from .core.ordering import CertificateError, certify_deadlock_freedom

    topo, logic = _build(args)
    res = analyze_deadlock_freedom(topo, logic)
    print(
        f"tiered CDG analysis: {res.num_flows} flows, {res.num_edges} edges "
        f"-> deadlock free: {res.deadlock_free}"
    )
    if res.hazard is not None:
        print(res.hazard.describe())
        return 1
    try:
        cert = certify_deadlock_freedom(topo, logic)
        print(
            f"ordering certificate: {len(cert.rank)} channels ranked, "
            f"{cert.num_flows_verified} flows verified"
        )
    except CertificateError as e:
        print(f"ordering certificate: unavailable ({e})")
    return 0


def cmd_census(args) -> int:
    from .core.multifault import (
        all_single_faults,
        analyze_fault_set,
        fault_pair_census,
    )

    topo = MDCrossbar(args.shape)
    scheme = DetourScheme(args.detour)
    if args.pairs:
        summary = fault_pair_census(
            args.shape, detour_scheme=scheme, max_pairs=args.max_sets
        )
        print(f"two-fault census on {args.shape} ({scheme.value} scheme):")
        for line in summary.rows():
            print(" ", line)
        return 0 if summary.degraded == 0 else 1
    ok = True
    for fault in all_single_faults(args.shape):
        report = analyze_fault_set(topo, [fault], detour_scheme=scheme)
        print(report.row())
        ok = ok and (report.fully_tolerant or not report.feasible)
    return 0 if ok else 1


def cmd_simulate(args) -> int:
    from .sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
    from .sim.stats import LatencyStats
    from .traffic import BernoulliInjector, get_pattern

    topo, logic = _build(args)
    sim = NetworkSimulator(
        MDCrossbarAdapter(logic), SimConfig(stall_limit=args.stall_limit)
    )
    gen = BernoulliInjector(
        load=args.load,
        packet_length=args.packet_length,
        pattern=get_pattern(args.pattern),
        seed=args.seed,
        stop_at=args.cycles,
        measure_from=args.cycles // 4,
    )
    sim.add_generator(gen)
    res = sim.run(max_cycles=args.cycles * 10, until_drained=False)
    stats = LatencyStats.from_packets(gen.measured_packets(res.delivered))
    print(
        f"{args.pattern} traffic at {args.load} flits/PE/cycle on "
        f"{'x'.join(map(str, args.shape))}: offered {gen.offered} packets, "
        f"delivered {len(res.delivered)}"
    )
    print(f"latency: {stats.row()}")
    if res.deadlocked:
        print(res.deadlock.describe())
        return 1
    return 0


def parse_loads(text: str) -> List[float]:
    """Comma list (``0.05,0.1``) or ``start:stop:count`` linear range."""
    try:
        if ":" in text:
            start_s, stop_s, count_s = text.split(":")
            start, stop, count = float(start_s), float(stop_s), int(count_s)
            if count < 1:
                raise ValueError
            if count == 1:
                return [start]
            step = (stop - start) / (count - 1)
            return [start + i * step for i in range(count)]
        return [float(v) for v in text.split(",") if v]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad loads {text!r}; use e.g. 0.05,0.1,0.2 or 0.05:0.4:8"
        )


def cmd_sweep(args) -> int:
    import contextlib
    import json as _json

    from .obs import LiveDashboard, SweepLedger
    from .routing import resolve_scheme
    from .runtime import RunSpec, SweepSession, seed_replicas

    # fail fast on unknown schemes / kind-scheme mismatches, before any
    # spec reaches an executor
    resolve_scheme(args.kind, args.scheme)
    specs = [
        RunSpec(
            kind=args.kind,
            shape=args.shape,
            load=load,
            pattern=args.pattern,
            packet_length=args.packet_length,
            warmup=args.warmup,
            window=args.window,
            drain=args.drain,
            seed=args.seed,
            stall_limit=args.stall_limit,
            faults=tuple(args.fault or ()),
            metrics=args.metrics,
            scheme=args.scheme,
            recovery=args.recovery,
            engine=args.engine,
        )
        for load in args.loads
    ]
    if args.seeds > 1:
        specs = seed_replicas(specs, list(range(args.seed, args.seed + args.seeds)))
    cache = None
    if args.cache:
        from .runtime import ResultCache

        cache = ResultCache(args.cache_dir)
    sink_cm = (
        open(args.ledger, "w")
        if args.ledger
        else contextlib.nullcontext(None)
    )
    with sink_cm as sink:
        # the ledger also feeds the --live dashboard's closing worker
        # bars, so --live records one even without --ledger
        ledger = (
            SweepLedger(sink=sink) if (args.ledger or args.live) else None
        )
        dash = LiveDashboard(len(specs)) if args.live else None
        with SweepSession(
            jobs=args.jobs, cache=cache, ledger=ledger
        ) as session:
            results = session.run(
                specs, progress=dash.progress if dash else None
            )
        info = session.last_run
    if dash is not None:
        dash.finish(ledger=ledger)
    # what actually ran (jobs<=1 and single-spec runs degrade to serial;
    # cached points never reach a worker): stderr, so --json stays pure
    print(f"ran {info.describe()}", file=sys.stderr)
    if cache is not None:
        print(cache.describe(), file=sys.stderr)
    if args.ledger:
        print(
            f"ledger: {len(ledger)} record(s) -> {args.ledger}",
            file=sys.stderr,
        )
    if args.json:
        print(_json.dumps([r.to_dict() for r in results], indent=2))
    else:
        shape_s = "x".join(map(str, args.shape))
        print(
            f"{args.kind} {shape_s} {args.pattern} traffic, "
            f"{len(specs)} points, jobs={args.jobs or 1} "
            f"({info.workers} effective worker(s), {info.chunks} chunk(s))"
        )
        for r in results:
            seed_s = f" seed={r.spec.seed}" if args.seeds > 1 else ""
            print(f"  {r.point.row()}{seed_s}")
        if args.metrics:
            from .obs import merge_metric_sets

            sets = [r.metrics for r in results]
            if cache is not None:
                sets.append(cache.metrics())
            merged = merge_metric_sets(sets)
            print("merged metrics across all points:")
            print("  " + merged.summary(top=5).replace("\n", "\n  "))
            if "latency_cycles" in merged:
                print("  latency histogram (cycles):")
                print(
                    "  " + merged["latency_cycles"].render().replace("\n", "\n  ")
                )
    return 1 if any(r.point.deadlocked for r in results) else 0


def cmd_campaign(args) -> int:
    import contextlib
    import json as _json

    from .analysis.campaign import CampaignSpec, run_campaign
    from .analysis.reliability import (
        mttf_no_facility,
        mttf_single_fault_facility,
    )
    from .obs import LiveDashboard, SweepLedger
    from .routing import resolve_scheme

    # fail fast, before any worker spawns: the campaign models the
    # md-crossbar fault facility, so the scheme must both resolve in the
    # registry and be one the R1/R2 oracle covers (CampaignSpec rejects
    # e.g. hyperx_ft, which routes md-crossbar but has no S-XB facility)
    kind, scheme = resolve_scheme("", args.scheme)
    if kind != "md-crossbar":
        from .core.config import ConfigError

        raise ConfigError(
            f"reliability campaigns model the md-crossbar facility; "
            f"scheme {scheme!r} routes {kind!r}"
        )
    spec = CampaignSpec(
        shape=args.shape,
        samples=args.samples,
        seed=args.seed,
        rate=args.rate,
        max_faults=args.max_faults,
        scheme=scheme,
        block_samples=args.block,
    ).validated()
    sink_cm = (
        open(args.ledger, "w")
        if args.ledger
        else contextlib.nullcontext(None)
    )
    with sink_cm as sink:
        ledger = (
            SweepLedger(sink=sink) if (args.ledger or args.live) else None
        )
        dash = LiveDashboard(spec.num_blocks) if args.live else None
        result = run_campaign(
            spec,
            jobs=args.jobs,
            ledger=ledger,
            progress=dash.progress if dash else None,
        )
    if dash is not None:
        dash.finish(ledger=ledger)
    est = result.estimate()
    rate_s = result.samples_done / result.wall_s if result.wall_s else 0.0
    print(
        f"ran {result.samples_done} samples in {result.blocks_done} "
        f"block(s) on {result.workers} worker(s) in {result.chunks} "
        f"chunk(s), {result.wall_s:.2f}s ({rate_s:,.0f} samples/s)",
        file=sys.stderr,
    )
    if args.ledger:
        print(
            f"ledger: {len(ledger)} record(s) -> {args.ledger}",
            file=sys.stderr,
        )
    if args.json:
        print(_json.dumps(result.to_dict(), indent=2))
        return 0
    from .topology.mdcrossbar import MDCrossbar

    n = len(MDCrossbar(spec.shape).switch_elements())
    base = mttf_no_facility(n, spec.rate)
    shape_s = "x".join(map(str, spec.shape))
    print(
        f"reliability campaign: {shape_s} ({n} switches), "
        f"{spec.samples} samples, seed {spec.seed}, "
        f"scheme {spec.scheme}, blocks of {spec.block_samples}"
    )
    print(f"no facility     : MTTF {base:.6f}  (1.00x)")
    single = mttf_single_fault_facility(n, spec.rate)
    print(f"paper facility  : MTTF {single:.6f}  ({single / base:.2f}x)")
    print(
        f"extended (multi): {est.row()} ({est.mean / base:.2f}x)"
    )
    print(f"identity: {result.identity_sha256}")
    table = result.disconnect_table()
    if table:
        print("P(disconnect | k faults), Wilson 95%:")
        print("  k    trials  disconnects      p      [lo, hi]")
        shown = table[:20]
        for row in shown:
            print(
                f"  {row['k']:<4d} {row['trials']:>7d}  {row['disconnects']:>11d}  "
                f"{row['p']:.4f}  [{row['wilson_lo']:.4f}, "
                f"{row['wilson_hi']:.4f}]"
            )
        if len(table) > len(shown):
            print(f"  ... {len(table) - len(shown)} more row(s), see --json")
    return 0


def cmd_trace(args) -> int:
    import contextlib

    from .obs import TraceRecorder
    from .traffic import BernoulliInjector, get_pattern

    sim = _build_sim(args, stall_limit=args.stall_limit)
    events = (
        tuple(args.event)
        if args.event
        else ("inject", "grant", "block", "deliver", "deadlock",
              "recovery", "log")
    )
    sink_cm = (
        open(args.out, "w")
        if args.out
        else contextlib.nullcontext(sys.stdout)
    )
    with sink_cm as sink:
        recorder = TraceRecorder(events=events, sink=sink).attach(sim)
        gen = BernoulliInjector(
            load=args.load,
            packet_length=args.packet_length,
            pattern=get_pattern(args.pattern),
            seed=args.seed,
            stop_at=args.cycles,
        )
        sim.add_generator(gen)
        res = sim.run(max_cycles=args.cycles * 10, until_drained=False)
    _note_engine_fallback(args, sim)
    # keep stdout pure JSONL when tracing to it; the summary goes to stderr
    print(
        f"traced {sorted(recorder.events)} for {res.cycles} cycles: "
        f"{len(res.delivered)} delivered"
        + (f" -> {args.out}" if args.out else ""),
        file=sys.stderr,
    )
    if res.deadlocked:
        print(res.deadlock.describe(), file=sys.stderr)
        return 1
    return 0


def cmd_report(args) -> int:
    from .obs import (
        ChannelUtilization,
        PacketSpanCollector,
        read_trace,
        spans_from_trace,
    )
    from .obs.report import render_report

    if args.sweep:
        from .obs import read_ledger
        from .obs.report import render_sweep_report

        with open(args.sweep) as f:
            header, records, malformed = read_ledger(f)
        if malformed:
            print(
                f"warning: skipped {len(malformed)} malformed ledger "
                f"line(s) (first: line {malformed[0]['line']}: "
                f"{malformed[0]['error']})",
                file=sys.stderr,
            )
        print(
            render_sweep_report(
                header,
                records,
                title=f"Sweep report: {args.sweep}",
                fmt=args.format,
                top=args.top,
            ),
            end="",
        )
        return 0

    if args.trace:
        with open(args.trace) as f:
            header, records, malformed = read_trace(f)
        if malformed:
            print(
                f"warning: skipped {len(malformed)} malformed trace line(s) "
                f"(first: line {malformed[0]['line']}: {malformed[0]['error']})",
                file=sys.stderr,
            )
        spans = spans_from_trace(header, records)
        recoveries = [r for r in records if r.get("kind") == "recovery"]
        run_info = {"trace": args.trace, "records": len(records)}
        if header is not None:
            run_info["schema"] = header.get("schema")
            shape = header.get("shape")
            if shape:
                run_info["shape"] = "x".join(map(str, shape))
        print(
            render_report(
                spans=spans,
                title=f"Trace report: {args.trace}",
                run_info=run_info,
                fmt=args.format,
                top=args.top,
                recoveries=recoveries,
            ),
            end="",
        )
        return 0

    from .obs.collectors import CollectorSuite
    from .traffic import BernoulliInjector, get_pattern

    sim = _build_sim(args, stall_limit=args.stall_limit)
    suite = CollectorSuite(sim)
    spans = PacketSpanCollector().attach(sim)
    recovery_records: List[dict] = []

    @sim.hooks.on_recovery
    def _saw_recovery(engine, event):
        recovery_records.append(
            {
                "cycle": event.cycle,
                "victim": event.victim,
                "attempt": event.attempt,
                "cycle_pids": list(event.cycle_pids),
            }
        )

    gen = BernoulliInjector(
        load=args.load,
        packet_length=args.packet_length,
        pattern=get_pattern(args.pattern),
        seed=args.seed,
        stop_at=args.cycles,
    )
    sim.add_generator(gen)
    res = sim.run(max_cycles=args.cycles * 10, until_drained=False)
    _note_engine_fallback(args, sim)
    spans.detach(sim)
    util = suite.find(ChannelUtilization)
    try:
        heatmap = util.heatmap() if util is not None else None
    except ValueError:  # heatmaps are 2D-only
        heatmap = None
    shape_s = "x".join(map(str, args.shape))
    print(
        render_report(
            spans=spans.span_set(),
            metrics=suite.metrics(),
            heatmap=heatmap,
            title=f"Run report: {args.pattern} traffic on {shape_s}",
            run_info={
                "shape": shape_s,
                "pattern": args.pattern,
                "load": args.load,
                "seed": args.seed,
                "cycles": res.cycles,
                "delivered": len(res.delivered),
            },
            fmt=args.format,
            top=args.top,
            recoveries=recovery_records,
        ),
        end="",
    )
    if res.deadlocked:
        print(res.deadlock.describe(), file=sys.stderr)
        return 1
    return 0


def cmd_bench(args) -> int:
    import os

    from .bench import (
        compare_bench,
        load_bench,
        render_bench,
        run_suite,
        write_bench,
    )

    doc = run_suite(
        smoke=args.smoke,
        label=args.label,
        progress=lambda msg: print(msg, file=sys.stderr),
        repeats=args.repeats,
        legacy_compare=not args.no_legacy_compare,
        profile_top=args.profile_top if args.profile else None,
    )
    os.makedirs(args.out_dir, exist_ok=True)
    out_path = os.path.join(args.out_dir, f"BENCH_{args.label}.json")
    write_bench(doc, out_path)
    print(render_bench(doc))
    if args.profile:
        for name, case in doc["cases"].items():
            if "profile" in case:
                print(f"\n--- cProfile {name} "
                      f"(top {args.profile_top} cumulative) ---")
                print(case["profile"].rstrip())
    print(f"wrote {out_path}")
    if args.compare:
        baseline = load_bench(args.compare)
        regressions = compare_bench(doc, baseline, threshold_pct=args.threshold)
        if regressions:
            print(f"REGRESSIONS vs {args.compare}:")
            for r in regressions:
                print(f"  {r.case}.{r.field}: {r.old} -> {r.new} ({r.note})")
            return 1
        print(f"no regressions vs {args.compare} (threshold {args.threshold}%)")
    return 0


def cmd_figures(args) -> int:
    from .core import Header, Packet, RC
    from .sim import MDCrossbarAdapter, NetworkSimulator, SimConfig

    shape = (4, 3)

    def scenario(name, mode, scheme, fault, sends, expect_deadlock):
        topo = MDCrossbar(shape)
        cfg = make_config(
            shape, faults=(fault,) if fault else (),
            broadcast_mode=mode, detour_scheme=scheme,
        )
        sim = NetworkSimulator(
            MDCrossbarAdapter(SwitchLogic(topo, cfg)),
            SimConfig(stall_limit=200, recovery=args.recovery),
        )
        for cycle, src, dst, rc in sends:
            sim.send(Packet(Header(source=src, dest=dst, rc=rc), length=6), at_cycle=cycle)
        res = sim.run(max_cycles=5000)
        if args.recovery and expect_deadlock:
            # the scenarios that deadlock by design must instead drain
            # after >= 1 online rotation
            okay = not res.deadlocked and res.recoveries >= 1
            print(
                f"{name}: {len(res.delivered)} delivered after "
                f"{res.recoveries} recovery rotation(s) "
                + ("(deadlock broken online)" if okay else "(UNEXPECTED)")
            )
            return okay
        verdict = "deadlock" if res.deadlocked else f"{len(res.delivered)} delivered"
        flag = "(as the paper predicts)" if res.deadlocked == expect_deadlock else "(UNEXPECTED)"
        print(f"{name}: {verdict} {flag}")
        return res.deadlocked == expect_deadlock

    bc = RC.BROADCAST
    req = RC.BROADCAST_REQUEST
    n = RC.NORMAL
    ok = True
    ok &= scenario(
        "Fig. 5  naive broadcasts ", BroadcastMode.NAIVE, DetourScheme.SAFE, None,
        [(0, (2, 1), (2, 1), bc), (0, (3, 2), (3, 2), bc)], True,
    )
    ok &= scenario(
        "Fig. 6  serialized S-XB  ", BroadcastMode.SERIALIZED, DetourScheme.SAFE, None,
        [(0, (2, 1), (2, 1), req), (0, (3, 2), (3, 2), req)], False,
    )
    fig9 = [
        (0, (3, 2), (3, 2), req),
        (1, (0, 0), (2, 2), n),
        (1, (1, 0), (3, 1), n),
        (2, (0, 1), (1, 2), n),
    ]
    ok &= scenario(
        "Fig. 9  naive D-XB       ", BroadcastMode.SERIALIZED, DetourScheme.NAIVE,
        Fault.router((2, 0)), fig9, True,
    )
    ok &= scenario(
        "Fig. 10 D-XB = S-XB      ", BroadcastMode.SERIALIZED, DetourScheme.SAFE,
        Fault.router((2, 0)), fig9, False,
    )
    return 0 if ok else 1


def cmd_machine(args) -> int:
    from .machine import SR2201, STANDARD_CONFIGS

    if args.config:
        m = SR2201.named(args.config)
        print(m.describe())
    else:
        for name in STANDARD_CONFIGS:
            print(SR2201.named(name).describe())
            print()
    return 0


def cmd_kernels(args) -> int:
    from .traffic import KERNELS, compare_topologies

    names = args.kernel or sorted(KERNELS)
    kinds = tuple(args.topology) if args.topology else ("md-crossbar", "mesh", "torus")
    for kernel in names:
        try:
            out = compare_topologies(kernel, args.shape, kinds=kinds)
        except ValueError as e:
            print(f"{kernel}: skipped ({e})")
            continue
        print(f"-- {kernel}")
        for kind, res in out.items():
            print(f"   {kind:<12} {res.row()}")
    return 0


def cmd_collectives(args) -> int:
    from .collectives import (
        BinomialBroadcast,
        DisseminationBarrier,
        LinearBroadcast,
    )
    from .core import Header, Packet, RC
    from .sim import MDCrossbarAdapter, NetworkSimulator, SimConfig

    topo, logic = _build(args)
    root = tuple(0 for _ in args.shape)

    def fresh():
        return NetworkSimulator(
            MDCrossbarAdapter(logic), SimConfig(stall_limit=5000)
        )

    sim = fresh()
    pkt = Packet(
        Header(source=root, dest=root, rc=RC.BROADCAST_REQUEST),
        length=args.packet_length,
    )
    sim.send(pkt)
    sim.run()
    print(f"hardware S-XB broadcast : {pkt.latency} cycles, 1 injection")
    for name, cls in (("binomial", BinomialBroadcast), ("linear", LinearBroadcast)):
        sim = fresh()
        col = cls(sim, root, packet_length=args.packet_length)
        while not col.result.done and sim.cycle < 200_000:
            sim.step()
        print(
            f"software {name:<8} tree : {col.result.duration} cycles, "
            f"{col.result.messages_sent} messages"
        )
    sim = fresh()
    bar = DisseminationBarrier(sim)
    while not bar.result.done and sim.cycle < 200_000:
        sim.step()
    print(
        f"dissemination barrier   : {bar.result.duration} cycles, "
        f"{bar.result.messages_sent} messages ({bar.rounds} rounds)"
    )
    return 0


def cmd_replay(args) -> int:
    from .sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
    from .sim.stats import LatencyStats
    from .core import SwitchLogic
    from .traffic import WorkloadTrace

    trace = WorkloadTrace.load(args.trace)
    topo = MDCrossbar(trace.shape)
    cfg = make_config(
        trace.shape,
        faults=tuple(args.fault or ()),
        detour_scheme=DetourScheme(args.detour),
        broadcast_mode=BroadcastMode(args.broadcast),
    )
    sim = NetworkSimulator(
        MDCrossbarAdapter(SwitchLogic(topo, cfg)), SimConfig(stall_limit=5000)
    )
    trace.install(sim)
    res = sim.run(max_cycles=args.max_cycles)
    stats = LatencyStats.from_packets(res.delivered)
    print(
        f"replayed {len(trace)} packets on {'x'.join(map(str, trace.shape))}: "
        f"{len(res.delivered)} delivered, {len(res.dropped)} dropped, "
        f"{res.cycles} cycles"
    )
    print(f"latency: {stats.row()}")
    if res.deadlocked:
        print(res.deadlock.describe())
        return 1
    return 0


def _doctor_obs() -> List[Tuple[str, bool]]:
    """Observability health: collector attach/detach roundtrip, trace
    write/read roundtrip and schema echo, exercised on a tiny engine."""
    import io

    from .core import Header, Packet, RC
    from .obs import (
        PacketSpanCollector,
        TRACE_SCHEMA_VERSION,
        TraceRecorder,
        read_trace,
        spans_from_trace,
    )
    from .obs.collectors import CollectorSuite
    from .sim import MDCrossbarAdapter, NetworkSimulator, SimConfig

    shape = (3, 3)
    topo = MDCrossbar(shape)
    logic = SwitchLogic(topo, make_config(shape))
    sim = NetworkSimulator(MDCrossbarAdapter(logic), SimConfig())
    suite = CollectorSuite(sim)
    spans = PacketSpanCollector().attach(sim)
    sink = io.StringIO()
    recorder = TraceRecorder(sink=sink).attach(sim)
    sim.send(Packet(Header(source=(0, 0), dest=(2, 2), rc=RC.NORMAL), length=4))
    res = sim.run(max_cycles=500)
    live = spans.span_set().totals()
    spans.detach(sim)
    recorder.detach()
    suite.detach()

    checks: List[Tuple[str, bool]] = []
    checks.append(("obs: tiny run delivers", len(res.delivered) == 1))
    checks.append(
        (
            "obs: collector detach leaves the hook bus empty",
            not any(
                getattr(sim.hooks, slot) for slot in type(sim.hooks).__slots__
            ),
        )
    )
    header, records, malformed = read_trace(sink.getvalue().splitlines())
    checks.append(
        (
            f"obs: trace roundtrip (schema {TRACE_SCHEMA_VERSION} echoed)",
            header is not None
            and header.get("schema") == TRACE_SCHEMA_VERSION
            and not malformed
            and len(records) > 0,
        )
    )
    replayed = spans_from_trace(header, records).totals()
    checks.append(
        ("obs: trace replay matches the live span totals", replayed == live)
    )
    _, _, bad = read_trace(
        sink.getvalue().splitlines() + ['{"kind": "trunc'],
    )
    checks.append(("obs: truncated tail line is skipped+reported", len(bad) == 1))
    return checks


def _doctor_telemetry() -> List[Tuple[str, bool]]:
    """Sweep-telemetry health: ledger write/read round-trip and schema
    echo on a tiny doctor-grid sweep, plus identity stability -- the same
    sweep run twice must strip to the same ledger identity with no
    runtime fields left behind."""
    import io

    from .obs import (
        LEDGER_SCHEMA_VERSION,
        RUNTIME_FIELDS,
        SweepLedger,
        ledger_identity,
        read_ledger,
        strip_ledger,
    )
    from .runtime import SweepSession, load_sweep_specs

    specs = load_sweep_specs(
        "md-crossbar",
        (3, 3),
        [0.05, 0.1],
        seed=1,
        warmup=20,
        window=40,
        drain=400,
    )

    def ledgered_run():
        sink = io.StringIO()
        with SweepSession(ledger=SweepLedger(sink=sink)) as session:
            session.run(specs)
        return sink.getvalue()

    first, second = ledgered_run(), ledgered_run()
    checks: List[Tuple[str, bool]] = []
    header, records, malformed = read_ledger(first.splitlines())
    checks.append(
        (
            f"telemetry: ledger roundtrip "
            f"(schema {LEDGER_SCHEMA_VERSION} echoed)",
            header is not None
            and header.get("schema") == LEDGER_SCHEMA_VERSION
            and not malformed
            and sum(1 for r in records if r["kind"] == "spec_done")
            == len(specs),
        )
    )
    _, records2, _ = read_ledger(second.splitlines())
    checks.append(
        (
            "telemetry: repeated sweep strips to the same identity",
            ledger_identity(records) == ledger_identity(records2),
        )
    )
    checks.append(
        (
            "telemetry: stripped records carry no runtime fields",
            not any(
                set(r) & RUNTIME_FIELDS for r in strip_ledger(records)
            ),
        )
    )
    return checks


def _doctor_routing() -> List[Tuple[str, bool]]:
    """Routing-scheme health: every registered scheme must present an
    acyclic (channel, vc) dependency graph on its doctor grid."""
    from .routing import get_scheme, make_scheme, scheme_names

    checks: List[Tuple[str, bool]] = []
    names = scheme_names()
    checks.append(
        (f"routing: {len(names)} scheme(s) registered ({', '.join(names)})",
         len(names) > 0)
    )
    for name in names:
        shape = get_scheme(name).doctor_shape
        audit = make_scheme(name, shape).check_cycle_free()
        checks.append((f"routing: {audit.row()}", audit.cycle_free))
    return checks


def _doctor_engines() -> List[Tuple[str, bool]]:
    """Engine-mode health: the same doctor-grid workloads under all
    three cycle drivers (batched SoA kernel, scalar active driver,
    legacy full scan) must fingerprint byte-identically; the kernel must
    actually run in-kernel on its supported workload (no silent
    fallback); unsupported state must hand back with an explicit
    reason."""
    import itertools

    import repro.core.packet as packet_mod
    from .core import Fault, Header, Packet, RC
    from .sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
    from .traffic import BernoulliInjector, uniform

    shape = (4, 3)

    def run(engine, legacy=False, faults=(), bcast=False):
        # identical pid streams per driver: fingerprints compare exactly
        packet_mod._packet_ids = itertools.count(1_000_000)
        logic = SwitchLogic(
            MDCrossbar(shape), make_config(shape, faults=tuple(faults))
        )
        sim = NetworkSimulator(
            MDCrossbarAdapter(logic),
            SimConfig(stall_limit=400, engine=engine, legacy_scan=legacy),
        )
        if bcast:
            sim.send(
                Packet(
                    Header(
                        source=(2, 1), dest=(2, 1), rc=RC.BROADCAST_REQUEST
                    ),
                    length=4,
                )
            )
        sim.add_generator(
            BernoulliInjector(load=0.2, pattern=uniform, seed=3, stop_at=80)
        )
        return sim.run(max_cycles=2000).fingerprint(), sim

    checks: List[Tuple[str, bool]] = []
    for label, faults in (
        ("healthy", ()),
        ("faulted", (Fault.router((2, 0)),)),
    ):
        fp_soa, sim_soa = run("soa", faults=faults)
        fp_act, _ = run("active", faults=faults)
        fp_leg, _ = run("active", legacy=True, faults=faults)
        checks.append(
            (
                f"engine: soa == active == legacy_scan on the {label} "
                f"4x3 grid",
                fp_soa == fp_act == fp_leg,
            )
        )
        checks.append(
            (
                f"engine: {label} grid ran in-kernel (no silent fallback)",
                sim_soa.engine_used == "soa"
                and sim_soa.engine_fallback is None,
            )
        )
    fp_b_soa, sim_b = run("soa", bcast=True)
    fp_b_act, _ = run("active", bcast=True)
    checks.append(
        (
            f"engine: unsupported state falls back with a reason "
            f"({sim_b.engine_fallback or 'MISSING'}), identically",
            sim_b.engine_used == "active"
            and bool(sim_b.engine_fallback)
            and fp_b_soa == fp_b_act,
        )
    )
    return checks


def cmd_doctor(args) -> int:
    from .core.selfcheck import self_check

    topo, logic = _build(args)
    report = self_check(topo, logic)
    print(f"self-check on {'x'.join(map(str, args.shape))}:")
    for line in report.rows():
        print(" ", line)
    obs_checks = (
        _doctor_obs()
        + _doctor_telemetry()
        + _doctor_routing()
        + _doctor_engines()
    )
    for name, ok in obs_checks:
        print(f"  {name}: {'ok' if ok else 'FAIL'}")
    healthy = report.healthy and all(ok for _, ok in obs_checks)
    print("healthy" if healthy else "INCONSISTENT")
    return 0 if healthy else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SR2201 deadlock-free fault-tolerant routing toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("route", help="print a route")
    _add_common(p)
    p.add_argument("--src", type=parse_coord, required=True)
    p.add_argument("--dst", type=parse_coord)
    p.add_argument("--bcast", action="store_true", help="broadcast from --src")
    p.set_defaults(fn=cmd_route)

    p = sub.add_parser("check", help="deadlock analysis")
    _add_common(p)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("census", help="fault tolerance census")
    _add_common(p)
    p.add_argument("--pairs", action="store_true", help="two-fault census")
    p.add_argument("--max-sets", type=int, default=None)
    p.set_defaults(fn=cmd_census)

    p = sub.add_parser("simulate", help="run synthetic traffic")
    _add_common(p)
    p.add_argument("--load", type=float, default=0.2)
    p.add_argument("--pattern", default="uniform")
    p.add_argument("--packet-length", type=int, default=4)
    p.add_argument("--cycles", type=int, default=500)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--stall-limit", type=int, default=2000)
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "sweep", help="latency-vs-load sweep (optionally parallel)"
    )
    p.add_argument("--kind", default="md-crossbar",
                   help="md-crossbar or a baseline: mesh/torus/hypercube")
    p.add_argument("--shape", type=parse_shape, default=(4, 3))
    p.add_argument("--loads", type=parse_loads, default=[0.05, 0.1, 0.2, 0.3],
                   help="comma list (0.05,0.1) or start:stop:count (0.05:0.4:8)")
    p.add_argument("--pattern", default="uniform")
    p.add_argument("--packet-length", type=int, default=4)
    p.add_argument("--warmup", type=int, default=200)
    p.add_argument("--window", type=int, default=500)
    p.add_argument("--drain", type=int, default=4000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--seeds", type=int, default=1,
                   help="replicate each point over this many seeds")
    p.add_argument("--stall-limit", type=int, default=2000)
    p.add_argument("--fault", type=parse_fault, action="append",
                   help="standing fault (fault-modelling schemes only); "
                        "repeatable")
    _add_scheme(p)
    _add_recovery(p)
    _add_engine(p)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for the sweep (default: serial)")
    p.add_argument("--cache", dest="cache", action="store_true",
                   help="serve already-known points from the on-disk "
                        "result cache and store fresh ones")
    p.add_argument("--no-cache", dest="cache", action="store_false",
                   help="force simulation even when a cache dir exists")
    p.set_defaults(cache=False)
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="result cache directory (default: .repro-cache)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable per-point results on stdout")
    p.add_argument("--metrics", action="store_true",
                   help="attach the repro.obs collectors to every point and "
                        "report merged metrics")
    p.add_argument("--ledger", metavar="PATH",
                   help="write the schema-versioned JSONL run ledger "
                        "(chunk plan, per-spec serve telemetry, cache "
                        "tiers) to PATH; render it with "
                        "'repro report --sweep PATH'")
    p.add_argument("--live", action="store_true",
                   help="live progress dashboard on stderr (specs/sec, "
                        "ETA, deadlocks) with closing per-worker "
                        "utilization bars")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "campaign",
        help="Monte-Carlo reliability campaign (streaming, chunkable)",
    )
    p.add_argument("--shape", type=parse_shape, default=(4, 3),
                   help="e.g. 4x3 or 16x16x8 (the full SR2201)")
    p.add_argument("--samples", type=int, default=100_000,
                   help="fault-placement samples (default: 100000)")
    p.add_argument("--seed", type=int, default=13,
                   help="campaign seed; block b draws from "
                        "SeedSequence(seed, spawn_key=(b,)) so results "
                        "never depend on chunking or --jobs")
    p.add_argument("--rate", type=float, default=1.0,
                   help="per-switch exponential failure rate")
    p.add_argument("--max-faults", type=int, default=None,
                   help="stop each walk at this many accumulated faults "
                        "(default: run to infeasibility)")
    p.add_argument("--block", type=int, default=16384,
                   help="samples per sampling block -- the RNG/reduction "
                        "unit, part of the campaign identity")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: in-process serial; "
                        "any value yields the identical estimate)")
    _add_scheme(p)
    p.add_argument("--json", action="store_true",
                   help="machine-readable estimate + per-k disconnect "
                        "table on stdout")
    p.add_argument("--ledger", metavar="PATH",
                   help="write campaign_start/campaign_chunk/campaign_end "
                        "records to the schema-versioned JSONL run ledger")
    p.add_argument("--live", action="store_true",
                   help="live block-progress dashboard on stderr")
    p.set_defaults(fn=cmd_campaign)

    p = sub.add_parser(
        "trace", help="capture a structured JSONL event trace of one run"
    )
    _add_common(p)
    _add_scheme(p)
    _add_recovery(p)
    _add_engine(p)
    p.add_argument("--load", type=float, default=0.2)
    p.add_argument("--pattern", default="uniform")
    p.add_argument("--packet-length", type=int, default=4)
    p.add_argument("--cycles", type=int, default=200)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--stall-limit", type=int, default=2000)
    p.add_argument(
        "--event", action="append",
        choices=["inject", "grant", "block", "deliver", "deadlock",
                 "recovery", "log", "phase"],
        help="record kind to capture; repeatable "
             "(default: inject, grant, block, deliver, deadlock, "
             "recovery, log)",
    )
    p.add_argument("--out", help="JSONL output path (default: stdout)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "report",
        help="render a span/metric report from a live run or a saved trace",
    )
    _add_common(p)
    _add_scheme(p)
    _add_recovery(p)
    _add_engine(p)
    p.add_argument("--trace", help="render from a saved JSONL trace instead "
                                   "of running a simulation")
    p.add_argument("--sweep", metavar="LEDGER",
                   help="render a sweep-runtime report from a saved JSONL "
                        "run ledger (see 'repro sweep --ledger') instead "
                        "of running a simulation")
    p.add_argument("--load", type=float, default=0.2)
    p.add_argument("--pattern", default="uniform")
    p.add_argument("--packet-length", type=int, default=4)
    p.add_argument("--cycles", type=int, default=300)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--stall-limit", type=int, default=2000)
    p.add_argument("--format", choices=["text", "md"], default="text")
    p.add_argument("--top", type=int, default=10,
                   help="rows in the blocked-port attribution table")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "bench", help="run the pinned perf suite; optionally gate against "
                      "a saved baseline"
    )
    p.add_argument("--label", default="local",
                   help="suffix of the BENCH_<label>.json output file")
    p.add_argument("--out-dir", default="benchmarks",
                   help="directory for the BENCH_<label>.json result")
    p.add_argument("--smoke", action="store_true",
                   help="fast subset only (what CI runs)")
    p.add_argument("--compare", metavar="BASELINE.json",
                   help="compare against a saved bench file; exit 1 on "
                        "regression")
    p.add_argument("--threshold", type=float, default=20.0,
                   help="allowed cycles/sec drop in percent (default 20)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timed runs per case; best wall time wins and the "
                        "simulated quantities must agree (default 3)")
    p.add_argument("--no-legacy-compare", action="store_true",
                   help="skip the in-run legacy_scan twin (faster, but "
                        "drops the machine-independent speedup check)")
    p.add_argument("--profile", action="store_true",
                   help="also run each case once under cProfile and print "
                        "the top cumulative entries")
    p.add_argument("--profile-top", type=int, default=15,
                   help="rows of the --profile dump (default 15)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("figures", help="replay the paper's figures")
    _add_recovery(p)
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("machine", help="describe an SR2201 configuration")
    p.add_argument("--config", help="e.g. SR2201/2048")
    p.set_defaults(fn=cmd_machine)

    p = sub.add_parser("kernels", help="application kernels across topologies")
    p.add_argument("--shape", type=parse_shape, default=(4, 4))
    p.add_argument("--kernel", action="append", help="stencil/fft/alltoall/sweep")
    p.add_argument(
        "--topology", action="append",
        default=None, help="md-crossbar/mesh/torus (repeatable)",
    )
    p.set_defaults(fn=cmd_kernels, topology=None)

    p = sub.add_parser("collectives", help="hardware vs software broadcast")
    _add_common(p)
    p.add_argument("--packet-length", type=int, default=8)
    p.set_defaults(fn=cmd_collectives)

    p = sub.add_parser("doctor", help="cross-validate all analysis layers")
    _add_common(p)
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser("replay", help="replay a workload trace (JSONL)")
    _add_common(p)
    p.add_argument("trace", help="path to the trace file")
    p.add_argument("--max-cycles", type=int, default=200_000)
    p.set_defaults(fn=cmd_replay)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (ConfigError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
