"""Workload generation: synthetic patterns and injection processes."""

from .applications import (
    KERNELS,
    PhasedWorkload,
    WorkloadResult,
    alltoall_phases,
    compare_topologies,
    fft_phases,
    stencil_phases,
    sweep_phases,
)
from .generators import (
    BernoulliInjector,
    BroadcastInjector,
    ScenarioScript,
    TimedSend,
)
from .tracefile import TraceEntry, TraceRecorder, WorkloadTrace
from .patterns import (
    PATTERNS,
    Pattern,
    bit_complement,
    bit_reversal,
    get_pattern,
    make_hotspot,
    make_permutation,
    neighbor,
    shuffle,
    tornado,
    transpose,
    uniform,
)

__all__ = [
    "BernoulliInjector",
    "KERNELS",
    "PhasedWorkload",
    "WorkloadResult",
    "alltoall_phases",
    "compare_topologies",
    "fft_phases",
    "stencil_phases",
    "sweep_phases",
    "TraceEntry",
    "TraceRecorder",
    "WorkloadTrace",
    "BroadcastInjector",
    "PATTERNS",
    "Pattern",
    "ScenarioScript",
    "TimedSend",
    "bit_complement",
    "bit_reversal",
    "get_pattern",
    "make_hotspot",
    "make_permutation",
    "neighbor",
    "shuffle",
    "tornado",
    "transpose",
    "uniform",
]
