"""Synthetic traffic patterns.

A pattern maps a source PE coordinate to a destination coordinate; the
stochastic ones draw from a supplied ``numpy.random.Generator`` so runs are
reproducible.  Index-based patterns (transpose, bit reversal, shuffle,
complement) operate on the PE's row-major linear index, the conventional
definition from the interconnection-network literature, and are exact when
the node count is a power of two (they fall back to modular arithmetic
otherwise).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..core.coords import (
    Coord,
    coord_from_index,
    lexicographic_index,
    num_nodes,
)

#: (source, shape, rng) -> destination
Pattern = Callable[[Coord, Tuple[int, ...], np.random.Generator], Coord]


def uniform(src: Coord, shape, rng: np.random.Generator) -> Coord:
    """Uniformly random destination different from the source."""
    n = num_nodes(shape)
    if n == 1:
        return src
    i = lexicographic_index(src, shape)
    j = int(rng.integers(0, n - 1))
    if j >= i:
        j += 1
    return coord_from_index(j, shape)


def transpose(src: Coord, shape, rng=None) -> Coord:
    """Matrix-transpose pattern: reverse the coordinate tuple (clipped to
    the extents when the shape is not square)."""
    rev = tuple(reversed(src))
    return tuple(min(v, n - 1) for v, n in zip(rev, shape))


def bit_reversal(src: Coord, shape, rng=None) -> Coord:
    """Reverse the bits of the linear index."""
    n = num_nodes(shape)
    bits = max(1, (n - 1).bit_length())
    i = lexicographic_index(src, shape)
    rev = int(format(i, f"0{bits}b")[::-1], 2)
    return coord_from_index(rev % n, shape)


def bit_complement(src: Coord, shape, rng=None) -> Coord:
    """Complement every coordinate: dest_k = n_k - 1 - src_k."""
    return tuple(n - 1 - v for v, n in zip(src, shape))


def shuffle(src: Coord, shape, rng=None) -> Coord:
    """Perfect shuffle: rotate the linear index's bits left by one."""
    n = num_nodes(shape)
    bits = max(1, (n - 1).bit_length())
    i = lexicographic_index(src, shape)
    rot = ((i << 1) | (i >> (bits - 1))) & ((1 << bits) - 1)
    return coord_from_index(rot % n, shape)


def tornado(src: Coord, shape, rng=None) -> Coord:
    """Tornado: move halfway around each dimension (adversarial for rings)."""
    return tuple((v + (n - 1) // 2) % n for v, n in zip(src, shape))


def neighbor(src: Coord, shape, rng=None) -> Coord:
    """Nearest neighbour: +1 along dimension 0 (wrapping)."""
    return ((src[0] + 1) % shape[0],) + src[1:]


def make_hotspot(
    hotspot: Coord, fraction: float = 0.2, background: Pattern = uniform
) -> Pattern:
    """With probability ``fraction`` send to ``hotspot``, else follow the
    background pattern (classic hot-spot workload)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("hotspot fraction must be in [0, 1]")
    hot = tuple(hotspot)

    def pattern(src: Coord, shape, rng: np.random.Generator) -> Coord:
        if src != hot and rng.random() < fraction:
            return hot
        return background(src, shape, rng)

    return pattern


def make_permutation(
    mapping: Sequence[int],
) -> Pattern:
    """Fixed permutation of linear indices (``mapping[i]`` = dest of node i)."""
    perm = list(mapping)

    def pattern(src: Coord, shape, rng=None) -> Coord:
        n = num_nodes(shape)
        if sorted(perm) != list(range(n)):
            raise ValueError("mapping is not a permutation of the node indices")
        return coord_from_index(perm[lexicographic_index(src, shape)], shape)

    return pattern


PATTERNS = {
    "uniform": uniform,
    "transpose": transpose,
    "bit_reversal": bit_reversal,
    "bit_complement": bit_complement,
    "shuffle": shuffle,
    "tornado": tornado,
    "neighbor": neighbor,
}


def get_pattern(name: str) -> Pattern:
    try:
        return PATTERNS[name]
    except KeyError:
        raise KeyError(
            f"unknown pattern {name!r}; choose from {sorted(PATTERNS)}"
        ) from None


def pattern_name(pattern: Pattern) -> Optional[str]:
    """Registry name of a pattern function, or None for ad-hoc callables
    (closures from :func:`make_hotspot` / :func:`make_permutation`).  Named
    patterns can cross process boundaries in a picklable
    :class:`~repro.runtime.spec.RunSpec`; ad-hoc ones cannot."""
    if isinstance(pattern, str):
        return pattern if pattern in PATTERNS else None
    for name, fn in PATTERNS.items():
        if fn is pattern:
            return name
    return None
