"""Workload traces: record, serialize and replay exact injection schedules.

A trace is a list of timed sends (cycle, source, dest, RC, length) stored
as JSON lines -- the portable form of a workload, so an experiment run on
one machine can be replayed bit-identically on another, attached to a bug
report, or diffed.  :class:`TraceRecorder` captures everything a simulator
injects; :func:`load_trace` / :meth:`WorkloadTrace.install` replay it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from ..core.coords import Coord
from ..core.packet import Header, Packet, RC
from ..sim.network import NetworkSimulator

#: trace format version written into the header line
TRACE_VERSION = 1


@dataclass(frozen=True)
class TraceEntry:
    """One injected packet."""

    cycle: int
    source: Coord
    dest: Coord
    rc: int
    length: int

    def to_json(self) -> str:
        return json.dumps(
            {
                "cycle": self.cycle,
                "src": list(self.source),
                "dst": list(self.dest),
                "rc": self.rc,
                "len": self.length,
            },
            separators=(",", ":"),
        )

    @staticmethod
    def from_json(line: str) -> "TraceEntry":
        d = json.loads(line)
        return TraceEntry(
            cycle=int(d["cycle"]),
            source=tuple(d["src"]),
            dest=tuple(d["dst"]),
            rc=int(d["rc"]),
            length=int(d["len"]),
        )


@dataclass
class WorkloadTrace:
    """An ordered collection of trace entries plus the network shape."""

    shape: tuple
    entries: List[TraceEntry] = field(default_factory=list)

    def add(
        self,
        cycle: int,
        source: Coord,
        dest: Coord,
        rc: RC = RC.NORMAL,
        length: int = 4,
    ) -> None:
        self.entries.append(
            TraceEntry(cycle, tuple(source), tuple(dest), int(rc), length)
        )

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence ---------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        p = Path(path)
        with p.open("w") as fh:
            fh.write(
                json.dumps(
                    {"version": TRACE_VERSION, "shape": list(self.shape)},
                    separators=(",", ":"),
                )
                + "\n"
            )
            for e in sorted(self.entries, key=lambda e: e.cycle):
                fh.write(e.to_json() + "\n")

    @staticmethod
    def load(path: Union[str, Path]) -> "WorkloadTrace":
        p = Path(path)
        with p.open() as fh:
            header = json.loads(fh.readline())
            if header.get("version") != TRACE_VERSION:
                raise ValueError(
                    f"unsupported trace version {header.get('version')!r}"
                )
            trace = WorkloadTrace(shape=tuple(header["shape"]))
            for line in fh:
                line = line.strip()
                if line:
                    trace.entries.append(TraceEntry.from_json(line))
        return trace

    # -- replay ----------------------------------------------------------------
    def install(self, sim: NetworkSimulator) -> List[Packet]:
        """Schedule every entry on a simulator; returns the packets."""
        if tuple(sim.topo.shape) != tuple(self.shape):
            raise ValueError(
                f"trace recorded on shape {self.shape}, simulator has "
                f"{sim.topo.shape}"
            )
        packets = []
        for e in sorted(self.entries, key=lambda e: e.cycle):
            pkt = Packet(
                Header(source=e.source, dest=e.dest, rc=RC(e.rc)),
                length=e.length,
            )
            sim.send(pkt, at_cycle=e.cycle)
            packets.append(pkt)
        return packets


class TraceRecorder:
    """Record every packet a simulator injects.

    Wraps the simulator's ``send`` method::

        rec = TraceRecorder(sim)
        ... run any generators/scenarios ...
        rec.trace.save("workload.jsonl")
    """

    def __init__(self, sim: NetworkSimulator) -> None:
        self.sim = sim
        self.trace = WorkloadTrace(shape=tuple(sim.topo.shape))
        self._orig_send = sim.send
        sim.send = self._send  # type: ignore[method-assign]

    def _send(self, packet: Packet, at_cycle: Optional[int] = None) -> None:
        cycle = at_cycle if at_cycle is not None else self.sim.cycle
        self.trace.add(
            cycle=cycle,
            source=packet.source,
            dest=packet.dest,
            rc=packet.header.rc,
            length=packet.length,
        )
        self._orig_send(packet, at_cycle)

    def detach(self) -> WorkloadTrace:
        """Stop recording and return the trace."""
        self.sim.send = self._orig_send  # type: ignore[method-assign]
        return self.trace
