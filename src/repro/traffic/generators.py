"""Traffic injection processes for the flit-level simulator.

:class:`BernoulliInjector` drives open-loop random traffic at a configured
offered load (flits per node per cycle) -- the standard workload for
latency-versus-load curves.  :class:`BroadcastInjector` adds hardware
broadcasts at a Poisson-like rate.  :class:`ScenarioScript` replays an exact
timed list of packets, used by the per-figure experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.coords import Coord
from ..core.packet import Header, Packet, RC
from ..sim.network import NetworkSimulator
from .patterns import Pattern, uniform


class BernoulliInjector:
    """Open-loop Bernoulli injection at a fixed offered load.

    Each cycle, each live PE starts a new packet with probability
    ``load / packet_length`` (so the offered load in flits/node/cycle is
    ``load``).  Destinations come from ``pattern``.  Packets injected inside
    the measurement window are tagged for statistics; the generator stops
    offering traffic after ``stop_at`` so the network can drain.

    ``seed`` is the experiment-level seed: sweeps and the runtime thread it
    down from :class:`repro.runtime.spec.RunSpec`, so two runs are
    identical exactly when their specs are, and multi-seed replicas draw
    independent traffic.  The default exists for interactive use only --
    any experiment should pass its own seed explicitly.
    """

    def __init__(
        self,
        load: float,
        packet_length: int = 4,
        pattern: Pattern = uniform,
        seed: int = 1,
        start_at: int = 0,
        stop_at: Optional[int] = None,
        measure_from: int = 0,
        measure_until: Optional[int] = None,
    ) -> None:
        if not 0.0 <= load <= 1.0:
            raise ValueError("offered load must be in [0, 1] flits/node/cycle")
        self.load = load
        self.packet_length = packet_length
        self.pattern = pattern
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.start_at = start_at
        self.stop_at = stop_at
        self.measure_from = measure_from
        self.measure_until = measure_until
        self.offered = 0
        self.measured_pids: set = set()

    @property
    def packet_rate(self) -> float:
        return self.load / self.packet_length

    def next_wake(self, cycle: int) -> Optional[int]:
        """Earliest cycle >= ``cycle`` at which this generator may act (the
        engine's idle fast-forward contract): ``None`` once past ``stop_at``
        (never again), ``start_at`` before the window opens, else ``cycle``
        itself -- inside the window the injector draws from its RNG every
        cycle, so no cycle may be skipped."""
        if self.stop_at is not None and cycle >= self.stop_at:
            return None
        if cycle < self.start_at:
            return self.start_at
        return cycle

    def __call__(self, sim: NetworkSimulator) -> None:
        cycle = sim.cycle
        if cycle < self.start_at:
            return
        if self.stop_at is not None and cycle >= self.stop_at:
            return
        shape = sim.topo.shape
        live = sim.live_nodes
        rng = self.rng
        random = rng.random
        rate = self.packet_rate
        pattern = self.pattern
        for src in live:
            if random() >= rate:
                continue
            dest = pattern(src, shape, rng)
            if dest == src:
                continue
            if dest not in live:
                continue
            pkt = Packet(
                Header(source=src, dest=dest), length=self.packet_length
            )
            sim.send(pkt)
            self.offered += 1
            if cycle >= self.measure_from and (
                self.measure_until is None or cycle < self.measure_until
            ):
                self.measured_pids.add(pkt.pid)

    def measured_packets(self, delivered: Sequence[Packet]) -> List[Packet]:
        return [p for p in delivered if p.pid in self.measured_pids]


class BroadcastInjector:
    """Inject hardware broadcasts from random sources at ``rate`` per cycle
    (network-wide).  ``naive`` selects the RC used at injection.

    As with :class:`BernoulliInjector`, pass the experiment-level ``seed``
    explicitly in any experiment (the default serves interactive use); mix
    a constant in (e.g. ``seed + 1``) when running alongside a Bernoulli
    generator so the two processes stay decorrelated under the same
    experiment seed.
    """

    def __init__(
        self,
        rate: float,
        packet_length: int = 4,
        naive: bool = False,
        seed: int = 2,
        start_at: int = 0,
        stop_at: Optional[int] = None,
    ) -> None:
        self.rate = rate
        self.packet_length = packet_length
        self.rc = RC.BROADCAST if naive else RC.BROADCAST_REQUEST
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.start_at = start_at
        self.stop_at = stop_at
        self.offered = 0

    def next_wake(self, cycle: int) -> Optional[int]:
        """Same idle fast-forward contract as
        :meth:`BernoulliInjector.next_wake`."""
        if self.stop_at is not None and cycle >= self.stop_at:
            return None
        if cycle < self.start_at:
            return self.start_at
        return cycle

    def __call__(self, sim: NetworkSimulator) -> None:
        cycle = sim.cycle
        if cycle < self.start_at:
            return
        if self.stop_at is not None and cycle >= self.stop_at:
            return
        if self.rng.random() >= self.rate:
            return
        nodes = sim.live_nodes
        src = nodes[int(self.rng.integers(0, len(nodes)))]
        sim.send(
            Packet(
                Header(source=src, dest=src, rc=self.rc),
                length=self.packet_length,
            )
        )
        self.offered += 1


@dataclass
class TimedSend:
    cycle: int
    source: Coord
    dest: Coord
    rc: RC = RC.NORMAL
    length: int = 4


@dataclass
class ScenarioScript:
    """An exact, reproducible injection schedule (for the figure replays)."""

    sends: List[TimedSend] = field(default_factory=list)
    packets: List[Packet] = field(default_factory=list)

    def p2p(self, cycle: int, source: Coord, dest: Coord, length: int = 4) -> "ScenarioScript":
        self.sends.append(TimedSend(cycle, source, dest, RC.NORMAL, length))
        return self

    def broadcast(
        self, cycle: int, source: Coord, length: int = 4, naive: bool = False
    ) -> "ScenarioScript":
        rc = RC.BROADCAST if naive else RC.BROADCAST_REQUEST
        self.sends.append(TimedSend(cycle, source, source, rc, length))
        return self

    def install(self, sim: NetworkSimulator) -> List[Packet]:
        """Schedule every send on the simulator; returns the packets."""
        self.packets = []
        for s in sorted(self.sends, key=lambda s: s.cycle):
            pkt = Packet(
                Header(source=s.source, dest=s.dest, rc=s.rc), length=s.length
            )
            sim.send(pkt, at_cycle=s.cycle)
            self.packets.append(pkt)
        return self.packets
