"""Application communication kernels (paper Section 1: "large-scale
numerical applications" are the workload the SR2201 was built for).

Each kernel is a sequence of *phases*; a phase is a set of point-to-point
transfers that the application issues together and completes before the
next phase starts (the bulk-synchronous shape of stencil codes, FFTs and
transposes).  :class:`PhasedWorkload.run` drives any simulator adapter
phase by phase and records per-phase completion times, so the same kernel
compares topologies directly.

Kernels:

* :func:`stencil_phases` -- 2D halo exchange (+x, -x, +y, -y neighbour
  shifts), the inner loop of finite-difference solvers;
* :func:`fft_phases` -- the butterfly exchange of a distributed FFT
  (partner = rank XOR 2**k), the paper's hypercube-remap showcase;
* :func:`alltoall_phases` -- personalized all-to-all (matrix transpose /
  FFT reorder), n-1 rounds of rotating permutations;
* :func:`sweep_phases` -- a wavefront sweep along dimension 0 (pipelined
  line relaxation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.coords import Coord, all_coords, num_nodes
from ..core.packet import Header, Packet
from ..sim.network import NetworkSimulator

Phase = List[Tuple[Coord, Coord]]


def stencil_phases(shape) -> List[Phase]:
    """Halo exchange: one phase per (dimension, direction), non-wrapping."""
    phases: List[Phase] = []
    for k in range(len(shape)):
        if shape[k] == 1:
            continue
        for step in (+1, -1):
            phase: Phase = []
            for c in all_coords(shape):
                v = c[k] + step
                if 0 <= v < shape[k]:
                    phase.append((c, c[:k] + (v,) + c[k + 1 :]))
            phases.append(phase)
    return phases


def fft_phases(shape) -> List[Phase]:
    """Butterfly: round k exchanges rank r with rank r XOR 2**k."""
    n = num_nodes(shape)
    if n & (n - 1):
        raise ValueError("FFT butterfly needs a power-of-two node count")
    coords = list(all_coords(shape))
    phases: List[Phase] = []
    bits = n.bit_length() - 1
    for b in range(bits):
        phase = [
            (coords[i], coords[i ^ (1 << b)])
            for i in range(n)
        ]
        phases.append(phase)
    return phases


def alltoall_phases(shape) -> List[Phase]:
    """Personalized all-to-all as n-1 rotation rounds: in round r, rank i
    sends to rank (i + r) mod n (the classic linear-shift schedule)."""
    n = num_nodes(shape)
    coords = list(all_coords(shape))
    phases: List[Phase] = []
    for r in range(1, n):
        phases.append(
            [(coords[i], coords[(i + r) % n]) for i in range(n)]
        )
    return phases


def sweep_phases(shape) -> List[Phase]:
    """Wavefront sweep: column x sends to column x+1, one phase per step."""
    phases: List[Phase] = []
    for x in range(shape[0] - 1):
        phase: Phase = []
        for c in all_coords(shape):
            if c[0] == x:
                phase.append((c, (x + 1,) + c[1:]))
        phases.append(phase)
    return phases


KERNELS: Dict[str, Callable[[Tuple[int, ...]], List[Phase]]] = {
    "stencil": stencil_phases,
    "fft": fft_phases,
    "alltoall": alltoall_phases,
    "sweep": sweep_phases,
}


@dataclass
class PhaseResult:
    index: int
    transfers: int
    cycles: int


@dataclass
class WorkloadResult:
    kernel: str
    phases: List[PhaseResult] = field(default_factory=list)
    deadlocked: bool = False

    @property
    def total_cycles(self) -> int:
        return sum(p.cycles for p in self.phases)

    @property
    def total_transfers(self) -> int:
        return sum(p.transfers for p in self.phases)

    def row(self) -> str:
        worst = max((p.cycles for p in self.phases), default=0)
        return (
            f"{self.kernel:<10} phases={len(self.phases):<4} "
            f"transfers={self.total_transfers:<5} "
            f"total={self.total_cycles:<7} worst_phase={worst}"
            + ("  [DEADLOCK]" if self.deadlocked else "")
        )


@dataclass
class PhasedWorkload:
    """Run an application kernel phase by phase on a simulator factory.

    ``make_sim`` builds a fresh simulator per phase (phases are bulk
    synchronous, so carrying fabric state across them is not needed);
    dead PEs (faults) are skipped like a fault-aware application would.
    """

    kernel: str
    shape: Tuple[int, ...]
    packet_length: int = 8
    max_cycles_per_phase: int = 100_000

    def phases(self) -> List[Phase]:
        try:
            fn = KERNELS[self.kernel]
        except KeyError:
            raise KeyError(
                f"unknown kernel {self.kernel!r}; choose from {sorted(KERNELS)}"
            ) from None
        return fn(self.shape)

    def run(
        self, make_sim: Callable[[], NetworkSimulator]
    ) -> WorkloadResult:
        result = WorkloadResult(kernel=self.kernel)
        for i, phase in enumerate(self.phases()):
            sim = make_sim()
            live = set(sim.live_nodes)
            sent = 0
            for s, t in phase:
                if s == t or s not in live or t not in live:
                    continue
                sim.send(Packet(Header(source=s, dest=t), length=self.packet_length))
                sent += 1
            res = sim.run(max_cycles=self.max_cycles_per_phase)
            if res.deadlocked:
                result.deadlocked = True
                result.phases.append(PhaseResult(i, sent, res.cycles))
                break
            result.phases.append(PhaseResult(i, sent, res.cycles))
        return result


def compare_topologies(
    kernel: str,
    shape: Tuple[int, ...],
    kinds: Sequence[str] = ("md-crossbar", "mesh", "torus"),
    packet_length: int = 8,
) -> Dict[str, WorkloadResult]:
    """Run one kernel on the MD crossbar and baseline topologies."""
    from ..baselines import make_baseline
    from ..core.config import make_config
    from ..core.switch_logic import SwitchLogic
    from ..sim.adapter import MDCrossbarAdapter
    from ..sim.config import SimConfig
    from ..sim.network import NetworkSimulator
    from ..topology.mdcrossbar import MDCrossbar

    out: Dict[str, WorkloadResult] = {}
    workload = PhasedWorkload(kernel, shape, packet_length=packet_length)
    for kind in kinds:
        if kind == "md-crossbar":
            topo = MDCrossbar(shape)
            logic = SwitchLogic(topo, make_config(shape))

            def factory(logic=logic):
                return NetworkSimulator(
                    MDCrossbarAdapter(logic), SimConfig(stall_limit=5000)
                )
        else:
            topo, adapter, vcs = make_baseline(kind, shape)

            def factory(adapter=adapter, vcs=vcs):
                return NetworkSimulator(
                    adapter, SimConfig(num_vcs=vcs, stall_limit=5000)
                )
        out[kind] = workload.run(factory)
    return out
