"""SR2201 machine model: configurations, units and transfer estimates."""

from . import units
from .sr2201 import (
    MAX_PACKET_FLITS,
    ROUTER_CYCLES_PER_HOP,
    SR2201,
    STANDARD_CONFIGS,
    segment_message,
)

__all__ = [
    "MAX_PACKET_FLITS",
    "ROUTER_CYCLES_PER_HOP",
    "SR2201",
    "STANDARD_CONFIGS",
    "segment_message",
    "units",
]
