"""The Hitachi SR2201 machine model (paper Sections 1-2, Fig. 1).

A machine instance ties together the multi-dimensional crossbar network, the
per-PE hardware parameters and the routing facility configuration, and
offers both analytic and simulated end-to-end transfer estimates.  The
SR2201 scales to 2048 PEs; :data:`STANDARD_CONFIGS` lists representative
shipped-class configurations with their 3D (2D for the smallest) crossbar
shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.config import BroadcastMode, DetourScheme, RoutingConfig, make_config
from ..core.coords import Coord, hop_distance, num_nodes
from ..core.fault import Fault
from ..core.packet import Header, Packet, RC
from ..core.switch_logic import SwitchLogic
from ..sim.adapter import MDCrossbarAdapter
from ..sim.config import SimConfig
from ..sim.network import NetworkSimulator, SimResult
from ..topology.mdcrossbar import MDCrossbar
from . import units

#: name -> crossbar shape of representative SR2201 configurations
STANDARD_CONFIGS: Dict[str, Tuple[int, ...]] = {
    "SR2201/8": (4, 2),
    "SR2201/32": (8, 4),
    "SR2201/64": (4, 4, 4),
    "SR2201/256": (8, 8, 4),
    "SR2201/1024": (16, 8, 8),
    "SR2201/2048": (16, 16, 8),
}

#: fixed per-switch header latency assumed by the analytic model (cycles):
#: one cycle to traverse the link plus one to route/arbitrate
ROUTER_CYCLES_PER_HOP: int = 2

#: maximum packet length the NIA generates, in flits; longer messages are
#: segmented into a pipeline of packets (cut-through networks bound packet
#: length so a single transfer cannot monopolize channels indefinitely)
MAX_PACKET_FLITS: int = 256


def segment_message(nbytes: int) -> list:
    """Split a message into NIA packet lengths (flits), longest first.

    Every packet is at most :data:`MAX_PACKET_FLITS`; the total carries the
    whole payload.
    """
    flits = units.bytes_to_flits(nbytes)
    out = []
    while flits > 0:
        take = min(flits, MAX_PACKET_FLITS)
        out.append(take)
        flits -= take
    return out


@dataclass
class SR2201:
    """One SR2201 machine: topology + routing facility + clocking."""

    shape: Tuple[int, ...]
    fault: Optional[Fault] = None
    broadcast_mode: BroadcastMode = BroadcastMode.SERIALIZED
    detour_scheme: DetourScheme = DetourScheme.SAFE
    topo: MDCrossbar = field(init=False)
    config: RoutingConfig = field(init=False)
    logic: SwitchLogic = field(init=False)

    def __post_init__(self) -> None:
        if num_nodes(self.shape) > units.MAX_PES:
            raise ValueError(
                f"shape {self.shape} exceeds the SR2201 maximum of "
                f"{units.MAX_PES} PEs"
            )
        self.topo = MDCrossbar(self.shape)
        self.config = make_config(
            self.shape,
            fault=self.fault,
            broadcast_mode=self.broadcast_mode,
            detour_scheme=self.detour_scheme,
        )
        self.logic = SwitchLogic(self.topo, self.config)

    @classmethod
    def named(cls, name: str, **kw) -> "SR2201":
        try:
            shape = STANDARD_CONFIGS[name]
        except KeyError:
            raise KeyError(
                f"unknown configuration {name!r}; choose from "
                f"{sorted(STANDARD_CONFIGS)}"
            ) from None
        return cls(shape=shape, **kw)

    # ------------------------------------------------------------ analytic
    @property
    def num_pes(self) -> int:
        return num_nodes(self.shape)

    @property
    def peak_mflops(self) -> float:
        return self.num_pes * units.PE_PEAK_MFLOPS

    def transfer_cycles(self, src: Coord, dst: Coord, nbytes: int) -> int:
        """Analytic cut-through estimate: header pipeline + payload stream.

        Cut-through latency = (elements traversed) * per-hop cycles +
        payload serialization; the crossbar hop count is at most d (paper
        Section 3.1).
        """
        xb_hops = hop_distance(src, dst)
        # PE->RTR, each XB hop adds XB+RTR, final RTR->PE
        element_hops = 2 + 2 * xb_hops
        payload_flits = units.bytes_to_flits(nbytes)
        return element_hops * ROUTER_CYCLES_PER_HOP + payload_flits

    def transfer_time_us(self, src: Coord, dst: Coord, nbytes: int) -> float:
        return units.cycles_to_us(self.transfer_cycles(src, dst, nbytes))

    def effective_bandwidth_mb_s(
        self, src: Coord, dst: Coord, nbytes: int
    ) -> float:
        """Delivered bandwidth including header pipeline overhead."""
        us = self.transfer_time_us(src, dst, nbytes)
        return (nbytes / 1e6) / (us / 1e6) if us > 0 else 0.0

    # ------------------------------------------------------------ simulated
    def simulator(self, sim_config: Optional[SimConfig] = None) -> NetworkSimulator:
        return NetworkSimulator(
            MDCrossbarAdapter(self.logic), sim_config or SimConfig()
        )

    def simulate_transfer(
        self, src: Coord, dst: Coord, nbytes: int
    ) -> SimResult:
        """Run one point-to-point transfer through the flit simulator.

        Messages longer than the NIA's maximum packet length are segmented
        into a pipeline of packets, exactly as the hardware would send them.
        """
        sim = self.simulator()
        for length in segment_message(nbytes):
            sim.send(Packet(Header(source=src, dest=dst), length=length))
        return sim.run()

    def message_time_us(self, src: Coord, dst: Coord, nbytes: int) -> float:
        """End-to-end simulated time for a (possibly segmented) message."""
        res = self.simulate_transfer(src, dst, nbytes)
        done = max(p.delivered_at for p in res.delivered)
        start = min(p.injected_at for p in res.delivered)
        return units.cycles_to_us(done - start)

    def simulate_broadcast(self, src: Coord, nbytes: int) -> SimResult:
        sim = self.simulator()
        sim.send(
            Packet(
                Header(source=src, dest=src, rc=RC.BROADCAST_REQUEST),
                length=units.bytes_to_flits(nbytes),
            )
        )
        return sim.run()

    def describe(self) -> str:
        lines = [
            f"SR2201 {self.num_pes} PEs, {len(self.shape)}-D crossbar {self.shape}",
            f"  peak {self.peak_mflops / 1000:.1f} GFLOPS "
            f"({units.PE_PEAK_MFLOPS:.0f} MFLOPS x {self.num_pes} PEs)",
            f"  links {units.LINK_BANDWIDTH_BYTES_PER_S / 1e6:.0f} MB/s, "
            f"flit {units.FLIT_BYTES} B @ {units.CLOCK_HZ / 1e6:.0f} MHz",
            f"  crossbars: {self.topo.crossbar_count()} "
            f"(router ports: {self.topo.router_ports})",
            f"  routing order {self.config.order}, S-XB line {self.config.sxb_line}",
        ]
        if self.fault is not None:
            lines.append(f"  fault: {self.fault} (scheme {self.detour_scheme.value})")
        return "\n".join(lines)
