"""Physical units of the SR2201 interconnect (paper Sections 1-2).

The SR2201's network moves data at 300 MB/s per link between any pair of
PEs; each PE runs a 150 MHz PA-RISC microprocessor.  We clock the network
model at the processor frequency, which makes one flit = 2 bytes:

    150e6 cycles/s * 2 bytes/cycle = 300 MB/s.
"""

from __future__ import annotations

#: network clock (Hz) -- the 150 MHz machine clock
CLOCK_HZ: float = 150e6
#: per-link bandwidth (bytes/s), paper Section 2
LINK_BANDWIDTH_BYTES_PER_S: float = 300e6
#: bytes carried by one flit in one clock
FLIT_BYTES: int = int(LINK_BANDWIDTH_BYTES_PER_S / CLOCK_HZ)
#: peak floating-point rate per PE (paper Section 2)
PE_PEAK_MFLOPS: float = 300.0
#: maximum memory per PE (paper Section 2)
PE_MAX_MEMORY_BYTES: int = 1 << 30
#: maximum system size (paper Section 2)
MAX_PES: int = 2048


def cycles_to_seconds(cycles: float) -> float:
    return cycles / CLOCK_HZ


def cycles_to_us(cycles: float) -> float:
    return cycles / CLOCK_HZ * 1e6


def seconds_to_cycles(seconds: float) -> float:
    return seconds * CLOCK_HZ


def bytes_to_flits(nbytes: int) -> int:
    """Flits needed to carry ``nbytes`` of payload (at least one)."""
    return max(1, -(-int(nbytes) // FLIT_BYTES))


def flits_to_bytes(nflits: int) -> int:
    return int(nflits) * FLIT_BYTES
