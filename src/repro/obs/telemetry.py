"""Sweep-runtime telemetry: the schema-versioned JSONL run ledger.

The engine has schema-versioned traces (:mod:`repro.obs.trace`); the
sweep runtime -- :class:`~repro.runtime.session.SweepSession`, chunked
dispatch, the per-worker network cache, the on-disk result cache -- gets
the same discipline here.  A **run ledger** is a JSONL stream of plain
dict records describing what a sweep *did*: which specs ran, where, how
long they took, which cache tier served them, and what they produced.
The first record of a sink is always the schema header, so a ledger file
is self-describing, exactly like a trace::

    {"kind": "ledger_header", "schema": 1}
    {"kind": "session_open", "jobs": 4, "chunks_per_worker": 4}
    {"kind": "sweep_start", "run": 1, "specs": 76, "jobs": 4, ...}
    {"kind": "chunk_dispatch", "run": 1, "chunk": 0, "specs": 5, ...}
    {"kind": "spec_done", "run": 1, "i": 0, "spec": {...}, "cycles": 810,
     "delivered": 58, "mean_latency": 11.4, "deadlocked": false,
     "recoveries": 0, "cache": "fresh", "worker": 4711,
     "wall_s": 0.0021, "cpu_s": 0.002, "chunk": 0}
    {"kind": "chunk_done", "run": 1, "chunk": 0, "specs": 5, ...}
    {"kind": "sweep_end", "run": 1, "specs": 76, "deadlocked": 0, ...}
    {"kind": "session_close", "runs": 1}

Record kinds and their fields (schema version 1):

=================== =====================================================
kind                fields
=================== =====================================================
``ledger_header``    ``schema``
``session_open``     ``jobs`` (requested), ``chunks_per_worker``,
                     ``network_capacity``, ``cache_enabled``
``session_close``    ``runs`` (``run()`` calls the session completed)
``sweep_start``      ``run`` (1-based per session), ``specs``, ``jobs``,
                     ``workers`` (effective), ``chunks`` (planned),
                     ``chunk_sizes``, ``cache_enabled``
``chunk_dispatch``   ``run``, ``chunk`` (0-based), ``specs`` (size),
                     ``first``/``last`` (spec indices in the chunk)
``chunk_done``       ``run``, ``chunk``, ``specs``, ``worker`` (pid),
                     ``wall_s``, ``cpu_s``
``spec_done``        ``run``, ``i`` (spec index), ``spec``
                     (``RunSpec.to_dict()``), outcome fields --
                     ``cycles``, ``delivered``, ``mean_latency`` (None
                     when nothing was measured; never NaN),
                     ``deadlocked``, ``recoveries``, ``wall_time``
                     (the worker-measured ``PointResult.wall_time``) --
                     and serving fields -- ``cache`` (tier: ``"result"``
                     served from the on-disk result cache, ``"reuse"``
                     simulated on a warm :class:`NetworkCache` network,
                     ``"fresh"`` simulated on a newly built one),
                     ``worker`` (pid, None when served parent-side),
                     ``chunk`` (None outside chunked dispatch),
                     ``wall_s``/``cpu_s`` (serve time in that worker)
``sweep_end``        ``run``, ``specs``, ``deadlocked`` (count),
                     ``recoveries`` (total), ``workers``, ``chunks``,
                     ``cache_hits``, ``cache_misses``, ``wall_s``
``sweep_error``      ``run``, ``error`` (the failed run's exception;
                     replaces the run's ``spec_done``/``sweep_end``
                     records -- a failed run records only this)
``campaign_start``   (schema 2) the :class:`CampaignSpec` fields --
                     ``shape``, ``samples``, ``seed``, ``rate``,
                     ``max_faults``, ``scheme``, ``block_samples`` --
                     plus ``blocks`` (total), ``first_block``/
                     ``last_block`` (the block range this invocation
                     covers; a resume starts past 0), ``jobs``,
                     ``workers`` (effective), ``chunks`` (planned)
``campaign_chunk``   (schema 2) ``chunk`` (0-based), ``first_block``/
                     ``last_block``, ``samples`` (in the chunk),
                     ``worker`` (pid, None in-process), ``wall_s``;
                     written in completion order -- chunk progress is
                     runtime, not result, so the whole kind is stripped
``campaign_end``     (schema 2) ``samples``, ``blocks`` (folded so
                     far), ``mean_mttf``, ``std_error`` (None when one
                     sample), ``mean_faults_survived``,
                     ``identity_sha256`` (the chunking/jobs-invariant
                     estimate hash), ``wall_s``
=================== =====================================================

Schema history: 1 -- the original sweep-session record set; 2 -- adds
the ``campaign_start``/``campaign_chunk``/``campaign_end`` kinds for
:mod:`repro.analysis.campaign` (schema-1 ledgers remain readable).

**Identity rules.**  Everything a ledger records splits into *what* the
sweep computed -- the specs and their deterministic outcomes -- and *how*
the runtime happened to execute it: wall/cpu clocks, worker placement,
chunking, cache tiers.  :func:`strip_ledger` drops the *how* (the
:data:`RUNTIME_KINDS` records wholesale and the :data:`RUNTIME_FIELDS`
keys from the rest), exactly the way
:func:`repro.runtime.cache.result_identity` strips ``wall_time``.  What
remains is the ledger's identity: the same specs run serially, chunked
over a warm pool, or replayed from a fully populated result cache strip
to byte-identical records, and :func:`ledger_identity` hashes that
projection (tested in ``tests/obs/test_telemetry.py`` and gated by the
``sweep_fanout`` bench case and CI).

Spec order is part of the identity: per-spec records are written in spec
order regardless of completion order (worker-side timings ride back with
the chunk results and are merged deterministically), so a ledger file
never depends on pool scheduling.

This module never imports :mod:`repro.runtime` -- the ledger takes plain
dicts and duck-typed results, keeping :mod:`repro.obs` a leaf the runtime
can depend on (same arrangement as
:class:`~repro.obs.collectors.ResultCacheStats`).
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import Deque, Dict, IO, Iterable, List, NamedTuple, Optional, Tuple

from collections import deque

#: bump when a record kind gains/loses/renames a field
LEDGER_SCHEMA_VERSION = 2

#: schema versions :func:`read_ledger` understands
READABLE_LEDGER_VERSIONS: Tuple[int, ...] = (1, 2)

#: every record kind a schema-2 ledger may contain
LEDGER_KINDS: Tuple[str, ...] = (
    "ledger_header",
    "session_open",
    "session_close",
    "sweep_start",
    "chunk_dispatch",
    "chunk_done",
    "spec_done",
    "sweep_end",
    "sweep_error",
    "campaign_start",
    "campaign_chunk",
    "campaign_end",
)

#: record kinds that describe how the runtime executed (placement,
#: chunking, lifecycle) rather than what the sweep computed; dropped
#: wholesale by :func:`strip_ledger`
RUNTIME_KINDS = frozenset(
    {
        "session_open",
        "session_close",
        "chunk_dispatch",
        "chunk_done",
        "sweep_error",
        # campaign chunk progress arrives in completion order and names
        # workers -- placement, not result; campaign_start/_end survive
        # stripping (minus their RUNTIME_FIELDS) as the campaign identity
        "campaign_chunk",
    }
)

#: per-record fields that may legitimately differ between two runs of
#: the same specs: wall-clock measurements and runtime placement.
#: ``wall_time`` (the worker-measured ``PointResult`` wall) is stripped
#: for the same reason ``result_identity`` strips it; ``cache`` (the
#: serving tier) differs between a fresh run and a cache replay of the
#: same specs, so it is placement, not result.
RUNTIME_FIELDS = frozenset(
    {
        "run",
        "wall_s",
        "cpu_s",
        "wall_time",
        "worker",
        "chunk",
        "cache",
        "jobs",
        "workers",
        "chunks",
        "chunk_sizes",
        "cache_enabled",
        "cache_hits",
        "cache_misses",
    }
)

#: the ``cache`` tiers a ``spec_done`` record may carry
CACHE_TIERS: Tuple[str, ...] = ("result", "reuse", "fresh")


class SweepLedger:
    """Collect sweep-runtime records; optionally stream them as JSONL.

    ``sink`` is any writable text file-like (the schema header is
    written first); ``limit`` bounds the in-memory buffer (None keeps
    everything -- ledgers are low-volume, a handful of records per spec,
    so the default keeps the whole run queryable).
    """

    def __init__(
        self, sink: Optional[IO[str]] = None, limit: Optional[int] = None
    ) -> None:
        self.sink = sink
        self.records: Deque[Dict] = deque(maxlen=limit)
        self._emit(self.header())

    @staticmethod
    def header() -> Dict:
        return {"kind": "ledger_header", "schema": LEDGER_SCHEMA_VERSION}

    def record(self, kind: str, **fields) -> Dict:
        """Append one record (and write it to the sink, when set)."""
        if kind not in LEDGER_KINDS:
            raise ValueError(
                f"unknown ledger record kind {kind!r}; "
                f"choose from {list(LEDGER_KINDS)}"
            )
        rec = {"kind": kind, **fields}
        self._emit(rec)
        return rec

    def _emit(self, rec: Dict) -> None:
        self.records.append(rec)
        if self.sink is not None:
            self.sink.write(json.dumps(rec, separators=(",", ":")) + "\n")

    def of_kind(self, kind: str) -> List[Dict]:
        return [r for r in self.records if r["kind"] == kind]

    def __len__(self) -> int:
        return len(self.records)


def spec_outcome(result) -> Dict:
    """The deterministic outcome fields of one executed sweep point.

    Duck-typed over :class:`~repro.runtime.spec.PointResult` (this module
    must not import the runtime).  ``mean_latency`` is None -- never the
    ``LatencyStats`` NaN sentinel -- when the point measured nothing, so
    every ledger record stays valid JSON.
    """
    point = result.point
    lat = point.latency
    mean = None
    if lat.count and not math.isnan(lat.mean):
        mean = lat.mean
    return {
        "spec": result.spec.to_dict(),
        "cycles": point.cycles,
        "delivered": lat.count,
        "mean_latency": mean,
        "deadlocked": point.deadlocked,
        "recoveries": getattr(point, "recoveries", 0),
        "wall_time": result.wall_time,
    }


class LedgerData(NamedTuple):
    """What :func:`read_ledger` returns."""

    header: Optional[Dict]
    records: List[Dict]
    #: skipped lines: ``{"line": 1-based number, "error": ..., "text": ...}``
    malformed: List[Dict]


def read_ledger(lines: Iterable[str], strict: bool = False) -> LedgerData:
    """Parse a JSONL run ledger: ``(header, records, malformed)``.

    Tolerant the same way :func:`repro.obs.trace.read_trace` is:
    unparseable lines -- typically a truncated tail after an interrupted
    sweep -- are skipped and reported in ``malformed`` unless
    ``strict=True``; a header from an unknown schema always raises
    ``ValueError`` (wrong format, not a damaged file).  Record kinds this
    reader does not know are passed through untouched, so a newer
    writer's extra vocabulary degrades gracefully.
    """
    header: Optional[Dict] = None
    records: List[Dict] = []
    malformed: List[Dict] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            if strict:
                raise ValueError(
                    f"ledger line {lineno} is not valid JSON: {exc}"
                ) from exc
            malformed.append(
                {"line": lineno, "error": str(exc), "text": line[:200]}
            )
            continue
        if not isinstance(rec, dict):
            if strict:
                raise ValueError(f"ledger line {lineno} is not a JSON object")
            malformed.append(
                {
                    "line": lineno,
                    "error": "not a JSON object",
                    "text": line[:200],
                }
            )
            continue
        if rec.get("kind") == "ledger_header":
            if rec.get("schema") not in READABLE_LEDGER_VERSIONS:
                raise ValueError(
                    f"ledger schema {rec.get('schema')!r} is not one of "
                    f"{list(READABLE_LEDGER_VERSIONS)} (this reader's "
                    f"supported versions)"
                )
            header = rec
        else:
            records.append(rec)
    return LedgerData(header, records, malformed)


def strip_ledger(records: Iterable[Dict]) -> List[Dict]:
    """The deterministic projection of a ledger.

    Drops the :data:`RUNTIME_KINDS` records and the
    :data:`RUNTIME_FIELDS` keys from the rest, preserving record order
    (per-spec records are written in spec order, so order *is* part of
    the identity).  Two runs of the same specs -- serial, chunked, or
    cache-replayed -- strip to byte-identical lists.
    """
    out: List[Dict] = []
    for rec in records:
        if rec.get("kind") in RUNTIME_KINDS:
            continue
        out.append(
            {k: v for k, v in rec.items() if k not in RUNTIME_FIELDS}
        )
    return out


def ledger_identity(records: Iterable[Dict]) -> str:
    """sha256 over the canonical JSON of :func:`strip_ledger`.

    The ledger-level sibling of
    :func:`repro.runtime.cache.result_identity`: the hash the bench
    ``sweep_fanout`` case and the CI ledger smoke gate on.
    """
    import hashlib

    blob = json.dumps(
        strip_ledger(records), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _spec_label(spec: Dict) -> str:
    """Terse human label for a ``spec_done`` record's spec dict."""
    shape = "x".join(str(v) for v in spec.get("shape", ()))
    bits = [
        f"{spec.get('kind', '?')} {shape} load={spec.get('load', '?')} "
        f"seed={spec.get('seed', '?')}"
    ]
    if spec.get("faults"):
        bits.append(f"faults={len(spec['faults'])}")
    if spec.get("label"):
        bits.append(f"[{spec['label']}]")
    return " ".join(bits)


def worker_names(records: Iterable[Dict]) -> Dict[Optional[int], str]:
    """Stable display names for the worker pids in ``spec_done`` records.

    Pids are runtime noise; for rendering they map to ``w0``, ``w1``, ...
    by first appearance in record (= spec) order, with parent-side
    serving (``worker`` None) shown as ``main``.
    """
    names: Dict[Optional[int], str] = {}
    for rec in records:
        if rec.get("kind") != "spec_done":
            continue
        w = rec.get("worker")
        if w not in names:
            names[w] = "main" if w is None else f"w{len(names)}"
    return names


class LiveDashboard:
    """Single-line live sweep progress, driven by the progress callback.

    Plug :meth:`progress` into :meth:`SweepSession.run`; call
    :meth:`finish` afterwards for the closing summary (and, when a
    ledger was recorded, per-worker utilization bars and the cache-tier
    breakdown).  Renders to ``stream`` (default stderr, so ``--json``
    stdout stays pure): a live carriage-return ticker on a TTY, sparse
    milestone lines otherwise (CI logs stay readable).
    """

    #: minimum seconds between TTY redraws
    REFRESH_S = 0.1

    def __init__(
        self,
        total: int,
        stream: Optional[IO[str]] = None,
        width: int = 24,
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.width = width
        self.done = 0
        self.cache_hits = 0
        self.deadlocked = 0
        self.recoveries = 0
        self._t0 = time.monotonic()
        self._last_draw = 0.0
        self._last_milestone = 0
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())

    # ------------------------------------------------------------ updates
    def progress(self, result, done: int, total: int) -> None:
        """The ``progress(result, done, total)`` callback."""
        self.done = done
        self.total = total
        point = getattr(result, "point", None)
        if point is not None:
            if point.deadlocked:
                self.deadlocked += 1
            self.recoveries += getattr(point, "recoveries", 0)
        now = time.monotonic()
        if self._tty:
            if now - self._last_draw >= self.REFRESH_S or done == total:
                self._last_draw = now
                self.stream.write("\r" + self.status_line() + "\x1b[K")
                self.stream.flush()
        else:
            # non-TTY: one line per ~10% so logs stay bounded
            milestone = (10 * done) // max(1, total)
            if milestone > self._last_milestone or done == total:
                self._last_milestone = milestone
                self.stream.write(self.status_line() + "\n")

    def status_line(self) -> str:
        elapsed = max(time.monotonic() - self._t0, 1e-9)
        rate = self.done / elapsed
        remaining = self.total - self.done
        eta = remaining / rate if rate > 0 else float("inf")
        filled = round(
            self.width * self.done / self.total if self.total else 0
        )
        bar = "#" * filled + "-" * (self.width - filled)
        bits = [
            f"[{bar}] {self.done}/{self.total}",
            f"{rate:.1f} specs/s",
            "ETA --" if math.isinf(eta) else f"ETA {eta:.0f}s",
        ]
        if self.deadlocked:
            bits.append(f"{self.deadlocked} deadlocked")
        if self.recoveries:
            bits.append(f"{self.recoveries} rotation(s)")
        return "  ".join(bits)

    # ------------------------------------------------------------ closing
    def finish(self, info=None, ledger: Optional[SweepLedger] = None) -> None:
        """Final summary: the run's :class:`RunInfo` one-liner plus,
        when a ledger was recorded, per-worker utilization bars and the
        cache-tier breakdown."""
        if self._tty:
            self.stream.write("\r\x1b[K")
        if info is not None:
            self.stream.write(f"ran {info.describe()}\n")
        if ledger is not None:
            for line in self.worker_lines(ledger.records):
                self.stream.write(line + "\n")
        self.stream.flush()

    @staticmethod
    def worker_lines(records: Iterable[Dict], width: int = 20) -> List[str]:
        """Per-worker utilization bars + cache-tier counts, from the
        ledger's ``spec_done`` records."""
        specs = [r for r in records if r.get("kind") == "spec_done"]
        if not specs:
            return []
        names = worker_names(specs)
        busy: Dict[Optional[int], float] = {}
        count: Dict[Optional[int], int] = {}
        tiers: Dict[str, int] = {}
        for rec in specs:
            w = rec.get("worker")
            busy[w] = busy.get(w, 0.0) + (rec.get("wall_s") or 0.0)
            count[w] = count.get(w, 0) + 1
            tier = rec.get("cache", "fresh")
            tiers[tier] = tiers.get(tier, 0) + 1
        peak = max(busy.values()) or 1.0
        lines = []
        for w, name in names.items():
            bar = "#" * round(width * busy[w] / peak)
            lines.append(
                f"  {name:>5} {count[w]:>5} spec(s) "
                f"{busy[w]:>8.3f}s {bar}"
            )
        lines.append(
            "  cache tiers: "
            + ", ".join(
                f"{tiers.get(t, 0)} {t}" for t in CACHE_TIERS
            )
        )
        return lines
