"""Hook-bus collectors: turn engine events into :class:`MetricSet`s.

Each collector subscribes to exactly the hooks it needs on
:meth:`attach` and contributes metrics on demand; an unattached collector
costs nothing, and an attached one only reads the engine's *public*
observable state (``connections``, ``channel_busy``, ``pending`` ...) --
never private internals.  Every metric a collector emits is a
deterministic function of the simulated events, so metric sets gathered
in worker processes merge byte-identically to a serial run
(wall-clock profiling stays out of this module by design; see
``PointResult.wall_time`` for that).

* :class:`DeliveryCollector`   -- delivered count + fixed-bucket latency
  histogram (one observation per recipient, so broadcasts weigh by fanout);
* :class:`GrantCollector`      -- grants total, multicast (whole-crossbar)
  grants, and per-element grant counts (the Fig. 6 serialization story);
* :class:`PhaseProfiler`       -- per-phase work counters for the five
  engine phases (ejected flits, requests queued, connections established,
  flit moves, injections) plus the cycle count;
* :class:`ChannelUtilization`  -- held cycles per (crossbar, port, VC)
  and busy cycles per channel, renderable as an ASCII heatmap;
* :class:`DeadlockWatch`       -- deadlock count and detection cycle;
* :class:`RouteCacheStats`     -- hit/miss/eviction counters of the
  adapter's route-decision memo (hookless; read on demand).

:class:`CollectorSuite` bundles the standard set for one engine;
:func:`attach_standard_collectors` is what ``RunSpec(metrics=True)`` uses.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.engine import CycleEngine, DeadlockReport
from ..sim.fabric import Connection, VCKey
from ..topology.base import Channel, element_label, output_port_map, port_label
from .metrics import LATENCY_BUCKETS, MetricSet, merge_metric_sets


class Collector:
    """Base: subscribe on attach, contribute a MetricSet on demand."""

    def attach(self, engine: CycleEngine) -> "Collector":
        raise NotImplementedError

    def detach(self, engine: CycleEngine) -> None:
        for fn in self._hooks():
            engine.hooks.unsubscribe(fn)

    def _hooks(self):
        return ()

    def metrics(self) -> MetricSet:
        raise NotImplementedError


class DeliveryCollector(Collector):
    """Latency histogram and delivery counter, fed by ``on_deliver``."""

    def __init__(self, bounds: Sequence[int] = LATENCY_BUCKETS) -> None:
        self._set = MetricSet()
        self._hist = self._set.histogram("latency_cycles", bounds)
        self._count = self._set.counter("deliveries")

    def attach(self, engine: CycleEngine) -> "DeliveryCollector":
        engine.hooks.on_deliver(self._on_deliver)
        return self

    def _hooks(self):
        return (self._on_deliver,)

    def _on_deliver(self, packet, coord, cycle) -> None:
        self._count.inc()
        if packet.injected_at is not None:
            self._hist.observe(cycle - packet.injected_at)

    def metrics(self) -> MetricSet:
        return self._set


class GrantCollector(Collector):
    """Grant counts, overall / multicast / per switch element."""

    def __init__(self) -> None:
        self._set = MetricSet()
        self._grants = self._set.counter("grants")
        self._multicast = self._set.counter("grants_multicast")
        self._by_element = self._set.labeled("grants_by_element")

    def attach(self, engine: CycleEngine) -> "GrantCollector":
        engine.hooks.on_grant(self._on_grant)
        return self

    def _hooks(self):
        return (self._on_grant,)

    def _on_grant(self, engine: CycleEngine, conn: Connection) -> None:
        self._grants.inc()
        if len(conn.couts) > 1:
            self._multicast.inc()
        self._by_element.inc(element_label(conn.element))

    def metrics(self) -> MetricSet:
        return self._set


class PhaseProfiler(Collector):
    """Deterministic work counters for the five engine phases.

    Attribution is by public-counter deltas across each phase: flits
    ejected in *eject*, grant requests queued in *route*, connections
    established in *grant*, flit moves in *transfer*, packets injected in
    *inject* -- the profile of where a cycle's work happens, stable across
    processes (unlike wall-clock time).
    """

    def __init__(self) -> None:
        self._set = MetricSet()
        self._cycles = self._set.counter("cycles")
        self._prev: Tuple[int, int, int, int, int] = (0, 0, 0, 0, 0)

    def attach(self, engine: CycleEngine) -> "PhaseProfiler":
        engine.hooks.on_cycle_start(self._on_cycle_start)
        engine.hooks.on_phase_end(self._on_phase_end)
        return self

    def _hooks(self):
        return (self._on_cycle_start, self._on_phase_end)

    @staticmethod
    def _snapshot(engine: CycleEngine) -> Tuple[int, int, int, int, int]:
        return (
            engine.flit_moves,
            len(engine.delivered),
            engine.blocked_requests(),
            len(engine.connections),
            engine.injected,
        )

    def _on_cycle_start(self, engine: CycleEngine) -> None:
        self._cycles.inc()
        self._prev = self._snapshot(engine)

    def _on_phase_end(self, engine: CycleEngine, phase: str) -> None:
        cur = self._snapshot(engine)
        moves, delivered, blocked, conns, injected = (
            cur[i] - self._prev[i] for i in range(5)
        )
        self._prev = cur
        if phase == "eject":
            self._bump("phase.eject.ejected_flits", moves)
            self._bump("phase.eject.completed_packets", delivered)
        elif phase == "route":
            self._bump("phase.route.requests_queued", blocked)
        elif phase == "grant":
            self._bump("phase.grant.connections_established", conns)
        elif phase == "transfer":
            self._bump("phase.transfer.flit_moves", moves)
        elif phase == "inject":
            self._bump("phase.inject.packets_injected", injected)

    def _bump(self, name: str, delta: int) -> None:
        if delta > 0:
            self._set.counter(name).inc(delta)

    def metrics(self) -> MetricSet:
        return self._set


class ChannelUtilization(Collector):
    """Channel occupancy keyed by (owning switch, output port, VC).

    Two signals per channel:

    * **held cycles** -- cycles a granted connection owned the output
      port after the transfer phase (counted per VC via the public
      connection table; this is the paper's S-XB contention quantity:
      serialized broadcasts hold every port of the crossbar at once);
    * **busy cycles** -- cycles a flit actually crossed the link (from
      the engine's public ``channel_busy`` counters; VC-aggregated).

    ``heatmap()`` renders the per-router heat of either signal for 2D
    networks -- the Fig. 5/6 contention picture.
    """

    def __init__(self) -> None:
        self._held: Dict[VCKey, int] = {}
        self._engine: Optional[CycleEngine] = None
        #: cid -> (channel, owning element label, port index)
        self._ports: Dict[int, Tuple[Channel, str, int]] = {}
        #: frozen (busy, cycles) captured on detach, so a detached
        #: collector stops tracking the live engine
        self._frozen: Optional[Tuple[Dict[int, int], int]] = None

    def attach(self, engine: CycleEngine) -> "ChannelUtilization":
        self._engine = engine
        self._ports = output_port_map(engine.topo)
        engine.hooks.on_phase_end(self._on_phase_end)
        return self

    def _hooks(self):
        return (self._on_phase_end,)

    def detach(self, engine: CycleEngine) -> None:
        self._frozen = (dict(engine.channel_busy), engine.cycle)
        super().detach(engine)

    def _busy_and_cycles(self) -> Tuple[Dict[int, int], int]:
        if self._frozen is not None:
            return self._frozen
        if self._engine is None:
            return {}, 0
        return self._engine.channel_busy, self._engine.cycle

    def _on_phase_end(self, engine: CycleEngine, phase: str) -> None:
        if phase != "transfer":
            return
        held = self._held
        for conn in engine.connections.values():
            for key in conn.couts:
                held[key] = held.get(key, 0) + 1

    def _label(self, cid: int, vc: Optional[int] = None) -> str:
        return port_label(self._ports, cid, vc)

    def metrics(self) -> MetricSet:
        out = MetricSet()
        held = out.labeled("chan.held_cycles")
        for (cid, vc), n in self._held.items():
            held.inc(self._label(cid, vc), n)
        busy = out.labeled("chan.busy_cycles")
        for cid, n in self._busy_and_cycles()[0].items():
            busy.inc(self._label(cid), n)
        return out

    # -- rendering --------------------------------------------------------
    def busy_fractions(self) -> Dict[int, float]:
        """Busy fraction per channel cid over the cycles so far."""
        busy, cycles = self._busy_and_cycles()
        if cycles == 0:
            return {}
        return {cid: n / cycles for cid, n in busy.items()}

    def heatmap(self) -> str:
        """ASCII per-router heat of adjacent channel utilization (2D)."""
        from ..viz.heatmap import render_router_heatmap

        if self._engine is None:
            raise ValueError("collector is not attached")
        return render_router_heatmap(
            self._engine.topo, self.busy_fractions()
        )


class DeadlockWatch(Collector):
    """Counts watchdog firings and records the detection cycle.

    Also counts online recovery actions (``SimConfig.recovery``): the
    ``recoveries`` counter, the last ``recovery_cycle``, and the victims
    rotated out per cyclic wait -- a run that recovers its way to full
    delivery shows ``recoveries > 0`` with ``deadlocks == 0``.
    """

    def __init__(self) -> None:
        self._set = MetricSet()

    def attach(self, engine: CycleEngine) -> "DeadlockWatch":
        engine.hooks.on_deadlock(self._on_deadlock)
        engine.hooks.on_recovery(self._on_recovery)
        return self

    def _hooks(self):
        return (self._on_deadlock, self._on_recovery)

    def _on_deadlock(self, engine: CycleEngine, report: DeadlockReport) -> None:
        self._set.counter("deadlocks").inc()
        self._set.gauge("deadlock_cycle").observe(report.cycle)
        self._set.counter("deadlock_blocked_packets").inc(
            len(report.blocked_pids)
        )

    def _on_recovery(self, engine: CycleEngine, event) -> None:
        self._set.counter("recoveries").inc()
        self._set.gauge("recovery_cycle").observe(event.cycle)
        self._set.counter("recovery_cycle_members").inc(
            len(event.cycle_pids)
        )

    def metrics(self) -> MetricSet:
        return self._set


class RouteCacheStats(Collector):
    """Route-decision memo statistics from the adapter.

    Subscribes to no hooks: the adapter's LRU counters
    (:meth:`~repro.sim.adapter.MDCrossbarAdapter.cache_info`) are read on
    demand, frozen on :meth:`detach`.  Adapters without a ``cache_info``
    method contribute an empty metric set, so the collector is safe in
    the standard bundle for any topology.  The counters are deterministic
    functions of the simulated route requests, so per-process sets merge
    identically to a serial run like every other collector here.
    """

    def __init__(self) -> None:
        self._engine: Optional[CycleEngine] = None
        self._frozen: Optional[Dict[str, int]] = None

    def attach(self, engine: CycleEngine) -> "RouteCacheStats":
        self._engine = engine
        return self

    def detach(self, engine: CycleEngine) -> None:
        self._frozen = self._info()
        super().detach(engine)

    def _info(self) -> Optional[Dict[str, int]]:
        if self._frozen is not None:
            return self._frozen
        if self._engine is None:
            return None
        info_fn = getattr(self._engine.adapter, "cache_info", None)
        return info_fn() if info_fn is not None else None

    def metrics(self) -> MetricSet:
        out = MetricSet()
        info = self._info()
        if info is None:
            return out
        out.counter("route_cache.hits").inc(info["hits"])
        out.counter("route_cache.misses").inc(info["misses"])
        out.counter("route_cache.evictions").inc(info["evictions"])
        out.gauge("route_cache.size").observe(info["size"])
        return out


class ResultCacheStats(Collector):
    """Counters of the sweep runtime's on-disk result cache.

    The cache lives *above* the engine (one per sweep, not per run), so
    this collector subscribes to no hooks and never attaches to an
    engine: it wraps any source with a ``stats() -> {name: int}`` method
    -- :class:`repro.runtime.cache.ResultCache` is the intended one
    (duck-typed to keep :mod:`repro.obs` free of runtime imports) -- and
    exports the counters as a :class:`MetricSet` so cache behaviour
    merges into the same digest as the per-point collectors.
    :meth:`detach` freezes the counters like every other collector here.
    """

    def __init__(self, source) -> None:
        self._source = source
        self._frozen: Optional[Dict[str, int]] = None

    def attach(self, engine: Optional[CycleEngine] = None) -> "ResultCacheStats":
        return self

    def detach(self, engine: Optional[CycleEngine] = None) -> None:
        self._frozen = self._stats()

    def _stats(self) -> Dict[str, int]:
        if self._frozen is not None:
            return self._frozen
        return dict(self._source.stats())

    def metrics(self) -> MetricSet:
        out = MetricSet()
        for name, value in sorted(self._stats().items()):
            out.counter(f"result_cache.{name}").inc(value)
        return out


class CollectorSuite:
    """The standard collector bundle for one engine.

    Attach before running, read :meth:`metrics` after::

        suite = CollectorSuite(sim)
        sim.run(...)
        print(suite.metrics().summary())
    """

    def __init__(
        self,
        engine: CycleEngine,
        collectors: Optional[Sequence[Collector]] = None,
        latency_bounds: Sequence[int] = LATENCY_BUCKETS,
    ) -> None:
        self.engine = engine
        self.collectors: List[Collector] = list(
            collectors
            if collectors is not None
            else (
                DeliveryCollector(latency_bounds),
                GrantCollector(),
                PhaseProfiler(),
                ChannelUtilization(),
                DeadlockWatch(),
                RouteCacheStats(),
            )
        )
        for c in self.collectors:
            c.attach(engine)

    def detach(self) -> None:
        for c in self.collectors:
            c.detach(self.engine)

    def find(self, cls):
        """The first collector of the given class, or None."""
        for c in self.collectors:
            if isinstance(c, cls):
                return c
        return None

    def metrics(self) -> MetricSet:
        return merge_metric_sets(c.metrics() for c in self.collectors)


def attach_standard_collectors(engine: CycleEngine) -> CollectorSuite:
    """What ``RunSpec(metrics=True)`` attaches inside a worker process."""
    return CollectorSuite(engine)
