"""Observability: metrics, collectors and structured tracing.

The metrics/tracing layer of the simulator.  Everything here subscribes
to the engine's public hook bus (:class:`repro.sim.engine.HookBus`) and
reads only public engine state -- attaching collectors never changes a
simulation's outcome (an engine-parity test pins this), and an engine
without subscribers pays nothing.

Five pieces:

* :mod:`repro.obs.metrics`    -- picklable, mergeable Counter / Gauge /
  Histogram / LabeledCounter primitives and the :class:`MetricSet` bag;
* :mod:`repro.obs.collectors` -- hook subscribers turning engine events
  into metrics (latency, grants, per-phase work, channel utilization,
  deadlocks); :func:`attach_standard_collectors` is the bundle
  ``RunSpec(metrics=True)`` uses in worker processes;
* :mod:`repro.obs.spans`      -- per-packet latency decomposition with
  blocked-cycle attribution to the refusing (crossbar, port, vc), the
  S-XB serialization wait, and detour overhead vs the fault-free
  dimension-order route (``RunSpec(spans=True)``);
* :mod:`repro.obs.trace`      -- schema-versioned JSONL event tracing
  (the ``repro trace`` CLI subcommand writes these; spans can be
  rebuilt offline from a trace via :func:`spans_from_trace`);
* :mod:`repro.obs.telemetry`  -- schema-versioned JSONL **run ledger**
  for the sweep runtime (chunk plan, per-spec serving telemetry, cache
  tiers, worker identity) plus the live ``sweep --live`` dashboard;
  ``repro sweep --ledger`` writes one, ``repro report --sweep`` renders
  it;
* :mod:`repro.obs.report`     -- text/markdown rendering of the above
  (the ``repro report`` CLI subcommand).
"""

from .collectors import (
    ChannelUtilization,
    Collector,
    CollectorSuite,
    DeadlockWatch,
    DeliveryCollector,
    GrantCollector,
    PhaseProfiler,
    ResultCacheStats,
    RouteCacheStats,
    attach_standard_collectors,
    element_label,
)
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MergeError,
    MetricSet,
    merge_metric_sets,
)
from ..topology.base import output_port_map, port_label
from .spans import (
    PacketSpan,
    PacketSpanCollector,
    SpanBuilder,
    SpanSet,
    dor_base_transfer,
    merge_span_sets,
    spans_from_trace,
)
from .telemetry import (
    CACHE_TIERS,
    LEDGER_KINDS,
    LEDGER_SCHEMA_VERSION,
    READABLE_LEDGER_VERSIONS,
    RUNTIME_FIELDS,
    RUNTIME_KINDS,
    LedgerData,
    LiveDashboard,
    SweepLedger,
    ledger_identity,
    read_ledger,
    spec_outcome,
    strip_ledger,
    worker_names,
)
from .trace import (
    EVENT_KINDS,
    READABLE_SCHEMA_VERSIONS,
    TRACE_SCHEMA_VERSION,
    TraceData,
    TraceRecorder,
    read_trace,
)

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "MergeError",
    "MetricSet",
    "merge_metric_sets",
    "ChannelUtilization",
    "Collector",
    "CollectorSuite",
    "DeadlockWatch",
    "DeliveryCollector",
    "GrantCollector",
    "PhaseProfiler",
    "ResultCacheStats",
    "RouteCacheStats",
    "attach_standard_collectors",
    "element_label",
    "output_port_map",
    "port_label",
    "PacketSpan",
    "PacketSpanCollector",
    "SpanBuilder",
    "SpanSet",
    "dor_base_transfer",
    "merge_span_sets",
    "spans_from_trace",
    "EVENT_KINDS",
    "READABLE_SCHEMA_VERSIONS",
    "TRACE_SCHEMA_VERSION",
    "TraceData",
    "TraceRecorder",
    "read_trace",
    "CACHE_TIERS",
    "LEDGER_KINDS",
    "LEDGER_SCHEMA_VERSION",
    "READABLE_LEDGER_VERSIONS",
    "RUNTIME_FIELDS",
    "RUNTIME_KINDS",
    "LedgerData",
    "LiveDashboard",
    "SweepLedger",
    "ledger_identity",
    "read_ledger",
    "spec_outcome",
    "strip_ledger",
    "worker_names",
]
