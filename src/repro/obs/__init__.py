"""Observability: metrics, collectors and structured tracing.

The metrics/tracing layer of the simulator.  Everything here subscribes
to the engine's public hook bus (:class:`repro.sim.engine.HookBus`) and
reads only public engine state -- attaching collectors never changes a
simulation's outcome (an engine-parity test pins this), and an engine
without subscribers pays nothing.

Three pieces:

* :mod:`repro.obs.metrics`    -- picklable, mergeable Counter / Gauge /
  Histogram / LabeledCounter primitives and the :class:`MetricSet` bag;
* :mod:`repro.obs.collectors` -- hook subscribers turning engine events
  into metrics (latency, grants, per-phase work, channel utilization,
  deadlocks); :func:`attach_standard_collectors` is the bundle
  ``RunSpec(metrics=True)`` uses in worker processes;
* :mod:`repro.obs.trace`      -- schema-versioned JSONL event tracing
  (the ``repro trace`` CLI subcommand writes these).
"""

from .collectors import (
    ChannelUtilization,
    Collector,
    CollectorSuite,
    DeadlockWatch,
    DeliveryCollector,
    GrantCollector,
    PhaseProfiler,
    attach_standard_collectors,
    element_label,
)
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MergeError,
    MetricSet,
    merge_metric_sets,
)
from .trace import (
    EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    read_trace,
)

__all__ = [
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "MergeError",
    "MetricSet",
    "merge_metric_sets",
    "ChannelUtilization",
    "Collector",
    "CollectorSuite",
    "DeadlockWatch",
    "DeliveryCollector",
    "GrantCollector",
    "PhaseProfiler",
    "attach_standard_collectors",
    "element_label",
    "EVENT_KINDS",
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "read_trace",
]
