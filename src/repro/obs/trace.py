"""Structured, schema-versioned event tracing over the hook bus.

:class:`TraceRecorder` subscribes to the engine's events and turns each
into a plain dict record.  Records go to an optional JSONL ``sink``
(one JSON object per line, written as events happen) and into a bounded
in-memory buffer for post-mortem queries.  The first record of a sink is
always the schema header, so a trace file is self-describing::

    {"kind": "trace_header", "schema": 1, "shape": [4, 3], ...}
    {"kind": "grant", "cycle": 2, "pid": 7, "element": "XB0(0,)", ...}
    {"kind": "deliver", "cycle": 9, "pid": 7, "at": [3, 2], "latency": 9}
    {"kind": "log", "cycle": 0, "message": "packet 7 injected at PE(0, 0)"}

Record kinds and their extra fields (schema version 1):

========== ==============================================================
kind       fields
========== ==============================================================
``grant``    ``pid``, ``element``, ``input`` (input channel cid or
             None for injections), ``outputs`` (list of [cid, vc] pairs)
``deliver``  ``pid``, ``at`` (PE coordinate), ``latency`` (cycles since
             injection, None if unknown)
``deadlock`` ``cycle_pids`` (the cyclic wait), ``blocked`` (all in-flight
             pids)
``log``      ``message`` (the engine's event-log line)
``phase``    ``phase`` (only when ``phases=True``; high volume)
========== ==============================================================

The old :class:`~repro.sim.monitor.TextTrace` rides on this recorder now:
it is a log-only recorder plus the legacy ``(cycle, message)`` rendering.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, IO, List, Optional, Sequence, Tuple

from ..sim.engine import CycleEngine, DeadlockReport
from ..sim.fabric import Connection
from ..topology.base import element_label

#: bump when a record kind gains/loses/renames a field
TRACE_SCHEMA_VERSION = 1

#: every subscribable record kind
EVENT_KINDS: Tuple[str, ...] = ("grant", "deliver", "deadlock", "log", "phase")


class TraceRecorder:
    """Capture engine events as structured records.

    ``events`` picks the record kinds to subscribe (default: everything
    except the high-volume ``phase`` records); ``sink`` is any writable
    text file-like for JSONL output; ``limit`` bounds the in-memory
    buffer (None keeps everything).
    """

    def __init__(
        self,
        events: Sequence[str] = ("grant", "deliver", "deadlock", "log"),
        sink: Optional[IO[str]] = None,
        limit: Optional[int] = 10_000,
    ) -> None:
        unknown = set(events) - set(EVENT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown trace events {sorted(unknown)}; "
                f"choose from {list(EVENT_KINDS)}"
            )
        self.events = tuple(events)
        self.sink = sink
        self.records: Deque[Dict] = deque(maxlen=limit)
        self._engine: Optional[CycleEngine] = None

    # -- lifecycle --------------------------------------------------------
    def attach(self, engine: CycleEngine) -> "TraceRecorder":
        self._engine = engine
        if self.sink is not None:
            self._write(self.header(engine))
        hooks = engine.hooks
        if "grant" in self.events:
            hooks.on_grant(self._on_grant)
        if "deliver" in self.events:
            hooks.on_deliver(self._on_deliver)
        if "deadlock" in self.events:
            hooks.on_deadlock(self._on_deadlock)
        if "log" in self.events:
            hooks.on_log(self._on_log)
        if "phase" in self.events:
            hooks.on_phase_end(self._on_phase_end)
        return self

    def detach(self) -> None:
        if self._engine is not None:
            for fn in (
                self._on_grant,
                self._on_deliver,
                self._on_deadlock,
                self._on_log,
                self._on_phase_end,
            ):
                self._engine.hooks.unsubscribe(fn)
            self._engine = None

    @staticmethod
    def header(engine: CycleEngine) -> Dict:
        return {
            "kind": "trace_header",
            "schema": TRACE_SCHEMA_VERSION,
            "shape": list(engine.topo.shape),
            "topology": type(engine.topo).__name__,
            "start_cycle": engine.cycle,
        }

    # -- event handlers ---------------------------------------------------
    def _emit(self, record: Dict) -> None:
        self.records.append(record)
        if self.sink is not None:
            self._write(record)

    def _write(self, record: Dict) -> None:
        self.sink.write(json.dumps(record, separators=(",", ":")) + "\n")

    def _on_grant(self, engine: CycleEngine, conn: Connection) -> None:
        self._emit(
            {
                "kind": "grant",
                "cycle": engine.cycle,
                "pid": conn.pid,
                "element": element_label(conn.element),
                "input": None if conn.cin is None else conn.cin[0],
                "outputs": [[cid, vc] for cid, vc in conn.couts],
            }
        )

    def _on_deliver(self, packet, coord, cycle) -> None:
        self._emit(
            {
                "kind": "deliver",
                "cycle": cycle,
                "pid": packet.pid,
                "at": list(coord),
                "latency": None
                if packet.injected_at is None
                else cycle - packet.injected_at,
            }
        )

    def _on_deadlock(self, engine: CycleEngine, report: DeadlockReport) -> None:
        self._emit(
            {
                "kind": "deadlock",
                "cycle": report.cycle,
                "cycle_pids": list(report.cycle_pids),
                "blocked": list(report.blocked_pids),
            }
        )

    def _on_log(self, cycle: int, message: str) -> None:
        self._emit({"kind": "log", "cycle": cycle, "message": message})

    def _on_phase_end(self, engine: CycleEngine, phase: str) -> None:
        self._emit({"kind": "phase", "cycle": engine.cycle, "phase": phase})

    # -- queries ----------------------------------------------------------
    def of_kind(self, kind: str) -> List[Dict]:
        return [r for r in self.records if r["kind"] == kind]

    def __len__(self) -> int:
        return len(self.records)


def read_trace(lines) -> Tuple[Optional[Dict], List[Dict]]:
    """Parse a JSONL trace: returns (header, records).  ``lines`` is any
    iterable of strings (an open file, ``text.splitlines()``...).
    Raises ``ValueError`` on a schema the reader does not know."""
    header: Optional[Dict] = None
    records: List[Dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if rec.get("kind") == "trace_header":
            if rec.get("schema") != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"trace schema {rec.get('schema')!r} is not "
                    f"{TRACE_SCHEMA_VERSION} (this reader's version)"
                )
            header = rec
        else:
            records.append(rec)
    return header, records
