"""Structured, schema-versioned event tracing over the hook bus.

:class:`TraceRecorder` subscribes to the engine's events and turns each
into a plain dict record.  Records go to an optional JSONL ``sink``
(one JSON object per line, written as events happen) and into a bounded
in-memory buffer for post-mortem queries.  The first record of a sink is
always the schema header, so a trace file is self-describing::

    {"kind": "trace_header", "schema": 2, "shape": [4, 3], ...}
    {"kind": "inject", "cycle": 0, "pid": 7, "at": [0, 0], ...}
    {"kind": "grant", "cycle": 2, "pid": 7, "element": "XB0(0,)", ...}
    {"kind": "block", "cycle": 3, "pid": 8, "out": "XB0(0,):p2:vc0", ...}
    {"kind": "deliver", "cycle": 9, "pid": 7, "at": [3, 2], "latency": 9}
    {"kind": "log", "cycle": 0, "message": "packet 7 injected at PE(0, 0)"}

Record kinds and their extra fields (schema version 3):

========== ==============================================================
kind       fields
========== ==============================================================
``inject``   ``pid``, ``at`` (source PE), ``src``, ``dst``, ``rc``,
             ``length``, ``expect`` (deliveries owed), ``queued_at``
             (cycle the packet entered the source queue); emitted when
             the packet takes the injection channel into the fabric
``grant``    ``pid``, ``element``, ``input`` (input channel cid or
             None for injections), ``outputs`` (list of [cid, vc] pairs)
``block``    ``pid``, ``element``, ``why`` (one of
             :data:`repro.sim.BLOCK_KINDS`), ``out`` (the refusing
             (crossbar, port, vc) label), ``key`` ([cid, vc] of the
             refused channel)
``deliver``  ``pid``, ``at`` (PE coordinate), ``latency`` (cycles since
             injection, None if unknown)
``deadlock`` ``cycle_pids`` (the cyclic wait), ``blocked`` (all in-flight
             pids)
``recovery`` ``victim`` (the pid rotated out of the fabric), ``attempt``
             (1-based recovery count), ``cycle_pids`` (the cyclic wait
             that was broken)
``log``      ``message`` (the engine's event-log line)
``phase``    ``phase`` (only when ``phases=True``; high volume)
========== ==============================================================

Schema history: version 2 added the ``inject`` and ``block`` kinds;
version 3 added the ``recovery`` kind (online deadlock recovery).  Older
traces read fine -- they just lack those records.

The old :class:`~repro.sim.monitor.TextTrace` rides on this recorder now:
it is a log-only recorder plus the legacy ``(cycle, message)`` rendering.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, IO, List, NamedTuple, Optional, Sequence, Tuple

from ..sim.engine import BlockEvent, CycleEngine, DeadlockReport
from ..sim.fabric import Connection
from ..topology.base import element_label, output_port_map, port_label

#: bump when a record kind gains/loses/renames a field
TRACE_SCHEMA_VERSION = 3

#: schema versions :func:`read_trace` understands
READABLE_SCHEMA_VERSIONS: Tuple[int, ...] = (1, 2, 3)

#: every subscribable record kind
EVENT_KINDS: Tuple[str, ...] = (
    "inject",
    "grant",
    "block",
    "deliver",
    "deadlock",
    "recovery",
    "log",
    "phase",
)


class TraceRecorder:
    """Capture engine events as structured records.

    ``events`` picks the record kinds to subscribe (default: everything
    except the high-volume ``phase`` records); ``sink`` is any writable
    text file-like for JSONL output; ``limit`` bounds the in-memory
    buffer (None keeps everything).
    """

    def __init__(
        self,
        events: Sequence[str] = (
            "inject",
            "grant",
            "block",
            "deliver",
            "deadlock",
            "recovery",
            "log",
        ),
        sink: Optional[IO[str]] = None,
        limit: Optional[int] = 10_000,
    ) -> None:
        unknown = set(events) - set(EVENT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown trace events {sorted(unknown)}; "
                f"choose from {list(EVENT_KINDS)}"
            )
        self.events = tuple(events)
        self.sink = sink
        self.records: Deque[Dict] = deque(maxlen=limit)
        self._engine: Optional[CycleEngine] = None
        self._ports: Dict = {}

    # -- lifecycle --------------------------------------------------------
    def attach(self, engine: CycleEngine) -> "TraceRecorder":
        self._engine = engine
        if self.sink is not None:
            self._write(self.header(engine))
        hooks = engine.hooks
        if "inject" in self.events:
            hooks.on_inject(self._on_inject)
        if "grant" in self.events:
            hooks.on_grant(self._on_grant)
        if "block" in self.events:
            self._ports = output_port_map(engine.topo)
            hooks.on_block(self._on_block)
        if "deliver" in self.events:
            hooks.on_deliver(self._on_deliver)
        if "deadlock" in self.events:
            hooks.on_deadlock(self._on_deadlock)
        if "recovery" in self.events:
            hooks.on_recovery(self._on_recovery)
        if "log" in self.events:
            hooks.on_log(self._on_log)
        if "phase" in self.events:
            hooks.on_phase_end(self._on_phase_end)
        return self

    def detach(self) -> None:
        if self._engine is not None:
            for fn in (
                self._on_inject,
                self._on_grant,
                self._on_block,
                self._on_deliver,
                self._on_deadlock,
                self._on_recovery,
                self._on_log,
                self._on_phase_end,
            ):
                self._engine.hooks.unsubscribe(fn)
            self._engine = None

    @staticmethod
    def header(engine: CycleEngine) -> Dict:
        return {
            "kind": "trace_header",
            "schema": TRACE_SCHEMA_VERSION,
            "shape": list(engine.topo.shape),
            "topology": type(engine.topo).__name__,
            "start_cycle": engine.cycle,
        }

    # -- event handlers ---------------------------------------------------
    def _emit(self, record: Dict) -> None:
        self.records.append(record)
        if self.sink is not None:
            self._write(record)

    def _write(self, record: Dict) -> None:
        self.sink.write(json.dumps(record, separators=(",", ":")) + "\n")

    def _on_inject(
        self, engine: CycleEngine, packet, coord, queued: bool
    ) -> None:
        if queued:
            return  # only fabric entries are recorded; queue-entry time
            # travels on the record as ``queued_at``
        self._emit(
            {
                "kind": "inject",
                "cycle": engine.cycle,
                "pid": packet.pid,
                "at": list(coord),
                "src": list(packet.source),
                "dst": list(packet.dest),
                "rc": int(packet.header.rc),
                "length": packet.length,
                "expect": engine.expected_deliveries(packet),
                "queued_at": packet.injected_at,
            }
        )

    def _on_block(self, engine: CycleEngine, ev: BlockEvent) -> None:
        cid, vc = ev.wanted[0]
        self._emit(
            {
                "kind": "block",
                "cycle": engine.cycle,
                "pid": ev.pid,
                "element": element_label(ev.element),
                "why": ev.why,
                "out": port_label(self._ports, cid, vc),
                "key": [cid, vc],
            }
        )

    def _on_grant(self, engine: CycleEngine, conn: Connection) -> None:
        self._emit(
            {
                "kind": "grant",
                "cycle": engine.cycle,
                "pid": conn.pid,
                "element": element_label(conn.element),
                "input": None if conn.cin is None else conn.cin[0],
                "outputs": [[cid, vc] for cid, vc in conn.couts],
            }
        )

    def _on_deliver(self, packet, coord, cycle) -> None:
        self._emit(
            {
                "kind": "deliver",
                "cycle": cycle,
                "pid": packet.pid,
                "at": list(coord),
                "latency": None
                if packet.injected_at is None
                else cycle - packet.injected_at,
            }
        )

    def _on_deadlock(self, engine: CycleEngine, report: DeadlockReport) -> None:
        self._emit(
            {
                "kind": "deadlock",
                "cycle": report.cycle,
                "cycle_pids": list(report.cycle_pids),
                "blocked": list(report.blocked_pids),
            }
        )

    def _on_recovery(self, engine: CycleEngine, event) -> None:
        self._emit(
            {
                "kind": "recovery",
                "cycle": event.cycle,
                "victim": event.victim,
                "attempt": event.attempt,
                "cycle_pids": list(event.cycle_pids),
            }
        )

    def _on_log(self, cycle: int, message: str) -> None:
        self._emit({"kind": "log", "cycle": cycle, "message": message})

    def _on_phase_end(self, engine: CycleEngine, phase: str) -> None:
        self._emit({"kind": "phase", "cycle": engine.cycle, "phase": phase})

    # -- queries ----------------------------------------------------------
    def of_kind(self, kind: str) -> List[Dict]:
        return [r for r in self.records if r["kind"] == kind]

    def __len__(self) -> int:
        return len(self.records)


class TraceData(NamedTuple):
    """What :func:`read_trace` returns."""

    header: Optional[Dict]
    records: List[Dict]
    #: skipped lines: ``{"line": 1-based number, "error": ..., "text": ...}``
    malformed: List[Dict]


def read_trace(lines, strict: bool = False) -> TraceData:
    """Parse a JSONL trace: returns ``(header, records, malformed)``.

    ``lines`` is any iterable of strings (an open file,
    ``text.splitlines()``...).  Unparseable lines -- typically a
    truncated tail after an interrupted run -- are skipped and reported
    in ``malformed`` instead of aborting the read; pass ``strict=True``
    to raise on the first one.  A header from a schema this reader does
    not know always raises ``ValueError`` (that is a wrong *format*, not
    a damaged file).
    """
    header: Optional[Dict] = None
    records: List[Dict] = []
    malformed: List[Dict] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            if strict:
                raise ValueError(
                    f"trace line {lineno} is not valid JSON: {exc}"
                ) from exc
            malformed.append(
                {"line": lineno, "error": str(exc), "text": line[:200]}
            )
            continue
        if not isinstance(rec, dict):
            if strict:
                raise ValueError(
                    f"trace line {lineno} is not a JSON object"
                )
            malformed.append(
                {
                    "line": lineno,
                    "error": "not a JSON object",
                    "text": line[:200],
                }
            )
            continue
        if rec.get("kind") == "trace_header":
            if rec.get("schema") not in READABLE_SCHEMA_VERSIONS:
                raise ValueError(
                    f"trace schema {rec.get('schema')!r} is not one of "
                    f"{list(READABLE_SCHEMA_VERSIONS)} (this reader's "
                    f"supported versions)"
                )
            header = rec
        else:
            records.append(rec)
    return TraceData(header, records, malformed)
