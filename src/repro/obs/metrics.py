"""Metric primitives: counters, gauges, histograms and labeled counters.

Everything here is a plain dataclass over builtin types, so metrics are

* **picklable** -- :class:`~repro.runtime.spec.PointResult` carries them
  across ``ProcessPoolExecutor`` workers unchanged;
* **mergeable** -- :meth:`MetricSet.merge` folds the metrics of many runs
  (sweep points, seed replicas) into one set, deterministically: merging
  in spec order yields byte-identical JSON whether the points ran serially
  or fanned out over processes;
* **JSON-clean** -- :meth:`MetricSet.to_dict` emits only ``None``, ints,
  floats, strings and sorted containers, never NaN sentinels.

Merge semantics per type:

* :class:`Counter`        -- values add;
* :class:`LabeledCounter` -- values add per label;
* :class:`Gauge`          -- ``min``/``max`` combine, ``last`` takes the
  right operand's (merge order is spec order, so "last" is well defined);
* :class:`Histogram`      -- bucket counts, ``total`` and ``count`` add
  (bucket bounds must match -- they are part of the metric's identity).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: fixed upper bounds for latency histograms (cycles); the implicit
#: overflow bucket catches everything above the last bound
LATENCY_BUCKETS: Tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


class MergeError(ValueError):
    """Two metrics with the same name but incompatible identities."""


@dataclass
class Counter:
    """A monotonically increasing event count."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {n}")
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Dict:
        return {"type": "counter", "value": self.value}


@dataclass
class LabeledCounter:
    """A family of counters keyed by a string label (one metric name,
    many series -- e.g. held-cycles per channel)."""

    name: str
    values: Dict[str, int] = field(default_factory=dict)

    def inc(self, label: str, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {n}")
        self.values[label] = self.values.get(label, 0) + n

    def merge(self, other: "LabeledCounter") -> None:
        for label, n in other.values.items():
            self.values[label] = self.values.get(label, 0) + n

    def top(self, k: int = 10) -> List[Tuple[str, int]]:
        """The ``k`` largest series, ties broken by label."""
        return sorted(self.values.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def total(self) -> int:
        return sum(self.values.values())

    def to_dict(self) -> Dict:
        return {
            "type": "labeled_counter",
            "values": {k: self.values[k] for k in sorted(self.values)},
        }


@dataclass
class Gauge:
    """A sampled value with its running extrema.  ``last`` is ``None``
    until the first observation (never a NaN sentinel -- see the
    ``LatencyStats`` empty-input bug this subsystem's PR fixes)."""

    name: str
    last: Optional[float] = None
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.last = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Gauge") -> None:
        if other.last is not None:
            self.last = other.last
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def to_dict(self) -> Dict:
        return {"type": "gauge", "last": self.last, "min": self.min, "max": self.max}


@dataclass
class Histogram:
    """Fixed-bucket histogram.  ``bounds`` are inclusive upper bounds;
    ``counts`` has ``len(bounds) + 1`` entries, the last one the overflow
    bucket."""

    name: str
    bounds: Tuple[int, ...] = LATENCY_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"histogram {self.name!r}: {len(self.bounds)} bounds need "
                f"{len(self.bounds) + 1} buckets, got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the ``q``-quantile (a bucket
        estimate, exact enough for saturation curves)."""
        if not self.count:
            return None
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                return float(self.bounds[i]) if i < len(self.bounds) else float("inf")
        return float("inf")

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise MergeError(
                f"histogram {self.name!r}: bucket bounds differ "
                f"({self.bounds} vs {other.bounds})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count

    def render(self, width: int = 40) -> str:
        """ASCII bars, one row per bucket."""
        peak = max(self.counts) or 1
        rows = []
        labels = [f"<={b}" for b in self.bounds] + [f">{self.bounds[-1]}"]
        for label, c in zip(labels, self.counts):
            bar = "#" * round(width * c / peak)
            rows.append(f"  {label:>8} {c:>8} {bar}")
        head = f"{self.name}: n={self.count}"
        if self.count:
            head += f" mean={self.total / self.count:.1f}"
        return "\n".join([head] + rows)

    def to_dict(self) -> Dict:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }


@dataclass
class MetricSet:
    """A named bag of metrics: the unit the collectors emit and the
    runtime merges.  Get-or-create accessors keep collector code terse::

        m.counter("delivered").inc()
        m.histogram("latency").observe(37)
    """

    metrics: Dict[str, object] = field(default_factory=dict)

    def _get(self, name: str, cls, **kw):
        m = self.metrics.get(name)
        if m is None:
            m = cls(name=name, **kw)
            self.metrics[name] = m
        elif not isinstance(m, cls):
            raise MergeError(
                f"metric {name!r} is a {type(m).__name__}, not a {cls.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def labeled(self, name: str) -> LabeledCounter:
        return self._get(name, LabeledCounter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[int] = LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, bounds=tuple(bounds))

    def __contains__(self, name: str) -> bool:
        return name in self.metrics

    def __getitem__(self, name: str):
        return self.metrics[name]

    def __len__(self) -> int:
        return len(self.metrics)

    def names(self) -> List[str]:
        return sorted(self.metrics)

    def merge(self, other: "MetricSet") -> "MetricSet":
        """Fold ``other`` into this set (in place; returns self)."""
        for name in sorted(other.metrics):
            theirs = other.metrics[name]
            mine = self.metrics.get(name)
            if mine is None:
                self.metrics[name] = _clone(theirs)
            elif type(mine) is not type(theirs):
                raise MergeError(
                    f"metric {name!r}: {type(mine).__name__} vs "
                    f"{type(theirs).__name__}"
                )
            else:
                mine.merge(theirs)
        return self

    def to_dict(self) -> Dict:
        """Deterministic plain-dict form (sorted names, JSON-clean)."""
        return {name: self.metrics[name].to_dict() for name in sorted(self.metrics)}

    def summary(self, top: int = 5) -> str:
        """Human-readable digest of every metric."""
        lines: List[str] = []
        for name in sorted(self.metrics):
            m = self.metrics[name]
            if isinstance(m, Counter):
                lines.append(f"{name} = {m.value}")
            elif isinstance(m, Gauge):
                lines.append(f"{name} = {m.last} (min {m.min}, max {m.max})")
            elif isinstance(m, Histogram):
                lines.append(m.render())
            elif isinstance(m, LabeledCounter):
                lines.append(f"{name}: {len(m.values)} series, total {m.total()}")
                for label, n in m.top(top):
                    lines.append(f"  {label} = {n}")
        return "\n".join(lines)


def _clone(metric):
    import copy

    return copy.deepcopy(metric)


def merge_metric_sets(sets: Iterable[Optional[MetricSet]]) -> MetricSet:
    """Merge many metric sets (skipping ``None`` entries) into a fresh one.

    Merging is order-sensitive only for gauges' ``last`` field; callers
    pass results **in spec order** so serial and parallel sweeps merge to
    byte-identical sets.
    """
    merged = MetricSet()
    for s in sets:
        if s is not None:
            merged.merge(s)
    return merged
