"""Run reports: render span, metric and utilization aggregates.

One renderer behind the ``repro report`` subcommand.  It takes whatever
observability artifacts a run produced -- a :class:`SpanSet` (live
collection or rebuilt from a JSONL trace), a :class:`MetricSet`, an
ASCII channel heatmap -- and lays them out as plain text or markdown:

* run summary (packets, latency decomposition totals and shares);
* blocked-cycle attribution table: the (crossbar, port, vc) labels that
  refused the most cycles, the paper's contention story;
* S-XB serialization wait distribution over broadcasts (Fig. 6);
* detour overhead summary (extra cycles vs the fault-free
  dimension-order route);
* deadlock-recovery actions (victim, attempt, broken cycle) when the
  run used the engine's online recovery mode;
* the channel-utilization heatmap and the metric digest, verbatim.

Everything here is pure formatting over the deterministic aggregates;
the same inputs always render the same bytes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import Histogram, MetricSet
from .spans import SpanSet
from .telemetry import (
    CACHE_TIERS,
    LiveDashboard,
    _spec_label,
    worker_names,
)

#: inclusive upper bounds for the S-XB wait distribution buckets
SXB_WAIT_BUCKETS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64)

#: inclusive upper bounds (milliseconds) for the chunk-balance histogram
CHUNK_WALL_BUCKETS_MS: Tuple[int, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
)


def _bucketize(values: Sequence[int], bounds: Sequence[int]) -> List[Tuple[str, int]]:
    labels = [f"<={b}" for b in bounds] + [f">{bounds[-1]}"]
    counts = [0] * (len(bounds) + 1)
    for v in values:
        for i, b in enumerate(bounds):
            if v <= b:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    return list(zip(labels, counts))


def _bar(count: int, peak: int, width: int = 30) -> str:
    peak = peak or 1
    return "#" * round(width * count / peak)


class _Doc:
    """Tiny two-dialect (text / markdown) document builder."""

    def __init__(self, markdown: bool) -> None:
        self.md = markdown
        self.lines: List[str] = []

    def title(self, text: str) -> None:
        if self.md:
            self.lines += [f"# {text}", ""]
        else:
            self.lines += [text, "=" * len(text), ""]

    def section(self, text: str) -> None:
        if self.md:
            self.lines += [f"## {text}", ""]
        else:
            self.lines += [text, "-" * len(text), ""]

    def para(self, text: str) -> None:
        self.lines += [text, ""]

    def table(self, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
        cells = [[str(c) for c in row] for row in rows]
        widths = [
            max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
            for i, h in enumerate(headers)
        ]
        if self.md:
            self.lines.append(
                "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |"
            )
            self.lines.append(
                "|" + "|".join("-" * (w + 2) for w in widths) + "|"
            )
            for row in cells:
                self.lines.append(
                    "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
                )
        else:
            self.lines.append(
                "  ".join(h.ljust(w) for h, w in zip(headers, widths))
            )
            self.lines.append("  ".join("-" * w for w in widths))
            for row in cells:
                self.lines.append(
                    "  ".join(c.ljust(w) for c, w in zip(row, widths))
                )
        self.lines.append("")

    def verbatim(self, block: str) -> None:
        if self.md:
            self.lines += ["```", *block.splitlines(), "```", ""]
        else:
            self.lines += [*block.splitlines(), ""]

    def render(self) -> str:
        return "\n".join(self.lines).rstrip() + "\n"


def render_report(
    spans: Optional[SpanSet] = None,
    metrics: Optional[MetricSet] = None,
    heatmap: Optional[str] = None,
    title: str = "Simulation report",
    run_info: Optional[Dict] = None,
    fmt: str = "text",
    top: int = 10,
    recoveries: Optional[Sequence[Dict]] = None,
) -> str:
    """Render a run report from whichever artifacts are available.

    ``fmt`` is ``"text"`` (ASCII) or ``"md"`` (markdown); ``run_info``
    is an optional flat dict echoed in the summary section (shape,
    load, cycles...); ``top`` bounds the attribution table;
    ``recoveries`` is a sequence of recovery records (the trace's
    ``recovery`` kind: ``cycle``/``victim``/``attempt``/``cycle_pids``)
    rendered as the deadlock-recovery section when non-empty.
    """
    if fmt not in ("text", "md"):
        raise ValueError(f"unknown report format {fmt!r}; use 'text' or 'md'")
    doc = _Doc(markdown=(fmt == "md"))
    doc.title(title)

    if run_info:
        doc.table(
            ("parameter", "value"),
            [(k, run_info[k]) for k in run_info],
        )

    if spans is not None:
        _render_spans(doc, spans, top)

    if recoveries:
        doc.section("Deadlock recovery")
        doc.para(
            f"{len(recoveries)} recovery action(s): each drained the "
            "victim packet's flits back out of the fabric and re-queued "
            "it at its source, breaking the detected cyclic wait online."
        )
        doc.table(
            ("attempt", "cycle", "victim pid", "cyclic wait"),
            [
                (
                    r.get("attempt", i + 1),
                    r.get("cycle", "?"),
                    r.get("victim", "?"),
                    " -> ".join(str(p) for p in r.get("cycle_pids", ())),
                )
                for i, r in enumerate(recoveries)
            ],
        )

    if heatmap is not None:
        doc.section("Channel utilization heatmap")
        doc.verbatim(heatmap)

    if metrics is not None and len(metrics):
        doc.section("Metrics")
        doc.verbatim(metrics.summary())

    return doc.render()


def render_sweep_report(
    header: Optional[Dict],
    records: Sequence[Dict],
    title: str = "Sweep report",
    fmt: str = "text",
    top: int = 10,
) -> str:
    """Render a run-ledger report (the ``repro report --sweep`` view).

    Takes what :func:`~repro.obs.telemetry.read_ledger` returned and lays
    out the sweep-runtime story: run summary, cache-traffic breakdown by
    tier, the ``top`` straggler specs by serve wall time, the
    chunk-balance histogram (per-chunk wall time, reusing
    :meth:`~repro.obs.metrics.Histogram.render`), per-worker utilization
    bars, and the recovery/deadlock summary.  Pure formatting: the same
    ledger always renders the same bytes.
    """
    if fmt not in ("text", "md"):
        raise ValueError(f"unknown report format {fmt!r}; use 'text' or 'md'")
    doc = _Doc(markdown=(fmt == "md"))
    doc.title(title)

    sweeps = [r for r in records if r.get("kind") == "sweep_start"]
    ends = [r for r in records if r.get("kind") == "sweep_end"]
    specs = [r for r in records if r.get("kind") == "spec_done"]
    chunks = [r for r in records if r.get("kind") == "chunk_done"]
    errors = [r for r in records if r.get("kind") == "sweep_error"]

    summary: List[Tuple[str, object]] = [
        ("ledger schema", header.get("schema") if header else "?"),
        ("sweeps", len(sweeps)),
        ("specs", len(specs)),
        ("deadlocked", sum(1 for r in specs if r.get("deadlocked"))),
        (
            "recovery rotations",
            sum(r.get("recoveries", 0) for r in specs),
        ),
        (
            "total wall",
            f"{sum(r.get('wall_s', 0.0) for r in ends):.2f}s",
        ),
    ]
    if errors:
        summary.append(("failed sweeps", len(errors)))
    doc.table(("parameter", "value"), summary)
    if errors:
        doc.table(
            ("failed run", "error"),
            [(r.get("run", "?"), r.get("error", "?")) for r in errors],
        )

    doc.section("Cache traffic")
    if not specs:
        doc.para("No specs recorded.")
    else:
        tiers = {t: 0 for t in CACHE_TIERS}
        for r in specs:
            tiers[r.get("cache", "fresh")] = (
                tiers.get(r.get("cache", "fresh"), 0) + 1
            )
        hits = tiers.get("result", 0)
        doc.para(
            f"{hits} of {len(specs)} spec(s) served from the result cache "
            f"({100.0 * hits / len(specs):.1f}% hit rate); the rest "
            "simulated on a reused or freshly built network."
        )
        peak = max(tiers.values())
        doc.table(
            ("tier", "meaning", "specs", ""),
            [
                (
                    t,
                    {
                        "result": "replayed from the on-disk result cache",
                        "reuse": "simulated on a warm reused network",
                        "fresh": "simulated on a freshly built network",
                    }[t],
                    tiers[t],
                    _bar(tiers[t], peak),
                )
                for t in CACHE_TIERS
            ],
        )

    doc.section(f"Stragglers (top {top} by serve wall time)")
    timed = [r for r in specs if r.get("wall_s") is not None]
    if not timed:
        doc.para("No serve timings recorded.")
    else:
        names = worker_names(specs)
        slowest = sorted(
            timed, key=lambda r: r["wall_s"], reverse=True
        )[:top]
        peak = slowest[0]["wall_s"] or 1.0
        doc.table(
            ("rank", "spec", "tier", "worker", "wall", ""),
            [
                (
                    i + 1,
                    _spec_label(r.get("spec", {})),
                    r.get("cache", "?"),
                    names.get(r.get("worker"), "?"),
                    f"{r['wall_s'] * 1e3:.1f}ms",
                    _bar(round(r["wall_s"] * 1e6), round(peak * 1e6)),
                )
                for i, r in enumerate(slowest)
            ],
        )

    doc.section("Chunk balance")
    if not chunks:
        doc.para(
            "No chunked dispatch in this ledger (serial and fully "
            "cached runs execute without chunks)."
        )
    else:
        sizes = [r.get("specs", 0) for r in chunks]
        hist = Histogram("chunk wall (ms)", bounds=CHUNK_WALL_BUCKETS_MS)
        for r in chunks:
            hist.observe(r.get("wall_s", 0.0) * 1e3)
        doc.para(
            f"{len(chunks)} chunk(s), {min(sizes)}-{max(sizes)} spec(s) "
            "each; a balanced sweep keeps chunk wall times in adjacent "
            "buckets -- a long tail here is the straggler signal."
        )
        doc.verbatim(hist.render())

    doc.section("Workers")
    lines = LiveDashboard.worker_lines(specs)
    if not lines:
        doc.para("No specs recorded.")
    else:
        doc.verbatim("\n".join(lines))

    troubled = [
        r
        for r in specs
        if r.get("deadlocked") or r.get("recoveries", 0)
    ]
    doc.section("Deadlocks and recovery")
    if not troubled:
        doc.para("No deadlocks and no recovery rotations.")
    else:
        doc.table(
            ("spec", "deadlocked", "rotations", "cycles"),
            [
                (
                    _spec_label(r.get("spec", {})),
                    "yes" if r.get("deadlocked") else "no",
                    r.get("recoveries", 0),
                    r.get("cycles", "?"),
                )
                for r in troubled
            ],
        )

    return doc.render()


def _render_spans(doc: _Doc, spans: SpanSet, top: int) -> None:
    totals = spans.totals()
    doc.section("Latency decomposition")
    n = totals["packets"]
    if n == 0:
        doc.para(
            f"No completed packets ({totals['incomplete']} incomplete)."
        )
    else:
        latency = totals["latency"] or 1
        rows = []
        for comp in ("queue_wait", "blocked", "sxb_wait", "transfer"):
            share = 100.0 * totals[comp] / latency
            rows.append(
                (comp, totals[comp], f"{totals[comp] / n:.2f}", f"{share:.1f}%")
            )
        rows.append(("latency (total)", totals["latency"], f"{totals['latency'] / n:.2f}", "100.0%"))
        doc.para(
            f"{n} completed packets, {totals['incomplete']} incomplete; "
            "per-packet identity: queue_wait + blocked + sxb_wait + "
            "transfer == latency."
        )
        doc.table(("component", "cycles", "per packet", "share"), rows)
        if totals["detoured_packets"]:
            doc.para(
                f"Detour overhead: {totals['detour_overhead']} cycles over "
                f"{totals['detoured_packets']} detoured packets "
                "(vs the fault-free dimension-order route)."
            )

    blocked = spans.top_blocked(top)
    doc.section("Blocked-cycle attribution (top refusing ports)")
    if not blocked:
        doc.para("No blocked cycles recorded.")
    else:
        peak = blocked[0][1]
        doc.table(
            ("rank", "(crossbar, port, vc)", "blocked cycles", ""),
            [
                (i + 1, label, cycles, _bar(cycles, peak))
                for i, (label, cycles) in enumerate(blocked)
            ],
        )

    waits = spans.sxb_waits()
    doc.section("S-XB serialization wait (broadcasts)")
    if not waits:
        doc.para("No broadcasts in this run.")
    else:
        doc.para(
            f"{len(waits)} broadcasts; total S-XB wait "
            f"{sum(waits)} cycles, max {max(waits)}."
        )
        buckets = _bucketize(waits, SXB_WAIT_BUCKETS)
        peak = max(c for _, c in buckets)
        doc.table(
            ("wait (cycles)", "broadcasts", ""),
            [(label, c, _bar(c, peak)) for label, c in buckets],
        )
