"""Per-packet spans: where every cycle of a packet's latency went.

A :class:`PacketSpan` reconstructs one packet's lifecycle from the hook
bus -- queue entry, fabric injection, per-hop grants and refusals,
delivery -- and decomposes its end-to-end latency into

* **queue wait**  -- cycles in the source queue before taking the
  injection channel;
* **blocked**     -- in-fabric cycles the packet failed to advance,
  attributed to the (crossbar, output port, vc) that refused it
  (a denied grant, head-of-line wait behind another packet, or a
  transfer stalled on a full downstream buffer);
* **S-XB wait**   -- blocked cycles an RC=1/2 broadcast spent in a
  serialization queue (the paper's Fig. 6 cost);
* **transfer**    -- the cycles the packet actually moved.

The decomposition satisfies an exact accounting identity::

    queue_wait + blocked_total + sxb_wait + transfer == latency

For unicasts on the MD crossbar the span also carries the *fault-free
dimension-order* cost of the same (source, dest) pair, so
``detour_overhead = transfer - base_transfer`` isolates the extra hops a
fault detour added (zero on a fault-free network -- a property the tests
pin, which also proves every stalled cycle was attributed somewhere).

Spans are plain dataclasses over builtins: picklable, and merged across
sweep points/processes in spec order like :class:`MetricSet` -- packet
ids are rebased to the smallest id seen so serial and parallel sweeps
serialize byte-identically.

The same reconstruction runs live (:class:`PacketSpanCollector` on the
hook bus) or offline from a JSONL trace (:func:`spans_from_trace`), both
through one :class:`SpanBuilder` state machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.packet import RC
from ..sim.engine import BlockEvent, CycleEngine
from ..topology.base import element_label, output_port_map, port_label
from .collectors import Collector
from .metrics import LATENCY_BUCKETS, MetricSet

#: RC values that make a packet a broadcast for span purposes
_BROADCAST_RCS = (int(RC.BROADCAST_REQUEST), int(RC.BROADCAST))


@dataclass
class PacketSpan:
    """One packet's reconstructed lifecycle (all fields are builtins)."""

    pid: int
    source: Tuple[int, ...]
    dest: Tuple[int, ...]
    rc: int
    length: int
    queued_at: int
    injected_at: Optional[int] = None
    delivered_at: Optional[int] = None
    #: deliveries this packet owed / made (fanout for broadcasts)
    expected: int = 0
    deliveries: int = 0
    #: refusing (crossbar, port, vc) label -> blocked cycles
    blocked: Dict[str, int] = field(default_factory=dict)
    #: cycles waiting in an S-XB serialization queue (broadcasts only)
    sxb_wait: int = 0
    #: fault-free dimension-order cost (hops + length); None when the
    #: baseline is not computable (broadcasts, non-MD topologies)
    base_transfer: Optional[int] = None

    @property
    def is_broadcast(self) -> bool:
        return self.rc in _BROADCAST_RCS

    @property
    def completed(self) -> bool:
        return self.delivered_at is not None

    @property
    def queue_wait(self) -> Optional[int]:
        if self.injected_at is None:
            return None
        return self.injected_at - self.queued_at

    @property
    def latency(self) -> Optional[int]:
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.queued_at

    @property
    def blocked_total(self) -> int:
        return sum(self.blocked.values())

    @property
    def transfer(self) -> Optional[int]:
        """In-fabric cycles the packet was actually moving."""
        if self.delivered_at is None or self.injected_at is None:
            return None
        return (
            self.delivered_at
            - self.injected_at
            - self.blocked_total
            - self.sxb_wait
        )

    @property
    def detour_overhead(self) -> Optional[int]:
        if self.base_transfer is None or self.transfer is None:
            return None
        return self.transfer - self.base_transfer

    def components(self) -> Optional[Dict[str, int]]:
        """The additive latency decomposition (None until delivered)."""
        if self.delivered_at is None or self.injected_at is None:
            return None
        return {
            "queue_wait": self.queue_wait,
            "blocked": self.blocked_total,
            "sxb_wait": self.sxb_wait,
            "transfer": self.transfer,
        }

    def to_dict(self) -> Dict:
        return {
            "pid": self.pid,
            "src": list(self.source),
            "dst": list(self.dest),
            "rc": self.rc,
            "length": self.length,
            "queued_at": self.queued_at,
            "injected_at": self.injected_at,
            "delivered_at": self.delivered_at,
            "expected": self.expected,
            "deliveries": self.deliveries,
            "blocked": {k: self.blocked[k] for k in sorted(self.blocked)},
            "sxb_wait": self.sxb_wait,
            "base_transfer": self.base_transfer,
            "detour_overhead": self.detour_overhead,
        }


@dataclass
class SpanSet:
    """A bag of spans from one run (or a merge of many runs).

    ``spans`` hold completed packets in delivery order; ``incomplete``
    holds packets still queued, in flight, dropped or deadlocked when the
    run ended -- their blocked cycles still feed the attribution table
    (a deadlocked packet's refused ports are the interesting ones).
    """

    spans: List[PacketSpan] = field(default_factory=list)
    incomplete: List[PacketSpan] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.spans) + len(self.incomplete)

    def rebased(self) -> "SpanSet":
        """Copy with pids rebased to the smallest pid seen, so span sets
        from different processes serialize identically (pids are a
        process-global counter)."""
        pids = [s.pid for s in self.spans] + [s.pid for s in self.incomplete]
        if not pids:
            return SpanSet()
        base = min(pids)
        return SpanSet(
            spans=[replace(s, pid=s.pid - base, blocked=dict(s.blocked)) for s in self.spans],
            incomplete=[
                replace(s, pid=s.pid - base, blocked=dict(s.blocked))
                for s in self.incomplete
            ],
        )

    # ---------------------------------------------------------- aggregates
    def blocked_by_port(self, include_incomplete: bool = True) -> Dict[str, int]:
        """Total blocked cycles per refusing (crossbar, port, vc) label."""
        out: Dict[str, int] = {}
        pools: Tuple[List[PacketSpan], ...] = (
            (self.spans, self.incomplete) if include_incomplete else (self.spans,)
        )
        for pool in pools:
            for span in pool:
                for label, n in span.blocked.items():
                    out[label] = out.get(label, 0) + n
        return out

    def top_blocked(self, k: int = 10) -> List[Tuple[str, int]]:
        """The ``k`` most-refusing ports, ties broken by label."""
        items = self.blocked_by_port().items()
        return sorted(items, key=lambda kv: (-kv[1], kv[0]))[:k]

    def sxb_waits(self) -> List[int]:
        """Per-broadcast S-XB serialization waits (completed spans)."""
        return [s.sxb_wait for s in self.spans if s.is_broadcast]

    def totals(self) -> Dict[str, int]:
        """Summed decomposition over completed spans."""
        out = {
            "packets": len(self.spans),
            "incomplete": len(self.incomplete),
            "queue_wait": 0,
            "blocked": 0,
            "sxb_wait": 0,
            "transfer": 0,
            "latency": 0,
            "detour_overhead": 0,
            "detoured_packets": 0,
        }
        for s in self.spans:
            out["queue_wait"] += s.queue_wait
            out["blocked"] += s.blocked_total
            out["sxb_wait"] += s.sxb_wait
            out["transfer"] += s.transfer
            out["latency"] += s.latency
            over = s.detour_overhead
            if over is not None and over > 0:
                out["detour_overhead"] += over
                out["detoured_packets"] += 1
        return out

    def metrics(self) -> MetricSet:
        """Span aggregates as a mergeable :class:`MetricSet`."""
        ms = MetricSet()
        ms.counter("spans_completed").inc(len(self.spans))
        ms.counter("spans_incomplete").inc(len(self.incomplete))
        qw = ms.histogram("span_queue_wait", LATENCY_BUCKETS)
        sxb = ms.histogram("span_sxb_wait", LATENCY_BUCKETS)
        blocked = ms.labeled("span_blocked_cycles")
        detour = ms.counter("span_detour_overhead_cycles")
        for s in self.spans:
            qw.observe(s.queue_wait)
            if s.is_broadcast:
                sxb.observe(s.sxb_wait)
            over = s.detour_overhead
            if over is not None and over > 0:
                detour.inc(over)
        for label, n in sorted(self.blocked_by_port().items()):
            blocked.inc(label, n)
        return ms

    def to_dict(self) -> Dict:
        """Deterministic JSON-clean form (same input -> same bytes)."""
        return {
            "totals": self.totals(),
            "spans": [s.to_dict() for s in self.spans],
            "incomplete": [s.to_dict() for s in self.incomplete],
        }


def merge_span_sets(sets: Iterable[Optional[SpanSet]]) -> SpanSet:
    """Fold many span sets into one, in the given (spec) order.

    ``None`` entries (points run without span collection) are skipped.
    Each input should already be :meth:`SpanSet.rebased`; merged output
    is then byte-identical whether the points ran serially or in a
    process pool.
    """
    out = SpanSet()
    for ss in sets:
        if ss is None:
            continue
        out.spans.extend(ss.spans)
        out.incomplete.extend(ss.incomplete)
    return out


class SpanBuilder:
    """Event-driven span reconstruction, shared by the live collector and
    the trace replay.

    Feed it ``queued`` / ``injected`` / ``granted`` / ``blocked`` /
    ``delivered`` events (cycle-ordered, as the engine emits them) and
    collect the result with :meth:`snapshot`.

    Blocked-cycle semantics: a packet accrues at most **one** blocked
    cycle per simulated cycle, classified by the *first* block event the
    engine reports for it that cycle (the engine orders serialization
    waits before refused grants before head-of-line waits before transfer
    stalls).  Transfer stalls of a unicast are attributed only when they
    stall the packet's *newest* connection -- a body flit queuing behind
    its own head is progress already accounted for.
    """

    def __init__(
        self,
        out_label: Callable[[int, int], str],
        base_transfer: Optional[Callable[[Tuple[int, ...], Tuple[int, ...]], Optional[int]]] = None,
    ) -> None:
        self._out_label = out_label
        self._base_transfer = base_transfer
        self._open: Dict[int, PacketSpan] = {}
        self._frontier: Dict[int, str] = {}
        self._last_block: Dict[int, int] = {}
        self.completed: List[PacketSpan] = []

    def queued(
        self,
        pid: int,
        cycle: int,
        source: Tuple[int, ...],
        dest: Tuple[int, ...],
        rc: int,
        length: int,
    ) -> None:
        if pid in self._open:
            return
        span = PacketSpan(
            pid=pid,
            source=tuple(source),
            dest=tuple(dest),
            rc=int(rc),
            length=length,
            queued_at=cycle,
        )
        if self._base_transfer is not None and span.rc not in _BROADCAST_RCS:
            hops = self._base_transfer(span.source, span.dest)
            if hops is not None:
                span.base_transfer = hops + length
        self._open[pid] = span

    def injected(
        self, pid: int, cycle: int, expected: int, pe_label: str
    ) -> None:
        span = self._open.get(pid)
        if span is None:
            return
        span.injected_at = cycle
        span.expected = expected
        self._frontier[pid] = pe_label

    def granted(self, pid: int, element: str) -> None:
        if pid in self._open:
            self._frontier[pid] = element

    def blocked(
        self, pid: int, cycle: int, why: str, element: str, out: str
    ) -> None:
        span = self._open.get(pid)
        if span is None or span.injected_at is None:
            return
        if self._last_block.get(pid) == cycle:
            return
        if (
            why == "transfer"
            and not span.is_broadcast
            and element != self._frontier.get(pid)
        ):
            return
        self._last_block[pid] = cycle
        if why == "serial" and span.is_broadcast:
            span.sxb_wait += 1
        else:
            span.blocked[out] = span.blocked.get(out, 0) + 1

    def delivered(self, pid: int, cycle: int, done: bool) -> None:
        span = self._open.get(pid)
        if span is None:
            return
        span.deliveries += 1
        if done:
            span.delivered_at = cycle
            self.completed.append(span)
            del self._open[pid]
            self._frontier.pop(pid, None)
            self._last_block.pop(pid, None)

    def snapshot(self) -> SpanSet:
        """The spans reconstructed so far; still-open packets (queued, in
        flight, dropped, deadlocked) are copied into ``incomplete``."""
        return SpanSet(
            spans=[replace(s, blocked=dict(s.blocked)) for s in self.completed],
            incomplete=[
                replace(s, blocked=dict(s.blocked))
                for s in self._open.values()
            ],
        )


def dor_base_transfer(topo) -> Callable:
    """Fault-free dimension-order hop cost on an MD-crossbar topology.

    The returned callable maps ``(source, dest)`` to the channel count of
    the fault-free route (PE->RTR and RTR->PE links included), memoized.
    Callers gate on whether a DOR baseline makes sense for their network
    (the span collector checks the adapter carries switch logic).
    """
    from ..topology.mdcrossbar import MDCrossbar

    cache: Dict[Tuple, Optional[int]] = {}
    #: the fault-free switch logic, built only if the analytic shortcut
    #: does not apply (construction is a measurable cost at attach time)
    state: Dict[str, object] = {}
    analytic = isinstance(topo, MDCrossbar)

    def full(src: Tuple[int, ...], dst: Tuple[int, ...]) -> Optional[int]:
        from ..core import SwitchLogic, make_config
        from ..core.routes import Unicast, compute_route

        if "logic" not in state:
            state["logic"] = SwitchLogic(topo, make_config(topo.shape))
        try:
            tree = compute_route(topo, state["logic"], Unicast(src, dst))
            return len(tree.path_to(dst))
        except Exception:
            return None

    def base(src: Tuple[int, ...], dst: Tuple[int, ...]) -> Optional[int]:
        key = (src, dst)
        if key not in cache:
            if analytic and src != dst:
                # fault-free dimension-order on the MD crossbar crosses
                # PE->RTR, (RTR->XB, XB->RTR) per differing dimension,
                # RTR->PE: 2 + 2*d_diff channels.  Exactly what
                # ``compute_route`` counts (pinned by tests), without
                # building the route tree per (source, dest) pair.
                cache[key] = 2 + 2 * sum(
                    1 for a, b in zip(src, dst) if a != b
                )
            else:
                cache[key] = full(src, dst)
        return cache[key]

    return base


class PacketSpanCollector(Collector):
    """Live span reconstruction on the hook bus.

    Attaching never changes the simulation (fingerprint-parity is pinned
    by tests); ``span_set()`` returns the reconstruction at any point,
    and :meth:`detach` freezes it.
    """

    def __init__(self, dor_baseline: bool = True) -> None:
        self._dor_baseline = dor_baseline
        self._engine: Optional[CycleEngine] = None
        self._builder: Optional[SpanBuilder] = None
        self._frozen: Optional[SpanSet] = None

    def attach(self, engine: CycleEngine) -> "PacketSpanCollector":
        self._engine = engine
        ports = output_port_map(engine.topo)
        base = None
        if self._dor_baseline and getattr(engine.adapter, "logic", None) is not None:
            base = dor_base_transfer(engine.topo)

        # the label vocabularies are tiny and hit on every hook event:
        # memoize the rendered strings instead of re-formatting each time
        port_memo: Dict[Tuple[int, Optional[int]], str] = {}

        def _label(cid: int, vc: Optional[int]) -> str:
            key = (cid, vc)
            s = port_memo.get(key)
            if s is None:
                s = port_label(ports, cid, vc)
                port_memo[key] = s
            return s

        el_memo: Dict[Tuple, str] = {}

        def _elabel(el) -> str:
            s = el_memo.get(el)
            if s is None:
                s = element_label(el)
                el_memo[el] = s
            return s

        self._label = _label
        self._elabel = _elabel
        self._builder = SpanBuilder(out_label=self._label, base_transfer=base)
        engine.hooks.on_inject(self._on_inject)
        engine.hooks.on_grant(self._on_grant)
        engine.hooks.on_block(self._on_block)
        engine.hooks.on_deliver(self._on_deliver)
        return self

    def _hooks(self):
        return (self._on_inject, self._on_grant, self._on_block, self._on_deliver)

    def detach(self, engine: CycleEngine) -> None:
        self._frozen = self.span_set()
        super().detach(engine)

    # -------------------------------------------------------------- hooks
    def _on_inject(self, engine: CycleEngine, packet, coord, queued: bool) -> None:
        if queued:
            self._builder.queued(
                packet.pid,
                packet.injected_at,
                packet.source,
                packet.dest,
                int(packet.header.rc),
                packet.length,
            )
        else:
            self._builder.injected(
                packet.pid,
                engine.cycle,
                engine.expected_deliveries(packet),
                self._elabel(("PE", coord)),
            )

    def _on_grant(self, engine: CycleEngine, conn) -> None:
        self._builder.granted(conn.pid, self._elabel(conn.element))

    def _on_block(self, engine: CycleEngine, ev: BlockEvent) -> None:
        cid, vc = ev.wanted[0]
        self._builder.blocked(
            ev.pid,
            engine.cycle,
            ev.why,
            self._elabel(ev.element),
            self._label(cid, vc),
        )

    def _on_deliver(self, packet, coord, cycle: int) -> None:
        inf = self._engine.in_flight.get(packet.pid)
        self._builder.delivered(
            packet.pid, cycle, done=(inf is None or inf.done)
        )

    # ------------------------------------------------------------- results
    def span_set(self) -> SpanSet:
        if self._frozen is not None:
            return self._frozen
        if self._builder is None:
            return SpanSet()
        return self._builder.snapshot()

    def metrics(self) -> MetricSet:
        return self.span_set().metrics()


def spans_from_trace(header: Dict, records: List[Dict]) -> SpanSet:
    """Rebuild a :class:`SpanSet` from a schema >= 2 JSONL trace.

    Needs the ``inject``, ``block``, ``grant`` and ``deliver`` event
    kinds in the trace; the fault-free dimension-order baseline is
    recomputed from the header's topology/shape when possible.
    """
    base = None
    if header.get("topology") == "MDCrossbar" and header.get("shape"):
        from ..topology import MDCrossbar

        base = dor_base_transfer(MDCrossbar(tuple(header["shape"])))
    builder = SpanBuilder(out_label=lambda cid, vc: f"ch{cid}:vc{vc}", base_transfer=base)
    for rec in records:
        kind = rec.get("kind")
        if kind == "inject":
            pid = rec["pid"]
            builder.queued(
                pid,
                rec["queued_at"],
                tuple(rec["src"]),
                tuple(rec["dst"]),
                rec["rc"],
                rec["length"],
            )
            builder.injected(
                pid,
                rec["cycle"],
                rec["expect"],
                element_label(("PE", tuple(rec["at"]))),
            )
        elif kind == "grant":
            builder.granted(rec["pid"], rec["element"])
        elif kind == "block":
            builder.blocked(
                rec["pid"],
                rec["cycle"],
                rec["why"],
                rec["element"],
                rec["out"],
            )
        elif kind == "deliver":
            pid = rec["pid"]
            span = builder._open.get(pid)
            done = span is not None and span.deliveries + 1 >= span.expected
            builder.delivered(pid, rec["cycle"], done)
    return builder.snapshot()
