"""repro: reproduction of the Hitachi SR2201 deadlock-free fault-tolerant
routing paper (Yasuda et al., IPPS 1997).

The package rebuilds the paper's full system in Python:

* :mod:`repro.topology` -- the multi-dimensional crossbar network and the
  mesh / torus / hypercube / crossbar comparison topologies;
* :mod:`repro.core` -- packets with RC bits, dimension-order routing, the
  serialized-broadcast facility, the hardware detour facility, and the
  channel-dependency-graph deadlock analysis;
* :mod:`repro.sim` -- a cycle-driven flit-level cut-through simulator with a
  runtime deadlock detector;
* :mod:`repro.traffic` -- workload generators;
* :mod:`repro.machine` -- the SR2201 machine model (up to 2048 PEs);
* :mod:`repro.analysis` -- analytic network comparisons (Section 3.1).

Quickstart::

    from repro import MDCrossbar, make_config, Fault
    from repro.core import SwitchLogic, Unicast, compute_route

    topo = MDCrossbar((4, 3))
    cfg = make_config(topo.shape, fault=Fault.router((2, 0)))
    logic = SwitchLogic(topo, cfg)
    route = compute_route(topo, logic, Unicast((0, 0), (2, 2)))
    print(route.elements_to((2, 2)))
"""

from .core import (
    RC,
    Broadcast,
    BroadcastMode,
    DetourScheme,
    Fault,
    FaultRegistry,
    Header,
    Packet,
    RoutingConfig,
    SwitchLogic,
    Unicast,
    analyze_deadlock_freedom,
    compute_route,
    make_config,
)
from .topology import FullCrossbar, FullMesh, Hypercube, MDCrossbar, Mesh, Torus

__version__ = "1.0.0"

__all__ = [
    "RC",
    "Broadcast",
    "BroadcastMode",
    "DetourScheme",
    "Fault",
    "FaultRegistry",
    "FullCrossbar",
    "FullMesh",
    "Header",
    "Hypercube",
    "MDCrossbar",
    "Mesh",
    "Packet",
    "RoutingConfig",
    "SwitchLogic",
    "Torus",
    "Unicast",
    "analyze_deadlock_freedom",
    "compute_route",
    "make_config",
    "__version__",
]
