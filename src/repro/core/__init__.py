"""Core routing machinery: the paper's primary contribution.

Public surface of :mod:`repro.core`:

* packet model: :class:`Header`, :class:`Packet`, :class:`Flit`, :class:`RC`
* configuration: :func:`make_config`, :class:`RoutingConfig`,
  :class:`BroadcastMode`, :class:`DetourScheme`
* faults: :class:`Fault`, :class:`FaultRegistry`
* routing: :class:`SwitchLogic`, :func:`compute_route`, :class:`Unicast`,
  :class:`Broadcast`, :class:`RouteTree`
* deadlock analysis: :func:`analyze_deadlock_freedom`, :func:`build_cdg`
"""

from .config import (
    BroadcastMode,
    ConfigError,
    DetourScheme,
    RoutingConfig,
    make_config,
)
from .cdg import (
    ChannelDependencyGraph,
    CDGResult,
    DeadlockHazard,
    analyze_deadlock_freedom,
    build_cdg,
)
from .coords import Coord
from .fault import Fault, FaultKind, FaultRegistry, LocalFaultInfo
from .packet import RC, Flit, FlitKind, Header, Packet, make_flits
from .routes import (
    Broadcast,
    RouteLoopError,
    RouteTree,
    Unicast,
    compute_route,
    route_all_broadcasts,
    route_all_unicasts,
)
from .switch_logic import (
    Decision,
    RoutingError,
    SwitchLogic,
    UnreachableDestinationError,
)

__all__ = [
    "BroadcastMode",
    "Broadcast",
    "CDGResult",
    "ChannelDependencyGraph",
    "ConfigError",
    "Coord",
    "DeadlockHazard",
    "Decision",
    "DetourScheme",
    "Fault",
    "FaultKind",
    "FaultRegistry",
    "Flit",
    "FlitKind",
    "Header",
    "LocalFaultInfo",
    "Packet",
    "RC",
    "RouteLoopError",
    "RouteTree",
    "RoutingConfig",
    "RoutingError",
    "SwitchLogic",
    "Unicast",
    "UnreachableDestinationError",
    "analyze_deadlock_freedom",
    "build_cdg",
    "compute_route",
    "make_config",
    "make_flits",
    "route_all_broadcasts",
    "route_all_unicasts",
]
