"""Channel-dependency deadlock analysis for the SR2201 facility.

Under cut-through switching a blocked packet keeps every channel it has
acquired (paper Section 3.2), so deadlock is a cyclic wait on *channels*.
For deterministic unicast routing the classic channel-dependency-graph (CDG)
theorem of Dally & Seitz applies directly: build the graph whose edge
``c -> c'`` says the routing relation forwards packets from channel ``c``
to channel ``c'`` next, and the routing is deadlock free iff that graph is
acyclic.  The SR2201 adds *multicast trees* (hardware broadcast) which the
classic theorem does not cover, so the analysis here runs in three tiers:

**Tier 1 -- path packets.**  Point-to-point packets (normal and detoured)
and broadcast *request* legs are path-shaped.  Their immediate-successor
edges form the classic CDG; we also add the S-XB *barrier* edges: the S-XB
serves arrivals drain-then-serve (a pending broadcast reserves the whole
crossbar), so the channel entering the S-XB may wait for every S-XB output
channel.  A cycle here is a unicast-style deadlock hazard.

**Tier 2 -- one multicast against path packets.**  A spreading broadcast
holds a *prefix-closed* subset ``A`` of its route tree ``T`` and waits for
frontier channels.  Because acquired channels are kept until the tail
drains, a blocked state with channel ``a`` held and channel ``w`` waited
exists iff ``w`` is neither ``a`` nor an ancestor of ``a`` in ``T``.  A
deadlock closing through the multicast therefore requires channels
``w, a in T`` with ``w`` not an ancestor-or-self of ``a`` and a non-empty
tier-1 CDG path ``w ->+ a`` (the chain of path packets that hold ``w`` and
transitively wait back into the tree).  Channels granted *atomically* by the
serialized S-XB (its output ports) are never waited by the multicast itself
and are excluded from ``w``.

**Tier 3 -- concurrent multicasts.**  Only the naive (non-serialized)
broadcast mode allows two multicasts in flight; under serialization the
S-XB admits one spread at a time and successive spreads cross identical
channels FIFO, so they cannot block each other.  For concurrent trees we
search the meta-graph over states ``(tree, held channel a)`` with a
transition to ``(tree', a')`` when the first tree can wait for some ``w``
(per the tier-2 state condition) from which tier-1 edges reach ``a'`` in the
second tree; a cycle is a multi-broadcast deadlock hazard -- exactly the
paper's Fig. 5.

Soundness: a configuration reporting *deadlock free* admits no blocked-wait
cycle under the modelled protocol (the tiers enumerate every way a cycle can
thread path packets and multicast states).  Reported hazards are
constructive candidates; the flit-level simulator confirms the paper's
Fig. 5 and Fig. 9 hazards dynamically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..topology.base import Channel, Topology
from .config import BroadcastMode
from .routes import (
    RouteRelation,
    RouteTree,
    Unicast,
    route_all_broadcasts,
    route_all_unicasts,
)


@dataclass
class DeadlockHazard:
    """A witness for a possible deadlock.

    ``kind`` is ``path-cycle`` (tier 1), ``tree-path-cycle`` (tier 2) or
    ``multi-tree-cycle`` (tier 3); ``channels`` traces the cyclic wait and
    ``flows`` names the packets that realize it.
    """

    kind: str
    channels: Tuple[Channel, ...]
    flows: Tuple[str, ...]

    def describe(self) -> str:
        chain = " ->\n  ".join(repr(c) for c in self.channels)
        return f"[{self.kind}] involving {', '.join(self.flows)}:\n  {chain}"


@dataclass
class CDGResult:
    deadlock_free: bool
    hazard: Optional[DeadlockHazard]
    num_channels: int
    num_edges: int
    num_flows: int

    def __bool__(self) -> bool:
        return self.deadlock_free

    # backwards-friendly alias
    @property
    def cycle(self) -> Optional[DeadlockHazard]:
        return self.hazard


class _TreeInfo:
    """Per-multicast-tree data for tiers 2 and 3."""

    def __init__(self, tree: RouteTree, serialized: bool) -> None:
        self.tree = tree
        self.name = str(tree.flow)
        self.cids: Set[int] = set()
        self.channel_of: Dict[int, Channel] = {}
        self.anc: Dict[int, Set[int]] = {}
        for c in tree.channels():
            self.cids.add(c.cid)
            self.channel_of[c.cid] = c
            s = {c.cid}
            p = tree.parent[c]
            while p is not None:
                s.add(p.cid)
                p = tree.parent[p]
            self.anc[c.cid] = s
        # channels granted atomically by the serialized S-XB: the multicast
        # never *waits* for them
        self.atomic: Set[int] = set()
        if serialized:
            for entry in tree.serialize_entries:
                self.atomic.update(ch.cid for ch in tree.children[entry])
        self.waitable: Set[int] = self.cids - self.atomic - {tree.root.cid}

    def state_allows(self, held: int, waited: int) -> bool:
        """True if some prefix-closed state holds ``held`` while ``waited``
        is still pending."""
        return waited in self.waitable and waited not in self.anc[held]


class ChannelDependencyGraph:
    """Tiered channel-dependency deadlock analysis (see module docstring)."""

    def __init__(self) -> None:
        #: tier-1 immediate-successor edges: cid -> set of cids
        self.succ: Dict[int, Set[int]] = {}
        self.edge_flows: Dict[Tuple[int, int], str] = {}
        self.channels: Dict[int, Channel] = {}
        self.trees: List[_TreeInfo] = []
        self.concurrent_trees: bool = False
        self.num_flows = 0
        self._reach_cache: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------ building
    def _note_channel(self, c: Channel) -> None:
        self.channels.setdefault(c.cid, c)

    def _add_succ(self, u: Channel, v: Channel, flow_name: str) -> None:
        self._note_channel(u)
        self._note_channel(v)
        self.succ.setdefault(u.cid, set()).add(v.cid)
        self.edge_flows.setdefault((u.cid, v.cid), flow_name)
        self._reach_cache.clear()

    def add_path_flow(
        self,
        tree: RouteTree,
        sxb_element=None,
        sxb_outputs: Sequence[Channel] = (),
    ) -> None:
        """Add a path-shaped flow's tier-1 edges (plus barrier edges)."""
        self.num_flows += 1
        name = str(tree.flow)
        for c in tree.channels():
            self._note_channel(c)
            p = tree.parent[c]
            if p is not None:
                self._add_succ(p, c, name)
            if sxb_element is not None and c.dst == sxb_element:
                for o in sxb_outputs:
                    self._add_succ(c, o, name + " @S-XB barrier")

    def add_multicast_tree(
        self,
        tree: RouteTree,
        serialized: bool,
        sxb_element=None,
        sxb_outputs: Sequence[Channel] = (),
    ) -> None:
        """Add a broadcast: its request leg as a tier-1 path flow (it is
        path-shaped until the S-XB grant) and the whole tree for tiers 2/3."""
        self.num_flows += 1
        name = str(tree.flow)
        info = _TreeInfo(tree, serialized)
        self.trees.append(info)
        for c in tree.channels():
            self._note_channel(c)
        if serialized and tree.serialize_entries:
            # the pre-grant request phase is a path packet: chain edges up
            # to the S-XB entry plus the barrier wait
            for entry in tree.serialize_entries:
                chain = list(reversed(tree.ancestors(entry))) + [entry]
                for a, b in zip(chain, chain[1:]):
                    self._add_succ(a, b, name + " request")
                for o in sxb_outputs:
                    self._add_succ(entry, o, name + " request @S-XB barrier")
        else:
            self.concurrent_trees = True

    @property
    def num_edges(self) -> int:
        return sum(len(v) for v in self.succ.values())

    # --------------------------------------------------------- reachability
    def _reach_plus(self, start: int) -> Set[int]:
        """Channels reachable from ``start`` via >= 1 tier-1 edge."""
        cached = self._reach_cache.get(start)
        if cached is not None:
            return cached
        seen: Set[int] = set()
        q = deque(self.succ.get(start, ()))
        seen.update(self.succ.get(start, ()))
        while q:
            u = q.popleft()
            for v in self.succ.get(u, ()):
                if v not in seen:
                    seen.add(v)
                    q.append(v)
        self._reach_cache[start] = seen
        return seen

    def _shortest_chain(self, start: int, goals: Set[int]) -> List[int]:
        """A shortest >=1-edge tier-1 path from ``start`` into ``goals``."""
        prev: Dict[int, int] = {}
        q = deque()
        for v in self.succ.get(start, ()):
            if v not in prev:
                prev[v] = start
                q.append(v)
        while q:
            u = q.popleft()
            if u in goals:
                chain = [u]
                while chain[-1] != start:
                    chain.append(prev[chain[-1]])
                return list(reversed(chain))
            for v in self.succ.get(u, ()):
                if v not in prev:
                    prev[v] = u
                    q.append(v)
        raise RuntimeError("no chain found despite reachability")  # pragma: no cover

    # -------------------------------------------------------------- tiers
    def find_deadlock(self) -> CDGResult:
        hazard = self._tier1() or self._tier2() or self._tier3()
        return CDGResult(
            deadlock_free=hazard is None,
            hazard=hazard,
            num_channels=len(self.channels),
            num_edges=self.num_edges,
            num_flows=self.num_flows,
        )

    def _tier1(self) -> Optional[DeadlockHazard]:
        g = nx.DiGraph()
        g.add_nodes_from(self.succ)
        for u, vs in self.succ.items():
            for v in vs:
                g.add_edge(u, v)
        try:
            cyc = nx.find_cycle(g)
        except nx.NetworkXNoCycle:
            return None
        cids = [u for u, _ in cyc]
        flows = tuple(
            sorted({self.edge_flows[(u, v)] for u, v in cyc})
        )
        return DeadlockHazard(
            kind="path-cycle",
            channels=tuple(self.channels[c] for c in cids),
            flows=flows,
        )

    def _tier2(self) -> Optional[DeadlockHazard]:
        for info in self.trees:
            for w in info.waitable:
                reach = self._reach_plus(w)
                hits = reach & info.cids
                if not hits:
                    continue
                for a in hits:
                    if info.state_allows(held=a, waited=w):
                        chain = self._shortest_chain(w, {a})
                        cids = [w] + chain
                        flows = tuple(
                            sorted(
                                {info.name}
                                | {
                                    self.edge_flows.get((u, v), "?")
                                    for u, v in zip(cids, cids[1:])
                                }
                            )
                        )
                        return DeadlockHazard(
                            kind="tree-path-cycle",
                            channels=tuple(self.channels[c] for c in cids),
                            flows=flows,
                        )
        return None

    def _tier3(self) -> Optional[DeadlockHazard]:
        if not self.concurrent_trees or len(self.trees) < 2:
            return None
        # meta-graph over (tree index, held channel); an edge means "tree i
        # blocked in a state holding a can wait for w whose tier-1 closure
        # reaches a' held by tree j"
        meta = nx.DiGraph()
        n = len(self.trees)
        for i, ti in enumerate(self.trees):
            for a in ti.cids:
                waits = [w for w in ti.waitable if ti.state_allows(a, w)]
                targets: Set[Tuple[int, int]] = set()
                for w in waits:
                    closure = {w} | self._reach_plus(w)
                    for j in range(n):
                        if j == i:
                            continue
                        for a2 in closure & self.trees[j].cids:
                            targets.add((j, a2))
                for t in targets:
                    meta.add_edge((i, a), t)
        try:
            cyc = nx.find_cycle(meta)
        except (nx.NetworkXNoCycle, nx.NetworkXError):
            return None
        states = [u for u, _ in cyc]
        chans = tuple(self.channels[a] for _, a in states)
        flows = tuple(sorted({self.trees[i].name for i, _ in states}))
        return DeadlockHazard(kind="multi-tree-cycle", channels=chans, flows=flows)


def build_cdg(
    topo: Topology,
    logic: RouteRelation,
    *,
    include_unicasts: bool = True,
    include_broadcasts: bool = True,
    unicast_flows: Optional[Sequence[Unicast]] = None,
    broadcast_sources: Optional[Sequence] = None,
) -> ChannelDependencyGraph:
    """Build the tiered dependency structure for all (or given) flows.

    ``logic`` is any route relation (see
    :class:`~repro.core.routes.RouteRelation`).  The broadcast tiers and
    the S-XB barrier are features of the paper's facility, so they engage
    only when the relation carries a
    :class:`~repro.core.config.RoutingConfig`; for a config-less scheme
    relation the analysis covers its unicast flows.
    """
    from .routes import compute_route

    cfg = getattr(logic, "config", None)
    if cfg is None:
        include_broadcasts = False
    cdg = ChannelDependencyGraph()
    serialized = (
        cfg is not None and cfg.broadcast_mode is BroadcastMode.SERIALIZED
    )
    # The drain-then-serve barrier at the S-XB only ever engages when a
    # broadcast is pending there; without broadcasts the S-XB behaves like
    # any other crossbar and unicasts wait for single ports only.
    barrier_active = serialized and include_broadcasts
    sxb_element = cfg.sxb_element if barrier_active else None
    sxb_outputs: Tuple[Channel, ...] = (
        tuple(topo.channels_from(cfg.sxb_element)) if barrier_active else ()
    )

    if include_unicasts:
        if unicast_flows is not None:
            uni = [compute_route(topo, logic, f) for f in unicast_flows]
        else:
            uni = route_all_unicasts(topo, logic)
        for t in uni:
            cdg.add_path_flow(t, sxb_element=sxb_element, sxb_outputs=sxb_outputs)
    if include_broadcasts:
        bc = route_all_broadcasts(topo, logic, sources=broadcast_sources)
        for t in bc:
            cdg.add_multicast_tree(
                t,
                serialized=serialized,
                sxb_element=sxb_element,
                sxb_outputs=sxb_outputs,
            )
    return cdg


def analyze_deadlock_freedom(
    topo: Topology,
    logic: RouteRelation,
    **kwargs,
) -> CDGResult:
    """One-call tiered deadlock analysis (see :func:`build_cdg`)."""
    return build_cdg(topo, logic, **kwargs).find_deadlock()
