"""Packet, header and flit model (paper Figs. 3 and 4).

A packet is a header plus data.  The header carries the receiving address --
one coordinate per network dimension -- and the *route change* (RC) bit that
selects among the four routings of Fig. 4:

====  =========================  =============================================
RC    name                       meaning
====  =========================  =============================================
0     ``NORMAL``                 dimension-order routing by receiving address
1     ``BROADCAST_REQUEST``      en route to the serialized crossbar (S-XB)
2     ``BROADCAST``              spreading from the S-XB to every PE
3     ``DETOUR``                 en route to the detour crossbar (D-XB)
====  =========================  =============================================

For transmission the packet is divided into fixed-size *flits* (cut-through
routing, Section 3.2); the header flit governs the route and the tail flit
releases the channels the packet holds.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .coords import Coord


class RC(enum.IntEnum):
    """Route-change bit values (paper Fig. 4)."""

    NORMAL = 0
    BROADCAST_REQUEST = 1
    BROADCAST = 2
    DETOUR = 3


class FlitKind(enum.IntEnum):
    HEAD = 0
    BODY = 1
    TAIL = 2
    #: single-flit packet: header and tail in one flit
    HEAD_TAIL = 3


_packet_ids = itertools.count()


def _next_packet_id() -> int:
    return next(_packet_ids)


@dataclass(frozen=True)
class Header:
    """Routing information carried by the header flit.

    ``dest`` is the receiving address.  It is only *effective* while
    ``rc == RC.NORMAL`` (paper Section 3.2); under the other RC values the
    switches route by the special rules and ignore or re-interpret it.
    ``source`` is carried for bookkeeping (the hardware does not need it for
    routing, and none of the switch logic consults it).
    """

    source: Coord
    dest: Coord
    rc: RC = RC.NORMAL

    def with_rc(self, rc: RC) -> "Header":
        """Copy of this header with the RC bit rewritten (done by switches)."""
        # hot path in the simulator: direct construction beats
        # dataclasses.replace by ~3x
        return Header(source=self.source, dest=self.dest, rc=rc)

    def encode(self, shape: Tuple[int, ...]) -> int:
        """Pack the header into an integer the way a header flit would.

        Layout (LSB first): 2 bits RC, then ``ceil(log2 n_k)`` bits per
        destination coordinate, then the same for the source coordinate.
        Purely a fidelity/bookkeeping feature; the simulator passes
        :class:`Header` objects around directly.
        """
        word = int(self.rc)
        pos = 2
        for coords in (self.dest, self.source):
            for v, n in zip(coords, shape):
                width = max(1, (n - 1).bit_length())
                word |= v << pos
                pos += width
        return word

    @staticmethod
    def decode(word: int, shape: Tuple[int, ...]) -> "Header":
        """Inverse of :meth:`encode`."""
        rc = RC(word & 0b11)
        pos = 2
        coords = []
        for _ in range(2):
            c = []
            for n in shape:
                width = max(1, (n - 1).bit_length())
                c.append((word >> pos) & ((1 << width) - 1))
                pos += width
            coords.append(tuple(c))
        dest, source = coords
        return Header(source=source, dest=dest, rc=rc)


@dataclass
class Packet:
    """A packet: header plus a payload length in flits.

    ``length`` counts every flit including the header flit; the minimum is 1
    (a header-only packet).  ``pid`` is unique per process, ``injected_at`` /
    ``delivered_at`` are filled in by the simulator.
    """

    header: Header
    length: int = 4
    pid: int = field(default_factory=_next_packet_id)
    injected_at: Optional[int] = None
    delivered_at: Optional[int] = None

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("packet length must be >= 1 flit")

    @property
    def source(self) -> Coord:
        return self.header.source

    @property
    def dest(self) -> Coord:
        return self.header.dest

    @property
    def rc(self) -> RC:
        return self.header.rc

    @property
    def is_broadcast(self) -> bool:
        return self.header.rc in (RC.BROADCAST_REQUEST, RC.BROADCAST)

    def flit_kinds(self) -> Tuple[FlitKind, ...]:
        """Kinds of the packet's flits in transmission order."""
        if self.length == 1:
            return (FlitKind.HEAD_TAIL,)
        return (
            (FlitKind.HEAD,)
            + (FlitKind.BODY,) * (self.length - 2)
            + (FlitKind.TAIL,)
        )

    @property
    def latency(self) -> Optional[int]:
        if self.injected_at is None or self.delivered_at is None:
            return None
        return self.delivered_at - self.injected_at


@dataclass
class Flit:
    """One fixed-size unit of a packet (cut-through routing, Section 3.2).

    The header flit carries the (mutable-by-switches) routing header; body and
    tail flits follow the path the header reserved.  ``seq`` is the flit's
    index within its packet.
    """

    packet: Packet
    kind: FlitKind
    seq: int

    @property
    def is_head(self) -> bool:
        return self.kind in (FlitKind.HEAD, FlitKind.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self.kind in (FlitKind.TAIL, FlitKind.HEAD_TAIL)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Flit(p{self.packet.pid}:{self.kind.name}#{self.seq})"


def make_flits(packet: Packet) -> Tuple[Flit, ...]:
    """Divide ``packet`` into its sequence of flits."""
    return tuple(
        Flit(packet=packet, kind=kind, seq=i)
        for i, kind in enumerate(packet.flit_kinds())
    )
