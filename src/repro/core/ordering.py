"""Channel-ordering certificates: a second, independent deadlock proof.

The classic way to prove a routing relation deadlock free (Dally & Seitz)
is to exhibit a *total order* on channels such that every packet acquires
channels in strictly increasing order.  The tiered CDG analysis in
:mod:`repro.core.cdg` searches for cycles; this module goes the other way:
it **constructs an explicit numeric rank for every channel** by
topologically sorting the tier-1 dependency graph, and then *verifies* the
certificate against every flow — an auditor can re-check the verification
without trusting the construction (or the CDG search).

For the multicast spread the certificate covers the path-shaped phases
(requests, p2p, detours); the spread itself is handled by the serialization
argument (at most one spread at a time, FIFO behind its predecessor), which
the certificate records as the set of channels reserved atomically by the
S-XB.  :func:`verify_certificate` checks, for every flow:

* path flows: channel ranks strictly increase hop by hop, and every barrier
  wait (entering the S-XB) targets higher-ranked channels;
* broadcast trees: every parent-to-child step outside the atomic S-XB grant
  increases rank, so the spread's own acquisitions are ordered too.

A valid certificate implies the absence of any cyclic wait among path
packets and between path packets and the single active spread -- the same
guarantee tier 1 + tier 2 of the CDG analysis establish, derived by an
entirely different computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Set, Tuple

import networkx as nx

from ..topology.base import Channel
from ..topology.mdcrossbar import MDCrossbar
from .config import BroadcastMode
from .routes import route_all_broadcasts, route_all_unicasts
from .switch_logic import SwitchLogic


class CertificateError(RuntimeError):
    """The configuration admits no consistent channel order (it is not
    deadlock free), or a supplied certificate fails verification."""


@dataclass
class OrderingCertificate:
    """An explicit witness of deadlock freedom.

    ``rank`` maps channel cid to its position in the acquisition order;
    ``atomic`` lists the channels granted in one step by the serialized
    S-XB (exempt from pairwise ordering against each other).
    """

    rank: Dict[int, int]
    atomic: Set[int] = field(default_factory=set)
    num_flows_verified: int = 0

    def describe(self, topo: MDCrossbar, limit: int = 12) -> str:
        chans = {c.cid: c for c in topo.channels()}
        ordered = sorted(self.rank, key=self.rank.get)
        head = [f"  rank {self.rank[c]:4d}: {chans[c]!r}" for c in ordered[:limit]]
        return (
            f"channel ordering over {len(self.rank)} channels "
            f"({len(self.atomic)} atomic at the S-XB), "
            f"{self.num_flows_verified} flows verified:\n" + "\n".join(head)
            + ("\n  ..." if len(ordered) > limit else "")
        )


def _gather(topo: MDCrossbar, logic: SwitchLogic):
    uni = route_all_unicasts(topo, logic)
    bc = route_all_broadcasts(topo, logic)
    serialized = logic.config.broadcast_mode is BroadcastMode.SERIALIZED
    sxb_outputs: Tuple[Channel, ...] = ()
    if serialized:
        sxb_outputs = tuple(topo.channels_from(logic.config.sxb_element))
    return uni, bc, serialized, sxb_outputs


def build_certificate(
    topo: MDCrossbar, logic: SwitchLogic
) -> OrderingCertificate:
    """Construct a channel ordering for the given configuration.

    Raises :class:`CertificateError` if the tier-1 dependency graph is
    cyclic (the configuration is not certifiably deadlock free -- e.g. the
    naive detour scheme with broadcasts).
    """
    uni, bc, serialized, sxb_outputs = _gather(topo, logic)
    if not serialized and bc:
        raise CertificateError(
            "the naive broadcast mode has no serialization argument; no "
            "ordering certificate exists (see the Fig. 5 deadlock)"
        )
    g = nx.DiGraph()
    atomic: Set[int] = set()
    barrier = [c.cid for c in sxb_outputs]

    def add_chain(chain: Sequence[Channel]) -> None:
        for a, b in zip(chain, chain[1:]):
            if a.cid != b.cid:
                g.add_edge(a.cid, b.cid)

    for tree in uni:
        chain = tree.path_to(tree.flow.dest)
        add_chain(chain)
        for c in chain:
            if c.dst == logic.config.sxb_element and barrier:
                for w in barrier:
                    if w != c.cid:
                        g.add_edge(c.cid, w)
    for tree in bc:
        # request chain (pre-grant phase)
        for entry in tree.serialize_entries:
            chain = list(reversed(tree.ancestors(entry))) + [entry]
            add_chain(chain)
            for w in barrier:
                if w != entry.cid:
                    g.add_edge(entry.cid, w)
            atomic.update(ch.cid for ch in tree.children[entry])
        # spread tree: parent->child edges except into the atomic grant set
        for c in tree.channels():
            for child in tree.children[c]:
                if child.cid not in atomic and c.cid != child.cid:
                    g.add_edge(c.cid, child.cid)

    # atomic channels still need *some* rank; order them after their parent
    # (the entry) by keeping the parent->atomic edges implicit: give them
    # edges from every entry channel so the topological sort places them
    # consistently.
    try:
        order = list(nx.topological_sort(g))
    except nx.NetworkXUnfeasible:
        raise CertificateError(
            "tier-1 dependency graph is cyclic: no channel ordering exists "
            "for this configuration"
        ) from None
    # include channels never seen in any flow at the end
    seen = set(order)
    tail = [c.cid for c in topo.channels() if c.cid not in seen]
    rank = {cid: i for i, cid in enumerate(order + tail)}
    cert = OrderingCertificate(rank=rank, atomic=atomic)
    verify_certificate(topo, logic, cert)
    return cert


def verify_certificate(
    topo: MDCrossbar, logic: SwitchLogic, cert: OrderingCertificate
) -> int:
    """Check ``cert`` against every flow of the configuration.

    Returns the number of flows verified; raises :class:`CertificateError`
    on the first violation.  This check is independent of how the
    certificate was produced.
    """
    uni, bc, serialized, sxb_outputs = _gather(topo, logic)
    rank = cert.rank
    barrier = [c.cid for c in sxb_outputs]
    verified = 0

    def check_step(a: Channel, b: Channel, what: str) -> None:
        if b.cid in cert.atomic:
            return  # granted atomically with its siblings; serialization
        if rank[a.cid] >= rank[b.cid]:
            raise CertificateError(
                f"{what}: rank({a!r}) = {rank[a.cid]} !< "
                f"rank({b!r}) = {rank[b.cid]}"
            )

    for tree in uni:
        chain = tree.path_to(tree.flow.dest)
        for a, b in zip(chain, chain[1:]):
            check_step(a, b, f"p2p {tree.flow}")
        for c in chain:
            if c.dst == logic.config.sxb_element:
                for w in barrier:
                    if w != c.cid and w not in cert.atomic:
                        if rank[c.cid] >= rank[w]:
                            raise CertificateError(
                                f"barrier of {tree.flow}: entry rank not "
                                f"below S-XB output rank"
                            )
        verified += 1
    for tree in bc:
        for c in tree.channels():
            for child in tree.children[c]:
                check_step(c, child, f"broadcast {tree.flow}")
        verified += 1
    cert.num_flows_verified = verified
    return verified


def certify_deadlock_freedom(
    topo: MDCrossbar, logic: SwitchLogic
) -> OrderingCertificate:
    """Build and verify an ordering certificate in one call."""
    return build_certificate(topo, logic)
