"""Dimension-order routing oracle (paper Section 3.2).

An *independent* statement of where a normal packet must go: the element
sequence of dimension-order routing written directly from the definition,
without going through the distributed switch logic.  The test suite compares
:func:`repro.core.routes.compute_route` against this oracle so that a bug in
the switch logic cannot hide behind itself.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..topology.base import ElementId, pe, rtr, xb
from .config import RoutingConfig
from .coords import Coord, line_of


def expected_xb_hops(source: Coord, dest: Coord) -> int:
    """Crossbar traversals of the fault-free route: one per differing dim."""
    return sum(1 for a, b in zip(source, dest) if a != b)


def expected_normal_elements(
    config: RoutingConfig, source: Coord, dest: Coord
) -> Tuple[ElementId, ...]:
    """Element sequence PE -> RTR -> (XB -> RTR)* -> PE of the fault-free
    dimension-order route from ``source`` to ``dest``."""
    seq: List[ElementId] = [pe(source), rtr(source)]
    cur = tuple(source)
    for k in config.order:
        if cur[k] != dest[k]:
            seq.append(xb(k, line_of(cur, k)))
            cur = cur[:k] + (dest[k],) + cur[k + 1 :]
            seq.append(rtr(cur))
    seq.append(pe(dest))
    return tuple(seq)


def expected_request_leg_elements(
    config: RoutingConfig, source: Coord
) -> Tuple[ElementId, ...]:
    """Element sequence of a broadcast request from ``source`` up to and
    including the S-XB: the reverse-order walk onto the S-XB's line (the
    "Y" prefix of the paper's Y-X-Y broadcast routing)."""
    seq: List[ElementId] = [pe(source), rtr(source)]
    cur = tuple(source)
    for k in reversed(config.order[1:]):
        tv = config.line_coord(config.sxb_line, k)
        if cur[k] != tv:
            seq.append(xb(k, line_of(cur, k)))
            cur = cur[:k] + (tv,) + cur[k + 1 :]
            seq.append(rtr(cur))
    seq.append(config.sxb_element)
    return tuple(seq)


def expected_broadcast_recipients(
    shape: Sequence[int], dead: Sequence[Coord] = ()
) -> set:
    """Every live PE receives a broadcast exactly once."""
    from .coords import all_coords

    deadset = set(tuple(c) for c in dead)
    return {c for c in all_coords(shape) if c not in deadset}
