"""Static route computation: walk a routing relation to a channel tree.

The simulator exercises routing dynamically; this module walks the same
relation statically, producing the complete channel tree a packet (or
broadcast) traverses.  The trees feed the channel-dependency-graph
deadlock analysis (:mod:`repro.core.cdg`), the per-figure experiments,
and the tests that cross-check the logic against an independent route
oracle.

Historically this walked :class:`~repro.core.switch_logic.SwitchLogic`
only; it now accepts any **route relation** -- an object exposing
``decide(element, in_from, header) -> Decision`` and
``check_deliverable(source, dest)`` (the :class:`RouteRelation`
protocol).  ``SwitchLogic`` is the paper's relation; every registered
routing scheme provides one via
:meth:`repro.routing.RoutingScheme.route_relation`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple, Union

from ..topology.base import Channel, ElementId, element_kind, ElementKind, Topology
from .coords import Coord
from .packet import RC, Header
from .switch_logic import Decision, RoutingError


class RouteRelation(Protocol):
    """The routing relation the static analyses walk.

    :class:`~repro.core.switch_logic.SwitchLogic` implements it directly;
    scheme adapters are bridged by
    :class:`~repro.routing.SchemeRouteRelation`.
    """

    def decide(self, el: ElementId, in_from: ElementId, header: Header) -> Decision:
        ...

    def check_deliverable(self, source: Coord, dest: Coord) -> None:
        ...


def relation_dead_nodes(logic: RouteRelation) -> Tuple[Coord, ...]:
    """Nodes a relation's standing faults disconnect (empty when the
    relation has no fault registry)."""
    registry = getattr(logic, "registry", None)
    if registry is not None:
        return tuple(registry.dead_pes())
    dead = getattr(logic, "dead_nodes", None)
    return tuple(dead()) if dead is not None else ()


@dataclass(frozen=True)
class Unicast:
    """A point-to-point flow from ``source`` to ``dest``."""

    source: Coord
    dest: Coord

    def initial_header(self) -> Header:
        return Header(source=self.source, dest=self.dest, rc=RC.NORMAL)

    def __str__(self) -> str:
        return f"p2p {self.source}->{self.dest}"


@dataclass(frozen=True)
class Broadcast:
    """A broadcast flow from ``source`` to every PE."""

    source: Coord
    #: RC value at injection: BROADCAST_REQUEST under the serialized
    #: facility, BROADCAST under the naive mode
    initial_rc: RC = RC.BROADCAST_REQUEST

    def initial_header(self) -> Header:
        return Header(source=self.source, dest=self.source, rc=self.initial_rc)

    def __str__(self) -> str:
        return f"bcast {self.source}"


Flow = Union[Unicast, Broadcast]


@dataclass
class RouteTree:
    """The channels one flow occupies, as a tree rooted at injection.

    For a unicast the tree is a path.  ``rc_on[c]`` is the RC bit the packet
    carries while traversing channel ``c``; ``serialize_entries`` lists the
    channels that enter the S-XB under its one-at-a-time serialization.
    """

    flow: Flow
    root: Channel
    parent: Dict[Channel, Optional[Channel]] = field(default_factory=dict)
    children: Dict[Channel, List[Channel]] = field(default_factory=dict)
    rc_on: Dict[Channel, RC] = field(default_factory=dict)
    serialize_entries: List[Channel] = field(default_factory=list)
    delivered: Set[Coord] = field(default_factory=set)
    dropped_at: List[ElementId] = field(default_factory=list)

    def channels(self) -> Tuple[Channel, ...]:
        return tuple(self.parent.keys())

    def ancestors(self, c: Channel) -> Tuple[Channel, ...]:
        """Strict ancestors of ``c``, nearest first."""
        out = []
        p = self.parent[c]
        while p is not None:
            out.append(p)
            p = self.parent[p]
        return tuple(out)

    def path_to(self, dest: Coord) -> Tuple[Channel, ...]:
        """Injection-to-ejection channel path reaching PE ``dest``."""
        from ..topology.base import pe

        target = pe(dest)
        leaf = next(
            (c for c in self.parent if c.dst == target),
            None,
        )
        if leaf is None:
            raise KeyError(f"flow {self.flow} does not deliver to {dest}")
        return tuple(reversed((leaf,) + self.ancestors(leaf)))

    def elements_to(self, dest: Coord) -> Tuple[ElementId, ...]:
        """Element sequence (PE, RTR, XB, ... PE) of the path to ``dest``."""
        chans = self.path_to(dest)
        return (chans[0].src,) + tuple(c.dst for c in chans)

    def xb_hops_to(self, dest: Coord) -> int:
        """Crossbar traversals on the path to ``dest`` (paper: <= d normally)."""
        return sum(
            1 for el in self.elements_to(dest) if element_kind(el) is ElementKind.XB
        )

    @property
    def num_channels(self) -> int:
        return len(self.parent)

    def rc_trace_to(self, dest: Coord) -> Tuple[RC, ...]:
        """RC bit per channel along the path to ``dest`` (e.g. the paper's
        detour leaves the trace NORMAL.. DETOUR.. NORMAL..)."""
        return tuple(self.rc_on[c] for c in self.path_to(dest))


class RouteLoopError(RoutingError):
    """The switch logic revisited a channel: a routing loop (livelock)."""


def compute_route(
    topo: Topology,
    logic: RouteRelation,
    flow: Flow,
    max_steps: Optional[int] = None,
) -> RouteTree:
    """Trace ``flow`` through a routing relation and return its route tree.

    Raises :class:`RouteLoopError` if a channel repeats (which a correct
    configuration never produces) and propagates :class:`RoutingError` from
    the relation for invalid states.
    """

    header = flow.initial_header()
    if isinstance(flow, Unicast):
        logic.check_deliverable(flow.source, flow.dest)
    else:
        logic.check_deliverable(flow.source, flow.source)

    root = topo.injection_channel(flow.source)
    tree = RouteTree(flow=flow, root=root)
    tree.parent[root] = None
    tree.children[root] = []
    tree.rc_on[root] = header.rc
    limit = max_steps if max_steps is not None else 4 * topo.num_channels + 16

    # BFS frontier: (channel just traversed, rc carried on it)
    frontier = deque([(root, header.rc)])
    steps = 0
    while frontier:
        chan, rc = frontier.popleft()
        el = chan.dst
        if element_kind(el) is ElementKind.PE:
            tree.delivered.add(el[1])
            continue
        steps += 1
        if steps > limit:
            raise RouteLoopError(
                f"flow {flow} exceeded {limit} routing steps; livelock?"
            )
        decision = logic.decide(el, chan.src, header.with_rc(rc))
        if decision.drop:
            tree.dropped_at.append(el)
            continue
        for out_el in decision.outputs:
            out_chan = topo.channel(el, out_el)
            if out_chan in tree.parent:
                raise RouteLoopError(
                    f"flow {flow} revisited channel {out_chan}; routing loop"
                )
            tree.parent[out_chan] = chan
            tree.children[chan].append(out_chan)
            tree.children[out_chan] = []
            tree.rc_on[out_chan] = decision.rc
            frontier.append((out_chan, decision.rc))
        if decision.serialize:
            tree.serialize_entries.append(chan)
    return tree


def route_all_unicasts(
    topo: Topology,
    logic: RouteRelation,
    sources: Optional[Sequence[Coord]] = None,
    dests: Optional[Sequence[Coord]] = None,
) -> List[RouteTree]:
    """Routes of every healthy (source, dest) pair (or given subsets)."""
    dead = set(relation_dead_nodes(logic))
    nodes = [c for c in topo.node_coords() if c not in dead]
    srcs = [c for c in (sources if sources is not None else nodes) if c not in dead]
    dsts = [c for c in (dests if dests is not None else nodes) if c not in dead]
    return [
        compute_route(topo, logic, Unicast(s, t))
        for s in srcs
        for t in dsts
        if s != t
    ]


def route_all_broadcasts(
    topo: Topology,
    logic: RouteRelation,
    sources: Optional[Sequence[Coord]] = None,
) -> List[RouteTree]:
    """Broadcast route trees from every healthy source (or a subset).

    Broadcast is the paper facility's feature, so ``logic`` must carry a
    :class:`~repro.core.config.RoutingConfig` (``SwitchLogic`` does).
    """
    from .config import BroadcastMode

    rc0 = (
        RC.BROADCAST_REQUEST
        if logic.config.broadcast_mode is BroadcastMode.SERIALIZED
        else RC.BROADCAST
    )
    dead = set(relation_dead_nodes(logic))
    nodes = [c for c in topo.node_coords() if c not in dead]
    srcs = [c for c in (sources if sources is not None else nodes) if c not in dead]
    return [compute_route(topo, logic, Broadcast(s, rc0)) for s in srcs]
