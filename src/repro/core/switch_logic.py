"""Distributed per-switch routing decisions (paper Sections 3.2, 4 and 5).

Every switch of the SR2201 network decides the next hop of a packet from
three inputs only -- the packet header (destination address + RC bit), the
input port the header arrived on, and the switch's own local fault bits --
plus the facility constants configured in advance (routing order, S-XB and
D-XB identity).  :class:`SwitchLogic` reproduces those decision rules as pure
functions; both the cycle-level simulator and the static route/deadlock
analyses call them, so there is a single source of truth for the routing
relation.

Decision rules implemented (full derivation in DESIGN.md):

Router (RTR at coordinate ``c``), by RC bit:

* ``NORMAL`` -- deliver to the PE if ``c == dest``; otherwise forward into
  the crossbar of the first routing-order dimension where ``c`` differs from
  ``dest``.  If that crossbar is locally known to be faulty, set RC=DETOUR
  and start the detour leg instead.
* ``BROADCAST_REQUEST`` -- walk the non-first dimensions in *reverse* routing
  order toward the S-XB's line; once aligned, enter the S-XB.  (This is the
  "Y" prefix of the paper's Y-X-Y broadcast routing.)
* ``BROADCAST`` -- deliver to the PE and forward to the crossbar of every
  dimension *later in the order* than the one the copy arrived from (the
  dimension-order multicast tree).  In naive mode a copy arriving from the
  local PE is simply forwarded into the first-dimension crossbar.
* ``DETOUR`` -- walk the non-first dimensions in reverse order toward the
  D-XB's line; once aligned, enter the D-XB.

Crossbar (XB of dimension ``k``), by RC bit:

* ``NORMAL`` -- forward to the router at the destination's dimension-``k``
  coordinate.  If that router is locally known to be faulty: drop if it is
  the destination router (the paper "stops transmission of packets to the
  faulty RTR"), otherwise set RC=DETOUR and deflect to the detour router on
  this same crossbar.
* ``BROADCAST_REQUEST`` -- at the S-XB: rewrite RC to BROADCAST and multicast
  to *all* ports, serialized one packet at a time (``Decision.serialize``).
  At a non-first-dimension XB: forward toward the S-XB line's coordinate.
* ``BROADCAST`` -- spread: multicast to every port except the input port
  (skipping faulty routers).  In naive mode a first-dimension XB multicasts
  to all ports including the input's.
* ``DETOUR`` -- at the D-XB: rewrite RC to NORMAL and route by the receiving
  address again.  At a non-first-dimension XB: forward toward the D-XB line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..topology.base import ElementId, element_kind, ElementKind, pe, rtr
from ..topology.mdcrossbar import MDCrossbar
from .config import BroadcastMode, RoutingConfig
from .coords import Coord, point_on_line
from .fault import FaultRegistry
from .packet import RC, Header


class RoutingError(RuntimeError):
    """A packet reached a switch in a state the facility does not produce.

    Raised instead of silently misrouting: every legal configuration keeps
    packets inside the decision rules above, so hitting this indicates a
    corrupted header or an invalid hand-built configuration.
    """


class UnreachableDestinationError(RoutingError):
    """The destination PE is disconnected (its own router is faulty)."""


@dataclass(frozen=True)
class Decision:
    """Outcome of one switch decision.

    ``outputs`` lists the downstream elements to forward to (more than one
    for a multicast); ``rc`` is the RC bit carried by the forwarded copies.
    ``serialize`` marks the S-XB's atomic one-at-a-time multicast;
    ``drop`` marks packets addressed to a dead PE.
    """

    outputs: Tuple[ElementId, ...]
    rc: RC
    serialize: bool = False
    drop: bool = False
    reason: str = ""

    @property
    def is_multicast(self) -> bool:
        return len(self.outputs) > 1


DROP = object()  # sentinel used internally


class SwitchLogic:
    """The network's distributed routing brain for one configuration."""

    def __init__(
        self,
        topo: MDCrossbar,
        config: RoutingConfig,
        registry: Optional[FaultRegistry] = None,
    ) -> None:
        if topo.shape != config.shape:
            raise ValueError(
                f"topology shape {topo.shape} != config shape {config.shape}"
            )
        self.topo = topo
        self.config = config
        self.registry = registry or FaultRegistry(topo, faults=config.all_faults())
        if tuple(self.registry.faults) != tuple(config.all_faults()):
            raise ValueError("fault registry does not match the configuration")

    # ------------------------------------------------------------------ API
    def decide(self, el: ElementId, in_from: ElementId, header: Header) -> Decision:
        """Next-hop decision of switch ``el`` for a header from ``in_from``."""
        kind = element_kind(el)
        if kind is ElementKind.RTR:
            return self._route_router(el[1], in_from, header)
        if kind is ElementKind.XB:
            return self._route_xb(el, in_from, header)
        raise RoutingError(f"element {el} does not route packets")

    # --------------------------------------------------------------- router
    def _route_router(self, c: Coord, in_from: ElementId, h: Header) -> Decision:
        cfg = self.config
        if h.rc is RC.NORMAL:
            if c == h.dest:
                return Decision(outputs=(pe(c),), rc=RC.NORMAL, reason="deliver")
            k = self._first_differing_dim(c, h.dest)
            if k in self.registry.info(rtr(c)).faulty_xb_dims:
                if k != cfg.first_dim:
                    raise RoutingError(
                        f"faulty dim-{k} crossbar but routing order {cfg.order} "
                        f"does not place dimension {k} first (rule R1)"
                    )
                return self._detour_leg(c, reason="own first-dim XB faulty")
            return Decision(
                outputs=(self.topo.crossbar_of(c, k),),
                rc=RC.NORMAL,
                reason=f"dim-{k} hop",
            )

        if h.rc is RC.BROADCAST_REQUEST:
            nxt = self._leg_step(c, cfg.sxb_line)
            if nxt is None:
                return Decision(
                    outputs=(cfg.sxb_element,),
                    rc=RC.BROADCAST_REQUEST,
                    reason="enter S-XB",
                )
            return Decision(
                outputs=(nxt,), rc=RC.BROADCAST_REQUEST, reason="toward S-XB"
            )

        if h.rc is RC.BROADCAST:
            return self._router_broadcast(c, in_from)

        if h.rc is RC.DETOUR:
            return self._detour_leg(c, reason="detour leg")

        raise RoutingError(f"unknown RC value {h.rc!r}")  # pragma: no cover

    def _router_broadcast(self, c: Coord, in_from: ElementId) -> Decision:
        cfg = self.config
        if element_kind(in_from) is ElementKind.PE:
            if cfg.broadcast_mode is not BroadcastMode.NAIVE:
                raise RoutingError(
                    "a PE injected RC=BROADCAST but the facility is in "
                    "serialized mode; inject BROADCAST_REQUEST instead"
                )
            first = cfg.first_dim
            if self.topo.shape[first] > 1:
                return Decision(
                    outputs=(self.topo.crossbar_of(c, first),),
                    rc=RC.BROADCAST,
                    reason="naive broadcast start",
                )
            # degenerate first dimension: fall through as if the copy had
            # already spread over it
            in_pos = 0
        else:
            if element_kind(in_from) is not ElementKind.XB:
                raise RoutingError(f"broadcast copy from unexpected {in_from}")
            in_pos = cfg.position(in_from[1])
        outs = [pe(c)]
        for q in range(in_pos + 1, cfg.num_dims):
            dim = cfg.order[q]
            if self.topo.shape[dim] > 1:
                outs.append(self.topo.crossbar_of(c, dim))
        return Decision(outputs=tuple(outs), rc=RC.BROADCAST, reason="spread")

    def _detour_leg(self, c: Coord, reason: str) -> Decision:
        cfg = self.config
        nxt = self._leg_step(c, cfg.dxb_line)
        if nxt is None:
            return Decision(
                outputs=(cfg.dxb_element,), rc=RC.DETOUR, reason="enter D-XB"
            )
        return Decision(outputs=(nxt,), rc=RC.DETOUR, reason=reason)

    def _leg_step(self, c: Coord, line) -> Optional[ElementId]:
        """Next crossbar on the reverse-order walk toward a first-dimension
        line, or ``None`` when ``c`` is already on the line."""
        cfg = self.config
        for k in reversed(cfg.order[1:]):
            if c[k] != cfg.line_coord(line, k):
                return self.topo.crossbar_of(c, k)
        return None

    def _first_differing_dim(self, c: Coord, dest: Coord) -> int:
        for k in self.config.order:
            if c[k] != dest[k]:
                return k
        raise RoutingError(f"no differing dimension between {c} and {dest}")

    # -------------------------------------------------------------- crossbar
    def _route_xb(self, el: ElementId, in_from: ElementId, h: Header) -> Decision:
        _, k, line = el
        cfg = self.config
        info = self.registry.info(el)
        if element_kind(in_from) is not ElementKind.RTR:
            raise RoutingError(f"crossbar {el} received a packet from {in_from}")

        if h.rc is RC.NORMAL:
            return self._xb_normal(el, h, rc_out=RC.NORMAL, in_from=in_from)

        if h.rc is RC.BROADCAST_REQUEST:
            if el == cfg.sxb_element:
                outs = tuple(
                    rtr(point_on_line(k, line, v))
                    for v in range(self.topo.shape[k])
                    if v not in info.faulty_ports
                )
                return Decision(
                    outputs=outs,
                    rc=RC.BROADCAST,
                    serialize=True,
                    reason="S-XB serialize+spread",
                )
            if k == cfg.first_dim:
                raise RoutingError(
                    f"broadcast request entered non-S first-dimension XB {el}"
                )
            tv = cfg.line_coord(cfg.sxb_line, k)
            return Decision(
                outputs=(rtr(point_on_line(k, line, tv)),),
                rc=RC.BROADCAST_REQUEST,
                reason="toward S-XB line",
            )

        if h.rc is RC.BROADCAST:
            v_in = self._input_port_value(el, in_from)
            if cfg.broadcast_mode is BroadcastMode.NAIVE and k == cfg.first_dim:
                values = range(self.topo.shape[k])  # includes the input port
            else:
                values = (v for v in range(self.topo.shape[k]) if v != v_in)
            outs = tuple(
                rtr(point_on_line(k, line, v))
                for v in values
                if v not in info.faulty_ports
            )
            return Decision(outputs=outs, rc=RC.BROADCAST, reason="spread")

        if h.rc is RC.DETOUR:
            if el == cfg.dxb_element:
                # paper Section 4: the D-XB resets RC to 'normal' and routes
                # by the receiving address again
                return self._xb_normal(el, h, rc_out=RC.NORMAL, in_from=in_from)
            if k == cfg.first_dim:
                raise RoutingError(
                    f"detour packet entered non-D first-dimension XB {el}"
                )
            tv = cfg.line_coord(cfg.dxb_line, k)
            return Decision(
                outputs=(rtr(point_on_line(k, line, tv)),),
                rc=RC.DETOUR,
                reason="toward D-XB line",
            )

        raise RoutingError(f"unknown RC value {h.rc!r}")  # pragma: no cover

    def _xb_normal(
        self, el: ElementId, h: Header, rc_out: RC, in_from: ElementId
    ) -> Decision:
        _, k, line = el
        info = self.registry.info(el)
        t = h.dest[k]
        target = point_on_line(k, line, t)
        if t in info.faulty_ports:
            if target == h.dest:
                return Decision(
                    outputs=(),
                    rc=rc_out,
                    drop=True,
                    reason="destination router faulty: transmission stopped",
                )
            dv = self._detour_port(el, faulty=t, came_from=in_from)
            return Decision(
                outputs=(rtr(point_on_line(k, line, dv)),),
                rc=RC.DETOUR,
                reason="deflect around faulty router",
            )
        return Decision(
            outputs=(rtr(target),),
            rc=rc_out,
            reason="exit D-XB" if rc_out is RC.NORMAL and h.rc is RC.DETOUR else "XB hop",
        )

    def _detour_port(self, el: ElementId, faulty: int, came_from: ElementId) -> int:
        """Port of the detour router on crossbar ``el``: the lowest healthy
        offset, preferring one other than the port the packet arrived on
        (set in advance by the facility; paper Fig. 8 uses a neighbour)."""
        _, k, line = el
        n = self.topo.shape[k]
        v_in = self._input_port_value(el, came_from)
        candidates = [v for v in range(n) if v != faulty and v != v_in]
        if not candidates:
            candidates = [v for v in range(n) if v != faulty]
        if not candidates:
            raise RoutingError(
                f"crossbar {el} has no healthy detour router (extent {n})"
            )
        return candidates[0]

    @staticmethod
    def _input_port_value(el: ElementId, in_from: ElementId) -> int:
        """Offset of the router ``in_from`` on crossbar ``el``'s line."""
        if element_kind(in_from) is not ElementKind.RTR:
            raise RoutingError(f"crossbar {el} received a packet from {in_from}")
        _, k, _ = el
        return in_from[1][k]

    # ----------------------------------------------------------- validation
    def check_deliverable(self, source: Coord, dest: Coord) -> None:
        """Raise if a point-to-point packet cannot be accepted for delivery
        (either endpoint's own router is faulty)."""
        if self.registry.router_is_faulty(source):
            raise UnreachableDestinationError(
                f"source PE{source} is disconnected (its router is faulty)"
            )
        if self.registry.router_is_faulty(dest):
            raise UnreachableDestinationError(
                f"destination PE{dest} is disconnected (its router is faulty)"
            )
