"""Fault model and the hardware fault-information registry (paper Section 4).

The detour path selection facility of the SR2201 handles a *single* faulty
point in the network: either one router (RTR) or one crossbar switch (XB).
To keep the added hardware minimal, fault knowledge is strictly local
(paper): *"each switch has only the information of the switches that they
are physically connected to ... the RTRs set the information of the XBs that
they are connected to and the XBs set the information of the RTRs that they
are connected to."*

:class:`FaultRegistry` computes exactly that local view for a given fault and
topology; the switch logic consults only its own entry, never the global
fault object, mirroring the hardware.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..core.coords import Coord, line_of
from ..topology.base import ElementId, rtr, xb
from ..topology.mdcrossbar import MDCrossbar


class FaultKind(enum.Enum):
    ROUTER = "router"
    XB = "xb"


@dataclass(frozen=True)
class Fault:
    """A single faulty switch: a router or a crossbar.

    Use the :meth:`router` / :meth:`crossbar` constructors.
    """

    kind: FaultKind
    #: faulty router coordinate (ROUTER faults)
    coord: Optional[Coord] = None
    #: faulty crossbar identity (XB faults)
    dim: Optional[int] = None
    line: Optional[Tuple[int, ...]] = None

    @staticmethod
    def router(coord: Coord) -> "Fault":
        return Fault(kind=FaultKind.ROUTER, coord=tuple(coord))

    @staticmethod
    def crossbar(dim: int, line: Tuple[int, ...]) -> "Fault":
        return Fault(kind=FaultKind.XB, dim=dim, line=tuple(line))

    @property
    def element(self) -> ElementId:
        if self.kind is FaultKind.ROUTER:
            assert self.coord is not None
            return rtr(self.coord)
        assert self.dim is not None and self.line is not None
        return xb(self.dim, self.line)

    def validate(self, topo: MDCrossbar) -> None:
        el = self.element
        if not topo.has_element(el):
            raise ValueError(f"fault names a non-existent element: {el}")

    def __str__(self) -> str:
        if self.kind is FaultKind.ROUTER:
            return f"faulty RTR{self.coord}"
        return f"faulty XB dim={self.dim} line={self.line}"


@dataclass(frozen=True)
class LocalFaultInfo:
    """The few bits of fault information held by one switch.

    For a router: the set of dimensions whose attached XB is faulty.
    For a crossbar: the set of port offsets whose attached router is faulty.
    """

    faulty_xb_dims: FrozenSet[int] = frozenset()
    faulty_ports: FrozenSet[int] = frozenset()

    @property
    def clear(self) -> bool:
        return not self.faulty_xb_dims and not self.faulty_ports


_NO_INFO = LocalFaultInfo()


@dataclass
class FaultRegistry:
    """Per-switch local fault information for one network + fault set.

    Built once when the faults are configured ("the information ... is set
    in advance"); read-only afterwards.  The paper's facility handles a
    single fault; multiple faults are the facility extension analysed in
    :mod:`repro.core.multifault` and use the same local-information model
    (each switch merely holds the union of its neighbours' fault bits).
    """

    topo: MDCrossbar
    fault: Optional[Fault] = None
    faults: Tuple[Fault, ...] = ()
    _info: Dict[ElementId, LocalFaultInfo] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.fault is not None and self.faults:
            if self.fault not in self.faults:
                raise ValueError("pass either fault= or faults=, not both")
        elif self.fault is not None:
            self.faults = (self.fault,)
        elif len(self.faults) == 1:
            self.fault = self.faults[0]
        self.faults = tuple(self.faults)
        xb_ports: Dict[ElementId, set] = {}
        rtr_dims: Dict[ElementId, set] = {}
        for f in self.faults:
            f.validate(self.topo)
            if f.kind is FaultKind.ROUTER:
                # every XB serving the faulty router learns the faulty port
                assert f.coord is not None
                for k in range(self.topo.num_dims):
                    xb_el = self.topo.crossbar_of(f.coord, k)
                    xb_ports.setdefault(xb_el, set()).add(f.coord[k])
            else:
                # every router on the faulty XB's line learns the faulty dim
                assert f.dim is not None and f.line is not None
                xb_el = self.topo.crossbar(f.dim, f.line)
                for r in self.topo.routers_on(xb_el):
                    rtr_dims.setdefault(r, set()).add(f.dim)
        for el, ports in xb_ports.items():
            self._info[el] = LocalFaultInfo(faulty_ports=frozenset(ports))
        for el, dims in rtr_dims.items():
            self._info[el] = LocalFaultInfo(faulty_xb_dims=frozenset(dims))

    def info(self, el: ElementId) -> LocalFaultInfo:
        """The local fault view of switch ``el`` (empty if nothing nearby)."""
        return self._info.get(el, _NO_INFO)

    def dead_pes(self) -> Tuple[Coord, ...]:
        """PEs unreachable because their own router is faulty.

        The paper's facility "stops transmission of packets to the faulty
        RTR"; the attached PE drops out of the machine.
        """
        return tuple(
            f.coord
            for f in self.faults
            if f.kind is FaultKind.ROUTER and f.coord is not None
        )

    def is_faulty(self, el: ElementId) -> bool:
        return any(f.element == el for f in self.faults)

    def router_is_faulty(self, coord: Coord) -> bool:
        return self.is_faulty(rtr(coord))

    def xb_is_faulty(self, dim: int, line: Tuple[int, ...]) -> bool:
        return self.is_faulty(xb(dim, line))

    def fault_on_line(self, dim: int, line: Tuple[int, ...]) -> bool:
        """True if a faulty element touches the given crossbar line
        (used only by the *configuration* step that places the S-XB; the
        per-packet switch logic never calls this)."""
        for f in self.faults:
            if f.kind is FaultKind.XB:
                if f.dim == dim and f.line == line:
                    return True
            else:
                assert f.coord is not None
                if line_of(f.coord, dim) == line:
                    return True
        return False
