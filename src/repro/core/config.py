"""Routing facility configuration (paper Sections 3.2, 4 and 5).

A configuration fixes everything the network hardware is told "in advance":

* the **dimension order** used by normal routing (default X-Y[-Z...]); the
  paper notes *"if a part of the network is faulty, however, the network
  hardware can change the routing order"* -- we use that to place a faulty
  crossbar's dimension first, where the source-local detour can bypass it;
* the **serialized crossbar** (S-XB) that serializes broadcasts, one of the
  first-order-dimension crossbars;
* the **detour crossbar** (D-XB) targeted by detour routing.  The paper's
  deadlock-free scheme (Section 5) *sets the D-XB to the same XB as the
  S-XB*; the deadlock-prone naive alternative keeps them distinct;
* the **broadcast mode**: ``serialized`` (the SR2201 facility, Fig. 6) or
  ``naive`` dimension-order multicast (deadlock-prone, Fig. 5).

Placement rules enforced here (derived in DESIGN.md Section "detour"):

R1. If the fault is a crossbar, its dimension must be first in the routing
    order (otherwise the detour leg itself would need the faulty XB).
R2. The S-XB (and D-XB) line must avoid the fault: it must not be the faulty
    XB, and for a faulty router it must differ from the router's coordinate
    in every dimension other than the first -- the paper's *"another XB which
    is not connected to the faulty [router] substitutes for the S-XB"*,
    strengthened so that no broadcast relay or detour-leg router can ever be
    the faulty one.
R3. The deadlock-free scheme requires ``dxb_line == sxb_line``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import product
from typing import Optional, Sequence, Tuple

from .coords import LineKey, validate_shape
from .fault import Fault, FaultKind


class BroadcastMode(str, enum.Enum):
    #: SR2201 hardware facility: serialize at the S-XB (Fig. 6)
    SERIALIZED = "serialized"
    #: plain dimension-order multicast; deadlocks under concurrency (Fig. 5)
    NAIVE = "naive"


class DetourScheme(str, enum.Enum):
    #: paper Section 5: D-XB is the S-XB -- deadlock free
    SAFE = "safe"
    #: Section 4 facility with an independently chosen D-XB -- deadlocks
    #: when combined with broadcasts (Fig. 9)
    NAIVE = "naive"


class ConfigError(ValueError):
    """Raised for routing configurations the facility cannot support."""


@dataclass(frozen=True)
class RoutingConfig:
    """Immutable description of the network's routing facility state.

    Build one with :func:`make_config`, which applies the placement rules,
    or construct directly (and call :meth:`validated`) in tests that need a
    deliberately broken configuration.
    """

    shape: Tuple[int, ...]
    #: permutation of ``range(d)``; ``order[0]`` plays the paper's X role
    order: Tuple[int, ...]
    #: line key of the S-XB (a dimension-``order[0]`` crossbar)
    sxb_line: LineKey
    #: line key of the D-XB; equals ``sxb_line`` under the SAFE scheme
    dxb_line: LineKey
    broadcast_mode: BroadcastMode = BroadcastMode.SERIALIZED
    detour_scheme: DetourScheme = DetourScheme.SAFE
    fault: Optional[Fault] = None
    #: canonical fault set; ``fault`` is kept as the single-fault view.
    #: The paper's facility supports one fault; multiple entries drive the
    #: facility-extension analysis in :mod:`repro.core.multifault`.
    faults: Tuple[Fault, ...] = ()

    # -- derived views ------------------------------------------------------
    def all_faults(self) -> Tuple[Fault, ...]:
        if self.faults:
            return self.faults
        return (self.fault,) if self.fault is not None else ()

    @property
    def num_dims(self) -> int:
        return len(self.shape)

    @property
    def first_dim(self) -> int:
        """The dimension routed first (the X role)."""
        return self.order[0]

    def position(self, dim: int) -> int:
        """Position of ``dim`` in the routing order."""
        return self.order.index(dim)

    def dims_after(self, dim: int) -> Tuple[int, ...]:
        return self.order[self.position(dim) + 1 :]

    def line_coord(self, line: LineKey, dim: int) -> int:
        """Coordinate of ``line`` (a first-dim line key) in dimension ``dim``.

        A line key of a dimension-``first_dim`` crossbar stores the
        coordinates of all other dimensions in increasing dimension order.
        """
        if dim == self.first_dim:
            raise ValueError("a first-dimension line has no first-dim coordinate")
        idx = dim if dim < self.first_dim else dim - 1
        return line[idx]

    @property
    def sxb_element(self):
        from ..topology.base import xb

        return xb(self.first_dim, self.sxb_line)

    @property
    def dxb_element(self):
        from ..topology.base import xb

        return xb(self.first_dim, self.dxb_line)

    # -- validation ----------------------------------------------------------
    def validated(self) -> "RoutingConfig":
        shape = validate_shape(self.shape)
        d = len(shape)
        if sorted(self.order) != list(range(d)):
            raise ConfigError(f"order {self.order} is not a permutation of 0..{d-1}")
        for name, line in (("sxb_line", self.sxb_line), ("dxb_line", self.dxb_line)):
            if len(line) != d - 1:
                raise ConfigError(f"{name} {line} must have {d - 1} coordinates")
            rest = [shape[k] for k in range(d) if k != self.first_dim]
            for v, n in zip(line, rest):
                if not 0 <= v < n:
                    raise ConfigError(f"{name} {line} out of range for shape {shape}")
        if self.detour_scheme is DetourScheme.SAFE and self.dxb_line != self.sxb_line:
            raise ConfigError(
                "SAFE detour scheme requires dxb_line == sxb_line (paper Sec. 5)"
            )
        if self.faults and self.fault is not None and self.fault not in self.faults:
            raise ConfigError("fault must be a member of faults (or omitted)")
        for f in self.all_faults():
            self._validate_fault_placement(f)
        return self

    def _validate_fault_placement(self, f: Fault) -> None:
        if f.kind is FaultKind.XB:
            if f.dim != self.first_dim:
                raise ConfigError(
                    f"R1: faulty crossbar dimension {f.dim} must be first in the "
                    f"routing order (got order {self.order}); reorder the dims"
                )
            for name, line in (("S-XB", self.sxb_line), ("D-XB", self.dxb_line)):
                if line == f.line:
                    raise ConfigError(f"R2: {name} must not be the faulty crossbar")
        else:
            assert f.coord is not None
            for name, line in (("S-XB", self.sxb_line), ("D-XB", self.dxb_line)):
                for k in range(self.num_dims):
                    if k == self.first_dim or self.shape[k] == 1:
                        continue
                    if self.line_coord(line, k) == f.coord[k]:
                        raise ConfigError(
                            f"R2: {name} line {line} shares dim-{k} coordinate "
                            f"with faulty router {f.coord}"
                        )

    def with_fault(self, fault: Optional[Fault]) -> "RoutingConfig":
        """Re-derive a valid configuration for a new fault, keeping the
        scheme and broadcast mode."""
        return make_config(
            self.shape,
            fault=fault,
            broadcast_mode=self.broadcast_mode,
            detour_scheme=self.detour_scheme,
        )

    def with_faults(self, faults) -> "RoutingConfig":
        """Re-derive a valid configuration for a new fault set."""
        return make_config(
            self.shape,
            faults=tuple(faults),
            broadcast_mode=self.broadcast_mode,
            detour_scheme=self.detour_scheme,
        )


def _candidate_lines(shape: Sequence[int], first_dim: int):
    rest = [range(n) for k, n in enumerate(shape) if k != first_dim]
    yield from product(*rest)


def select_order(
    shape: Sequence[int], fault
) -> Tuple[int, ...]:
    """Choose a routing order: identity unless a faulty crossbar forces its
    dimension to the front (rule R1; paper Section 3.2 'change the routing
    order').  Accepts a single fault, a sequence of faults, or None; two
    faulty crossbars in different dimensions are irreconcilable."""
    d = len(shape)
    faults = _as_faults(fault)
    xb_dims = {f.dim for f in faults if f.kind is FaultKind.XB}
    if len(xb_dims) > 1:
        raise ConfigError(
            f"R1: faulty crossbars in dimensions {sorted(xb_dims)} cannot "
            f"all be routed first; the facility cannot cover this fault set"
        )
    if xb_dims:
        (dim,) = xb_dims
        return (dim,) + tuple(k for k in range(d) if k != dim)
    return tuple(range(d))


def _as_faults(fault) -> Tuple[Fault, ...]:
    if fault is None:
        return ()
    if isinstance(fault, Fault):
        return (fault,)
    return tuple(fault)


def select_sxb_line(
    shape: Sequence[int],
    order: Tuple[int, ...],
    fault,
    preferred: Optional[LineKey] = None,
) -> LineKey:
    """Choose the S-XB line: the preferred (default all-zero) line, or the
    first line that satisfies rule R2 for every fault present."""
    first = order[0]
    faults = _as_faults(fault)
    candidates = list(_candidate_lines(shape, first))
    if preferred is not None:
        if tuple(preferred) not in candidates:
            raise ConfigError(f"preferred S-XB line {preferred} invalid for {shape}")
        candidates.remove(tuple(preferred))
        candidates.insert(0, tuple(preferred))
    for line in candidates:
        if all(_line_ok(line, shape, first, f) for f in faults):
            return line
    raise ConfigError(
        f"no admissible S-XB line for shape {tuple(shape)} with {list(map(str, faults))}; "
        f"the network is too small to satisfy rule R2"
    )


def _line_ok(
    line: LineKey, shape: Sequence[int], first: int, fault: Fault
) -> bool:
    if fault.kind is FaultKind.XB:
        return not (fault.dim == first and fault.line == line)
    assert fault.coord is not None
    idx = 0
    for k in range(len(shape)):
        if k == first:
            continue
        if shape[k] > 1 and line[idx] == fault.coord[k]:
            return False
        idx += 1
    return True


def select_dxb_line(
    shape: Sequence[int],
    order: Tuple[int, ...],
    fault,
    sxb_line: LineKey,
    scheme: DetourScheme,
) -> LineKey:
    """Choose the D-XB line: the S-XB itself under the paper's SAFE scheme,
    otherwise the first admissible line different from the S-XB (to make the
    naive scheme's hazard reproducible)."""
    if scheme is DetourScheme.SAFE:
        return sxb_line
    first = order[0]
    faults = _as_faults(fault)
    for line in _candidate_lines(shape, first):
        if line != sxb_line and all(
            _line_ok(line, shape, first, f) for f in faults
        ):
            return line
    raise ConfigError(
        f"no admissible distinct D-XB line for shape {tuple(shape)}; use the "
        f"SAFE scheme or a larger network"
    )


def make_config(
    shape: Sequence[int],
    *,
    fault: Optional[Fault] = None,
    faults: Optional[Sequence[Fault]] = None,
    broadcast_mode: BroadcastMode = BroadcastMode.SERIALIZED,
    detour_scheme: DetourScheme = DetourScheme.SAFE,
    order: Optional[Sequence[int]] = None,
    sxb_line: Optional[LineKey] = None,
    dxb_line: Optional[LineKey] = None,
) -> RoutingConfig:
    """Build and validate a routing configuration.

    Everything left ``None`` is chosen automatically by the facility rules;
    explicit values are validated and may raise :class:`ConfigError`.
    Pass either ``fault`` (the paper's single-fault facility) or ``faults``
    (the multi-fault extension; see :mod:`repro.core.multifault`).
    """
    if fault is not None and faults is not None:
        raise ConfigError("pass either fault= or faults=, not both")
    fset = _as_faults(faults if faults is not None else fault)
    shp = validate_shape(shape)
    ordr = tuple(order) if order is not None else select_order(shp, fset)
    sline = (
        tuple(sxb_line)
        if sxb_line is not None
        else select_sxb_line(shp, ordr, fset)
    )
    dline = (
        tuple(dxb_line)
        if dxb_line is not None
        else select_dxb_line(shp, ordr, fset, sline, detour_scheme)
    )
    cfg = RoutingConfig(
        shape=shp,
        order=ordr,
        sxb_line=sline,
        dxb_line=dline,
        broadcast_mode=broadcast_mode,
        detour_scheme=detour_scheme,
        fault=fset[0] if len(fset) == 1 else None,
        faults=fset,
    )
    return cfg.validated()
