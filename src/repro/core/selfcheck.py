"""One-call consistency audit over every analysis layer.

:func:`self_check` cross-validates, for a given configuration, everything
this library claims about it:

1. **routes vs oracle** -- every fault-free dimension-order route matches
   the independent oracle in :mod:`repro.core.dimension_order`;
2. **route invariants** -- detours avoid the fault, end NORMAL, and reach
   every healthy destination; broadcasts cover each live PE exactly once;
3. **CDG vs certificate** -- the tiered deadlock analysis and the ordering
   certificate agree (both prove freedom, or the analysis reports a hazard
   and no certificate exists);
4. **static vs dynamic** -- a sample of transfers run through the flit
   simulator lands with the exact latency the static route predicts
   (channels + flits) on an idle network.

The CLI exposes this as ``python -m repro doctor``.  A healthy report means
the reproduction's layers cannot silently disagree for this configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..topology.mdcrossbar import MDCrossbar
from .cdg import analyze_deadlock_freedom
from .dimension_order import expected_normal_elements
from .ordering import CertificateError, build_certificate
from .packet import RC, Header, Packet
from .routes import (
    Unicast,
    compute_route,
    route_all_broadcasts,
    route_all_unicasts,
)
from .switch_logic import SwitchLogic


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str = ""

    def row(self) -> str:
        mark = "ok  " if self.passed else "FAIL"
        return f"[{mark}] {self.name}" + (f": {self.detail}" if self.detail else "")


@dataclass
class SelfCheckReport:
    shape: Tuple[int, ...]
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return all(c.passed for c in self.checks)

    def rows(self) -> List[str]:
        return [c.row() for c in self.checks]


def self_check(
    topo: MDCrossbar,
    logic: SwitchLogic,
    simulate_samples: int = 6,
) -> SelfCheckReport:
    """Run the full consistency audit (see module docstring)."""
    report = SelfCheckReport(shape=topo.shape)
    cfg = logic.config
    fault_free = not cfg.all_faults()
    dead = set(logic.registry.dead_pes())
    live = [c for c in topo.node_coords() if c not in dead]

    # 1 + 2: routes
    uni = route_all_unicasts(topo, logic)
    oracle_ok = True
    invariants_ok = True
    detail = ""
    for tree in uni:
        flow = tree.flow
        if flow.dest not in tree.delivered:
            invariants_ok, detail = False, f"{flow} undelivered"
            break
        if tree.rc_trace_to(flow.dest)[-1] is not RC.NORMAL:
            invariants_ok, detail = False, f"{flow} ends non-NORMAL"
            break
        els = tree.elements_to(flow.dest)
        for f in cfg.all_faults():
            if f.element in els:
                invariants_ok, detail = False, f"{flow} crosses {f}"
                break
        if fault_free and els != expected_normal_elements(
            cfg, flow.source, flow.dest
        ):
            oracle_ok, detail = False, f"{flow} deviates from the oracle"
            break
    report.checks.append(
        CheckResult(
            "dimension-order routes match the independent oracle"
            if fault_free
            else "all healthy pairs routed, faults avoided, RC ends NORMAL",
            oracle_ok and invariants_ok,
            detail,
        )
    )

    # 2b: broadcast coverage
    bc_ok, bc_detail = True, ""
    for tree in route_all_broadcasts(topo, logic):
        ej = [c for c in tree.channels() if c.dst[0] == "PE"]
        if tree.delivered != set(live) or len(ej) != len(live):
            bc_ok = False
            bc_detail = f"{tree.flow} covered {len(tree.delivered)}/{len(live)}"
            break
    report.checks.append(
        CheckResult("broadcasts cover every live PE exactly once", bc_ok, bc_detail)
    )

    # 3: CDG vs certificate
    verdict = analyze_deadlock_freedom(topo, logic)
    cert_err: Optional[str] = None
    try:
        cert = build_certificate(topo, logic)
        cert_flows = cert.num_flows_verified
    except CertificateError as e:
        cert = None
        cert_err = str(e)
        cert_flows = 0
    agree = (verdict.deadlock_free and cert is not None) or (
        not verdict.deadlock_free and cert is None
    )
    report.checks.append(
        CheckResult(
            "tiered CDG analysis and ordering certificate agree",
            agree,
            f"deadlock_free={verdict.deadlock_free}, "
            + (f"certificate over {cert_flows} flows" if cert else f"no certificate ({cert_err})"),
        )
    )

    # 4: static vs dynamic latency on samples
    from ..sim.adapter import MDCrossbarAdapter
    from ..sim.config import SimConfig
    from ..sim.network import NetworkSimulator

    sample_pairs = []
    for i, s in enumerate(live):
        t = live[(i * 5 + 3) % len(live)]
        if s != t:
            sample_pairs.append((s, t))
        if len(sample_pairs) >= simulate_samples:
            break
    dyn_ok, dyn_detail = True, f"{len(sample_pairs)} transfers checked"
    for s, t in sample_pairs:
        sim = NetworkSimulator(MDCrossbarAdapter(logic), SimConfig())
        pkt = Packet(Header(source=s, dest=t), length=4)
        sim.send(pkt)
        sim.run()
        tree = compute_route(topo, logic, Unicast(s, t))
        want = len(tree.path_to(t)) + 4
        if pkt.latency != want:
            dyn_ok = False
            dyn_detail = f"{s}->{t}: simulated {pkt.latency}, static {want}"
            break
    report.checks.append(
        CheckResult(
            "simulated idle latency equals static route prediction",
            dyn_ok,
            dyn_detail,
        )
    )
    return report
