"""Multi-fault tolerance analysis: the paper's future work, quantified.

The paper closes with *"In our future research, we intend to improve this
facility to further increase the system reliability"* -- the shipped
facility handles one faulty switch.  This module asks how far the *same*
mechanisms (local fault bits, RC-bit detours through the D-XB = S-XB,
routing-order changes) stretch when several switches fail at once:

* **configuration feasibility** -- the placement rules generalize naturally
  (R1: all faulty crossbars must share one dimension, which is routed
  first; R2: the S-XB line must avoid *every* fault), but some fault sets
  admit no valid configuration (e.g. faulty crossbars in two different
  dimensions);
* **reachability** -- with a feasible configuration, every pair of PEs with
  healthy routers is routed (each deflection is followed by a D-XB reset,
  and rule R2 keeps all post-reset turn routers healthy for every fault);
* **deadlock freedom** -- checked with the same tiered CDG analysis.

:func:`analyze_fault_set` runs all three for one fault set;
:func:`fault_pair_census` maps the entire two-fault landscape of a network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..topology.mdcrossbar import MDCrossbar
from .cdg import analyze_deadlock_freedom
from .config import ConfigError, DetourScheme, RoutingConfig, make_config
from .coords import all_coords, all_lines
from .fault import Fault, FaultKind
from .routes import RouteLoopError, Unicast, compute_route
from .switch_logic import RoutingError, SwitchLogic


@dataclass
class ToleranceReport:
    """Outcome of analysing one fault set."""

    faults: Tuple[Fault, ...]
    feasible: bool
    #: why configuration failed (empty when feasible)
    infeasible_reason: str = ""
    config: Optional[RoutingConfig] = None
    #: healthy-endpoint pairs routed successfully / total healthy pairs
    routed_pairs: int = 0
    total_pairs: int = 0
    #: pairs that could not be routed (routing loop or error)
    failed_pairs: Tuple[Tuple, ...] = ()
    deadlock_free: Optional[bool] = None

    @property
    def fully_tolerant(self) -> bool:
        """The facility keeps the machine fully operational: a valid
        configuration exists, every healthy pair routes, and the routing
        relation stays deadlock free (``deadlock_free is None`` means the
        check was skipped, which does not falsify tolerance)."""
        return (
            self.feasible
            and self.routed_pairs == self.total_pairs
            and self.deadlock_free is not False
        )

    def row(self) -> str:
        names = " + ".join(str(f) for f in self.faults)
        if not self.feasible:
            return f"{names:<48} infeasible: {self.infeasible_reason}"
        verdict = "TOLERATED" if self.fully_tolerant else "DEGRADED"
        return (
            f"{names:<48} routed {self.routed_pairs}/{self.total_pairs} "
            f"deadlock_free={self.deadlock_free} -> {verdict}"
        )


def analyze_fault_set(
    topo: MDCrossbar,
    faults: Sequence[Fault],
    *,
    detour_scheme: DetourScheme = DetourScheme.SAFE,
    check_deadlock: bool = True,
    include_broadcasts: bool = True,
) -> ToleranceReport:
    """Full tolerance analysis of one fault set on one network."""
    faults = tuple(faults)
    try:
        cfg = make_config(
            topo.shape, faults=faults, detour_scheme=detour_scheme
        )
    except ConfigError as e:
        return ToleranceReport(
            faults=faults, feasible=False, infeasible_reason=str(e)
        )
    logic = SwitchLogic(topo, cfg)
    dead = set(logic.registry.dead_pes())
    live = [c for c in topo.node_coords() if c not in dead]
    failed: List[Tuple] = []
    routed = 0
    total = 0
    for s in live:
        for t in live:
            if s == t:
                continue
            total += 1
            try:
                tree = compute_route(topo, logic, Unicast(s, t))
            except (RouteLoopError, RoutingError):
                failed.append((s, t))
                continue
            if t in tree.delivered:
                routed += 1
            else:
                failed.append((s, t))
    deadlock_free: Optional[bool] = None
    if check_deadlock and not failed:
        deadlock_free = analyze_deadlock_freedom(
            topo, logic, include_broadcasts=include_broadcasts
        ).deadlock_free
    return ToleranceReport(
        faults=faults,
        feasible=True,
        config=cfg,
        routed_pairs=routed,
        total_pairs=total,
        failed_pairs=tuple(failed),
        deadlock_free=deadlock_free,
    )


def all_single_faults(shape) -> List[Fault]:
    out: List[Fault] = [Fault.router(c) for c in all_coords(shape)]
    for dim in range(len(shape)):
        out.extend(Fault.crossbar(dim, line) for line in all_lines(shape, dim))
    return out


@dataclass
class CensusSummary:
    """Aggregate of a fault-set census."""

    total: int = 0
    tolerated: int = 0
    degraded: int = 0
    infeasible: int = 0
    infeasible_reasons: Dict[str, int] = field(default_factory=dict)
    degraded_examples: List[ToleranceReport] = field(default_factory=list)

    def add(self, report: ToleranceReport) -> None:
        self.total += 1
        if not report.feasible:
            self.infeasible += 1
            key = report.infeasible_reason.split(":")[0]
            self.infeasible_reasons[key] = self.infeasible_reasons.get(key, 0) + 1
        elif report.fully_tolerant:
            self.tolerated += 1
        else:
            self.degraded += 1
            if len(self.degraded_examples) < 5:
                self.degraded_examples.append(report)

    def rows(self) -> List[str]:
        lines = [
            f"fault sets analysed : {self.total}",
            f"fully tolerated     : {self.tolerated}"
            f" ({100 * self.tolerated / max(1, self.total):.0f}%)",
            f"degraded            : {self.degraded}",
            f"infeasible          : {self.infeasible}",
        ]
        for reason, n in sorted(self.infeasible_reasons.items()):
            lines.append(f"  infeasible by {reason}: {n}")
        for r in self.degraded_examples:
            lines.append(f"  degraded e.g.: {r.row()}")
        return lines


def fault_pair_census(
    shape,
    *,
    kinds: str = "all",
    detour_scheme: DetourScheme = DetourScheme.SAFE,
    check_deadlock: bool = True,
    max_pairs: Optional[int] = None,
) -> CensusSummary:
    """Analyse every unordered pair of single faults on ``shape``.

    ``kinds`` restricts the universe: ``"router"`` (router pairs only),
    ``"xb"`` (crossbar pairs only) or ``"all"``.  ``max_pairs`` caps the
    census for large networks (pairs are taken in deterministic order).
    """
    topo = MDCrossbar(shape)
    singles = all_single_faults(shape)
    if kinds == "router":
        singles = [f for f in singles if f.kind is FaultKind.ROUTER]
    elif kinds == "xb":
        singles = [f for f in singles if f.kind is FaultKind.XB]
    elif kinds != "all":
        raise ValueError(f"unknown kinds {kinds!r}")
    summary = CensusSummary()
    for n, pair in enumerate(combinations(singles, 2)):
        if max_pairs is not None and n >= max_pairs:
            break
        summary.add(
            analyze_fault_set(
                topo,
                pair,
                detour_scheme=detour_scheme,
                check_deadlock=check_deadlock,
            )
        )
    return summary
