"""Coordinate arithmetic for the multi-dimensional crossbar lattice.

Every processing element (PE) of a d-dimensional crossbar network sits on a
lattice point of a ``n_0 x n_1 x ... x n_{d-1}`` solid (paper, Section 3.1).
We represent a lattice point as a tuple of ``d`` non-negative integers,
dimension 0 being the paper's X axis, dimension 1 the Y axis and so on.

A *line* of the lattice along dimension ``k`` is identified by the remaining
coordinates; one full crossbar switch (XB) connects all lattice points of a
line.  :func:`line_of` / :func:`point_on_line` convert between the two views.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Sequence, Tuple

Coord = Tuple[int, ...]
#: A line along dimension ``k`` is keyed by the coordinates of the other
#: dimensions, in increasing dimension order.
LineKey = Tuple[int, ...]


def validate_shape(shape: Sequence[int]) -> Tuple[int, ...]:
    """Return ``shape`` as a tuple after sanity checks.

    A valid shape has at least one dimension and every extent is >= 1
    (degenerate extents of 1 are permitted: the paper's d=1 case is the
    plain crossbar).
    """
    shp = tuple(int(n) for n in shape)
    if len(shp) == 0:
        raise ValueError("network shape needs at least one dimension")
    if any(n < 1 for n in shp):
        raise ValueError(f"all dimension extents must be >= 1, got {shp}")
    return shp


def validate_coord(coord: Sequence[int], shape: Sequence[int]) -> Coord:
    """Return ``coord`` as a tuple after bounds checking against ``shape``."""
    c = tuple(int(v) for v in coord)
    if len(c) != len(shape):
        raise ValueError(
            f"coordinate {c} has {len(c)} dims, network has {len(shape)}"
        )
    for k, (v, n) in enumerate(zip(c, shape)):
        if not 0 <= v < n:
            raise ValueError(f"coordinate {c} out of range in dim {k} (extent {n})")
    return c


def all_coords(shape: Sequence[int]) -> Iterator[Coord]:
    """Iterate over every lattice point, dimension 0 varying slowest."""
    yield from product(*(range(n) for n in shape))


def num_nodes(shape: Sequence[int]) -> int:
    n = 1
    for e in shape:
        n *= e
    return n


def line_of(coord: Coord, dim: int) -> LineKey:
    """Key of the dimension-``dim`` line through ``coord``.

    The key is the coordinate tuple with dimension ``dim`` removed; together
    with ``dim`` it names the crossbar switch serving that line.
    """
    return coord[:dim] + coord[dim + 1 :]

def point_on_line(dim: int, line: LineKey, value: int) -> Coord:
    """Lattice point on the dimension-``dim`` line ``line`` at offset ``value``."""
    return line[:dim] + (value,) + line[dim:]


def all_lines(shape: Sequence[int], dim: int) -> Iterator[LineKey]:
    """Iterate over the keys of every dimension-``dim`` line."""
    others = [range(n) for k, n in enumerate(shape) if k != dim]
    yield from product(*others)


def num_lines(shape: Sequence[int], dim: int) -> int:
    """Number of dimension-``dim`` lines (= crossbars of that dimension)."""
    return num_nodes(shape) // shape[dim]


def differing_dims(a: Coord, b: Coord) -> Tuple[int, ...]:
    """Dimensions in which ``a`` and ``b`` differ, ascending."""
    return tuple(k for k, (x, y) in enumerate(zip(a, b)) if x != y)


def hop_distance(a: Coord, b: Coord) -> int:
    """Number of crossbar traversals between two PEs (paper: <= d hops)."""
    return len(differing_dims(a, b))


def lexicographic_index(coord: Coord, shape: Sequence[int]) -> int:
    """Row-major linear index of ``coord`` (dimension 0 slowest)."""
    idx = 0
    for v, n in zip(coord, shape):
        idx = idx * n + v
    return idx


def coord_from_index(index: int, shape: Sequence[int]) -> Coord:
    """Inverse of :func:`lexicographic_index`."""
    if not 0 <= index < num_nodes(shape):
        raise ValueError(f"index {index} out of range for shape {tuple(shape)}")
    out = []
    for n in reversed(shape):
        out.append(index % n)
        index //= n
    return tuple(reversed(out))
