"""The multi-dimensional crossbar network of the SR2201 (paper Section 3.1).

Definition (paper, Section 3.1), for a d-dimensional crossbar network:

(a) the number of PEs factorizes as ``n = n_0 * n_1 * ... * n_{d-1}``;
(b) each PE corresponds to a lattice point of a d-dimensional solid, and the
    lattice points in a line are connected by a common crossbar switch (XB)
    providing direct connections from any input port to any output port, so
    each PE is served by d crossbars;
(c) each PE connects to a relay switch (router, RTR) that joins the PE with
    its d crossbars; the router is a (d+1)x(d+1) crossbar.

Degenerate cases called out by the paper: with ``d == 1`` this is a plain
``n x n`` crossbar; with ``n_k == 2`` for all k (``d == log2 n``) the routers
are pairwise directly connected and the network is a hypercube.

Element graph produced here::

    PE(c)  <->  RTR(c)                          for every lattice point c
    RTR(c) <->  XB(k, line_of(c, k))            for every dimension k

Each direction of each ``<->`` is a distinct unidirectional :class:`Channel`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.coords import (
    Coord,
    all_coords,
    all_lines,
    line_of,
    num_lines,
    num_nodes,
    point_on_line,
    validate_coord,
)
from .base import Channel, ElementId, Topology, pe, rtr, xb


class MDCrossbar(Topology):
    """A d-dimensional crossbar network of shape ``(n_0, ..., n_{d-1})``."""

    def __init__(self, shape: Sequence[int]) -> None:
        super().__init__(shape)
        for c in all_coords(self.shape):
            self._add_element(pe(c))
            self._add_element(rtr(c))
        for k in range(self.num_dims):
            for line in all_lines(self.shape, k):
                self._add_element(xb(k, line))
        for c in all_coords(self.shape):
            self._add_duplex(pe(c), rtr(c))
            for k in range(self.num_dims):
                self._add_duplex(rtr(c), xb(k, line_of(c, k)))

    # -- MD-crossbar-specific helpers --------------------------------------
    def router(self, coord: Coord) -> ElementId:
        return rtr(validate_coord(coord, self.shape))

    def crossbar(self, dim: int, line: Tuple[int, ...]) -> ElementId:
        el = xb(dim, line)
        if not self.has_element(el):
            raise KeyError(f"no crossbar dim={dim} line={line}")
        return el

    def crossbar_of(self, coord: Coord, dim: int) -> ElementId:
        """The dimension-``dim`` crossbar serving the PE at ``coord``."""
        c = validate_coord(coord, self.shape)
        return xb(dim, line_of(c, dim))

    def routers_on(self, xb_el: ElementId) -> Tuple[ElementId, ...]:
        """Routers attached to a crossbar, in increasing coordinate order."""
        _, dim, line = xb_el
        return tuple(
            rtr(point_on_line(dim, line, v)) for v in range(self.shape[dim])
        )

    def xb_to_rtr(self, xb_el: ElementId, value: int) -> Channel:
        """Channel from ``xb_el`` to the router at offset ``value`` on its line."""
        _, dim, line = xb_el
        return self.channel(xb_el, rtr(point_on_line(dim, line, value)))

    def rtr_to_xb(self, coord: Coord, dim: int) -> Channel:
        return self.channel(rtr(coord), self.crossbar_of(coord, dim))

    # -- paper Section 3.1 structural facts --------------------------------
    @property
    def router_ports(self) -> int:
        """Ports per router: one PE port plus one per dimension (d+1)."""
        return self.num_dims + 1

    @property
    def diameter_hops(self) -> int:
        """Maximum crossbar traversals between any two PEs (= d, or fewer if
        some dimensions are degenerate)."""
        return sum(1 for n in self.shape if n > 1)

    def crossbar_count(self) -> int:
        """Total number of XB switches."""
        return sum(num_lines(self.shape, k) for k in range(self.num_dims))

    def is_plain_crossbar(self) -> bool:
        """True for the d=1 degenerate case (a conventional n x n crossbar)."""
        return sum(1 for n in self.shape if n > 1) <= 1

    def is_hypercube_equivalent(self) -> bool:
        """True when every extent is 2, i.e. routers pair up directly
        (paper: ``d = log2 n`` makes the MD crossbar a hypercube)."""
        return all(n == 2 for n in self.shape) and num_nodes(self.shape) >= 2
