"""Conventional single-crossbar network: the paper's d = 1 reference point.

An ``n x n`` crossbar switch connects every PE to every other in one hop and
is conflict free for (almost) all communication patterns (paper Section 3.1);
it is the ideal the MD crossbar approximates at much lower switch cost.
Implemented as the one-dimensional :class:`MDCrossbar` so that all routing
and simulation machinery applies unchanged.
"""

from __future__ import annotations

from .mdcrossbar import MDCrossbar


class FullCrossbar(MDCrossbar):
    """A conventional ``n x n`` crossbar network (one XB, n routers)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("crossbar needs at least one PE")
        super().__init__((n,))

    @property
    def n(self) -> int:
        return self.shape[0]
