"""Conventional single-crossbar network: the paper's d = 1 reference point.

An ``n x n`` crossbar switch connects every PE to every other in one hop and
is conflict free for (almost) all communication patterns (paper Section 3.1);
it is the ideal the MD crossbar approximates at much lower switch cost.
Implemented as the one-dimensional :class:`MDCrossbar` so that all routing
and simulation machinery applies unchanged.

:class:`FullMesh` is the *switchless* counterpart: every router is wired
directly to every other (a complete graph of point-to-point links, no
shared crossbar).  This is the substrate for the single-virtual-channel
deadlock-free full-mesh routing scheme
(:mod:`repro.routing.fullmesh`): on the shared-crossbar
:class:`FullCrossbar`, a packet holds an XB input port while waiting for
an output port, and those turn dependencies provably close cycles under
any single-VC minimal+misroute relation -- the direct pairwise links are
what make the one-VC valley argument sound.
"""

from __future__ import annotations

from .base import Topology, pe, rtr
from .mdcrossbar import MDCrossbar


class FullCrossbar(MDCrossbar):
    """A conventional ``n x n`` crossbar network (one XB, n routers)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("crossbar needs at least one PE")
        super().__init__((n,))

    @property
    def n(self) -> int:
        return self.shape[0]


class FullMesh(Topology):
    """A fully connected network: every router links to every other.

    Element graph::

        PE(i)  <->  RTR(i)            for every node i
        RTR(i) <->  RTR(j)            for every pair i < j

    Shape is ``(n,)`` -- node coordinates are 1-tuples -- so the traffic
    generators, the simulator and the coordinate helpers apply unchanged.
    """

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("a full mesh needs at least two PEs")
        super().__init__((n,))
        for i in range(n):
            self._add_element(pe((i,)))
            self._add_element(rtr((i,)))
        for i in range(n):
            self._add_duplex(pe((i,)), rtr((i,)))
            for j in range(i + 1, n):
                self._add_duplex(rtr((i,)), rtr((j,)))

    @property
    def n(self) -> int:
        return self.shape[0]

    @property
    def router_ports(self) -> int:
        """Ports per router: one PE port plus one per peer router."""
        return self.n

    @property
    def diameter_hops(self) -> int:
        """Every pair is directly linked."""
        return 1
