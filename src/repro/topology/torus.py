"""k-ary d-dimensional torus baseline (CRAY T3D-style, paper Section 1).

Like :class:`~repro.topology.mesh.Mesh` but with wrap-around links.  With
dimension-order routing a torus needs two virtual channels per physical
channel to stay deadlock free (the classic Dally/Seitz dateline scheme);
the simulator honours the per-topology ``required_vcs`` attribute.
"""

from __future__ import annotations

from typing import Sequence

from ..core.coords import Coord, all_coords, validate_coord
from .base import ElementId, Topology, pe, rtr


class Torus(Topology):
    """d-dimensional torus of shape ``(n_0, ..., n_{d-1})``."""

    #: dimension-order routing on a torus needs a dateline VC split
    required_vcs = 2

    def __init__(self, shape: Sequence[int]) -> None:
        super().__init__(shape)
        if any(n == 2 for n in self.shape):
            # With extent 2 the +1 and -1 neighbours coincide; the duplex
            # helper would create duplicate channels.  Treat extent-2 rings
            # as single links.
            pass
        for c in all_coords(self.shape):
            self._add_element(pe(c))
            self._add_element(rtr(c))
        for c in all_coords(self.shape):
            self._add_duplex(pe(c), rtr(c))
            for k in range(self.num_dims):
                n = self.shape[k]
                if n == 1:
                    continue
                nxt = c[:k] + ((c[k] + 1) % n,) + c[k + 1 :]
                if n == 2 and c[k] == 1:
                    continue  # the 0->1 pair already created both directions
                self._add_duplex(rtr(c), rtr(nxt))

    def router(self, coord: Coord) -> ElementId:
        return rtr(validate_coord(coord, self.shape))

    def neighbor(self, coord: Coord, dim: int, direction: int) -> Coord:
        n = self.shape[dim]
        return coord[:dim] + ((coord[dim] + direction) % n,) + coord[dim + 1 :]

    @property
    def router_ports(self) -> int:
        return 1 + 2 * sum(1 for n in self.shape if n > 1)

    @property
    def diameter_hops(self) -> int:
        return sum(n // 2 for n in self.shape)
