"""Abstract element/channel graph shared by all network topologies.

A network is a directed multigraph of *elements* connected by unidirectional
*channels*:

* ``PE`` -- a processing element (its network interface adapter, NIA);
* ``RTR`` -- a relay switch (router) next to each PE;
* ``XB`` -- a crossbar switch serving one lattice line (MD crossbar only;
  mesh/torus/hypercube baselines wire routers to each other directly).

Channels are the deadlock-relevant resources: under cut-through switching a
blocked packet keeps every channel it has acquired, so deadlock analysis and
the simulator both operate on this graph.  Between any ordered pair of
elements there is at most one channel, so a channel is fully identified by
its endpoint pair; an integer ``cid`` provides a dense index for array-based
bookkeeping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.coords import Coord, validate_shape


class ElementKind(str, enum.Enum):
    PE = "PE"
    RTR = "RTR"
    XB = "XB"


#: ``('PE', coord)`` / ``('RTR', coord)`` / ``('XB', dim, line_key)``
ElementId = Tuple


def element_kind(el: ElementId) -> ElementKind:
    return ElementKind(el[0])


def pe(coord: Coord) -> ElementId:
    return ("PE", tuple(coord))


def rtr(coord: Coord) -> ElementId:
    return ("RTR", tuple(coord))


def xb(dim: int, line: Tuple[int, ...]) -> ElementId:
    return ("XB", dim, tuple(line))


@dataclass(frozen=True)
class Channel:
    """A unidirectional link (and the output port driving it)."""

    src: ElementId
    dst: ElementId
    cid: int

    @property
    def endpoints(self) -> Tuple[ElementId, ElementId]:
        return (self.src, self.dst)

    def __repr__(self) -> str:
        return f"Ch#{self.cid}({_fmt(self.src)}->{_fmt(self.dst)})"


def element_label(el: ElementId) -> str:
    """Stable short label for an element: ``XB0(1,)``, ``RTR(2, 0)``.

    Used wherever elements key human-readable series (channel-utilization
    metrics, trace records, channel ``repr``)."""
    if el[0] == "XB":
        return f"XB{el[1]}{el[2]}"
    return f"{el[0]}{el[1]}"


#: backwards-compatible private alias (prefer :func:`element_label`)
_fmt = element_label


def output_port_map(topo: "Topology") -> Dict[int, Tuple["Channel", str, int]]:
    """Map every channel cid to ``(channel, owning element label, output
    port index)`` -- the (crossbar, port) pair whose grant the channel
    represents.  One vocabulary shared by the channel-utilization
    collector, the span collector and the trace recorder, so
    blocked-cycle attribution and utilization heatmaps key their series
    identically."""
    ports: Dict[int, Tuple[Channel, str, int]] = {}
    for el in topo.elements():
        label = element_label(el)
        for port, ch in enumerate(topo.channels_from(el)):
            ports[ch.cid] = (ch, label, port)
    return ports


def port_label(
    ports: Dict[int, Tuple["Channel", str, int]],
    cid: int,
    vc: Optional[int] = None,
) -> str:
    """Render ``"XB0(1,):p3"`` (or ``"...:p3:vc0"``) for a channel cid."""
    _, el, port = ports[cid]
    base = f"{el}:p{port}"
    return base if vc is None else f"{base}:vc{vc}"


class Topology:
    """Base class: a set of elements plus directed channels between them.

    Subclasses populate the graph by calling :meth:`_add_element` and
    :meth:`_add_channel` in their constructor.  All query methods are
    concrete here.
    """

    def __init__(self, shape: Sequence[int]) -> None:
        self.shape: Tuple[int, ...] = validate_shape(shape)
        self._elements: List[ElementId] = []
        self._element_set: set = set()
        self._channels: List[Channel] = []
        self._by_pair: Dict[Tuple[ElementId, ElementId], Channel] = {}
        self._out: Dict[ElementId, List[Channel]] = {}
        self._in: Dict[ElementId, List[Channel]] = {}

    # -- construction -----------------------------------------------------
    def _add_element(self, el: ElementId) -> None:
        if el in self._element_set:
            raise ValueError(f"duplicate element {el}")
        self._element_set.add(el)
        self._elements.append(el)
        self._out[el] = []
        self._in[el] = []

    def _add_channel(self, src: ElementId, dst: ElementId) -> Channel:
        if src not in self._element_set or dst not in self._element_set:
            raise ValueError(f"channel endpoints must exist: {src} -> {dst}")
        if (src, dst) in self._by_pair:
            raise ValueError(f"duplicate channel {src} -> {dst}")
        ch = Channel(src=src, dst=dst, cid=len(self._channels))
        self._channels.append(ch)
        self._by_pair[(src, dst)] = ch
        self._out[src].append(ch)
        self._in[dst].append(ch)
        return ch

    def _add_duplex(self, a: ElementId, b: ElementId) -> None:
        self._add_channel(a, b)
        self._add_channel(b, a)

    # -- queries ----------------------------------------------------------
    @property
    def num_dims(self) -> int:
        return len(self.shape)

    def elements(self) -> Sequence[ElementId]:
        return tuple(self._elements)

    def has_element(self, el: ElementId) -> bool:
        return el in self._element_set

    def channels(self) -> Sequence[Channel]:
        return tuple(self._channels)

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    def channel(self, src: ElementId, dst: ElementId) -> Channel:
        try:
            return self._by_pair[(src, dst)]
        except KeyError:
            raise KeyError(f"no channel {src} -> {dst}") from None

    def has_channel(self, src: ElementId, dst: ElementId) -> bool:
        return (src, dst) in self._by_pair

    def channels_from(self, el: ElementId) -> Sequence[Channel]:
        return tuple(self._out[el])

    def channels_to(self, el: ElementId) -> Sequence[Channel]:
        return tuple(self._in[el])

    def node_coords(self) -> Sequence[Coord]:
        """Coordinates of every PE."""
        return tuple(el[1] for el in self._elements if el[0] == "PE")

    @property
    def num_nodes(self) -> int:
        return len(self.node_coords())

    def injection_channel(self, coord: Coord) -> Channel:
        """The PE -> router channel used to inject packets at ``coord``."""
        return self.channel(pe(coord), rtr(coord))

    def ejection_channel(self, coord: Coord) -> Channel:
        """The router -> PE channel used to deliver packets at ``coord``."""
        return self.channel(rtr(coord), pe(coord))

    # -- structural summaries ---------------------------------------------
    def switch_elements(self) -> Sequence[ElementId]:
        return tuple(el for el in self._elements if el[0] != "PE")

    def element_degree(self, el: ElementId) -> Tuple[int, int]:
        """(fan-in, fan-out) of an element."""
        return (len(self._in[el]), len(self._out[el]))

    def describe(self) -> str:
        kinds: Dict[str, int] = {}
        for el in self._elements:
            kinds[el[0]] = kinds.get(el[0], 0) + 1
        parts = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return (
            f"{type(self).__name__}(shape={self.shape}: "
            f"{parts}, {self.num_channels} channels)"
        )


def channels_between(
    topo: Topology, elements: Iterable[ElementId]
) -> List[Channel]:
    """All channels whose both endpoints lie in ``elements`` (helper for
    bisection / partition analyses)."""
    els = set(elements)
    return [c for c in topo.channels() if c.src in els and c.dst in els]
