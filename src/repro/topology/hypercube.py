"""Binary hypercube baseline (paper Sections 1 and 3.1).

The paper notes that an MD crossbar with every extent equal to 2 *is* a
hypercube, and that a hypercube router needs ``log2(n) + 1`` ports, which
limits the physical channel width -- the motivation for the MD crossbar's
low-dimension design.  Nodes are addressed by binary coordinate tuples.
"""

from __future__ import annotations

from typing import Tuple

from ..core.coords import Coord, all_coords, validate_coord
from .base import ElementId, Topology, pe, rtr


class Hypercube(Topology):
    """A ``dims``-dimensional binary hypercube (2**dims PEs)."""

    def __init__(self, dims: int) -> None:
        if dims < 1:
            raise ValueError("hypercube needs at least one dimension")
        super().__init__((2,) * dims)
        for c in all_coords(self.shape):
            self._add_element(pe(c))
            self._add_element(rtr(c))
        for c in all_coords(self.shape):
            self._add_duplex(pe(c), rtr(c))
            for k in range(self.num_dims):
                if c[k] == 0:
                    nb = c[:k] + (1,) + c[k + 1 :]
                    self._add_duplex(rtr(c), rtr(nb))

    @classmethod
    def with_nodes(cls, n: int) -> "Hypercube":
        """Hypercube with ``n`` PEs; ``n`` must be a power of two."""
        if n < 2 or n & (n - 1):
            raise ValueError(f"hypercube size must be a power of two, got {n}")
        return cls(n.bit_length() - 1)

    def router(self, coord: Coord) -> ElementId:
        return rtr(validate_coord(coord, self.shape))

    def neighbor(self, coord: Coord, dim: int) -> Coord:
        return coord[:dim] + (1 - coord[dim],) + coord[dim + 1 :]

    @property
    def router_ports(self) -> int:
        """PE port plus one per dimension: log2(n) + 1 (paper Section 3.1)."""
        return self.num_dims + 1

    @property
    def diameter_hops(self) -> int:
        return self.num_dims

    @staticmethod
    def coord_of(index: int, dims: int) -> Tuple[int, ...]:
        """Binary coordinate tuple of node ``index`` (MSB = dimension 0)."""
        return tuple((index >> (dims - 1 - k)) & 1 for k in range(dims))
