"""Network topologies: the MD crossbar plus the paper's comparison points."""

from .base import (
    Channel,
    ElementId,
    ElementKind,
    Topology,
    element_kind,
    pe,
    rtr,
    xb,
)
from .fullcrossbar import FullCrossbar, FullMesh
from .hypercube import Hypercube
from .mdcrossbar import MDCrossbar
from .mesh import Mesh
from .torus import Torus

__all__ = [
    "Channel",
    "ElementId",
    "ElementKind",
    "FullCrossbar",
    "FullMesh",
    "Hypercube",
    "MDCrossbar",
    "Mesh",
    "Topology",
    "Torus",
    "element_kind",
    "pe",
    "rtr",
    "xb",
]
