"""k-ary d-dimensional mesh baseline (cf. CRAY-style direct networks).

Routers are wired point-to-point to their lattice neighbours; there are no
separate crossbar switches.  Used for the paper's Section 3.1 comparison of
conflicts, distances and channel width against the MD crossbar.
"""

from __future__ import annotations

from typing import Sequence

from ..core.coords import Coord, all_coords, validate_coord
from .base import ElementId, Topology, pe, rtr


class Mesh(Topology):
    """d-dimensional mesh of shape ``(n_0, ..., n_{d-1})``."""

    def __init__(self, shape: Sequence[int]) -> None:
        super().__init__(shape)
        for c in all_coords(self.shape):
            self._add_element(pe(c))
            self._add_element(rtr(c))
        for c in all_coords(self.shape):
            self._add_duplex(pe(c), rtr(c))
            for k in range(self.num_dims):
                if c[k] + 1 < self.shape[k]:
                    nb = c[:k] + (c[k] + 1,) + c[k + 1 :]
                    self._add_duplex(rtr(c), rtr(nb))

    def router(self, coord: Coord) -> ElementId:
        return rtr(validate_coord(coord, self.shape))

    def neighbor(self, coord: Coord, dim: int, direction: int) -> Coord:
        """Neighbour of ``coord`` along ``dim`` (+1 or -1); raises at edges."""
        v = coord[dim] + direction
        if not 0 <= v < self.shape[dim]:
            raise ValueError(f"{coord} has no dim-{dim} neighbour at offset {direction}")
        return coord[:dim] + (v,) + coord[dim + 1 :]

    @property
    def router_ports(self) -> int:
        """Ports of an interior router: PE plus two per dimension."""
        return 1 + 2 * sum(1 for n in self.shape if n > 1)

    @property
    def diameter_hops(self) -> int:
        """Maximum router-to-router hops between two PEs."""
        return sum(n - 1 for n in self.shape)
