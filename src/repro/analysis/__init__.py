"""Analytic models backing the paper's Section 3.1 claims."""

from .conflicts import (
    ConflictStats,
    measure_conflicts,
    permutation_conflict_comparison,
    random_permutation_pairs,
    summarize_conflicts,
)
from .cost_model import (
    ChannelBudget,
    channel_budget_table,
    crossover_message_size,
    diameter_hops,
    router_ports,
    scaling_series,
)
from .embedding import (
    GUESTS,
    EmbeddingReport,
    check_all_embeddings,
    check_embedding,
    snake_order,
)
from .saturation import (
    SaturationEstimate,
    channel_route_counts,
    estimate_saturation,
    saturation_comparison,
)
from .reliability import (
    MTTFEstimate,
    ReliabilityComparison,
    mttf_comparison,
    mttf_no_facility,
    mttf_single_fault_facility,
    simulate_extended_facility,
)
from .campaign import (
    CampaignCheckpoint,
    CampaignResult,
    CampaignSpec,
    SwitchUniverse,
    campaign_mttf_estimate,
    run_campaign,
    wilson_interval,
)
from .properties import (
    NetworkProfile,
    comparison_table,
    crosspoint_count,
    profile,
    verify_md_crossbar_distances,
)

__all__ = [
    "CampaignCheckpoint",
    "CampaignResult",
    "CampaignSpec",
    "SwitchUniverse",
    "campaign_mttf_estimate",
    "run_campaign",
    "wilson_interval",
    "ChannelBudget",
    "ConflictStats",
    "EmbeddingReport",
    "GUESTS",
    "NetworkProfile",
    "channel_budget_table",
    "check_all_embeddings",
    "check_embedding",
    "comparison_table",
    "crossover_message_size",
    "crosspoint_count",
    "diameter_hops",
    "measure_conflicts",
    "permutation_conflict_comparison",
    "profile",
    "random_permutation_pairs",
    "router_ports",
    "scaling_series",
    "snake_order",
    "summarize_conflicts",
    "verify_md_crossbar_distances",
    "MTTFEstimate",
    "ReliabilityComparison",
    "mttf_comparison",
    "mttf_no_facility",
    "mttf_single_fault_facility",
    "simulate_extended_facility",
    "SaturationEstimate",
    "channel_route_counts",
    "estimate_saturation",
    "saturation_comparison",
]
