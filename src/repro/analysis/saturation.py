"""Analytic saturation throughput from static channel loads.

For uniform point-to-point traffic at offered load ``r`` flits/PE/cycle,
the expected utilization of channel ``c`` is ``r * routes(c) / n`` where
``routes(c)`` counts the source-destination pairs whose route crosses
``c``.  The network saturates when its most-loaded channel reaches full
utilization, giving the classic bottleneck bound

    r_sat = n / max_c routes(c)   (flits/PE/cycle).

This turns the static route set -- no simulation -- into a throughput
prediction, and explains *where* each topology chokes: the MD crossbar's
bottleneck is a turn-router port, the mesh's is a bisection link.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..baselines.dor import MeshAdapter, TorusAdapter
from ..core.config import make_config
from ..core.coords import all_coords, num_nodes
from ..core.switch_logic import SwitchLogic
from ..topology.mdcrossbar import MDCrossbar
from ..topology.mesh import Mesh
from ..topology.torus import Torus
from .conflicts import _baseline_route_channels, _md_route_channels


@dataclass
class SaturationEstimate:
    """Bottleneck analysis of one topology under uniform traffic."""

    name: str
    num_pes: int
    max_routes_per_channel: int
    mean_routes_per_channel: float
    saturation_load: float
    bottleneck_channel: object

    def row(self) -> str:
        return (
            f"{self.name:<14} max_load={self.max_routes_per_channel:<5} "
            f"mean={self.mean_routes_per_channel:6.1f} "
            f"r_sat={self.saturation_load:5.3f} flits/PE/cycle "
            f"bottleneck={self.bottleneck_channel!r}"
        )


def channel_route_counts(name: str, shape) -> Tuple[Counter, Dict[int, object]]:
    """Route-count per channel cid over all source-destination pairs."""
    counts: Counter = Counter()
    if name == "md-crossbar":
        topo = MDCrossbar(shape)
        logic = SwitchLogic(topo, make_config(shape))

        def route(s, t):
            return _md_route_channels(topo, logic, s, t)
    elif name == "mesh":
        topo = Mesh(shape)
        adapter = MeshAdapter(topo)

        def route(s, t):
            return _baseline_route_channels(topo, adapter, s, t)
    elif name == "torus":
        topo = Torus(shape)
        adapter = TorusAdapter(topo)

        def route(s, t):
            return _baseline_route_channels(topo, adapter, s, t)
    else:
        raise ValueError(f"unknown topology {name!r}")
    for s in all_coords(shape):
        for t in all_coords(shape):
            if s != t:
                counts.update(route(s, t))
    chans = {c.cid: c for c in topo.channels()}
    return counts, chans


def estimate_saturation(name: str, shape) -> SaturationEstimate:
    """Bottleneck saturation estimate for uniform traffic.

    Injection/ejection channels are excluded from the bottleneck (they are
    per-PE and scale with the endpoints, not the network fabric).
    """
    counts, chans = channel_route_counts(name, shape)
    n = num_nodes(shape)
    fabric = {
        cid: k
        for cid, k in counts.items()
        if chans[cid].src[0] != "PE" and chans[cid].dst[0] != "PE"
    }
    if not fabric:
        raise ValueError("no fabric channels found")
    bottleneck_cid, max_load = max(fabric.items(), key=lambda kv: (kv[1], -kv[0]))
    # a source offers r flits/cycle spread uniformly over n-1 destinations,
    # so channel utilization = r * routes(c) / n; full at r = n / routes(c)
    saturation = n / max_load
    return SaturationEstimate(
        name=name,
        num_pes=n,
        max_routes_per_channel=max_load,
        mean_routes_per_channel=sum(fabric.values()) / len(fabric),
        saturation_load=min(1.0, saturation),
        bottleneck_channel=chans[bottleneck_cid],
    )


def saturation_comparison(
    shape, names: Tuple[str, ...] = ("md-crossbar", "mesh", "torus")
) -> List[SaturationEstimate]:
    return [estimate_saturation(n, shape) for n in names]
