"""Streaming Monte-Carlo reliability campaigns (paper Sections 1 and 4).

:func:`repro.analysis.reliability.simulate_extended_facility` walks one
random switch-failure order at a time and asks :func:`make_config` per
step whether the accumulated fault set still admits a valid routing
configuration.  That is fine for 200 samples on a 4x3 grid and hopeless
for confidence intervals on the full 16x16x8 SR2201 (2560 switches) --
the per-step ``make_config`` rebuild enumerates every candidate S-XB
line against every fault, and every sample pays it again.

This module is the campaign-scale engine.  Three ideas:

**Closed-form feasibility.**  ``make_config`` succeeds on a fault set
iff (R1) all faulty crossbars share one dimension -- which is then
routed first, else dimension 0 -- and (R2) an admissible S-XB line
exists.  A candidate line is blocked by a faulty router iff it shares
that router's coordinate in *any* non-first dimension of extent > 1
(:func:`repro.core.config._line_ok`), so the admissible lines form a
per-dimension product set and their count is

    prod_{k != first, shape[k] > 1} (shape[k] - |distinct faulty router
    coords in k|)  -  |faulty first-dim crossbars whose line lies inside
    that product|.

Feasible iff the count is >= 1 (>= 2 for the naive detour scheme, which
also needs a distinct D-XB line).  Both the scalar oracle
(:meth:`SwitchUniverse.admissible_lines`) and the vectorized kernel
maintain this incrementally -- O(dims) per added fault instead of a
candidate-line scan -- and ``tests/analysis/test_campaign.py`` pins
exact parity against ``make_config`` on a zoo of shapes.

**Block-seeded vectorized sampling.**  A campaign is a fixed grid of
sampling *blocks* of :attr:`CampaignSpec.block_samples` samples each.
Block ``b`` draws from ``default_rng(SeedSequence(seed, spawn_key=(b,)))``
-- the sub-stream depends only on the campaign seed and the block index,
never on chunking or worker count.  Within a block the kernel runs all
samples in lockstep: standard exponentials are drawn per escalation
window and scaled by ``1/((n - step) * rate)``, failure orders are drawn
without replacement by vectorized rejection sampling, and per-dimension
coordinate occupancy plus the faulty-crossbar line list give the
feasibility count above with a handful of numpy gathers per step.

**Deterministic streaming reduction.**  Each block reduces to a tiny
:class:`BlockState` -- Welford ``(samples, mean, M2)`` over the death
times (computed with ``math.fsum`` so the result is platform-stable), a
survived-fault sum, and per-depth tallies.  Workers ship block states,
never per-sample arrays, and the parent folds them **strictly in block
index order** with Chan's merge.  The merge is not associative, so the
fixed fold order is what makes serial, chunked, any ``--jobs``, and
checkpoint/resumed campaigns byte-identical -- hashed by
:attr:`CampaignResult.identity_sha256` and gated by bench + CI.

Dispatch goes through :meth:`repro.runtime.session.SweepSession.run_tasks`
(the generic warm-pool fan-out added for campaigns): thousands of
samples per IPC round trip, no per-sample :class:`RunSpec` pickling or
cache-key hashing.  Each worker process memoizes its
:class:`SwitchUniverse` per shape (:func:`worker_universe`), so the R1/R2
decode tables are built once per worker and shared across every chunk
and sample it serves.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ConfigError
from ..core.coords import num_nodes, validate_shape
from ..core.fault import Fault
from .reliability import MTTFEstimate

#: samples per sampling block -- the atomic unit of RNG seeding and
#: reduction.  Part of the campaign identity: changing it changes which
#: sub-stream draws which sample.  16384 amortizes the kernel's
#: per-step numpy dispatch overhead (~1.5x the throughput of 4096 on
#: the full machine) while a block's working set stays a few MB.
DEFAULT_BLOCK_SAMPLES = 16384

#: steps the block kernel runs before re-checking how many samples are
#: still alive (survivors continue with further draws from the same
#: block stream, so the window size does not affect results)
_WINDOW = 16

#: 95% two-sided normal quantile, for :func:`wilson_interval`
WILSON_Z = 1.959963984540054

#: admissible S-XB lines each supported detour scheme needs: the paper's
#: SAFE scheme reuses the S-XB as D-XB (one line), the naive scheme
#: needs a second, distinct admissible line
_SCHEME_NEEDS: Dict[str, int] = {"dxb": 1}


class SwitchUniverse:
    """Decode tables + feasibility oracle for one network shape.

    Indexes the switch set exactly like
    :func:`repro.core.multifault.all_single_faults`: routers first in
    C-order (index = lexicographic coordinate index), then the
    dimension-``k`` crossbars for ``k = 0, 1, ...``, each dimension's
    lines in C-order over the remaining coordinates.  The Monte-Carlo
    walks draw plain integers from this universe; :meth:`fault` converts
    back to a :class:`~repro.core.fault.Fault` when one is needed.
    """

    def __init__(self, shape) -> None:
        self.shape = validate_shape(shape)
        d = len(self.shape)
        self.num_dims = d
        self.num_routers = num_nodes(self.shape)
        #: dimensions of extent > 1; extent-1 dimensions never constrain
        #: rule R2 (their only coordinate is shared by every line)
        self.wide_dims: Tuple[int, ...] = tuple(
            k for k in range(d) if self.shape[k] > 1
        )
        r = self.num_routers
        self.router_coords = np.stack(
            np.unravel_index(np.arange(r), self.shape), axis=1
        ).astype(np.int64)
        xb_dim: List[int] = []
        xb_line_rows: List[np.ndarray] = []
        for dim in range(d):
            rest = tuple(n for k, n in enumerate(self.shape) if k != dim)
            lines = r // self.shape[dim]
            if rest:
                cols = np.stack(
                    np.unravel_index(np.arange(lines), rest), axis=1
                )
            else:
                cols = np.zeros((lines, 0), dtype=np.int64)
            # expand the line key to full width; the slot at ``dim`` is a
            # placeholder (0 keeps fancy indexing in range) and is always
            # masked out by the per-row first-dimension check
            full = np.zeros((lines, d), dtype=np.int64)
            full[:, [k for k in range(d) if k != dim]] = cols
            xb_dim.extend([dim] * lines)
            xb_line_rows.append(full)
        self.xb_dim = np.asarray(xb_dim, dtype=np.int64)
        self.xb_line = (
            np.concatenate(xb_line_rows, axis=0)
            if xb_line_rows
            else np.zeros((0, d), dtype=np.int64)
        )
        self.num_switches = self.num_routers + len(self.xb_dim)

    # ---------------------------------------------------------- conversions
    def fault(self, index: int) -> Fault:
        """The :class:`Fault` at ``index`` (``all_single_faults`` order)."""
        if not 0 <= index < self.num_switches:
            raise ValueError(
                f"switch index {index} out of range for {self.shape}"
            )
        if index < self.num_routers:
            return Fault.router(tuple(map(int, self.router_coords[index])))
        xi = index - self.num_routers
        dim = int(self.xb_dim[xi])
        line = tuple(
            int(self.xb_line[xi, k])
            for k in range(self.num_dims)
            if k != dim
        )
        return Fault.crossbar(dim, line)

    # ---------------------------------------------------------- feasibility
    def admissible_lines(self, indices: Sequence[int]) -> int:
        """Admissible S-XB lines for the fault set, or ``-1`` on an R1
        violation (faulty crossbars in more than one dimension).

        The scalar form of the closed-form count in the module docstring:
        O(faults * dims), no candidate-line enumeration.
        """
        xb_first = -1
        forbidden: Dict[int, set] = {k: set() for k in self.wide_dims}
        xb_lines: List[np.ndarray] = []
        for i in indices:
            if i < self.num_routers:
                coord = self.router_coords[i]
                for k in self.wide_dims:
                    forbidden[k].add(int(coord[k]))
            else:
                xi = i - self.num_routers
                dim = int(self.xb_dim[xi])
                if xb_first >= 0 and dim != xb_first:
                    return -1
                xb_first = dim
                xb_lines.append(self.xb_line[xi])
        first = xb_first if xb_first >= 0 else 0
        count = 1
        for k in self.wide_dims:
            if k != first:
                count *= self.shape[k] - len(forbidden[k])
        blocked_by_fault = 0
        for line in xb_lines:
            if all(
                int(line[k]) not in forbidden[k]
                for k in self.wide_dims
                if k != first
            ):
                blocked_by_fault += 1
        return count - blocked_by_fault

    def feasible(self, indices: Sequence[int], need: int = 1) -> bool:
        """Whether ``make_config`` would accept this fault set (``need=1``
        for the SAFE detour scheme, ``need=2`` for the naive scheme's
        extra distinct D-XB line)."""
        return self.admissible_lines(indices) >= need


#: per-process universes, keyed by shape -- the per-worker feasibility
#: memo: each worker builds the decode tables once and every chunk of
#: every campaign on that shape shares them
_worker_universes: Dict[Tuple[int, ...], SwitchUniverse] = {}


def worker_universe(shape) -> SwitchUniverse:
    shp = validate_shape(shape)
    uni = _worker_universes.get(shp)
    if uni is None:
        uni = _worker_universes[shp] = SwitchUniverse(shp)
    return uni


class FeasibilityMemo:
    """Bounded fault-set -> feasible memo for the scalar walkers.

    Keys are sorted index tuples, so permutations of the same fault set
    share one entry.  Insertions stop at ``capacity`` (lookups keep
    working); campaigns at machine scale would otherwise accumulate
    millions of distinct prefixes.
    """

    def __init__(
        self, universe: SwitchUniverse, need: int = 1,
        capacity: int = 1_000_000,
    ) -> None:
        self.universe = universe
        self.need = need
        self.capacity = capacity
        self._memo: Dict[Tuple[int, ...], bool] = {}
        self.hits = 0
        self.misses = 0

    def feasible(self, key: Tuple[int, ...]) -> bool:
        cached = self._memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        verdict = self.universe.feasible(key, need=self.need)
        if len(self._memo) < self.capacity:
            self._memo[key] = verdict
        return verdict

    def __len__(self) -> int:
        return len(self._memo)


# --------------------------------------------------------------------------
# streaming reducer state
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockState:
    """The streaming-reducer state of one (or several merged) blocks.

    ``mean``/``m2`` are Welford aggregates of the machine death times;
    ``depth_hist[j]`` counts samples whose walk ended with ``j``
    accumulated faults, ``disc_hist[j]`` the subset that ended because
    fault ``j`` made the set infeasible (the rest hit the fault cap).
    Plain numbers and lists, so states pickle across workers and
    round-trip through JSON checkpoints.
    """

    samples: int
    mean: float
    m2: float
    survived_sum: int
    depth_hist: Tuple[int, ...]
    disc_hist: Tuple[int, ...]

    def to_dict(self) -> Dict:
        return {
            "samples": self.samples,
            "mean": self.mean,
            "m2": self.m2,
            "survived_sum": self.survived_sum,
            "depth_hist": list(self.depth_hist),
            "disc_hist": list(self.disc_hist),
        }

    @staticmethod
    def from_dict(doc: Dict) -> "BlockState":
        return BlockState(
            samples=int(doc["samples"]),
            mean=float(doc["mean"]),
            m2=float(doc["m2"]),
            survived_sum=int(doc["survived_sum"]),
            depth_hist=tuple(int(v) for v in doc["depth_hist"]),
            disc_hist=tuple(int(v) for v in doc["disc_hist"]),
        )


def empty_state() -> BlockState:
    return BlockState(0, 0.0, 0.0, 0, (), ())


def merge_states(a: BlockState, b: BlockState) -> BlockState:
    """Chan's parallel Welford merge plus exact tally addition.

    **Not associative in floating point** -- campaign code must fold
    block states left-to-right in block index order, which is exactly
    what makes serial, chunked and resumed campaigns byte-identical.
    """
    if a.samples == 0:
        return b
    if b.samples == 0:
        return a
    n = a.samples + b.samples
    delta = b.mean - a.mean
    mean = a.mean + delta * (b.samples / n)
    m2 = a.m2 + b.m2 + delta * delta * (a.samples * b.samples / n)
    width = max(len(a.depth_hist), len(b.depth_hist))

    def pad(h: Tuple[int, ...]) -> List[int]:
        return list(h) + [0] * (width - len(h))

    depth = [x + y for x, y in zip(pad(a.depth_hist), pad(b.depth_hist))]
    disc = [x + y for x, y in zip(pad(a.disc_hist), pad(b.disc_hist))]
    return BlockState(
        samples=n,
        mean=mean,
        m2=m2,
        survived_sum=a.survived_sum + b.survived_sum,
        depth_hist=tuple(depth),
        disc_hist=tuple(disc),
    )


def wilson_interval(
    successes: int, trials: int, z: float = WILSON_Z
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion, clamped to
    [0, 1].  ``trials == 0`` returns the vacuous (0, 1) interval."""
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"bad tally {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    # at the boundary tallies the exact bound is 0 (resp. 1); computing
    # it as center -/+ half leaves ~1e-19 of rounding residue
    lo = 0.0 if successes == 0 else max(0.0, center - half)
    hi = 1.0 if successes == trials else min(1.0, center + half)
    return (lo, hi)


# --------------------------------------------------------------------------
# the vectorized block kernel
# --------------------------------------------------------------------------


def _grow(arr: np.ndarray, new_cols: int, fill) -> np.ndarray:
    extra = np.full(
        (arr.shape[0], new_cols - arr.shape[1]) + arr.shape[2:],
        fill,
        dtype=arr.dtype,
    )
    return np.concatenate([arr, extra], axis=1)


def sample_block(
    universe: SwitchUniverse,
    rng: np.random.Generator,
    size: int,
    rate: float = 1.0,
    max_faults: Optional[int] = None,
    need: int = 1,
    debug: bool = False,
):
    """Run ``size`` fault-placement walks in lockstep on one RNG stream.

    Each walk draws switch failures uniformly without replacement with
    exponential inter-arrival times (scale ``1/((n - step) * rate)``)
    and stops when the accumulated set turns infeasible or reaches the
    fault cap -- the same death semantics as the scalar
    ``simulate_extended_facility`` walk: a walk that dies at fault ``k``
    *survived* ``k - 1`` faults when infeasible, ``k`` when capped.

    Returns ``(times, depth, infeasible)`` arrays, plus the per-sample
    failure orders when ``debug`` (the parity tests replay those
    prefixes through ``make_config``).
    """
    n = universe.num_switches
    r = universe.num_routers
    d = universe.num_dims
    cap = n if max_faults is None else max(1, min(int(max_faults), n))
    times = np.zeros(size, dtype=np.float64)
    depth = np.zeros(size, dtype=np.int64)
    infeasible = np.zeros(size, dtype=bool)
    # 128 columns covers the observed depth tail even on the full
    # machine (p99.9 ~ 52, max ~ 65 on 16x16x8); deeper walks fall back
    # to _grow, whose full-array copy is the expensive path.
    chosen = np.full((size, min(cap, 128)), -1, dtype=np.int64)
    occ = {
        k: np.zeros((size, universe.shape[k]), dtype=bool)
        for k in universe.wide_dims
    }
    free = np.zeros((size, d), dtype=np.int64)
    for k in universe.wide_dims:
        free[:, k] = universe.shape[k]
    xbdim = np.full(size, -1, dtype=np.int64)
    xbcnt = np.zeros(size, dtype=np.int64)
    xblines = np.zeros((size, 4, d), dtype=np.int64)

    idx = np.arange(size)
    step = 0
    while idx.size:
        window = min(_WINDOW, cap - step)
        exps = rng.standard_exponential((idx.size, window))
        pos = np.arange(idx.size)
        for j in range(window):
            rows = idx
            if step + 1 > chosen.shape[1]:
                chosen = _grow(
                    chosen, min(cap, max(2 * chosen.shape[1], step + window)), -1
                )
            # without-replacement draw: uniform over all n switches,
            # rejecting (and redrawing) indices the row already holds
            cand = rng.integers(0, n, size=rows.size)
            if step:
                bad = np.flatnonzero(
                    (chosen[rows, :step] == cand[:, None]).any(axis=1)
                )
                while bad.size:
                    cand[bad] = rng.integers(0, n, size=bad.size)
                    still = (
                        chosen[rows[bad], :step] == cand[bad][:, None]
                    ).any(axis=1)
                    bad = bad[still]
            chosen[rows, step] = cand
            times[rows] += exps[pos, j] / ((n - step) * rate)

            is_router = cand < r
            r_rows = rows[is_router]
            if r_rows.size:
                coords = universe.router_coords[cand[is_router]]
                for k in universe.wide_dims:
                    col = coords[:, k]
                    was = occ[k][r_rows, col]
                    occ[k][r_rows, col] = True
                    free[r_rows, k] -= (~was).astype(np.int64)
            dead_r1 = np.zeros(rows.size, dtype=bool)
            x_sel = np.flatnonzero(~is_router)
            if x_sel.size:
                xi = cand[x_sel] - r
                xd = universe.xb_dim[xi]
                prev = xbdim[rows[x_sel]]
                conflict = (prev >= 0) & (prev != xd)
                dead_r1[x_sel[conflict]] = True
                ok = x_sel[~conflict]
                if ok.size:
                    ok_rows = rows[ok]
                    cnt = xbcnt[ok_rows]
                    if int(cnt.max()) + 1 > xblines.shape[1]:
                        xblines = _grow(xblines, 2 * xblines.shape[1], 0)
                    xbdim[ok_rows] = xd[~conflict]
                    xblines[ok_rows, cnt, :] = universe.xb_line[xi[~conflict]]
                    xbcnt[ok_rows] = cnt + 1

            first = np.where(xbdim[rows] >= 0, xbdim[rows], 0)
            count = np.ones(rows.size, dtype=np.int64)
            for k in universe.wide_dims:
                count *= np.where(first == k, 1, free[rows, k])
            max_xb = int(xbcnt[rows].max()) if rows.size else 0
            for m in range(max_xb):
                has = xbcnt[rows] > m
                line = xblines[rows, m]
                blocked = np.zeros(rows.size, dtype=bool)
                for k in universe.wide_dims:
                    blocked |= (first != k) & occ[k][rows, line[:, k]]
                count -= (has & ~blocked).astype(np.int64)

            died = dead_r1 | (count < need)
            stop = died | (step + 1 >= cap)
            step += 1
            if stop.any():
                ended = rows[stop]
                depth[ended] = step
                infeasible[ended] = died[stop]
                idx = rows[~stop]
                pos = pos[~stop]
            if idx.size == 0:
                break
    if debug:
        orders = [chosen[i, : depth[i]].tolist() for i in range(size)]
        return times, depth, infeasible, orders
    return times, depth, infeasible


def _reduce_block(
    times: np.ndarray, depth: np.ndarray, infeasible: np.ndarray
) -> BlockState:
    """Fold one block's sample arrays into a :class:`BlockState`.

    ``math.fsum`` gives exactly rounded sums, so the per-block floats do
    not depend on numpy's reduction tree (or version) -- the states, and
    therefore the campaign identity hash, are platform-stable.
    """
    t = times.tolist()
    size = len(t)
    mean = math.fsum(t) / size
    m2 = math.fsum((x - mean) ** 2 for x in t)
    survived = depth - infeasible.astype(np.int64)
    depth_hist = np.bincount(depth).tolist()
    disc_hist = np.bincount(
        depth[infeasible], minlength=len(depth_hist)
    ).tolist()
    return BlockState(
        samples=size,
        mean=mean,
        m2=m2,
        survived_sum=int(survived.sum()),
        depth_hist=tuple(depth_hist),
        disc_hist=tuple(disc_hist),
    )


# --------------------------------------------------------------------------
# campaign spec / chunk entry / driver
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """One reproducible Monte-Carlo reliability campaign.

    Every field is part of the result identity: the same spec produces
    the same estimate bit-for-bit no matter how it is chunked, how many
    workers run it, or whether it was checkpointed and resumed.
    """

    shape: Tuple[int, ...]
    samples: int
    seed: int = 13
    rate: float = 1.0
    max_faults: Optional[int] = None
    scheme: str = "dxb"
    block_samples: int = DEFAULT_BLOCK_SAMPLES

    def validated(self) -> "CampaignSpec":
        spec = replace(self, shape=validate_shape(self.shape))
        if spec.samples < 1:
            raise ValueError("a campaign needs at least one sample")
        if spec.block_samples < 1:
            raise ValueError("block_samples must be >= 1")
        if spec.rate <= 0:
            raise ValueError("failure rate must be positive")
        if spec.scheme not in _SCHEME_NEEDS:
            raise ConfigError(
                f"campaigns model the facility schemes "
                f"{sorted(_SCHEME_NEEDS)}, not {spec.scheme!r}"
            )
        return spec

    @property
    def need(self) -> int:
        return _SCHEME_NEEDS[self.scheme]

    @property
    def num_blocks(self) -> int:
        return -(-self.samples // self.block_samples)

    def block_size(self, block: int) -> int:
        if not 0 <= block < self.num_blocks:
            raise ValueError(f"block {block} out of range")
        start = block * self.block_samples
        return min(self.block_samples, self.samples - start)

    def block_rng(self, block: int) -> np.random.Generator:
        """The block's private sub-stream: a function of the campaign
        seed and the block index only -- never of chunking or jobs."""
        return np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(block,))
        )

    def to_dict(self) -> Dict:
        return {
            "shape": list(self.shape),
            "samples": self.samples,
            "seed": self.seed,
            "rate": self.rate,
            "max_faults": self.max_faults,
            "scheme": self.scheme,
            "block_samples": self.block_samples,
        }

    @staticmethod
    def from_dict(doc: Dict) -> "CampaignSpec":
        return CampaignSpec(
            shape=tuple(doc["shape"]),
            samples=int(doc["samples"]),
            seed=int(doc["seed"]),
            rate=float(doc["rate"]),
            max_faults=(
                None if doc["max_faults"] is None else int(doc["max_faults"])
            ),
            scheme=doc["scheme"],
            block_samples=int(doc["block_samples"]),
        ).validated()


def execute_campaign_blocks(spec: CampaignSpec, lo: int, hi: int):
    """Module-level chunk entry (importable, hence picklable): run
    blocks ``[lo, hi)`` of ``spec`` and ship their per-block states.

    One IPC round trip carries ``(hi - lo) * block_samples`` samples in
    and a few hundred bytes of reducer state out; the parent never sees
    a per-sample value.
    """
    universe = worker_universe(spec.shape)
    t0 = perf_counter()
    states: List[Dict] = []
    for block in range(lo, hi):
        arrays = sample_block(
            universe,
            spec.block_rng(block),
            spec.block_size(block),
            rate=spec.rate,
            max_faults=spec.max_faults,
            need=spec.need,
        )
        states.append(_reduce_block(*arrays).to_dict())
    return os.getpid(), perf_counter() - t0, states


@dataclass(frozen=True)
class CampaignCheckpoint:
    """A campaign frozen at a block boundary: resume with
    :func:`run_campaign` (``resume=``) to fold the remaining blocks onto
    the saved state -- byte-identical to running the campaign in one go.
    """

    spec: CampaignSpec
    blocks_done: int
    state: BlockState

    def to_dict(self) -> Dict:
        return {
            "spec": self.spec.to_dict(),
            "blocks_done": self.blocks_done,
            "state": self.state.to_dict(),
        }

    @staticmethod
    def from_dict(doc: Dict) -> "CampaignCheckpoint":
        return CampaignCheckpoint(
            spec=CampaignSpec.from_dict(doc["spec"]),
            blocks_done=int(doc["blocks_done"]),
            state=BlockState.from_dict(doc["state"]),
        )


class DisconnectRow(Tuple):
    pass


@dataclass(frozen=True)
class CampaignResult:
    """A finished (or checkpointed) campaign: the merged reducer state
    plus how the runtime happened to execute it."""

    spec: CampaignSpec
    state: BlockState
    blocks_done: int
    wall_s: float
    workers: int
    chunks: int

    @property
    def samples_done(self) -> int:
        return self.state.samples

    @property
    def complete(self) -> bool:
        return self.blocks_done == self.spec.num_blocks

    def estimate(self) -> MTTFEstimate:
        """The streaming Welford estimate (units of ``1/rate``).

        ``std_error`` is NaN -- explicitly, not via a ddof warning --
        when only one sample was drawn: one observation carries no
        spread information.
        """
        s = self.state
        if s.samples == 0:
            raise ValueError("no samples folded yet")
        if s.samples > 1:
            std_error = math.sqrt(s.m2 / (s.samples - 1)) / math.sqrt(
                s.samples
            )
        else:
            std_error = float("nan")
        return MTTFEstimate(
            mean=s.mean,
            std_error=std_error,
            mean_faults_survived=s.survived_sum / s.samples,
            samples=s.samples,
        )

    def disconnect_table(self) -> List[Dict]:
        """P(disconnect | k faults) with Wilson 95% intervals.

        ``trials`` at ``k`` counts the samples whose walk formed a
        ``k``-fault set (died at depth >= k); ``disconnects`` the subset
        whose ``k``-th fault made the set infeasible.
        """
        hist, disc = self.state.depth_hist, self.state.disc_hist
        suffix = 0
        trials_at = [0] * len(hist)
        for k in range(len(hist) - 1, -1, -1):
            suffix += hist[k]
            trials_at[k] = suffix
        rows: List[Dict] = []
        for k in range(1, len(hist)):
            trials = trials_at[k]
            if trials == 0:
                continue
            successes = disc[k]
            lo, hi = wilson_interval(successes, trials)
            rows.append(
                {
                    "k": k,
                    "trials": trials,
                    "disconnects": successes,
                    "p": successes / trials,
                    "wilson_lo": lo,
                    "wilson_hi": hi,
                }
            )
        return rows

    @property
    def identity_sha256(self) -> str:
        """sha256 over the spec plus the merged state with floats in
        ``float.hex`` form: byte-equal across chunkings, job counts and
        checkpoint/resume splits, or the determinism contract is broken.
        """
        import hashlib

        s = self.state
        doc = {
            "campaign": self.spec.to_dict(),
            "blocks_done": self.blocks_done,
            "state": {
                "samples": s.samples,
                "mean": s.mean.hex(),
                "m2": s.m2.hex(),
                "survived_sum": s.survived_sum,
                "depth_hist": list(s.depth_hist),
                "disc_hist": list(s.disc_hist),
            },
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def checkpoint(self) -> CampaignCheckpoint:
        return CampaignCheckpoint(
            spec=self.spec, blocks_done=self.blocks_done, state=self.state
        )

    def to_dict(self) -> Dict:
        est = self.estimate()
        return {
            "spec": self.spec.to_dict(),
            "samples": self.samples_done,
            "blocks": self.blocks_done,
            "mean_mttf": est.mean,
            "std_error": (
                est.std_error if math.isfinite(est.std_error) else None
            ),
            "mean_faults_survived": est.mean_faults_survived,
            "disconnect_table": self.disconnect_table(),
            "identity_sha256": self.identity_sha256,
            "wall_s": self.wall_s,
            "workers": self.workers,
            "chunks": self.chunks,
        }


def run_campaign(
    spec: CampaignSpec,
    jobs: Optional[int] = None,
    session=None,
    ledger=None,
    progress: Optional[Callable[[object, int, int], None]] = None,
    resume: Optional[CampaignCheckpoint] = None,
    until_block: Optional[int] = None,
) -> CampaignResult:
    """Run a campaign, streaming block states through the warm runtime.

    ``jobs`` fans chunks of blocks over a
    :class:`~repro.runtime.session.SweepSession` (pass ``session=`` to
    reuse a warm one; its ``jobs``/``chunks_per_worker`` then apply).
    ``progress(None, done_blocks, total_blocks)`` fires per completed
    chunk -- :class:`~repro.obs.telemetry.LiveDashboard` plugs in
    directly.  ``ledger`` records ``campaign_start`` /
    ``campaign_chunk`` / ``campaign_end``.  ``resume`` continues a
    :class:`CampaignCheckpoint`; ``until_block`` stops early at a block
    boundary (producing a resumable partial result).

    Chunk results arrive in completion order but are **folded in block
    index order** -- out-of-order chunks wait in a small buffer of
    reducer states (never samples), so the merged estimate is invariant
    under chunking, worker count and resume splits.
    """
    from ..runtime.session import SweepSession, chunk_indices

    spec = spec.validated()
    t0 = perf_counter()
    total_blocks = spec.num_blocks
    state = empty_state()
    start_block = 0
    if resume is not None:
        if resume.spec.to_dict() != spec.to_dict():
            raise ValueError(
                "checkpoint belongs to a different campaign spec"
            )
        state = resume.state
        start_block = resume.blocks_done
    stop_block = total_blocks if until_block is None else until_block
    if not start_block <= stop_block <= total_blocks:
        raise ValueError(
            f"bad block range [{start_block}, {stop_block}) for "
            f"{total_blocks} blocks"
        )

    own_session = session is None
    if own_session:
        session = SweepSession(jobs=jobs)
    todo = stop_block - start_block
    workers = session.effective_workers(todo)
    slices = chunk_indices(todo, workers * session.chunks_per_worker)
    chunks = [(start_block + a, start_block + b) for a, b in slices]
    if ledger is not None:
        ledger.record(
            "campaign_start",
            **spec.to_dict(),
            blocks=total_blocks,
            first_block=start_block,
            last_block=stop_block,
            jobs=session.jobs,
            workers=workers,
            chunks=len(chunks),
        )

    done_blocks = 0
    pending: Dict[int, List[BlockState]] = {}
    cursor = 0

    def on_result(index: int, payload) -> None:
        nonlocal done_blocks, cursor, state
        worker, wall_s, state_docs = payload
        lo, hi = chunks[index]
        done_blocks += hi - lo
        if ledger is not None:
            ledger.record(
                "campaign_chunk",
                chunk=index,
                first_block=lo,
                last_block=hi,
                samples=sum(
                    spec.block_size(b) for b in range(lo, hi)
                ),
                worker=worker,
                wall_s=wall_s,
            )
        pending[index] = [BlockState.from_dict(d) for d in state_docs]
        while cursor in pending:
            for block_state in pending.pop(cursor):
                state = merge_states(state, block_state)
            cursor += 1
        if progress is not None:
            progress(None, done_blocks, todo)

    try:
        if chunks:
            session.run_tasks(
                execute_campaign_blocks,
                [(spec, lo, hi) for lo, hi in chunks],
                on_result=on_result,
            )
    finally:
        if own_session:
            session.close()
    assert cursor == len(chunks), "campaign chunks were lost"

    result = CampaignResult(
        spec=spec,
        state=state,
        blocks_done=stop_block,
        wall_s=perf_counter() - t0,
        workers=workers,
        chunks=len(chunks),
    )
    if ledger is not None:
        est = result.estimate()
        ledger.record(
            "campaign_end",
            samples=result.samples_done,
            blocks=result.blocks_done,
            mean_mttf=est.mean,
            std_error=(
                est.std_error if math.isfinite(est.std_error) else None
            ),
            mean_faults_survived=est.mean_faults_survived,
            identity_sha256=result.identity_sha256,
            wall_s=result.wall_s,
        )
    return result


def campaign_mttf_estimate(
    shape,
    samples: int = 200,
    seed: int = 13,
    rate: float = 1.0,
    max_faults: Optional[int] = None,
    jobs: Optional[int] = None,
) -> MTTFEstimate:
    """Campaign-backed drop-in for ``simulate_extended_facility``'s
    return value (different sampler, same estimand): the e19 benchmark
    and ``mttf_comparison(engine="campaign")`` use this path."""
    spec = CampaignSpec(
        shape=tuple(shape),
        samples=samples,
        seed=seed,
        rate=rate,
        max_faults=max_faults,
    )
    return run_campaign(spec, jobs=jobs).estimate()
