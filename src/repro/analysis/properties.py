"""Structural network properties (paper Section 3.1, "short communication
distances" and switch inventory).

Hop metrics follow each topology's own convention: the MD crossbar counts
*crossbar traversals* (the paper: any two PEs communicate within d hops),
while mesh / torus / hypercube count router-to-router links.  Both equal the
number of pipeline stages a header crosses between routers, so zero-load
latencies are comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.coords import all_coords, hop_distance, num_nodes
from ..topology.base import Topology
from ..topology.fullcrossbar import FullMesh
from ..topology.hypercube import Hypercube
from ..topology.mdcrossbar import MDCrossbar
from ..topology.mesh import Mesh
from ..topology.torus import Torus


@dataclass
class NetworkProfile:
    """Summary row for the topology-comparison tables."""

    name: str
    shape: Tuple[int, ...]
    num_pes: int
    num_switches: int
    num_channels: int
    router_ports: int
    diameter_hops: int
    avg_hops: float
    crosspoints: int

    def row(self) -> str:
        return (
            f"{self.name:<14} n={self.num_pes:<5} switches={self.num_switches:<5} "
            f"channels={self.num_channels:<5} ports/rtr={self.router_ports:<3} "
            f"diameter={self.diameter_hops:<3} avg_hops={self.avg_hops:5.2f} "
            f"crosspoints={self.crosspoints}"
        )


def _pairwise_hops(shape, dist_fn) -> Tuple[int, float]:
    coords = list(all_coords(shape))
    dists = [dist_fn(a, b) for a, b in combinations(coords, 2)]
    if not dists:
        return 0, 0.0
    return max(dists), float(np.mean(dists))


def mesh_distance(a, b) -> int:
    return sum(abs(x - y) for x, y in zip(a, b))


def torus_distance(a, b, shape) -> int:
    return sum(min((x - y) % n, (y - x) % n) for x, y, n in zip(a, b, shape))


def hypercube_distance(a, b) -> int:
    return sum(1 for x, y in zip(a, b) if x != y)


def crosspoint_count(topo: Topology) -> int:
    """Total crossbar crosspoints over every switch: the paper's "hardware
    quantity" proxy (cf. Hamanaka et al. [6]).  A k-port crossbar switch has
    k*k crosspoints; a router is a crossbar too."""
    total = 0
    for el in topo.switch_elements():
        fan_in, fan_out = topo.element_degree(el)
        total += fan_in * fan_out
    return total


def profile(topo: Topology, name: Optional[str] = None) -> NetworkProfile:
    """Compute the comparison profile of a topology instance."""
    shape = topo.shape
    if isinstance(topo, MDCrossbar):
        diameter, avg = _pairwise_hops(shape, hop_distance)
        ports = topo.router_ports
        label = name or ("crossbar" if topo.is_plain_crossbar() else "md-crossbar")
    elif isinstance(topo, Torus):
        diameter, avg = _pairwise_hops(shape, lambda a, b: torus_distance(a, b, shape))
        ports = topo.router_ports
        label = name or "torus"
    elif isinstance(topo, Hypercube):
        diameter, avg = _pairwise_hops(shape, hypercube_distance)
        ports = topo.router_ports
        label = name or "hypercube"
    elif isinstance(topo, Mesh):
        diameter, avg = _pairwise_hops(shape, mesh_distance)
        ports = topo.router_ports
        label = name or "mesh"
    elif isinstance(topo, FullMesh):
        diameter, avg = (1, 1.0) if topo.n > 1 else (0, 0.0)
        ports = topo.router_ports
        label = name or "fullmesh"
    else:  # pragma: no cover - future topologies
        raise TypeError(f"no profile rule for {type(topo).__name__}")
    return NetworkProfile(
        name=label,
        shape=shape,
        num_pes=num_nodes(shape),
        num_switches=len(topo.switch_elements()),
        num_channels=topo.num_channels,
        router_ports=ports,
        diameter_hops=diameter,
        avg_hops=avg,
        crosspoints=crosspoint_count(topo),
    )


def comparison_table(n_target: int = 64) -> Dict[str, NetworkProfile]:
    """Profiles of the paper's contenders at (close to) a common node count.

    ``n_target`` must be a power of two >= 16 for all four topologies to be
    instantiable at identical size.
    """
    if n_target < 16 or n_target & (n_target - 1):
        raise ValueError("n_target must be a power of two >= 16")
    import math

    side = int(math.isqrt(n_target))
    while side * (n_target // side) != n_target or side > n_target // side:
        side -= 1
    shape2d = (n_target // side, side)
    return {
        "md-crossbar": profile(MDCrossbar(shape2d)),
        "mesh": profile(Mesh(shape2d)),
        "torus": profile(Torus(shape2d)),
        "hypercube": profile(Hypercube.with_nodes(n_target)),
        "crossbar": profile(MDCrossbar((n_target,)), name="crossbar"),
    }


def route_stats(scheme) -> Dict[str, float]:
    """Path-length statistics of a routing scheme's static route relation.

    Walks the scheme's preferred-branch route for every deliverable pair
    (see :meth:`repro.routing.RoutingScheme.static_route`) and compares
    against the shortest channel path in the element graph, giving the
    scheme's **path stretch** -- 1.0 for minimal routing, above 1.0 when
    detours/misroutes lengthen paths (e.g. the D-XB detour under a
    standing fault).  Lengths count traversed channels, injection and
    ejection included, so they are comparable across topologies.
    """
    from collections import deque

    topo = scheme.topo
    # unweighted shortest element-path lengths from every PE
    adjacency: Dict = {}
    for ch in topo.channels():
        adjacency.setdefault(ch.src, []).append(ch.dst)
    shortest: Dict[Tuple, int] = {}
    live = scheme.live_nodes()
    from ..topology.base import pe as pe_el

    for s in live:
        dist = {pe_el(s): 0}
        q = deque([pe_el(s)])
        while q:
            el = q.popleft()
            for nxt in adjacency.get(el, ()):
                if nxt not in dist:
                    dist[nxt] = dist[el] + 1
                    q.append(nxt)
        for d in live:
            if d != s:
                shortest[(s, d)] = dist[pe_el(d)]
    actual_total = 0
    minimal_total = 0
    longest = 0
    pairs = 0
    for (s, d), route in scheme.static_routes().items():
        pairs += 1
        actual_total += len(route)
        minimal_total += shortest[(s, d)]
        longest = max(longest, len(route))
    if pairs == 0:
        return {"pairs": 0, "avg_channels": 0.0, "max_channels": 0, "stretch": 1.0}
    return {
        "pairs": pairs,
        "avg_channels": round(actual_total / pairs, 4),
        "max_channels": longest,
        "stretch": round(actual_total / minimal_total, 4),
    }


def verify_md_crossbar_distances(shape) -> bool:
    """Check the paper's claim directly: every PE pair communicates within
    d crossbar hops, pairs sharing a line within one hop."""
    topo = MDCrossbar(shape)
    d_eff = topo.diameter_hops
    for a, b in combinations(all_coords(shape), 2):
        h = hop_distance(a, b)
        if h > d_eff:
            return False
        same_line = sum(1 for x, y in zip(a, b) if x != y) == 1
        if same_line and h != 1:
            return False
    return True
