"""Static conflict analysis (paper Section 3.1, "few network conflicts").

For a set of simultaneously active point-to-point transfers, a *conflict* is
a channel shared by two different routes: with cut-through switching the
second transfer stalls until the first drains.  The paper claims far fewer
conflicts on the MD crossbar than on mesh or torus networks; this module
measures it by routing random permutations statically on each topology and
counting shared channels -- no flit simulation needed, so it scales to many
samples.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..baselines.dor import HypercubeAdapter, MeshAdapter, TorusAdapter
from ..core.coords import Coord, all_coords, num_nodes
from ..core.routes import Unicast, compute_route
from ..core.switch_logic import SwitchLogic
from ..topology.base import rtr
from ..topology.hypercube import Hypercube
from ..topology.mdcrossbar import MDCrossbar
from ..topology.mesh import Mesh
from ..topology.torus import Torus


@dataclass
class ConflictStats:
    """Channel contention of one simultaneous transfer set."""

    name: str
    num_transfers: int
    max_channel_load: int
    conflicted_channels: int
    conflicted_transfers: int

    @property
    def conflict_free(self) -> bool:
        return self.max_channel_load <= 1

    def row(self) -> str:
        return (
            f"{self.name:<14} transfers={self.num_transfers:<4} "
            f"max_load={self.max_channel_load:<3} "
            f"conflicted_channels={self.conflicted_channels:<4} "
            f"conflicted_transfers={self.conflicted_transfers}"
        )


def _md_route_channels(topo: MDCrossbar, logic: SwitchLogic, s: Coord, t: Coord):
    tree = compute_route(topo, logic, Unicast(s, t))
    return [c.cid for c in tree.path_to(t)]


def _baseline_route_channels(topo, adapter, s: Coord, t: Coord):
    cids = [topo.injection_channel(s).cid]
    cur = s
    in_el = ("PE", s)
    while cur != t:
        nxt, _vc = adapter.next_hop(cur, t, in_el, 0)
        cids.append(topo.channel(rtr(cur), rtr(nxt)).cid)
        in_el = rtr(cur)
        cur = nxt
    cids.append(topo.ejection_channel(t).cid)
    return cids


def measure_conflicts(
    name: str,
    route_channels,
    pairs: Sequence[Tuple[Coord, Coord]],
) -> ConflictStats:
    """Count channel sharing among the given simultaneous transfers."""
    load: Counter = Counter()
    per_transfer: List[List[int]] = []
    for s, t in pairs:
        cids = route_channels(s, t)
        per_transfer.append(cids)
        load.update(cids)
    conflicted = {cid for cid, k in load.items() if k > 1}
    hit = sum(1 for cids in per_transfer if any(c in conflicted for c in cids))
    return ConflictStats(
        name=name,
        num_transfers=len(pairs),
        max_channel_load=max(load.values()) if load else 0,
        conflicted_channels=len(conflicted),
        conflicted_transfers=hit,
    )


def random_permutation_pairs(
    shape, rng: np.random.Generator
) -> List[Tuple[Coord, Coord]]:
    """A random permutation workload: every PE sends to a distinct PE."""
    coords = list(all_coords(shape))
    perm = rng.permutation(len(coords))
    return [
        (coords[i], coords[int(p)])
        for i, p in enumerate(perm)
        if coords[i] != coords[int(p)]
    ]


def permutation_conflict_comparison(
    shape: Tuple[int, ...],
    samples: int = 20,
    seed: int = 7,
    include: Sequence[str] = ("md-crossbar", "mesh", "torus"),
) -> Dict[str, List[ConflictStats]]:
    """Route the same random permutations on each topology (paper 3.1).

    Returns per-topology lists of :class:`ConflictStats`, one per sampled
    permutation; aggregate with :func:`summarize_conflicts`.
    """
    from ..core.config import make_config

    rng = np.random.default_rng(seed)
    routers: Dict[str, object] = {}
    if "md-crossbar" in include:
        topo_md = MDCrossbar(shape)
        logic = SwitchLogic(topo_md, make_config(shape))
        routers["md-crossbar"] = lambda s, t: _md_route_channels(topo_md, logic, s, t)
    if "mesh" in include:
        topo_m = Mesh(shape)
        am = MeshAdapter(topo_m)
        routers["mesh"] = lambda s, t: _baseline_route_channels(topo_m, am, s, t)
    if "torus" in include:
        topo_t = Torus(shape)
        at = TorusAdapter(topo_t)
        routers["torus"] = lambda s, t: _baseline_route_channels(topo_t, at, s, t)
    if "hypercube" in include:
        n = num_nodes(shape)
        topo_h = Hypercube.with_nodes(n)
        ah = HypercubeAdapter(topo_h)
        hcoords = list(all_coords(topo_h.shape))
        coords = list(all_coords(shape))
        to_h = {c: hcoords[i] for i, c in enumerate(coords)}
        routers["hypercube"] = lambda s, t: _baseline_route_channels(
            topo_h, ah, to_h[s], to_h[t]
        )

    results: Dict[str, List[ConflictStats]] = {k: [] for k in routers}
    for _ in range(samples):
        pairs = random_permutation_pairs(shape, rng)
        for name, route_fn in routers.items():
            results[name].append(measure_conflicts(name, route_fn, pairs))
    return results


def summarize_conflicts(
    results: Dict[str, List[ConflictStats]]
) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for name, stats in results.items():
        out[name] = {
            "mean_max_load": float(np.mean([s.max_channel_load for s in stats])),
            "mean_conflicted_channels": float(
                np.mean([s.conflicted_channels for s in stats])
            ),
            "mean_conflicted_transfers": float(
                np.mean([s.conflicted_transfers for s in stats])
            ),
        }
    return out
