"""System reliability model (paper Sections 1 and 4: "to maintain high
reliability while the system is operational it is very important to avoid
any faults in the network").

Switch lifetimes are modelled as independent exponentials with rate
``rate`` per switch; the machine runs until its accumulated fault set stops
being *operable*:

* **no facility** -- the first network-switch failure stops hardware
  routing (the IBM SP2 situation the paper cites: one faulty switch forces
  software-controlled transmission);
* **paper facility** -- the machine survives any single fault and stops at
  the second;
* **extended facility** -- the multi-fault generalization
  (:mod:`repro.core.multifault`) keeps going while a valid configuration
  exists (rules R1/R2 satisfiable), checked fault by fault.

:func:`mttf_comparison` returns analytic values for the first two and a
Monte-Carlo estimate for the third, as mean time to (operational) failure
in units of ``1/rate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import ConfigError, make_config
from ..core.multifault import all_single_faults
from ..topology.mdcrossbar import MDCrossbar


def mttf_no_facility(num_switches: int, rate: float = 1.0) -> float:
    """Expected time of the first failure among ``num_switches`` switches."""
    return 1.0 / (num_switches * rate)


def mttf_single_fault_facility(num_switches: int, rate: float = 1.0) -> float:
    """Expected time of the second failure: the paper's facility keeps the
    machine operational through the first."""
    return 1.0 / (num_switches * rate) + 1.0 / ((num_switches - 1) * rate)


@dataclass
class MTTFEstimate:
    mean: float
    std_error: float
    mean_faults_survived: float
    samples: int

    def row(self) -> str:
        return (
            f"MTTF {self.mean:.4f} +/- {self.std_error:.4f} (1/rate units), "
            f"survives {self.mean_faults_survived:.2f} faults on average"
        )


def simulate_extended_facility(
    shape,
    rate: float = 1.0,
    samples: int = 200,
    seed: int = 13,
    max_faults: Optional[int] = None,
) -> MTTFEstimate:
    """Monte-Carlo MTTF of the multi-fault extension.

    Each sample draws a random failure order over all switches with
    exponential inter-arrival times; the machine dies when the accumulated
    fault set admits no valid routing configuration (or when a PE with
    pending faults... any infeasible set).  Returns time units of 1/rate.
    """
    rng = np.random.default_rng(seed)
    singles = all_single_faults(shape)
    n = len(singles)
    cap = max_faults if max_faults is not None else n
    times: List[float] = []
    survived: List[int] = []
    feasibility_cache: Dict[Tuple[int, ...], bool] = {}

    for _ in range(samples):
        order = rng.permutation(n)
        t = 0.0
        alive = n
        faults: List[int] = []
        death: Optional[float] = None
        for step, idx in enumerate(order):
            # exponential waiting time for the next failure among the
            # remaining healthy switches
            t += float(rng.exponential(1.0 / (alive * rate)))
            alive -= 1
            faults.append(int(idx))
            key = tuple(sorted(faults))
            feasible = feasibility_cache.get(key)
            if feasible is None:
                try:
                    make_config(shape, faults=tuple(singles[i] for i in key))
                    feasible = True
                except ConfigError:
                    feasible = False
                feasibility_cache[key] = feasible
            if not feasible or len(faults) >= cap:
                death = t
                survived.append(len(faults) - 1 if not feasible else len(faults))
                break
        times.append(death if death is not None else t)
        if death is None:
            survived.append(len(faults))
    arr = np.asarray(times)
    return MTTFEstimate(
        mean=float(arr.mean()),
        std_error=float(arr.std(ddof=1) / np.sqrt(len(arr))),
        mean_faults_survived=float(np.mean(survived)),
        samples=samples,
    )


@dataclass
class ReliabilityComparison:
    shape: Tuple[int, ...]
    num_switches: int
    no_facility: float
    single_fault: float
    extended: MTTFEstimate

    def rows(self) -> List[str]:
        base = self.no_facility
        return [
            f"network {self.shape}: {self.num_switches} switches "
            f"(routers + crossbars), unit failure rate per switch",
            f"no facility     : MTTF {self.no_facility:.4f}  (1.00x)",
            f"paper facility  : MTTF {self.single_fault:.4f}  "
            f"({self.single_fault / base:.2f}x)",
            f"extended (multi): {self.extended.row()} "
            f"({self.extended.mean / base:.2f}x)",
        ]


def mttf_comparison(
    shape, samples: int = 200, seed: int = 13
) -> ReliabilityComparison:
    """Analytic + Monte-Carlo MTTF comparison for one network shape."""
    topo = MDCrossbar(shape)
    num_switches = len(topo.switch_elements())
    return ReliabilityComparison(
        shape=tuple(shape),
        num_switches=num_switches,
        no_facility=mttf_no_facility(num_switches),
        single_fault=mttf_single_fault_facility(num_switches),
        extended=simulate_extended_facility(shape, samples=samples, seed=seed),
    )
