"""System reliability model (paper Sections 1 and 4: "to maintain high
reliability while the system is operational it is very important to avoid
any faults in the network").

Switch lifetimes are modelled as independent exponentials with rate
``rate`` per switch; the machine runs until its accumulated fault set stops
being *operable*:

* **no facility** -- the first network-switch failure stops hardware
  routing (the IBM SP2 situation the paper cites: one faulty switch forces
  software-controlled transmission);
* **paper facility** -- the machine survives any single fault and stops at
  the second;
* **extended facility** -- the multi-fault generalization
  (:mod:`repro.core.multifault`) keeps going while a valid configuration
  exists (rules R1/R2 satisfiable), checked fault by fault.

:func:`mttf_comparison` returns analytic values for the first two and a
Monte-Carlo estimate for the third, as mean time to (operational) failure
in units of ``1/rate``.

:func:`simulate_extended_facility` is the historical scalar sampler, kept
for its byte-stable default-seed outputs; it now rides the campaign
engine's closed-form R1/R2 feasibility oracle
(:class:`repro.analysis.campaign.SwitchUniverse`) instead of calling
``make_config`` per step.  Campaign-scale estimation -- millions of
samples, chunked over workers, streaming reducers -- lives in
:mod:`repro.analysis.campaign`; ``mttf_comparison(engine="campaign")``
switches the extended-facility column onto it.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..topology.mdcrossbar import MDCrossbar


def mttf_no_facility(num_switches: int, rate: float = 1.0) -> float:
    """Expected time of the first failure among ``num_switches`` switches."""
    return 1.0 / (num_switches * rate)


def mttf_single_fault_facility(num_switches: int, rate: float = 1.0) -> float:
    """Expected time of the second failure: the paper's facility keeps the
    machine operational through the first."""
    return 1.0 / (num_switches * rate) + 1.0 / ((num_switches - 1) * rate)


@dataclass
class MTTFEstimate:
    mean: float
    std_error: float
    mean_faults_survived: float
    samples: int

    def row(self) -> str:
        return (
            f"MTTF {self.mean:.4f} +/- {self.std_error:.4f} (1/rate units), "
            f"survives {self.mean_faults_survived:.2f} faults on average"
        )


def _std_error(times: List[float]) -> float:
    """Standard error of the mean; explicitly NaN for a single sample
    (one observation carries no spread information -- previously this
    hit ``np.std(ddof=1)`` on a length-1 array and warned its way to the
    same NaN)."""
    n = len(times)
    if n <= 1:
        return float("nan")
    arr = np.asarray(times)
    return float(arr.std(ddof=1) / np.sqrt(n))


def simulate_extended_facility(
    shape,
    rate: float = 1.0,
    samples: int = 200,
    seed: int = 13,
    max_faults: Optional[int] = None,
) -> MTTFEstimate:
    """Monte-Carlo MTTF of the multi-fault extension (scalar sampler).

    Each sample draws a random failure order over all switches with
    exponential inter-arrival times; the machine dies when the
    accumulated fault set admits no valid routing configuration (any
    infeasible set), or on reaching ``max_faults``.  Returns time in
    units of 1/rate.

    Byte-identical to the original ``make_config``-per-step
    implementation at every seed (same RNG call sequence, same
    feasibility verdicts -- the campaign oracle is exact); the sorted
    memo key is now maintained incrementally with :func:`bisect.insort`
    instead of re-sorting the whole fault list every step, and
    feasibility is an O(faults x dims) closed-form count instead of a
    candidate-line scan.  For large ``samples`` use
    :func:`repro.analysis.campaign.run_campaign` -- the vectorized,
    chunkable engine -- instead of this walker.
    """
    from .campaign import FeasibilityMemo, worker_universe

    rng = np.random.default_rng(seed)
    universe = worker_universe(shape)
    n = universe.num_switches
    cap = max_faults if max_faults is not None else n
    memo = FeasibilityMemo(universe)
    times: List[float] = []
    survived: List[int] = []

    for _ in range(samples):
        order = rng.permutation(n)
        t = 0.0
        alive = n
        key: List[int] = []
        death: Optional[float] = None
        for step, idx in enumerate(order):
            # exponential waiting time for the next failure among the
            # remaining healthy switches
            t += float(rng.exponential(1.0 / (alive * rate)))
            alive -= 1
            insort(key, int(idx))
            feasible = memo.feasible(tuple(key))
            if not feasible or step + 1 >= cap:
                death = t
                survived.append(step if not feasible else step + 1)
                break
        times.append(death if death is not None else t)
        if death is None:
            survived.append(n)
    return MTTFEstimate(
        mean=float(np.asarray(times).mean()),
        std_error=_std_error(times),
        mean_faults_survived=float(np.mean(survived)),
        samples=samples,
    )


@dataclass
class ReliabilityComparison:
    shape: Tuple[int, ...]
    num_switches: int
    no_facility: float
    single_fault: float
    extended: MTTFEstimate

    def rows(self) -> List[str]:
        base = self.no_facility
        return [
            f"network {self.shape}: {self.num_switches} switches "
            f"(routers + crossbars), unit failure rate per switch",
            f"no facility     : MTTF {self.no_facility:.4f}  (1.00x)",
            f"paper facility  : MTTF {self.single_fault:.4f}  "
            f"({self.single_fault / base:.2f}x)",
            f"extended (multi): {self.extended.row()} "
            f"({self.extended.mean / base:.2f}x)",
        ]


def mttf_comparison(
    shape, samples: int = 200, seed: int = 13, engine: str = "loop"
) -> ReliabilityComparison:
    """Analytic + Monte-Carlo MTTF comparison for one network shape.

    ``engine="loop"`` keeps the historical scalar sampler (byte-stable
    outputs at default seeds); ``engine="campaign"`` estimates through
    :mod:`repro.analysis.campaign` -- same estimand, block-seeded
    sampler, feasible at millions of samples.
    """
    topo = MDCrossbar(shape)
    num_switches = len(topo.switch_elements())
    if engine == "loop":
        extended = simulate_extended_facility(shape, samples=samples, seed=seed)
    elif engine == "campaign":
        from .campaign import campaign_mttf_estimate

        extended = campaign_mttf_estimate(shape, samples=samples, seed=seed)
    else:
        raise ValueError(f"unknown reliability engine {engine!r}")
    return ReliabilityComparison(
        shape=tuple(shape),
        num_switches=num_switches,
        no_facility=mttf_no_facility(num_switches),
        single_fault=mttf_single_fault_facility(num_switches),
        extended=extended,
    )
