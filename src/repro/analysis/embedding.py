"""Conflict-free remapping of standard topologies (paper Section 3.1).

The paper: *"The high number of interconnections in an MD crossbar network
allows many important topologies ... to be efficiently mapped onto it ...
A program that generates no conflicts in these topologies will not generate
conflicts when re-mapped onto the MD crossbar."*

A program on a guest topology that is conflict free sends, at any instant,
at most one message per guest channel -- i.e. each *communication phase* is
a partial permutation along one guest direction.  We therefore embed each
guest (ring, mesh, hypercube, binary tree) onto the MD crossbar's PEs and
verify that every phase routes with zero shared channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.config import make_config
from ..core.coords import Coord, all_coords, num_nodes
from ..core.switch_logic import SwitchLogic
from ..topology.mdcrossbar import MDCrossbar
from .conflicts import ConflictStats, _md_route_channels, measure_conflicts

Pair = Tuple[Coord, Coord]


def snake_order(shape) -> List[Coord]:
    """Boustrophedon enumeration: consecutive entries are lattice
    neighbours, so a ring embeds with unit dilation."""
    coords = sorted(all_coords(shape))
    if len(shape) == 1:
        return coords
    # sort row-major, flipping the last dimension on odd prefixes
    def key(c: Coord):
        flip = sum(c[:-1]) % 2 == 1
        last = shape[-1] - 1 - c[-1] if flip else c[-1]
        return c[:-1] + (last,)

    return sorted(coords, key=key)


def ring_phases(shape) -> List[List[Pair]]:
    """A ring program: neighbours exchange in two phases (even links, odd
    links), as a conflict-free ring program would."""
    order = snake_order(shape)
    n = len(order)
    edges = [(order[i], order[(i + 1) % n]) for i in range(n)]
    return [
        [e for i, e in enumerate(edges) if i % 2 == 0],
        [e for i, e in enumerate(edges) if i % 2 == 1],
    ]


def mesh_phases(shape) -> List[List[Pair]]:
    """A mesh program: one phase per (dimension, direction): every node
    sends to its +k / -k neighbour."""
    phases: List[List[Pair]] = []
    for k in range(len(shape)):
        if shape[k] == 1:
            continue
        for step in (+1, -1):
            phase = []
            for c in all_coords(shape):
                v = c[k] + step
                if 0 <= v < shape[k]:
                    phase.append((c, c[:k] + (v,) + c[k + 1 :]))
            phases.append(phase)
    return phases


def hypercube_phases(shape) -> List[List[Pair]]:
    """A hypercube program on 2**b nodes: phase b = exchange across bit b.

    Nodes are identified with snake-order indices; partner = index XOR 2**b.
    """
    order = snake_order(shape)
    n = len(order)
    if n & (n - 1):
        raise ValueError("hypercube embedding needs a power-of-two node count")
    bits = n.bit_length() - 1
    phases = []
    for b in range(bits):
        phases.append([(order[i], order[i ^ (1 << b)]) for i in range(n)])
    return phases


def binary_tree_edges(shape) -> List[Tuple[int, Pair]]:
    """Axis-aligned binary-tree embedding by recursive bisection.

    Each node's children sit on the same grid line as the parent (one in
    the other half of its row span, one in the other half of its column
    span), so every tree edge routes in a single crossbar hop.  That makes
    each level's phase trivially conflict free: distinct senders, distinct
    receivers, no turn channels.  (A naive level-order embedding of a
    complete binary tree does conflict -- the paper's claim is about the
    existence of an efficient mapping, which this provides.)

    Returns ``(level, (parent, child))`` pairs; the tree spans a subset of
    the PEs (the recursion halves both extents).
    """
    if len(shape) != 2:
        raise ValueError("the tree embedding is defined for 2D shapes")
    edges: List[Tuple[int, Pair]] = []

    def build(x0: int, y0: int, w: int, h: int, level: int) -> None:
        root = (x0, y0)
        if w > 1:
            lw = w - w // 2
            left = (x0 + lw, y0)
            edges.append((level, (root, left)))
            build(left[0], left[1], w - lw, h, level + 1)
            w = lw
        if h > 1:
            lh = h - h // 2
            right = (x0, y0 + lh)
            edges.append((level, (root, right)))
            build(right[0], right[1], w, h - lh, level + 1)

    build(0, 0, shape[0], shape[1], 0)
    return edges


def binary_tree_phases(shape) -> List[List[Pair]]:
    """The tree program: one phase per (level, direction) -- parents send
    along rows, then along columns, level by level."""
    edges = binary_tree_edges(shape)
    phases: Dict[Tuple[int, int], List[Pair]] = {}
    for level, (p, c) in edges:
        axis = 0 if p[1] == c[1] else 1
        phases.setdefault((level, axis), []).append((p, c))
    return [phases[k] for k in sorted(phases)]


GUESTS = {
    "ring": ring_phases,
    "mesh": mesh_phases,
    "hypercube": hypercube_phases,
    "binary_tree": binary_tree_phases,
}


@dataclass
class EmbeddingReport:
    guest: str
    phases: int
    transfers: int
    conflict_free: bool
    worst_phase: ConflictStats

    def row(self) -> str:
        flag = "conflict-free" if self.conflict_free else "HAS CONFLICTS"
        return (
            f"{self.guest:<12} phases={self.phases:<3} "
            f"transfers={self.transfers:<4} {flag} "
            f"(worst max_load={self.worst_phase.max_channel_load})"
        )


def check_embedding(
    shape: Tuple[int, ...], guest: str
) -> EmbeddingReport:
    """Route every phase of the guest program on the MD crossbar and report
    whether any channel carries two messages at once."""
    topo = MDCrossbar(shape)
    logic = SwitchLogic(topo, make_config(shape))
    phase_fn = GUESTS[guest]
    phases = phase_fn(shape)
    worst: ConflictStats | None = None
    total = 0
    for i, phase in enumerate(phases):
        pairs = [(s, t) for s, t in phase if s != t]
        total += len(pairs)
        stats = measure_conflicts(
            f"{guest}/phase{i}",
            lambda s, t: _md_route_channels(topo, logic, s, t),
            pairs,
        )
        if worst is None or stats.max_channel_load > worst.max_channel_load:
            worst = stats
    assert worst is not None
    return EmbeddingReport(
        guest=guest,
        phases=len(phases),
        transfers=total,
        conflict_free=worst.max_channel_load <= 1,
        worst_phase=worst,
    )


def check_all_embeddings(shape) -> Dict[str, EmbeddingReport]:
    """Run every guest topology's program on one MD crossbar shape."""
    out = {}
    for guest in GUESTS:
        if guest == "hypercube" and num_nodes(shape) & (num_nodes(shape) - 1):
            continue
        out[guest] = check_embedding(shape, guest)
    return out
