"""Pin-budget channel-width model (paper Section 3.1, "wide communication
channels").

The paper's argument: a router chip has a fixed pin budget, roughly
``ports x physical channel width``.  The MD crossbar router needs only
``d + 1`` ports, so its channels can be as wide as a mesh's, whereas a
hypercube router needs ``log2(n) + 1`` ports, which squeezes the channel
width and slows large transfers.  This module quantifies that trade-off
with a zero-load latency model:

    T(L) = H * t_r + ceil(L / W) cycles

for message length ``L`` bytes, hop count ``H``, per-hop latency ``t_r``
and channel width ``W`` bytes/cycle, with ``W = pin_budget / ports`` under
the fixed pin budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..machine.sr2201 import ROUTER_CYCLES_PER_HOP


@dataclass
class ChannelBudget:
    """Channel width a topology affords under a router pin budget."""

    name: str
    ports: int
    width_bytes: float
    diameter_hops: int

    def zero_load_cycles(self, message_bytes: int) -> float:
        """Pipeline latency of a diameter-length transfer of ``message_bytes``."""
        serialization = math.ceil(message_bytes / self.width_bytes)
        return self.diameter_hops * ROUTER_CYCLES_PER_HOP + serialization

    def row(self, message_bytes: int = 1024) -> str:
        return (
            f"{self.name:<12} ports={self.ports:<3} width={self.width_bytes:6.1f}B "
            f"diameter={self.diameter_hops:<3} "
            f"T({message_bytes}B)={self.zero_load_cycles(message_bytes):8.0f} cyc"
        )


def router_ports(topology: str, n: int, dims: int = 2) -> int:
    """Port count of one router in each topology family at ``n`` nodes."""
    if topology == "md-crossbar":
        return dims + 1
    if topology == "mesh" or topology == "torus":
        return 2 * dims + 1
    if topology == "hypercube":
        return int(math.log2(n)) + 1
    if topology == "crossbar":
        return 2  # PE port + the single n x n crossbar port
    raise ValueError(f"unknown topology {topology!r}")


def diameter_hops(topology: str, n: int, dims: int = 2) -> int:
    side = round(n ** (1.0 / dims))
    if topology == "md-crossbar":
        return dims
    if topology == "mesh":
        return dims * (side - 1)
    if topology == "torus":
        return dims * (side // 2)
    if topology == "hypercube":
        return int(math.log2(n))
    if topology == "crossbar":
        return 1
    raise ValueError(f"unknown topology {topology!r}")


def channel_budget_table(
    n: int,
    pin_budget: int = 64,
    dims: int = 2,
    topologies: Tuple[str, ...] = ("md-crossbar", "mesh", "torus", "hypercube"),
) -> Dict[str, ChannelBudget]:
    """The Section 3.1 channel-width comparison at ``n`` nodes.

    ``pin_budget`` is the router's total pin count in channel-byte units;
    each topology divides it across its ports.
    """
    if n < 4 or n & (n - 1):
        raise ValueError("n must be a power of two >= 4")
    out: Dict[str, ChannelBudget] = {}
    for t in topologies:
        ports = router_ports(t, n, dims)
        out[t] = ChannelBudget(
            name=t,
            ports=ports,
            width_bytes=pin_budget / ports,
            diameter_hops=diameter_hops(t, n, dims),
        )
    return out


def crossover_message_size(
    a: ChannelBudget, b: ChannelBudget, max_bytes: int = 1 << 22
) -> int:
    """Smallest message size at which ``a`` becomes at least as fast as
    ``b`` (or -1 if never within ``max_bytes``).

    With its wider channels the MD crossbar overtakes the hypercube once
    serialization dominates the extra... fewer hops of the hypercube --
    the paper's motivation for low-dimension networks.
    """
    size = 1
    while size <= max_bytes:
        if a.zero_load_cycles(size) <= b.zero_load_cycles(size):
            return size
        size *= 2
    return -1


def scaling_series(
    pin_budget: int = 64,
    dims: int = 2,
    sizes: Tuple[int, ...] = (16, 64, 256, 1024),
    message_bytes: int = 4096,
) -> List[Tuple[int, Dict[str, float]]]:
    """Zero-load latency of each topology across machine sizes."""
    series = []
    for n in sizes:
        table = channel_budget_table(n, pin_budget, dims)
        series.append(
            (n, {t: cb.zero_load_cycles(message_bytes) for t, cb in table.items()})
        )
    return series
