"""Software collectives over point-to-point messages (the conventional
alternative to the SR2201's hardware broadcast, paper Section 3.2)."""

from .software import (
    BinomialBroadcast,
    CollectiveResult,
    DEFAULT_SW_OVERHEAD,
    DisseminationBarrier,
    LinearBroadcast,
)

__all__ = [
    "BinomialBroadcast",
    "CollectiveResult",
    "DEFAULT_SW_OVERHEAD",
    "DisseminationBarrier",
    "LinearBroadcast",
]
