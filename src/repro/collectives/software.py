"""Software collective operations over point-to-point messages.

The paper (Section 3.2) notes that conventional parallel computers avoid
broadcast deadlock "by performing the broadcast through the software"
[20-21]; the SR2201's hardware facility exists to beat that.  This package
implements the software alternatives so the comparison is runnable:

* :class:`LinearBroadcast` -- the root sends one message per destination;
* :class:`BinomialBroadcast` -- the classic log2(n)-round doubling tree;
* :class:`DisseminationBarrier` -- the log2(n)-round all-to-all-ish barrier.

Each collective is an *agent* driven by the flit simulator: it reacts to
message deliveries the way a PE's message handler would, paying a
configurable per-message software overhead (NIA setup + handler time)
before launching follow-up sends.  Software collectives use only RC=NORMAL
packets, so they work in the naive broadcast mode and with faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.coords import Coord
from ..core.packet import Header, Packet
from ..sim.network import NetworkSimulator

#: default per-message software launch overhead, in cycles (processor
#: builds the message and kicks the NIA; the SR2201's hardware facility
#: pays none of this after injection)
DEFAULT_SW_OVERHEAD = 20


@dataclass
class CollectiveResult:
    """Completion record of one software collective."""

    started_at: int
    completed_at: Optional[int] = None
    messages_sent: int = 0

    @property
    def done(self) -> bool:
        return self.completed_at is not None

    @property
    def duration(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class _Agent:
    """Base: installs itself as generator + delivery listener."""

    def __init__(
        self,
        sim: NetworkSimulator,
        packet_length: int = 4,
        sw_overhead: int = DEFAULT_SW_OVERHEAD,
    ) -> None:
        self.sim = sim
        self.packet_length = packet_length
        self.sw_overhead = sw_overhead
        self.result = CollectiveResult(started_at=sim.cycle)
        #: (ready_cycle, source, dest) launches not yet issued
        self._queue: List[Tuple[int, Coord, Coord]] = []
        self._my_pids: Set[int] = set()
        # the agent itself is the generator (not a bound method) so the
        # engine's idle fast-forward can see ``next_wake``
        sim.add_generator(self)
        sim.add_delivery_listener(self._on_delivery)

    # -- plumbing ----------------------------------------------------------
    def _schedule_send(self, at: int, src: Coord, dst: Coord) -> None:
        self._queue.append((at, src, dst))

    def next_wake(self, cycle: int) -> Optional[int]:
        """Idle fast-forward contract: the earliest queued launch, or
        ``None`` when nothing is queued.  Deliveries (which queue follow-up
        sends) only happen while flits are in flight -- never while the
        fabric is idle -- so an empty queue really means quiescent."""
        if not self._queue:
            return None
        return max(min(q[0] for q in self._queue), cycle)

    def __call__(self, sim: NetworkSimulator) -> None:
        due = [q for q in self._queue if q[0] <= sim.cycle]
        if not due:
            return
        self._queue = [q for q in self._queue if q[0] > sim.cycle]
        for _, src, dst in due:
            pkt = Packet(Header(source=src, dest=dst), length=self.packet_length)
            self._my_pids.add(pkt.pid)
            sim.send(pkt)
            self.result.messages_sent += 1

    def _on_delivery(self, packet: Packet, coord: Coord, cycle: int) -> None:
        if packet.pid in self._my_pids:
            self.handle(coord, cycle)

    # -- protocol ------------------------------------------------------------
    def handle(self, coord: Coord, cycle: int) -> None:  # pragma: no cover
        raise NotImplementedError


class LinearBroadcast(_Agent):
    """Root sends to every other PE, one message after another.

    The baseline conventional machines used before hardware multicast: n-1
    sequential launches from one node.
    """

    def __init__(
        self,
        sim: NetworkSimulator,
        root: Coord,
        packet_length: int = 4,
        sw_overhead: int = DEFAULT_SW_OVERHEAD,
    ) -> None:
        super().__init__(sim, packet_length, sw_overhead)
        self.root = tuple(root)
        self._targets = [c for c in sim.live_nodes if c != self.root]
        self._received: Set[Coord] = {self.root}
        t = sim.cycle
        for dst in self._targets:
            t += sw_overhead
            self._schedule_send(t, self.root, dst)

    def handle(self, coord: Coord, cycle: int) -> None:
        self._received.add(coord)
        if len(self._received) == len(self._targets) + 1:
            self.result.completed_at = cycle


class BinomialBroadcast(_Agent):
    """Recursive-doubling broadcast: in round k every PE that already has
    the message forwards it to the PE 2**k ranks away.  log2(n) rounds,
    each recipient relays as soon as its copy (plus software overhead)
    lands."""

    def __init__(
        self,
        sim: NetworkSimulator,
        root: Coord,
        packet_length: int = 4,
        sw_overhead: int = DEFAULT_SW_OVERHEAD,
    ) -> None:
        super().__init__(sim, packet_length, sw_overhead)
        nodes: Sequence[Coord] = list(sim.live_nodes)
        self.root = tuple(root)
        if self.root not in nodes:
            raise ValueError(f"root {root} is not a live PE")
        # rank PEs with the root at 0
        ordered = [self.root] + [c for c in nodes if c != self.root]
        self._rank: Dict[Coord, int] = {c: i for i, c in enumerate(ordered)}
        self._coord: Dict[int, Coord] = {i: c for c, i in self._rank.items()}
        self.n = len(ordered)
        self._received: Set[Coord] = set()
        self._acquired(self.root, sim.cycle)

    def _acquired(self, coord: Coord, cycle: int) -> None:
        if coord in self._received:
            return
        self._received.add(coord)
        if len(self._received) == self.n:
            self.result.completed_at = cycle
            return
        rank = self._rank[coord]
        t = cycle
        stride = 1
        while stride < self.n:
            if rank < stride:  # this PE participates in this round
                target = rank + stride
                if target < self.n:
                    t += max(1, self.sw_overhead)
                    self._schedule_send(t, coord, self._coord[target])
            stride *= 2

    def handle(self, coord: Coord, cycle: int) -> None:
        self._acquired(coord, cycle)


class DisseminationBarrier(_Agent):
    """Dissemination barrier: in round k, PE of rank r signals rank
    (r + 2**k) mod n; a PE enters round k+1 once it has both sent its
    round-k signal and received one.  ceil(log2 n) rounds."""

    def __init__(
        self,
        sim: NetworkSimulator,
        packet_length: int = 1,
        sw_overhead: int = DEFAULT_SW_OVERHEAD,
    ) -> None:
        super().__init__(sim, packet_length, sw_overhead)
        nodes = list(sim.live_nodes)
        self._rank = {c: i for i, c in enumerate(nodes)}
        self._coord = {i: c for c, i in self._rank.items()}
        self.n = len(nodes)
        self.rounds = max(1, (self.n - 1).bit_length())
        #: per PE: next round awaited
        self._round: Dict[Coord, int] = {c: 0 for c in nodes}
        #: per PE: received signals not yet consumed.  Each PE receives
        #: exactly ``rounds`` signals (one per round, from distinct
        #: senders), so counting them is sufficient for termination; a
        #: signal arriving one round early is consumed at most one round
        #: early, making the modelled completion time a slight lower bound.
        self._pending: Dict[Coord, int] = {c: 0 for c in nodes}
        self._finished: Set[Coord] = set()
        for c in nodes:
            self._send_round(c, 0, sim.cycle)

    def _send_round(self, coord: Coord, rnd: int, cycle: int) -> None:
        partner = self._coord[(self._rank[coord] + (1 << rnd)) % self.n]
        self._schedule_send(cycle + self.sw_overhead, coord, partner)

    def handle(self, coord: Coord, cycle: int) -> None:
        self._pending[coord] += 1
        while self._pending[coord] > 0 and coord not in self._finished:
            self._pending[coord] -= 1
            self._round[coord] += 1
            if self._round[coord] >= self.rounds:
                self._finished.add(coord)
                if len(self._finished) == self.n:
                    self.result.completed_at = cycle
                return
            self._send_round(coord, self._round[coord], cycle)
