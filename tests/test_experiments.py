"""Unit tests for the reusable experiment harness (repro.experiments)."""



from repro.experiments import build_network, run_load_point, saturation_load, sweep
from repro.sim.stats import LatencyStats, LoadPoint
from repro.traffic import transpose


class TestBuildNetwork:
    def test_md_crossbar_factory(self):
        make_sim = build_network("md-crossbar", (3, 3))
        sim = make_sim()
        assert sim.topo.num_nodes == 9

    def test_baseline_factory_sets_vcs(self):
        make_sim = build_network("torus", (3, 3))
        sim = make_sim()
        assert sim.config.num_vcs == 2

    def test_fresh_simulators(self):
        make_sim = build_network("mesh", (3, 3))
        assert make_sim() is not make_sim()


class TestRunLoadPoint:
    def test_basic_point(self):
        make_sim = build_network("md-crossbar", (3, 3))
        p = run_load_point(make_sim, 0.1, warmup=50, window=150, drain=1500)
        assert p.offered_load == 0.1
        assert p.latency.count > 0
        assert not p.deadlocked
        assert 0 < p.accepted_load <= 0.2

    def test_pattern_plumbed_through(self):
        make_sim = build_network("md-crossbar", (4, 4))
        p = run_load_point(
            make_sim, 0.1, pattern=transpose, warmup=50, window=150, drain=1500
        )
        assert p.latency.count > 0

    def test_zero_load(self):
        make_sim = build_network("md-crossbar", (3, 3))
        p = run_load_point(make_sim, 0.0, warmup=10, window=50, drain=100)
        assert p.latency.count == 0
        assert p.accepted_load == 0.0


class TestSweep:
    def test_sweep_returns_per_load_points(self):
        points = sweep(
            "md-crossbar", (3, 3), [0.05, 0.15],
            warmup=50, window=150, drain=1500,
        )
        assert [p.offered_load for p in points] == [0.05, 0.15]

    def test_latency_monotone_under_load(self):
        points = sweep(
            "mesh", (4, 4), [0.05, 0.45], warmup=100, window=300, drain=3000
        )
        assert points[1].latency.mean > points[0].latency.mean


class TestSaturationLoad:
    def _pt(self, load, mean):
        return LoadPoint(
            offered_load=load,
            accepted_load=load,
            latency=LatencyStats(10, mean, mean, mean, mean, int(mean), int(mean)),
            deadlocked=False,
            cycles=100,
        )

    def test_detects_blowup(self):
        pts = [self._pt(0.1, 10), self._pt(0.2, 12), self._pt(0.3, 100)]
        assert saturation_load(pts) == 0.3

    def test_none_when_flat(self):
        pts = [self._pt(ld, 10 + ld) for ld in (0.1, 0.2, 0.3)]
        assert saturation_load(pts) is None

    def test_empty_latency_counts_as_saturated(self):
        pts = [
            self._pt(0.1, 10),
            LoadPoint(0.5, 0.0, LatencyStats.from_packets([]), False, 100),
        ]
        assert saturation_load(pts) == 0.5
