"""Unit tests for static route computation (trees, paths, RC traces)."""

import pytest

from repro.core import (
    Broadcast,
    Fault,
    RC,
    Unicast,
    compute_route,
    route_all_broadcasts,
    route_all_unicasts,
)
from repro.core.dimension_order import (
    expected_normal_elements,
    expected_request_leg_elements,
    expected_xb_hops,
)
from repro.core.routes import RouteLoopError
from repro.core.switch_logic import UnreachableDestinationError
from tests.conftest import make_logic


class TestUnicastRoutes:
    def test_matches_oracle_everywhere_43(self, topo43, logic43):
        for tree in route_all_unicasts(topo43, logic43):
            flow = tree.flow
            assert tree.elements_to(flow.dest) == expected_normal_elements(
                logic43.config, flow.source, flow.dest
            )

    def test_matches_oracle_3d(self, topo333, logic333):
        for tree in route_all_unicasts(topo333, logic333):
            flow = tree.flow
            assert tree.elements_to(flow.dest) == expected_normal_elements(
                logic333.config, flow.source, flow.dest
            )

    def test_xb_hops_bounded_by_d(self, topo43, logic43):
        for tree in route_all_unicasts(topo43, logic43):
            assert tree.xb_hops_to(tree.flow.dest) <= 2

    def test_xb_hops_equal_differing_dims(self, topo43, logic43):
        t = compute_route(topo43, logic43, Unicast((0, 1), (3, 1)))
        assert t.xb_hops_to((3, 1)) == expected_xb_hops((0, 1), (3, 1)) == 1

    def test_rc_stays_normal(self, topo43, logic43):
        t = compute_route(topo43, logic43, Unicast((0, 0), (2, 2)))
        assert all(rc is RC.NORMAL for rc in t.rc_trace_to((2, 2)))

    def test_self_send(self, topo43, logic43):
        t = compute_route(topo43, logic43, Unicast((1, 1), (1, 1)))
        assert t.elements_to((1, 1)) == (
            ("PE", (1, 1)), ("RTR", (1, 1)), ("PE", (1, 1))
        )

    def test_delivered_set(self, topo43, logic43):
        t = compute_route(topo43, logic43, Unicast((0, 0), (2, 2)))
        assert t.delivered == {(2, 2)}

    def test_path_to_unknown_dest_raises(self, topo43, logic43):
        t = compute_route(topo43, logic43, Unicast((0, 0), (2, 2)))
        with pytest.raises(KeyError):
            t.path_to((3, 0))


class TestDetourRoutes:
    def test_fig8_shape(self, topo43, logic43_faulty_rtr):
        """The paper's Fig. 8 walkthrough: deflect at the X-XB, travel to
        the D-XB via a detour router, reset, resume X-Y."""
        cfg = logic43_faulty_rtr.config
        t = compute_route(topo43, logic43_faulty_rtr, Unicast((0, 0), (2, 2)))
        els = t.elements_to((2, 2))
        assert ("RTR", (2, 0)) not in els  # the fault is avoided
        assert cfg.dxb_element in els  # the packet passes the D-XB
        assert els[-1] == ("PE", (2, 2))

    def test_rc_trace_normal_detour_normal(self, topo43, logic43_faulty_rtr):
        t = compute_route(topo43, logic43_faulty_rtr, Unicast((0, 0), (2, 2)))
        trace = t.rc_trace_to((2, 2))
        # the paper: "The packet leaves no trace of the detour routing
        # behind" -- RC returns to NORMAL after the D-XB
        kinds = [rc for rc in trace]
        assert kinds[0] is RC.NORMAL
        assert RC.DETOUR in kinds
        assert kinds[-1] is RC.NORMAL
        # once back to NORMAL it never flips again
        last_detour = max(i for i, rc in enumerate(kinds) if rc is RC.DETOUR)
        assert all(rc is RC.NORMAL for rc in kinds[last_detour + 1 :])

    def test_unaffected_pairs_use_normal_route(self, topo43, logic43_faulty_rtr):
        # (0,1) -> (1,1): route never meets the fault at (2,0)
        t = compute_route(topo43, logic43_faulty_rtr, Unicast((0, 1), (1, 1)))
        assert t.elements_to((1, 1)) == expected_normal_elements(
            logic43_faulty_rtr.config, (0, 1), (1, 1)
        )

    def test_all_healthy_pairs_delivered_with_router_fault(self, topo43):
        logic = make_logic(topo43, fault=Fault.router((1, 1)))
        trees = route_all_unicasts(topo43, logic)
        assert len(trees) == 11 * 10
        for t in trees:
            assert t.flow.dest in t.delivered
            assert ("RTR", (1, 1)) not in t.elements_to(t.flow.dest)

    def test_all_healthy_pairs_delivered_with_xb_fault(self, topo43):
        logic = make_logic(topo43, fault=Fault.crossbar(0, (1,)))
        for t in route_all_unicasts(topo43, logic):
            els = t.elements_to(t.flow.dest)
            assert ("XB", 0, (1,)) not in els
            assert t.flow.dest in t.delivered

    def test_last_dim_xb_fault_order_rotation(self, topo43):
        # faulty Y-XB: order becomes Y-X and every pair still routes
        logic = make_logic(topo43, fault=Fault.crossbar(1, (2,)))
        assert logic.config.order == (1, 0)
        for t in route_all_unicasts(topo43, logic):
            els = t.elements_to(t.flow.dest)
            assert ("XB", 1, (2,)) not in els
            assert t.flow.dest in t.delivered

    def test_3d_router_fault_full_coverage(self, topo333):
        logic = make_logic(topo333, fault=Fault.router((1, 1, 1)))
        for t in route_all_unicasts(topo333, logic):
            els = t.elements_to(t.flow.dest)
            assert ("RTR", (1, 1, 1)) not in els
            assert t.flow.dest in t.delivered

    def test_faulty_endpoint_rejected(self, topo43, logic43_faulty_rtr):
        with pytest.raises(UnreachableDestinationError):
            compute_route(topo43, logic43_faulty_rtr, Unicast((2, 0), (0, 0)))
        with pytest.raises(UnreachableDestinationError):
            compute_route(topo43, logic43_faulty_rtr, Unicast((0, 0), (2, 0)))


class TestBroadcastRoutes:
    def test_covers_all_pes_exactly_once(self, topo43, logic43):
        t = compute_route(topo43, logic43, Broadcast((2, 1)))
        assert t.delivered == set(topo43.node_coords())
        # exactly one ejection channel per PE
        ej = [c for c in t.channels() if c.dst[0] == "PE"]
        assert len(ej) == topo43.num_nodes

    def test_yxy_routing_shape(self, topo43, logic43):
        """Paper: 'the broadcast routing becomes Y-X-Y routing'."""
        t = compute_route(topo43, logic43, Broadcast((2, 2)))
        path = t.elements_to((3, 1))
        xbs = [el for el in path if el[0] == "XB"]
        assert [x[1] for x in xbs] == [1, 0, 1]  # Y then X (S-XB) then Y

    def test_request_leg_matches_oracle(self, topo43, logic43):
        t = compute_route(topo43, logic43, Broadcast((2, 2)))
        leg = expected_request_leg_elements(logic43.config, (2, 2))
        path = t.elements_to((3, 1))
        assert path[: len(leg)] == leg

    def test_source_on_sxb_row_enters_directly(self, topo43, logic43):
        t = compute_route(topo43, logic43, Broadcast((1, 0)))
        path = t.elements_to((1, 0))
        assert path[2] == logic43.config.sxb_element

    def test_serialize_entry_recorded(self, topo43, logic43):
        t = compute_route(topo43, logic43, Broadcast((0, 1)))
        assert len(t.serialize_entries) == 1
        assert t.serialize_entries[0].dst == logic43.config.sxb_element

    def test_all_sources(self, topo43, logic43):
        for t in route_all_broadcasts(topo43, logic43):
            assert t.delivered == set(topo43.node_coords())

    def test_3d_coverage(self, topo333, logic333):
        t = compute_route(topo333, logic333, Broadcast((2, 1, 0)))
        assert t.delivered == set(topo333.node_coords())

    def test_naive_mode_covers_all(self, topo43, logic43_naive_broadcast):
        t = compute_route(
            topo43, logic43_naive_broadcast, Broadcast((2, 1), RC.BROADCAST)
        )
        assert t.delivered == set(topo43.node_coords())
        assert t.serialize_entries == []

    def test_naive_mode_xy_shape(self, topo43, logic43_naive_broadcast):
        t = compute_route(
            topo43, logic43_naive_broadcast, Broadcast((2, 1), RC.BROADCAST)
        )
        path = t.elements_to((0, 2))
        xbs = [el[1] for el in path if el[0] == "XB"]
        assert xbs == [0, 1]  # X then Y, no S-XB pass

    def test_broadcast_with_fault_skips_dead_pe(self, topo43):
        logic = make_logic(topo43, fault=Fault.router((2, 0)))
        t = compute_route(topo43, logic, Broadcast((0, 1)))
        expected = set(topo43.node_coords()) - {(2, 0)}
        assert t.delivered == expected

    def test_broadcast_tree_channel_count(self, topo43, logic43):
        # source on S-XB row: no request leg beyond inj + entry
        t = compute_route(topo43, logic43, Broadcast((0, 0)))
        # inj, R->S-XB, 4 XR, 4 ej on row 0, 4 RY, 8 YR, 8 ej
        assert t.num_channels == 1 + 1 + 4 + 4 + 4 + 8 + 8


class TestTreeAccessors:
    def test_ancestors_of_root_empty(self, topo43, logic43):
        t = compute_route(topo43, logic43, Unicast((0, 0), (1, 0)))
        assert t.ancestors(t.root) == ()

    def test_ancestors_ordering(self, topo43, logic43):
        t = compute_route(topo43, logic43, Unicast((0, 0), (2, 2)))
        chans = t.path_to((2, 2))
        anc = t.ancestors(chans[-1])
        assert anc == tuple(reversed(chans[:-1]))

    def test_loop_guard_raises_on_tiny_budget(self, topo43, logic43):
        with pytest.raises(RouteLoopError):
            compute_route(topo43, logic43, Broadcast((2, 2)), max_steps=2)
