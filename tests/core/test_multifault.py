"""Unit tests for the multi-fault facility extension."""

import pytest

from repro.core import Fault, FaultRegistry, make_config
from repro.core.config import ConfigError
from repro.core.multifault import (
    all_single_faults,
    analyze_fault_set,
    fault_pair_census,
)
from repro.topology import rtr, xb


class TestMultiFaultRegistry:
    def test_two_router_faults_merge(self, topo43):
        reg = FaultRegistry(
            topo43, faults=(Fault.router((1, 0)), Fault.router((3, 0)))
        )
        # both routers sit on X-XB row 0: the XB learns both ports
        assert reg.info(xb(0, (0,))).faulty_ports == {1, 3}
        assert reg.dead_pes() == ((1, 0), (3, 0))

    def test_mixed_fault_kinds(self, topo43):
        reg = FaultRegistry(
            topo43, faults=(Fault.router((1, 0)), Fault.crossbar(0, (2,)))
        )
        assert reg.info(xb(0, (0,))).faulty_ports == {1}
        assert reg.info(rtr((0, 2))).faulty_xb_dims == {0}
        assert reg.is_faulty(rtr((1, 0)))
        assert reg.is_faulty(xb(0, (2,)))

    def test_single_fault_back_compat(self, topo43):
        reg = FaultRegistry(topo43, Fault.router((2, 1)))
        assert reg.faults == (Fault.router((2, 1)),)
        assert reg.fault == Fault.router((2, 1))

    def test_conflicting_args_rejected(self, topo43):
        with pytest.raises(ValueError):
            FaultRegistry(
                topo43,
                fault=Fault.router((0, 0)),
                faults=(Fault.router((1, 1)),),
            )


class TestMultiFaultConfig:
    def test_two_routers_config(self):
        cfg = make_config(
            (4, 3), faults=(Fault.router((1, 0)), Fault.router((3, 2)))
        )
        assert len(cfg.all_faults()) == 2
        # S-XB row avoids both fault rows -> row 1
        assert cfg.sxb_line == (1,)

    def test_xb_faults_two_dims_infeasible(self):
        with pytest.raises(ConfigError, match="R1"):
            make_config(
                (4, 3),
                faults=(Fault.crossbar(0, (0,)), Fault.crossbar(1, (1,))),
            )

    def test_xb_faults_same_dim_ok(self):
        cfg = make_config(
            (4, 3), faults=(Fault.crossbar(0, (0,)), Fault.crossbar(0, (2,)))
        )
        assert cfg.sxb_line == (1,)

    def test_fault_and_faults_both_rejected(self):
        with pytest.raises(ConfigError):
            make_config(
                (4, 3), fault=Fault.router((0, 0)), faults=(Fault.router((1, 1)),)
            )

    def test_too_many_router_rows_exhaust_r2(self):
        # faults in every row: no admissible S-XB line remains
        with pytest.raises(ConfigError, match="R2|S-XB"):
            make_config(
                (4, 3),
                faults=tuple(Fault.router((0, y)) for y in range(3)),
            )

    def test_with_faults(self):
        cfg = make_config((4, 3))
        cfg2 = cfg.with_faults((Fault.router((1, 0)), Fault.router((2, 2))))
        assert len(cfg2.all_faults()) == 2


class TestAnalyzeFaultSet:
    def test_two_router_faults_tolerated(self, topo43):
        report = analyze_fault_set(
            topo43, (Fault.router((1, 0)), Fault.router((3, 2)))
        )
        assert report.fully_tolerant
        assert report.total_pairs == 10 * 9
        assert report.deadlock_free

    def test_infeasible_set_reported(self, topo43):
        report = analyze_fault_set(
            topo43, (Fault.crossbar(0, (0,)), Fault.crossbar(1, (1,)))
        )
        assert not report.feasible
        assert "R1" in report.infeasible_reason
        assert not report.fully_tolerant
        assert "infeasible" in report.row()

    def test_single_fault_equivalent_to_paper(self, topo43):
        report = analyze_fault_set(topo43, (Fault.router((2, 0)),))
        assert report.fully_tolerant

    def test_three_faults(self, topo43):
        report = analyze_fault_set(
            topo43,
            (
                Fault.router((0, 0)),
                Fault.router((1, 0)),
                Fault.router((2, 0)),
            ),
        )
        # all in row 0; S-XB in another row; all remaining pairs must route
        assert report.feasible
        assert report.routed_pairs == report.total_pairs == 9 * 8

    def test_row_render(self, topo43):
        report = analyze_fault_set(topo43, (Fault.router((2, 0)),))
        assert "TOLERATED" in report.row()


class TestCensus:
    def test_pair_census_4x3(self):
        summary = fault_pair_census((4, 3), check_deadlock=False)
        assert summary.total == 19 * 18 // 2
        assert summary.degraded == 0
        assert summary.infeasible > 0  # cross-dimension XB pairs
        assert summary.tolerated + summary.infeasible == summary.total

    def test_router_only_census_all_tolerated(self):
        summary = fault_pair_census((4, 4), kinds="router", check_deadlock=False)
        assert summary.total == 16 * 15 // 2
        assert summary.tolerated == summary.total

    def test_max_pairs_cap(self):
        summary = fault_pair_census((4, 3), max_pairs=5, check_deadlock=False)
        assert summary.total == 5

    def test_bad_kinds(self):
        with pytest.raises(ValueError):
            fault_pair_census((4, 3), kinds="links")

    def test_summary_rows(self):
        summary = fault_pair_census((4, 3), max_pairs=10, check_deadlock=False)
        rows = summary.rows()
        assert any("tolerated" in r for r in rows)

    def test_all_single_faults_count(self):
        assert len(all_single_faults((4, 3))) == 12 + 3 + 4
