"""Unit tests for the fault model and local fault-information registry."""

import pytest

from repro.core.fault import Fault, FaultKind, FaultRegistry
from repro.topology import MDCrossbar, rtr, xb


@pytest.fixture(scope="module")
def topo():
    return MDCrossbar((4, 3))


class TestFault:
    def test_router_constructor(self):
        f = Fault.router((2, 1))
        assert f.kind is FaultKind.ROUTER
        assert f.element == rtr((2, 1))

    def test_crossbar_constructor(self):
        f = Fault.crossbar(1, (2,))
        assert f.kind is FaultKind.XB
        assert f.element == xb(1, (2,))

    def test_validate_rejects_bogus_router(self, topo):
        with pytest.raises(ValueError):
            Fault.router((9, 9)).validate(topo)

    def test_validate_rejects_bogus_xb(self, topo):
        with pytest.raises(ValueError):
            Fault.crossbar(0, (7,)).validate(topo)

    def test_str(self):
        assert "RTR" in str(Fault.router((1, 1)))
        assert "XB" in str(Fault.crossbar(0, (1,)))


class TestRegistryRouterFault:
    """Paper: 'the XBs set the information of the RTRs they are connected
    to' -- only the two (d) crossbars serving the faulty router learn."""

    def test_adjacent_xbs_learn_port(self, topo):
        reg = FaultRegistry(topo, Fault.router((2, 1)))
        assert reg.info(xb(0, (1,))).faulty_ports == {2}
        assert reg.info(xb(1, (2,))).faulty_ports == {1}

    def test_other_xbs_clear(self, topo):
        reg = FaultRegistry(topo, Fault.router((2, 1)))
        assert reg.info(xb(0, (0,))).clear
        assert reg.info(xb(1, (0,))).clear

    def test_routers_learn_nothing(self, topo):
        reg = FaultRegistry(topo, Fault.router((2, 1)))
        for c in topo.node_coords():
            assert not reg.info(rtr(c)).faulty_xb_dims

    def test_dead_pes(self, topo):
        reg = FaultRegistry(topo, Fault.router((2, 1)))
        assert reg.dead_pes() == ((2, 1),)

    def test_is_faulty(self, topo):
        reg = FaultRegistry(topo, Fault.router((2, 1)))
        assert reg.router_is_faulty((2, 1))
        assert not reg.router_is_faulty((2, 0))


class TestRegistryXBFault:
    """Paper: 'the RTRs set the information of the XBs they are connected
    to' -- only routers on the faulty crossbar's line learn."""

    def test_line_routers_learn_dim(self, topo):
        reg = FaultRegistry(topo, Fault.crossbar(0, (1,)))
        for x in range(4):
            assert reg.info(rtr((x, 1))).faulty_xb_dims == {0}

    def test_other_routers_clear(self, topo):
        reg = FaultRegistry(topo, Fault.crossbar(0, (1,)))
        assert reg.info(rtr((0, 0))).clear
        assert reg.info(rtr((3, 2))).clear

    def test_no_dead_pes(self, topo):
        reg = FaultRegistry(topo, Fault.crossbar(0, (1,)))
        assert reg.dead_pes() == ()

    def test_xb_is_faulty(self, topo):
        reg = FaultRegistry(topo, Fault.crossbar(1, (3,)))
        assert reg.xb_is_faulty(1, (3,))
        assert not reg.xb_is_faulty(0, (3,))


class TestRegistryNoFault:
    def test_everything_clear(self, topo):
        reg = FaultRegistry(topo, None)
        for el in topo.switch_elements():
            assert reg.info(el).clear
        assert reg.dead_pes() == ()

    def test_fault_on_line(self, topo):
        reg = FaultRegistry(topo, Fault.router((2, 1)))
        assert reg.fault_on_line(0, (1,))
        assert reg.fault_on_line(1, (2,))
        assert not reg.fault_on_line(0, (0,))
        clean = FaultRegistry(topo, None)
        assert not clean.fault_on_line(0, (0,))

    def test_invalid_fault_rejected_at_build(self, topo):
        with pytest.raises(ValueError):
            FaultRegistry(topo, Fault.router((5, 5)))
