"""Unit tests for the channel-ordering certificates."""

import pytest

from repro.core import Fault
from repro.core.ordering import (
    CertificateError,
    OrderingCertificate,
    build_certificate,
    certify_deadlock_freedom,
    verify_certificate,
)
from tests.conftest import make_logic


class TestBuild:
    def test_fault_free(self, topo43, logic43):
        cert = build_certificate(topo43, logic43)
        assert cert.num_flows_verified == 12 * 11 + 12
        assert len(cert.rank) == topo43.num_channels

    def test_safe_scheme_with_fault(self, topo43, logic43_faulty_rtr):
        cert = build_certificate(topo43, logic43_faulty_rtr)
        assert cert.num_flows_verified == 11 * 10 + 11

    def test_3d(self, topo333, logic333):
        cert = build_certificate(topo333, logic333)
        assert cert.num_flows_verified > 0

    def test_ranks_are_a_permutation(self, topo43, logic43):
        cert = build_certificate(topo43, logic43)
        assert sorted(cert.rank.values()) == list(range(len(cert.rank)))

    def test_atomic_set_is_sxb_outputs(self, topo43, logic43):
        cert = build_certificate(topo43, logic43)
        sxb_outs = {
            c.cid for c in topo43.channels_from(logic43.config.sxb_element)
        }
        assert cert.atomic == sxb_outs

    def test_describe(self, topo43, logic43):
        cert = build_certificate(topo43, logic43)
        text = cert.describe(topo43, limit=3)
        assert "rank" in text and "..." in text


class TestRefusals:
    def test_naive_detour_with_broadcasts_refused(self, topo43, logic43_naive_detour):
        with pytest.raises(CertificateError):
            build_certificate(topo43, logic43_naive_detour)

    def test_naive_broadcast_refused(self, topo43, logic43_naive_broadcast):
        with pytest.raises(CertificateError):
            build_certificate(topo43, logic43_naive_broadcast)


class TestVerification:
    def test_tampered_certificate_detected(self, topo43, logic43):
        cert = build_certificate(topo43, logic43)
        # swap the first two hops of some route: verification must fail
        from repro.core import Unicast, compute_route

        tree = compute_route(topo43, logic43, Unicast((0, 0), (3, 2)))
        chain = tree.path_to((3, 2))
        a, b = chain[0].cid, chain[1].cid
        bad = OrderingCertificate(
            rank={**cert.rank, a: cert.rank[b], b: cert.rank[a]},
            atomic=set(cert.atomic),
        )
        with pytest.raises(CertificateError):
            verify_certificate(topo43, logic43, bad)

    def test_verify_returns_flow_count(self, topo43, logic43):
        cert = build_certificate(topo43, logic43)
        assert verify_certificate(topo43, logic43, cert) == 144

    def test_certify_one_call(self, topo43):
        logic = make_logic(topo43, fault=Fault.crossbar(0, (1,)))
        cert = certify_deadlock_freedom(topo43, logic)
        assert cert.num_flows_verified > 0


class TestAgreementWithCDG:
    """The certificate and the tiered CDG must agree on every config."""

    @pytest.mark.parametrize(
        "kw",
        [
            {},
            {"fault": Fault.router((2, 0))},
            {"fault": Fault.router((0, 2))},
            {"fault": Fault.crossbar(0, (2,))},
            {"fault": Fault.crossbar(1, (1,))},
        ],
        ids=str,
    )
    def test_safe_configs_certifiable(self, topo43, kw):
        from repro.core import analyze_deadlock_freedom

        logic = make_logic(topo43, **kw)
        assert analyze_deadlock_freedom(topo43, logic).deadlock_free
        cert = build_certificate(topo43, logic)
        assert cert.num_flows_verified > 0
