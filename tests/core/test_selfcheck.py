"""Unit tests for the cross-layer consistency audit."""


from repro.core import Fault
from repro.core.selfcheck import self_check
from tests.conftest import make_logic


class TestSelfCheck:
    def test_fault_free_healthy(self, topo43, logic43):
        report = self_check(topo43, logic43)
        assert report.healthy
        assert len(report.checks) == 4
        assert all("ok" in r for r in report.rows())

    def test_faulted_safe_healthy(self, topo43, logic43_faulty_rtr):
        report = self_check(topo43, logic43_faulty_rtr)
        assert report.healthy

    def test_naive_scheme_consistent(self, topo43, logic43_naive_detour):
        # hazardous configs are still *consistent*: the CDG reports a
        # hazard AND no certificate exists
        report = self_check(topo43, logic43_naive_detour)
        assert report.healthy
        cdg_check = report.checks[2]
        assert "deadlock_free=False" in cdg_check.detail
        assert "no certificate" in cdg_check.detail

    def test_3d_healthy(self, topo333, logic333):
        report = self_check(topo333, logic333, simulate_samples=3)
        assert report.healthy

    def test_xb_fault_healthy(self, topo43):
        logic = make_logic(topo43, fault=Fault.crossbar(1, (2,)))
        report = self_check(topo43, logic)
        assert report.healthy

    def test_multifault_healthy(self, topo43):
        logic = make_logic(
            topo43, faults=(Fault.router((1, 0)), Fault.router((3, 2)))
        )
        report = self_check(topo43, logic)
        assert report.healthy

    def test_rows_render(self, topo43, logic43):
        report = self_check(topo43, logic43)
        assert any("oracle" in r for r in report.rows())


class TestDoctorCLI:
    def test_doctor_healthy(self, capsys):
        from repro.cli import main

        rc = main(["doctor", "--shape", "3x3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "healthy" in out

    def test_doctor_with_fault(self, capsys):
        from repro.cli import main

        rc = main(["doctor", "--shape", "4x3", "--fault", "rtr:1,1"])
        assert rc == 0
