"""Unit tests for the distributed switch decision rules (Sections 3.2/4/5)."""

import pytest

from repro.core import Fault, RC, Header, SwitchLogic, make_config
from repro.core.switch_logic import RoutingError, UnreachableDestinationError
from repro.topology import pe, rtr, xb
from tests.conftest import make_logic


def hdr(src, dst, rc=RC.NORMAL):
    return Header(source=src, dest=dst, rc=rc)


class TestRouterNormal:
    def test_delivery_at_destination(self, logic43):
        d = logic43.decide(rtr((2, 1)), xb(1, (2,)), hdr((0, 0), (2, 1)))
        assert d.outputs == (pe((2, 1)),)

    def test_first_dim_hop(self, logic43):
        d = logic43.decide(rtr((0, 0)), pe((0, 0)), hdr((0, 0), (2, 2)))
        assert d.outputs == (xb(0, (0,)),)
        assert d.rc is RC.NORMAL

    def test_second_dim_hop_when_first_matches(self, logic43):
        d = logic43.decide(rtr((2, 0)), pe((2, 0)), hdr((2, 0), (2, 2)))
        assert d.outputs == (xb(1, (2,)),)

    def test_turn_router_forwards_y(self, logic43):
        # mid-route: the packet arrived from the X crossbar and turns to Y
        d = logic43.decide(rtr((2, 0)), xb(0, (0,)), hdr((0, 0), (2, 2)))
        assert d.outputs == (xb(1, (2,)),)

    def test_order_respected_under_yx(self, topo43):
        logic = make_logic(topo43, order=(1, 0))
        d = logic.decide(rtr((0, 0)), pe((0, 0)), hdr((0, 0), (2, 2)))
        assert d.outputs == (xb(1, (0,)),)  # Y first

    def test_3d_order(self, logic333):
        d = logic333.decide(rtr((0, 0, 0)), pe((0, 0, 0)), hdr((0, 0, 0), (0, 2, 2)))
        assert d.outputs == (xb(1, (0, 0)),)


class TestRouterFaultyOwnXB:
    def test_detour_starts_at_source_router(self, topo43):
        logic = make_logic(topo43, fault=Fault.crossbar(0, (0,)))
        # source (1,0) must hop X but its X-XB is faulty -> detour via Y
        d = logic.decide(rtr((1, 0)), pe((1, 0)), hdr((1, 0), (3, 0)))
        assert d.rc is RC.DETOUR
        assert d.outputs == (xb(1, (1,)),)

    def test_unaffected_when_no_first_dim_hop(self, topo43):
        logic = make_logic(topo43, fault=Fault.crossbar(0, (0,)))
        d = logic.decide(rtr((1, 0)), pe((1, 0)), hdr((1, 0), (1, 2)))
        assert d.rc is RC.NORMAL
        assert d.outputs == (xb(1, (1,)),)

    def test_r1_violation_raises(self, topo43):
        # hand-build an inconsistent state: faulty Y-XB but X-Y order
        from repro.core.config import RoutingConfig
        from repro.core.fault import FaultRegistry

        cfg = RoutingConfig(
            shape=(4, 3), order=(0, 1), sxb_line=(0,), dxb_line=(0,),
            fault=Fault.crossbar(1, (0,)),
        )
        logic = SwitchLogic(topo43, cfg, FaultRegistry(topo43, cfg.fault))
        with pytest.raises(RoutingError, match="R1"):
            logic.decide(rtr((0, 1)), xb(0, (1,)), hdr((3, 1), (0, 2)))


class TestXBNormal:
    def test_forwards_to_destination_column(self, logic43):
        d = logic43.decide(xb(0, (0,)), rtr((0, 0)), hdr((0, 0), (2, 2)))
        assert d.outputs == (rtr((2, 0)),)
        assert d.rc is RC.NORMAL

    def test_y_xb_forwards_to_destination(self, logic43):
        d = logic43.decide(xb(1, (2,)), rtr((2, 0)), hdr((0, 0), (2, 2)))
        assert d.outputs == (rtr((2, 2)),)

    def test_deflects_around_faulty_turn_router(self, logic43_faulty_rtr):
        # fault at (2,0); packet (0,0)->(2,2) would turn there
        d = logic43_faulty_rtr.decide(
            xb(0, (0,)), rtr((0, 0)), hdr((0, 0), (2, 2))
        )
        assert d.rc is RC.DETOUR
        (out,) = d.outputs
        assert out[0] == "RTR"
        assert out[1][0] not in (2, 0)  # neither the faulty nor the input port

    def test_drops_when_destination_router_faulty(self, logic43_faulty_rtr):
        d = logic43_faulty_rtr.decide(
            xb(1, (2,)), rtr((2, 1)), hdr((2, 1), (2, 0))
        )
        assert d.drop and d.outputs == ()

    def test_from_non_router_raises(self, logic43):
        with pytest.raises(RoutingError):
            logic43.decide(xb(0, (0,)), pe((0, 0)), hdr((0, 0), (2, 0)))


class TestBroadcastRequestLeg:
    def test_source_off_line_routes_reverse_order(self, logic43):
        # S-XB is X-XB row 0; source at y=2 must hop Y toward row 0
        d = logic43.decide(
            rtr((1, 2)), pe((1, 2)), hdr((1, 2), (1, 2), RC.BROADCAST_REQUEST)
        )
        assert d.outputs == (xb(1, (1,)),)
        assert d.rc is RC.BROADCAST_REQUEST

    def test_y_xb_forwards_to_sxb_row(self, logic43):
        d = logic43.decide(
            xb(1, (1,)), rtr((1, 2)), hdr((1, 2), (1, 2), RC.BROADCAST_REQUEST)
        )
        assert d.outputs == (rtr((1, 0)),)

    def test_on_line_enters_sxb(self, logic43):
        d = logic43.decide(
            rtr((1, 0)), xb(1, (1,)), hdr((1, 2), (1, 2), RC.BROADCAST_REQUEST)
        )
        assert d.outputs == (logic43.config.sxb_element,)

    def test_request_into_wrong_xdim_xb_raises(self, logic43):
        with pytest.raises(RoutingError):
            logic43.decide(
                xb(0, (1,)), rtr((0, 1)), hdr((0, 1), (0, 1), RC.BROADCAST_REQUEST)
            )

    def test_3d_reverse_order_leg(self, logic333):
        # S-XB line (0,0): from (1,2,2) the leg fixes dim 2 first
        d = logic333.decide(
            rtr((1, 2, 2)), pe((1, 2, 2)), hdr((1, 2, 2), (1, 2, 2), RC.BROADCAST_REQUEST)
        )
        assert d.outputs == (xb(2, (1, 2)),)


class TestSXBSerialization:
    def test_sxb_converts_and_multicasts_all_ports(self, logic43):
        d = logic43.decide(
            logic43.config.sxb_element,
            rtr((1, 0)),
            hdr((1, 2), (1, 2), RC.BROADCAST_REQUEST),
        )
        assert d.serialize
        assert d.rc is RC.BROADCAST
        assert set(d.outputs) == {rtr((x, 0)) for x in range(4)}

    def test_spread_router_delivers_and_forwards(self, logic43):
        d = logic43.decide(
            rtr((2, 0)), xb(0, (0,)), hdr((1, 2), (1, 2), RC.BROADCAST)
        )
        assert pe((2, 0)) in d.outputs
        assert xb(1, (2,)) in d.outputs
        assert len(d.outputs) == 2

    def test_spread_yxb_excludes_input_port(self, logic43):
        d = logic43.decide(
            xb(1, (2,)), rtr((2, 0)), hdr((1, 2), (1, 2), RC.BROADCAST)
        )
        assert set(d.outputs) == {rtr((2, 1)), rtr((2, 2))}
        assert not d.serialize

    def test_leaf_router_only_delivers(self, logic43):
        d = logic43.decide(
            rtr((2, 2)), xb(1, (2,)), hdr((1, 2), (1, 2), RC.BROADCAST)
        )
        assert d.outputs == (pe((2, 2)),)

    def test_3d_spread_router_forwards_all_later_dims(self, logic333):
        d = logic333.decide(
            rtr((1, 0, 0)), xb(0, (0, 0)), hdr((0, 0, 0), (0, 0, 0), RC.BROADCAST)
        )
        assert set(d.outputs) == {pe((1, 0, 0)), xb(1, (1, 0)), xb(2, (1, 0))}

    def test_spread_skips_faulty_leaf(self, topo43):
        logic = make_logic(topo43, fault=Fault.router((2, 0)))
        line = logic.config.sxb_line  # moved off row 0 by rule R2
        sxb = logic.config.sxb_element
        d = logic.decide(
            sxb, rtr((0, line[0])), hdr((0, 2), (0, 2), RC.BROADCAST_REQUEST)
        )
        # S-XB row contains no faulty router (R2), all 4 ports served
        assert len(d.outputs) == 4
        # ... and the Y spread toward the dead PE's column skips it
        d2 = logic.decide(
            xb(1, (2,)), rtr((2, line[0])), hdr((0, 2), (0, 2), RC.BROADCAST)
        )
        assert rtr((2, 0)) not in d2.outputs


class TestNaiveBroadcast:
    def test_source_router_forwards_to_first_dim(self, logic43_naive_broadcast):
        d = logic43_naive_broadcast.decide(
            rtr((2, 1)), pe((2, 1)), hdr((2, 1), (2, 1), RC.BROADCAST)
        )
        assert d.outputs == (xb(0, (1,)),)

    def test_first_dim_xb_multicasts_all_including_input(
        self, logic43_naive_broadcast
    ):
        d = logic43_naive_broadcast.decide(
            xb(0, (1,)), rtr((2, 1)), hdr((2, 1), (2, 1), RC.BROADCAST)
        )
        assert len(d.outputs) == 4
        assert rtr((2, 1)) in d.outputs
        assert not d.serialize

    def test_injecting_rc2_in_serialized_mode_raises(self, logic43):
        with pytest.raises(RoutingError):
            logic43.decide(
                rtr((2, 1)), pe((2, 1)), hdr((2, 1), (2, 1), RC.BROADCAST)
            )


class TestDetourLeg:
    def test_detour_router_heads_to_yxb(self, logic43_faulty_rtr):
        # deflected packet at the detour router continues toward the D-XB
        d = logic43_faulty_rtr.decide(
            rtr((1, 0)), xb(0, (0,)), hdr((0, 0), (2, 2), RC.DETOUR)
        )
        assert d.outputs == (xb(1, (1,)),)
        assert d.rc is RC.DETOUR

    def test_yxb_forwards_to_dxb_row(self, logic43_faulty_rtr):
        cfg = logic43_faulty_rtr.config
        d = logic43_faulty_rtr.decide(
            xb(1, (1,)), rtr((1, 0)), hdr((0, 0), (2, 2), RC.DETOUR)
        )
        assert d.outputs == (rtr((1, cfg.line_coord(cfg.dxb_line, 1))),)

    def test_router_on_dxb_row_enters_dxb(self, logic43_faulty_rtr):
        cfg = logic43_faulty_rtr.config
        y = cfg.line_coord(cfg.dxb_line, 1)
        d = logic43_faulty_rtr.decide(
            rtr((1, y)), xb(1, (1,)), hdr((0, 0), (2, 2), RC.DETOUR)
        )
        assert d.outputs == (cfg.dxb_element,)

    def test_dxb_resets_rc_and_routes_by_address(self, logic43_faulty_rtr):
        cfg = logic43_faulty_rtr.config
        y = cfg.line_coord(cfg.dxb_line, 1)
        d = logic43_faulty_rtr.decide(
            cfg.dxb_element, rtr((1, y)), hdr((0, 0), (2, 2), RC.DETOUR)
        )
        assert d.rc is RC.NORMAL
        assert d.outputs == (rtr((2, y)),)

    def test_detour_into_wrong_first_dim_xb_raises(self, logic43_faulty_rtr):
        cfg = logic43_faulty_rtr.config
        other = [y for y in range(3) if (y,) != cfg.dxb_line][0]
        with pytest.raises(RoutingError):
            logic43_faulty_rtr.decide(
                xb(0, (other,)), rtr((0, other)), hdr((0, 0), (2, 2), RC.DETOUR)
            )

    def test_naive_scheme_uses_distinct_dxb(self, logic43_naive_detour):
        cfg = logic43_naive_detour.config
        assert cfg.dxb_line != cfg.sxb_line
        y = cfg.line_coord(cfg.dxb_line, 1)
        d = logic43_naive_detour.decide(
            cfg.dxb_element, rtr((1, y)), hdr((0, 0), (2, 2), RC.DETOUR)
        )
        assert d.rc is RC.NORMAL


class TestDeliverability:
    def test_faulty_source_rejected(self, logic43_faulty_rtr):
        with pytest.raises(UnreachableDestinationError):
            logic43_faulty_rtr.check_deliverable((2, 0), (0, 0))

    def test_faulty_dest_rejected(self, logic43_faulty_rtr):
        with pytest.raises(UnreachableDestinationError):
            logic43_faulty_rtr.check_deliverable((0, 0), (2, 0))

    def test_healthy_pair_ok(self, logic43_faulty_rtr):
        logic43_faulty_rtr.check_deliverable((0, 0), (3, 2))


class TestConstruction:
    def test_shape_mismatch_rejected(self, topo43):
        with pytest.raises(ValueError):
            SwitchLogic(topo43, make_config((4, 4)))

    def test_registry_mismatch_rejected(self, topo43):
        from repro.core.fault import FaultRegistry

        cfg = make_config((4, 3), fault=Fault.router((2, 0)))
        with pytest.raises(ValueError):
            SwitchLogic(topo43, cfg, FaultRegistry(topo43, None))

    def test_pe_does_not_route(self, logic43):
        with pytest.raises(RoutingError):
            logic43.decide(pe((0, 0)), rtr((0, 0)), hdr((0, 0), (1, 1)))
