"""Unit tests for coordinate arithmetic."""

import pytest

from repro.core.coords import (
    all_coords,
    all_lines,
    coord_from_index,
    differing_dims,
    hop_distance,
    lexicographic_index,
    line_of,
    num_lines,
    num_nodes,
    point_on_line,
    validate_coord,
    validate_shape,
)


class TestValidateShape:
    def test_accepts_tuple(self):
        assert validate_shape((4, 3)) == (4, 3)

    def test_accepts_list(self):
        assert validate_shape([2, 2, 2]) == (2, 2, 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_shape(())

    def test_rejects_zero_extent(self):
        with pytest.raises(ValueError):
            validate_shape((4, 0))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_shape((-1,))

    def test_allows_degenerate_extent(self):
        assert validate_shape((1, 5)) == (1, 5)


class TestValidateCoord:
    def test_in_range(self):
        assert validate_coord((3, 2), (4, 3)) == (3, 2)

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            validate_coord((1, 1, 1), (4, 3))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            validate_coord((4, 0), (4, 3))

    def test_negative(self):
        with pytest.raises(ValueError):
            validate_coord((-1, 0), (4, 3))


class TestEnumeration:
    def test_all_coords_count(self):
        assert len(list(all_coords((4, 3)))) == 12

    def test_all_coords_order_dim0_slowest(self):
        cs = list(all_coords((2, 2)))
        assert cs == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_num_nodes(self):
        assert num_nodes((16, 16, 8)) == 2048

    def test_num_lines(self):
        # 4x3: 3 X-lines (one per y) and 4 Y-lines (one per x)
        assert num_lines((4, 3), 0) == 3
        assert num_lines((4, 3), 1) == 4

    def test_all_lines(self):
        assert sorted(all_lines((4, 3), 0)) == [(0,), (1,), (2,)]
        assert sorted(all_lines((4, 3), 1)) == [(0,), (1,), (2,), (3,)]

    def test_all_lines_3d(self):
        lines = list(all_lines((2, 3, 4), 1))
        assert len(lines) == 8
        assert (1, 3) in lines


class TestLines:
    def test_line_of_removes_dim(self):
        assert line_of((2, 1, 3), 1) == (2, 3)

    def test_point_on_line_inverse(self):
        c = (2, 1, 3)
        for k in range(3):
            assert point_on_line(k, line_of(c, k), c[k]) == c

    def test_point_on_line_values(self):
        assert point_on_line(0, (7,), 3) == (3, 7)
        assert point_on_line(1, (5,), 2) == (5, 2)


class TestDistances:
    def test_differing_dims(self):
        assert differing_dims((0, 0, 0), (1, 0, 2)) == (0, 2)

    def test_hop_distance_same(self):
        assert hop_distance((1, 1), (1, 1)) == 0

    def test_hop_distance_max_is_d(self):
        assert hop_distance((0, 0, 0), (1, 2, 3)) == 3

    def test_one_hop_on_shared_line(self):
        # paper: PEs on the same crossbar communicate in one hop
        assert hop_distance((0, 2), (3, 2)) == 1


class TestIndexing:
    def test_roundtrip(self):
        shape = (4, 3, 2)
        for i in range(num_nodes(shape)):
            assert lexicographic_index(coord_from_index(i, shape), shape) == i

    def test_row_major(self):
        assert lexicographic_index((0, 0), (4, 3)) == 0
        assert lexicographic_index((0, 1), (4, 3)) == 1
        assert lexicographic_index((1, 0), (4, 3)) == 3

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            coord_from_index(12, (4, 3))

    def test_index_negative(self):
        with pytest.raises(ValueError):
            coord_from_index(-1, (4, 3))
