"""Unit tests for the packet / header / flit model (paper Figs. 3-4)."""

import pytest

from repro.core.packet import RC, FlitKind, Header, Packet, make_flits


class TestRC:
    def test_values_match_paper_fig4(self):
        assert RC.NORMAL == 0
        assert RC.BROADCAST_REQUEST == 1
        assert RC.BROADCAST == 2
        assert RC.DETOUR == 3

    def test_two_bits_suffice(self):
        assert all(0 <= rc <= 3 for rc in RC)


class TestHeader:
    def test_with_rc_copies(self):
        h = Header(source=(0, 0), dest=(2, 1))
        h2 = h.with_rc(RC.DETOUR)
        assert h.rc is RC.NORMAL
        assert h2.rc is RC.DETOUR
        assert h2.dest == h.dest

    def test_frozen(self):
        h = Header(source=(0, 0), dest=(1, 1))
        with pytest.raises(AttributeError):
            h.rc = RC.BROADCAST  # type: ignore[misc]

    @pytest.mark.parametrize("rc", list(RC))
    def test_encode_decode_roundtrip(self, rc):
        shape = (4, 3)
        h = Header(source=(3, 1), dest=(2, 2), rc=rc)
        assert Header.decode(h.encode(shape), shape) == h

    def test_encode_decode_3d(self):
        shape = (16, 16, 8)
        h = Header(source=(15, 0, 7), dest=(0, 15, 3), rc=RC.BROADCAST)
        assert Header.decode(h.encode(shape), shape) == h

    def test_encode_rc_in_low_bits(self):
        shape = (4, 3)
        h = Header(source=(0, 0), dest=(0, 0), rc=RC.DETOUR)
        assert h.encode(shape) & 0b11 == 3


class TestPacket:
    def test_defaults(self):
        p = Packet(Header(source=(0, 0), dest=(1, 0)))
        assert p.length == 4
        assert p.injected_at is None and p.delivered_at is None

    def test_unique_pids(self):
        a = Packet(Header(source=(0, 0), dest=(1, 0)))
        b = Packet(Header(source=(0, 0), dest=(1, 0)))
        assert a.pid != b.pid

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            Packet(Header(source=(0, 0), dest=(1, 0)), length=0)

    def test_is_broadcast(self):
        p = Packet(Header(source=(0, 0), dest=(0, 0), rc=RC.BROADCAST_REQUEST))
        assert p.is_broadcast
        q = Packet(Header(source=(0, 0), dest=(1, 0)))
        assert not q.is_broadcast

    def test_latency(self):
        p = Packet(Header(source=(0, 0), dest=(1, 0)))
        assert p.latency is None
        p.injected_at, p.delivered_at = 5, 17
        assert p.latency == 12

    def test_flit_kinds_multi(self):
        p = Packet(Header(source=(0, 0), dest=(1, 0)), length=4)
        kinds = p.flit_kinds()
        assert kinds[0] is FlitKind.HEAD
        assert kinds[-1] is FlitKind.TAIL
        assert all(k is FlitKind.BODY for k in kinds[1:-1])

    def test_flit_kinds_single(self):
        p = Packet(Header(source=(0, 0), dest=(1, 0)), length=1)
        assert p.flit_kinds() == (FlitKind.HEAD_TAIL,)

    def test_flit_kinds_two(self):
        p = Packet(Header(source=(0, 0), dest=(1, 0)), length=2)
        assert p.flit_kinds() == (FlitKind.HEAD, FlitKind.TAIL)


class TestFlits:
    def test_make_flits_count_and_seq(self):
        p = Packet(Header(source=(0, 0), dest=(1, 0)), length=5)
        flits = make_flits(p)
        assert len(flits) == 5
        assert [f.seq for f in flits] == list(range(5))

    def test_head_tail_predicates(self):
        p = Packet(Header(source=(0, 0), dest=(1, 0)), length=3)
        flits = make_flits(p)
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert not flits[1].is_head and not flits[1].is_tail

    def test_single_flit_is_head_and_tail(self):
        p = Packet(Header(source=(0, 0), dest=(1, 0)), length=1)
        (f,) = make_flits(p)
        assert f.is_head and f.is_tail
