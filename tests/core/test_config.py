"""Unit tests for routing-facility configuration and placement rules."""

import pytest

from repro.core import Fault
from repro.core.config import (
    BroadcastMode,
    ConfigError,
    DetourScheme,
    RoutingConfig,
    make_config,
    select_order,
    select_sxb_line,
)


class TestDefaults:
    def test_identity_order(self):
        cfg = make_config((4, 3))
        assert cfg.order == (0, 1)
        assert cfg.first_dim == 0

    def test_default_sxb_all_zero(self):
        assert make_config((4, 3)).sxb_line == (0,)
        assert make_config((3, 3, 3)).sxb_line == (0, 0)

    def test_safe_scheme_unifies_dxb(self):
        cfg = make_config((4, 3))
        assert cfg.detour_scheme is DetourScheme.SAFE
        assert cfg.dxb_line == cfg.sxb_line

    def test_naive_scheme_distinct_dxb(self):
        cfg = make_config((4, 3), detour_scheme=DetourScheme.NAIVE)
        assert cfg.dxb_line != cfg.sxb_line

    def test_serialized_broadcast_default(self):
        assert make_config((4, 3)).broadcast_mode is BroadcastMode.SERIALIZED


class TestOrderSelection:
    def test_no_fault_identity(self):
        assert select_order((4, 3), None) == (0, 1)

    def test_router_fault_keeps_identity(self):
        assert select_order((4, 3), Fault.router((1, 1))) == (0, 1)

    def test_xb_fault_rotates_its_dim_first(self):
        # faulty Y-XB forces Y-first routing (paper Sec. 3.2: "the network
        # hardware can change the routing order")
        assert select_order((4, 3), Fault.crossbar(1, (2,))) == (1, 0)

    def test_xb_fault_3d(self):
        assert select_order((3, 3, 3), Fault.crossbar(2, (1, 1))) == (2, 0, 1)

    def test_xb_fault_first_dim_identity(self):
        assert select_order((4, 3), Fault.crossbar(0, (1,))) == (0, 1)


class TestSxbSelection:
    def test_avoids_faulty_router_row(self):
        # faulty router at y=0: the S-XB must leave row 0 (rule R2)
        line = select_sxb_line((4, 3), (0, 1), Fault.router((2, 0)))
        assert line != (0,)

    def test_no_fault_keeps_preference(self):
        assert select_sxb_line((4, 3), (0, 1), None, preferred=(2,)) == (2,)

    def test_bad_preference_rejected(self):
        with pytest.raises(ConfigError):
            select_sxb_line((4, 3), (0, 1), None, preferred=(9,))

    def test_avoids_faulty_sxb_candidate(self):
        line = select_sxb_line((4, 3), (0, 1), Fault.crossbar(0, (0,)))
        assert line != (0,)

    def test_3d_avoids_both_coords(self):
        f = Fault.router((1, 0, 0))
        line = select_sxb_line((3, 3, 3), (0, 1, 2), f)
        assert line[0] != 0 and line[1] != 0

    def test_too_small_network_raises(self):
        # a 2x1 network cannot satisfy R2 for a router fault in y... the
        # single Y value (extent 1) is skipped, but extent-2 dims force
        # the other value
        line = select_sxb_line((2, 2), (0, 1), Fault.router((0, 1)))
        assert line == (0,)


class TestValidation:
    def test_order_must_be_permutation(self):
        with pytest.raises(ConfigError):
            RoutingConfig(
                shape=(4, 3), order=(0, 0), sxb_line=(0,), dxb_line=(0,)
            ).validated()

    def test_line_arity_checked(self):
        with pytest.raises(ConfigError):
            RoutingConfig(
                shape=(4, 3), order=(0, 1), sxb_line=(0, 0), dxb_line=(0,)
            ).validated()

    def test_line_range_checked(self):
        with pytest.raises(ConfigError):
            RoutingConfig(
                shape=(4, 3), order=(0, 1), sxb_line=(5,), dxb_line=(0,)
            ).validated()

    def test_safe_requires_same_lines(self):
        with pytest.raises(ConfigError):
            RoutingConfig(
                shape=(4, 3),
                order=(0, 1),
                sxb_line=(0,),
                dxb_line=(1,),
                detour_scheme=DetourScheme.SAFE,
            ).validated()

    def test_r1_xb_fault_dim_must_be_first(self):
        with pytest.raises(ConfigError, match="R1"):
            make_config((4, 3), fault=Fault.crossbar(1, (2,)), order=(0, 1))

    def test_r2_sxb_must_avoid_fault_row(self):
        with pytest.raises(ConfigError, match="R2"):
            make_config((4, 3), fault=Fault.router((2, 0)), sxb_line=(0,))

    def test_r2_sxb_must_not_be_faulty_xb(self):
        with pytest.raises(ConfigError, match="R2"):
            make_config((4, 3), fault=Fault.crossbar(0, (1,)), sxb_line=(1,))

    def test_explicit_valid_config_accepted(self):
        cfg = make_config(
            (4, 3), fault=Fault.router((2, 0)), sxb_line=(1,), dxb_line=(1,)
        )
        assert cfg.sxb_line == (1,)


class TestDerivedViews:
    def test_position(self):
        cfg = make_config((3, 3, 3), order=(2, 0, 1))
        assert cfg.position(2) == 0
        assert cfg.position(1) == 2

    def test_dims_after(self):
        cfg = make_config((3, 3, 3), order=(2, 0, 1))
        assert cfg.dims_after(2) == (0, 1)
        assert cfg.dims_after(1) == ()

    def test_line_coord_2d(self):
        cfg = make_config((4, 3), sxb_line=(2,))
        assert cfg.line_coord(cfg.sxb_line, 1) == 2

    def test_line_coord_first_dim_rejected(self):
        cfg = make_config((4, 3))
        with pytest.raises(ValueError):
            cfg.line_coord(cfg.sxb_line, 0)

    def test_line_coord_3d_mapping(self):
        cfg = make_config((3, 4, 5), order=(1, 0, 2), sxb_line=(2, 3))
        # line key covers dims (0, 2) in increasing order
        assert cfg.line_coord(cfg.sxb_line, 0) == 2
        assert cfg.line_coord(cfg.sxb_line, 2) == 3

    def test_sxb_element(self):
        cfg = make_config((4, 3), sxb_line=(1,))
        assert cfg.sxb_element == ("XB", 0, (1,))

    def test_with_fault_rederives(self):
        cfg = make_config((4, 3))
        cfg2 = cfg.with_fault(Fault.router((0, 0)))
        assert cfg2.sxb_line != (0,)
        assert cfg2.broadcast_mode is cfg.broadcast_mode
