"""Unit tests for the tiered channel-dependency deadlock analysis.

These are the paper's headline results as executable checks:

* point-to-point dimension-order routing alone: deadlock free;
* serialized broadcast (Fig. 6): deadlock free;
* naive dimension-order broadcast (Fig. 5): deadlock hazard;
* detour facility alone, either D-XB choice (Section 4): deadlock free;
* naive detour + serialized broadcast (Fig. 9): deadlock hazard;
* D-XB = S-XB + serialized broadcast (Fig. 10 / Section 5): deadlock free.
"""

import pytest

from repro.core import Fault, analyze_deadlock_freedom, build_cdg
from repro.core.config import BroadcastMode, DetourScheme
from repro.core.routes import Unicast
from tests.conftest import make_logic


class TestPaperClaims:
    def test_p2p_only_deadlock_free(self, topo43):
        logic = make_logic(topo43)
        res = analyze_deadlock_freedom(topo43, logic, include_broadcasts=False)
        assert res.deadlock_free

    def test_serialized_broadcast_deadlock_free(self, topo43):
        logic = make_logic(topo43)
        res = analyze_deadlock_freedom(topo43, logic)
        assert res.deadlock_free
        assert res.hazard is None

    def test_naive_broadcast_hazard(self, topo43):
        logic = make_logic(topo43, broadcast_mode=BroadcastMode.NAIVE)
        res = analyze_deadlock_freedom(topo43, logic)
        assert not res.deadlock_free
        assert res.hazard.kind in ("multi-tree-cycle", "tree-path-cycle")

    def test_naive_broadcast_hazard_is_multicast_pair(self, topo43):
        # Fig. 5 deadlocks two broadcasts against each other even with no
        # point-to-point traffic at all
        logic = make_logic(topo43, broadcast_mode=BroadcastMode.NAIVE)
        res = analyze_deadlock_freedom(topo43, logic, include_unicasts=False)
        assert not res.deadlock_free
        assert res.hazard.kind == "multi-tree-cycle"
        assert len(res.hazard.flows) >= 2

    def test_detour_alone_deadlock_free_both_schemes(self, topo43):
        for scheme in DetourScheme:
            logic = make_logic(
                topo43, fault=Fault.router((2, 0)), detour_scheme=scheme
            )
            res = analyze_deadlock_freedom(
                topo43, logic, include_broadcasts=False
            )
            assert res.deadlock_free, scheme

    def test_fig9_naive_detour_with_broadcast_hazard(self, topo43):
        logic = make_logic(
            topo43,
            fault=Fault.router((2, 0)),
            detour_scheme=DetourScheme.NAIVE,
        )
        res = analyze_deadlock_freedom(topo43, logic)
        assert not res.deadlock_free

    def test_fig10_safe_scheme_deadlock_free(self, topo43):
        logic = make_logic(topo43, fault=Fault.router((2, 0)))
        res = analyze_deadlock_freedom(topo43, logic)
        assert res.deadlock_free

    def test_safe_scheme_xb_fault_deadlock_free(self, topo43):
        for fault in (Fault.crossbar(0, (1,)), Fault.crossbar(1, (2,))):
            logic = make_logic(topo43, fault=fault)
            res = analyze_deadlock_freedom(topo43, logic)
            assert res.deadlock_free, fault

    def test_naive_detour_xb_fault_hazard(self, topo43):
        logic = make_logic(
            topo43,
            fault=Fault.crossbar(0, (1,)),
            detour_scheme=DetourScheme.NAIVE,
        )
        res = analyze_deadlock_freedom(topo43, logic)
        assert not res.deadlock_free


class TestSmallAndOddShapes:
    @pytest.mark.parametrize("shape", [(2, 2), (3, 2), (5, 4), (2, 2, 2)])
    def test_serialized_safe_everywhere(self, shape):
        from repro.topology import MDCrossbar

        topo = MDCrossbar(shape)
        logic = make_logic(topo)
        assert analyze_deadlock_freedom(topo, logic).deadlock_free

    def test_plain_crossbar_d1(self):
        from repro.topology import MDCrossbar

        topo = MDCrossbar((6,))
        logic = make_logic(topo)
        assert analyze_deadlock_freedom(topo, logic).deadlock_free

    def test_3d_serialized_safe(self, topo333):
        logic = make_logic(topo333)
        res = analyze_deadlock_freedom(topo333, logic)
        assert res.deadlock_free

    def test_3d_fig10(self, topo333):
        logic = make_logic(topo333, fault=Fault.router((1, 1, 1)))
        res = analyze_deadlock_freedom(topo333, logic)
        assert res.deadlock_free

    def test_3d_naive_detour_hazard(self, topo333):
        logic = make_logic(
            topo333,
            fault=Fault.router((1, 1, 1)),
            detour_scheme=DetourScheme.NAIVE,
        )
        res = analyze_deadlock_freedom(topo333, logic)
        assert not res.deadlock_free


class TestGraphMechanics:
    def test_flow_subsets(self, topo43, logic43):
        flows = [Unicast((0, 0), (3, 2)), Unicast((3, 2), (0, 0))]
        cdg = build_cdg(
            topo43, logic43, unicast_flows=flows, include_broadcasts=False
        )
        assert cdg.num_flows == 2
        assert cdg.find_deadlock().deadlock_free

    def test_counts_populated(self, topo43, logic43):
        res = analyze_deadlock_freedom(topo43, logic43)
        assert res.num_flows == 12 * 11 + 12
        assert res.num_channels > 0
        assert res.num_edges > 0

    def test_result_truthiness(self, topo43, logic43):
        res = analyze_deadlock_freedom(topo43, logic43)
        assert bool(res) is res.deadlock_free

    def test_hazard_description(self, topo43):
        logic = make_logic(topo43, broadcast_mode=BroadcastMode.NAIVE)
        res = analyze_deadlock_freedom(topo43, logic)
        text = res.hazard.describe()
        assert "cycle" in text or "Ch#" in text

    def test_broadcast_source_subset(self, topo43, logic43):
        cdg = build_cdg(
            topo43,
            logic43,
            include_unicasts=False,
            broadcast_sources=[(0, 0), (3, 2)],
        )
        assert cdg.num_flows == 2
        assert len(cdg.trees) == 2
