"""Integration tests for the d = 1 degenerate case: a conventional single
crossbar (paper Section 3.1: "for the case of d=1, the MD crossbar network
is equivalent to a conventional crossbar network")."""

import pytest

from repro.core import (
    Broadcast,
    Fault,
    Header,
    Packet,
    RC,
    Unicast,
    analyze_deadlock_freedom,
    compute_route,
)
from repro.core.ordering import certify_deadlock_freedom
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from repro.topology import FullCrossbar
from tests.conftest import make_logic


@pytest.fixture(scope="module")
def xbar():
    return FullCrossbar(6)


class TestRouting:
    def test_every_pair_one_hop(self, xbar):
        logic = make_logic(xbar)
        for s in xbar.node_coords():
            for t in xbar.node_coords():
                if s != t:
                    tree = compute_route(xbar, logic, Unicast(s, t))
                    assert tree.xb_hops_to(t) == 1

    def test_broadcast_via_the_single_xb(self, xbar):
        logic = make_logic(xbar)
        tree = compute_route(xbar, logic, Broadcast((3,)))
        assert tree.delivered == set(xbar.node_coords())
        assert logic.config.sxb_element == ("XB", 0, ())

    def test_router_fault_only_kills_its_pe(self, xbar):
        logic = make_logic(xbar, fault=Fault.router((2,)))
        live = [c for c in xbar.node_coords() if c != (2,)]
        for s in live:
            for t in live:
                if s != t:
                    tree = compute_route(xbar, logic, Unicast(s, t))
                    assert t in tree.delivered


class TestSafety:
    def test_deadlock_free_with_broadcasts(self, xbar):
        logic = make_logic(xbar)
        assert analyze_deadlock_freedom(xbar, logic).deadlock_free
        cert = certify_deadlock_freedom(xbar, logic)
        assert cert.num_flows_verified == 6 * 5 + 6

    def test_simulated_full_permutation_plus_broadcast(self, xbar):
        sim = NetworkSimulator(
            MDCrossbarAdapter(make_logic(xbar)), SimConfig(stall_limit=500)
        )
        n = len(xbar.node_coords())
        for i, s in enumerate(xbar.node_coords()):
            t = xbar.node_coords()[(i + 1) % n]
            sim.send(Packet(Header(source=s, dest=t), length=8))
        sim.send(
            Packet(Header(source=(0,), dest=(0,), rc=RC.BROADCAST_REQUEST), length=8)
        )
        res = sim.run(max_cycles=10_000)
        assert not res.deadlocked
        assert len(res.delivered) == n + 1

    def test_conflict_free_permutation(self, xbar):
        """The paper: a conventional crossbar has no conflicts in almost
        all patterns -- a rotation permutation shares no channel."""
        from repro.analysis.conflicts import _md_route_channels, measure_conflicts

        logic = make_logic(xbar)
        coords = list(xbar.node_coords())
        pairs = [
            (coords[i], coords[(i + 2) % len(coords)]) for i in range(len(coords))
        ]
        stats = measure_conflicts(
            "crossbar", lambda s, t: _md_route_channels(xbar, logic, s, t), pairs
        )
        assert stats.conflict_free
