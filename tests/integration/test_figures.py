"""Integration tests replaying every figure of the paper end to end.

Each test is the executable form of one figure's walkthrough; the benchmark
suite (benchmarks/bench_e0*.py) times the same scenarios and prints the
reported rows.
"""


from repro.core import (
    Broadcast,
    Fault,
    Header,
    Packet,
    RC,
    Unicast,
    analyze_deadlock_freedom,
    compute_route,
)
from repro.core.config import BroadcastMode, DetourScheme
from repro.core.dimension_order import expected_normal_elements
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from tests.conftest import make_logic


def make_sim(topo, sim_config=None, **kw):
    return NetworkSimulator(
        MDCrossbarAdapter(make_logic(topo, **kw)),
        sim_config or SimConfig(stall_limit=300),
    )


class TestFig2Structure:
    """Fig. 2: the 4x3 two-dimensional crossbar network."""

    def test_four_by_three_inventory(self, topo43):
        assert topo43.num_nodes == 12
        xbs = [e for e in topo43.elements() if e[0] == "XB"]
        assert sum(1 for e in xbs if e[1] == 0) == 3  # X-XBs, one per row
        assert sum(1 for e in xbs if e[1] == 1) == 4  # Y-XBs, one per column

    def test_two_hops_suffice(self, topo43, logic43):
        for s in topo43.node_coords():
            for t in topo43.node_coords():
                if s != t:
                    tree = compute_route(topo43, logic43, Unicast(s, t))
                    assert tree.xb_hops_to(t) <= 2


class TestFig3Fig4PacketFormat:
    """Figs. 3-4: receiving address per dimension + the RC bit."""

    def test_rc_meanings(self):
        assert [rc.value for rc in RC] == [0, 1, 2, 3]

    def test_address_effective_only_when_normal(self, topo43, logic43):
        # a broadcast-request packet routes to the S-XB regardless of the
        # receiving address field
        from repro.topology import pe, rtr

        h_a = Header(source=(1, 2), dest=(3, 1), rc=RC.BROADCAST_REQUEST)
        h_b = Header(source=(1, 2), dest=(0, 0), rc=RC.BROADCAST_REQUEST)
        d_a = logic43.decide(rtr((1, 2)), pe((1, 2)), h_a)
        d_b = logic43.decide(rtr((1, 2)), pe((1, 2)), h_b)
        assert d_a.outputs == d_b.outputs


class TestFig5BroadcastDeadlock:
    """Fig. 5: two naive broadcasts deadlock on the Y crossbars."""

    def test_static_hazard(self, topo43):
        logic = make_logic(topo43, broadcast_mode=BroadcastMode.NAIVE)
        res = analyze_deadlock_freedom(topo43, logic, include_unicasts=False)
        assert not res.deadlock_free

    def test_dynamic_deadlock(self, topo43):
        sim = make_sim(topo43, broadcast_mode=BroadcastMode.NAIVE)
        for src in [(2, 1), (3, 2)]:
            sim.send(Packet(Header(source=src, dest=src, rc=RC.BROADCAST), length=6))
        res = sim.run(max_cycles=5000)
        assert res.deadlocked
        # the cyclic wait involves both broadcasts
        assert len(set(res.deadlock.cycle_pids)) >= 2


class TestFig6SerializedBroadcast:
    """Fig. 6: broadcasts serialize at the S-XB and complete."""

    def test_routing_is_y_x_y(self, topo43, logic43):
        tree = compute_route(topo43, logic43, Broadcast((2, 2)))
        xbs = [el[1] for el in tree.elements_to((3, 1)) if el[0] == "XB"]
        assert xbs == [1, 0, 1]

    def test_second_broadcast_waits_then_completes(self, topo43):
        sim = make_sim(topo43)
        a = Packet(Header(source=(2, 1), dest=(2, 1), rc=RC.BROADCAST_REQUEST), length=6)
        b = Packet(Header(source=(3, 2), dest=(3, 2), rc=RC.BROADCAST_REQUEST), length=6)
        sim.send(a)
        sim.send(b)
        res = sim.run(max_cycles=5000)
        assert not res.deadlocked
        assert len(res.delivered) == 2

    def test_static_freedom(self, topo43, logic43):
        assert analyze_deadlock_freedom(topo43, logic43).deadlock_free


class TestFig7Fig8DetourRouting:
    """Figs. 7-8: the hardware detour path selection facility."""

    def test_paper_walkthrough(self, topo43):
        """Fig. 8 step by step, in our coordinates: PE(0,0) -> PE(2,2)
        with RTR(2,0) faulty."""
        logic = make_logic(topo43, fault=Fault.router((2, 0)))
        cfg = logic.config
        tree = compute_route(topo43, logic, Unicast((0, 0), (2, 2)))
        els = tree.elements_to((2, 2))
        # step 1: via own router into the X-XB of the source row
        assert els[1] == ("RTR", (0, 0)) and els[2] == ("XB", 0, (0,))
        # step 2: deflected to a detour router (not the faulty column)
        assert els[3][0] == "RTR" and els[3][1][0] != 2
        # step 3: detour router to its Y-XB
        assert els[4][0] == "XB" and els[4][1] == 1
        # step 4: to the D-XB
        assert cfg.dxb_element in els
        # step 5: RC reset, dimension-order to the destination
        assert els[-1] == ("PE", (2, 2))
        trace = tree.rc_trace_to((2, 2))
        assert trace[-1] is RC.NORMAL and RC.DETOUR in trace

    def test_no_trace_left_behind(self, topo43):
        """Paper: 'The packet leaves no trace of the detour routing
        behind' -- after the D-XB the suffix equals a normal route."""
        logic = make_logic(topo43, fault=Fault.router((2, 0)))
        cfg = logic.config
        tree = compute_route(topo43, logic, Unicast((0, 0), (2, 2)))
        els = list(tree.elements_to((2, 2)))
        i = els.index(cfg.dxb_element)
        y = cfg.line_coord(cfg.dxb_line, 1)
        resumed = expected_normal_elements(cfg, (2, y), (2, 2))
        # the post-D-XB suffix: D-XB -> RTR(2, y) -> ... -> PE(2,2)
        assert tuple(els[i + 1 :]) == resumed[1:]

    def test_broadcast_substitution_when_sxb_row_hit(self, topo43):
        """Fig. 7 case (b): the S-XB substitutes when the fault touches it."""
        logic = make_logic(topo43, fault=Fault.router((1, 0)))
        assert logic.config.sxb_line != (0,)
        tree = compute_route(topo43, logic, Broadcast((0, 1)))
        assert tree.delivered == set(topo43.node_coords()) - {(1, 0)}


class TestFig9CombinedDeadlock:
    """Fig. 9: naive detour + broadcast deadlock."""

    def test_static_hazard(self, topo43):
        logic = make_logic(
            topo43, fault=Fault.router((2, 0)), detour_scheme=DetourScheme.NAIVE
        )
        assert not analyze_deadlock_freedom(topo43, logic).deadlock_free

    def test_dynamic_deadlock_between_detour_and_broadcast(self, topo43):
        sim = make_sim(
            topo43, fault=Fault.router((2, 0)), detour_scheme=DetourScheme.NAIVE
        )
        sim.send(
            Packet(Header(source=(3, 2), dest=(3, 2), rc=RC.BROADCAST_REQUEST), length=6),
            at_cycle=0,
        )
        sim.send(Packet(Header(source=(0, 0), dest=(2, 2)), length=6), at_cycle=1)
        sim.send(Packet(Header(source=(1, 0), dest=(3, 1)), length=6), at_cycle=1)
        sim.send(Packet(Header(source=(0, 1), dest=(1, 2)), length=6), at_cycle=2)
        res = sim.run(max_cycles=5000)
        assert res.deadlocked


class TestFig10DeadlockFreeScheme:
    """Fig. 10 / Section 5: D-XB = S-XB serializes both non-dimension-order
    flows and removes the cyclic wait."""

    def test_dxb_equals_sxb(self, topo43):
        logic = make_logic(topo43, fault=Fault.router((2, 0)))
        assert logic.config.dxb_line == logic.config.sxb_line

    def test_detour_passes_through_sxb(self, topo43):
        logic = make_logic(topo43, fault=Fault.router((2, 0)))
        tree = compute_route(topo43, logic, Unicast((0, 0), (2, 2)))
        assert logic.config.sxb_element in tree.elements_to((2, 2))

    def test_same_workload_completes(self, topo43):
        sim = make_sim(topo43, fault=Fault.router((2, 0)))
        sim.send(
            Packet(Header(source=(3, 2), dest=(3, 2), rc=RC.BROADCAST_REQUEST), length=6),
            at_cycle=0,
        )
        sim.send(Packet(Header(source=(0, 0), dest=(2, 2)), length=6), at_cycle=1)
        sim.send(Packet(Header(source=(1, 0), dest=(3, 1)), length=6), at_cycle=1)
        sim.send(Packet(Header(source=(0, 1), dest=(1, 2)), length=6), at_cycle=2)
        res = sim.run(max_cycles=5000)
        assert not res.deadlocked
        assert len(res.delivered) == 4

    def test_static_freedom(self, topo43):
        logic = make_logic(topo43, fault=Fault.router((2, 0)))
        assert analyze_deadlock_freedom(topo43, logic).deadlock_free
