"""Exhaustive safety census (experiment E13).

The paper's Section 5 guarantee is checked for *every* single-fault
location (all routers, all crossbars) on the running-example network, and
the naive scheme's hazard census is taken alongside: the safe scheme must
be clean everywhere, the naive scheme must be hazardous wherever a distinct
D-XB exists.
"""

import pytest

from repro.core import Fault, analyze_deadlock_freedom, make_config, SwitchLogic
from repro.core.config import ConfigError, DetourScheme
from repro.core.coords import all_coords, all_lines
from repro.topology import MDCrossbar

SHAPE = (4, 3)


def all_single_faults(shape):
    for c in all_coords(shape):
        yield Fault.router(c)
    for dim in range(len(shape)):
        for line in all_lines(shape, dim):
            yield Fault.crossbar(dim, line)


@pytest.mark.parametrize(
    "fault", list(all_single_faults(SHAPE)), ids=str
)
def test_safe_scheme_clean_for_every_fault(fault):
    topo = MDCrossbar(SHAPE)
    logic = SwitchLogic(topo, make_config(SHAPE, fault=fault))
    res = analyze_deadlock_freedom(topo, logic)
    assert res.deadlock_free, f"{fault}: {res.hazard and res.hazard.describe()}"


@pytest.mark.parametrize(
    "fault", list(all_single_faults(SHAPE)), ids=str
)
def test_naive_scheme_hazardous_for_every_fault(fault):
    topo = MDCrossbar(SHAPE)
    try:
        cfg = make_config(SHAPE, fault=fault, detour_scheme=DetourScheme.NAIVE)
    except ConfigError:
        pytest.skip("no distinct D-XB available")
    logic = SwitchLogic(topo, cfg)
    res = analyze_deadlock_freedom(topo, logic)
    assert not res.deadlock_free, str(fault)


def test_safe_scheme_clean_for_every_sxb_choice():
    topo = MDCrossbar(SHAPE)
    fault = Fault.router((2, 0))
    clean = 0
    for y in range(SHAPE[1]):
        try:
            cfg = make_config(SHAPE, fault=fault, sxb_line=(y,))
        except ConfigError:
            continue  # rule R2 excludes the fault's row
        logic = SwitchLogic(topo, cfg)
        assert analyze_deadlock_freedom(topo, logic).deadlock_free, y
        clean += 1
    assert clean == 2  # rows 1 and 2 admissible, row 0 excluded


def test_3d_census_sampled():
    shape = (3, 3, 2)
    topo = MDCrossbar(shape)
    for fault in [
        Fault.router((1, 1, 1)),
        Fault.router((0, 2, 0)),
        Fault.crossbar(0, (1, 1)),
        Fault.crossbar(2, (2, 2)),
    ]:
        logic = SwitchLogic(topo, make_config(shape, fault=fault))
        assert analyze_deadlock_freedom(topo, logic).deadlock_free, str(fault)
