"""Golden regression tests: the exact route strings of the paper's worked
examples, pinned so any future change to the switch logic that alters a
figure's path fails loudly."""

from repro.core import Broadcast, Fault, Unicast, compute_route
from repro.viz import render_route
from tests.conftest import make_logic


class TestGoldenRoutes:
    def test_normal_xy_route(self, topo43, logic43):
        t = compute_route(topo43, logic43, Unicast((0, 0), (2, 2)))
        assert render_route(t, (2, 2)) == (
            "PE(0, 0) -n-> RTR(0, 0) -n-> X-XB(0,) -n-> RTR(2, 0) "
            "-n-> Y-XB(2,) -n-> RTR(2, 2) -n-> PE(2, 2)"
        )

    def test_fig6_broadcast_route(self, topo43, logic43):
        t = compute_route(topo43, logic43, Broadcast((2, 2)))
        assert render_route(t, (3, 1)) == (
            "PE(2, 2) -q-> RTR(2, 2) -q-> Y-XB(2,) -q-> RTR(2, 0) "
            "-q-> X-XB(0,) -b-> RTR(3, 0) -b-> Y-XB(3,) -b-> RTR(3, 1) "
            "-b-> PE(3, 1)"
        )

    def test_fig8_fig10_detour_route(self, topo43):
        logic = make_logic(topo43, fault=Fault.router((2, 0)))
        t = compute_route(topo43, logic, Unicast((0, 0), (2, 2)))
        assert render_route(t, (2, 2)) == (
            "PE(0, 0) -n-> RTR(0, 0) -n-> X-XB(0,) -d-> RTR(1, 0) "
            "-d-> Y-XB(1,) -d-> RTR(1, 1) -d-> X-XB(1,) -n-> RTR(2, 1) "
            "-n-> Y-XB(2,) -n-> RTR(2, 2) -n-> PE(2, 2)"
        )

    def test_source_row_xb_fault_detour(self, topo43):
        logic = make_logic(topo43, fault=Fault.crossbar(0, (0,)))
        t = compute_route(topo43, logic, Unicast((1, 0), (3, 0)))
        # the packet is injected NORMAL; the source router flips RC to
        # detour because its own X-XB is the faulty one
        assert render_route(t, (3, 0)) == (
            "PE(1, 0) -n-> RTR(1, 0) -d-> Y-XB(1,) -d-> RTR(1, 1) "
            "-d-> X-XB(1,) -n-> RTR(3, 1) -n-> Y-XB(3,) -n-> RTR(3, 0) "
            "-n-> PE(3, 0)"
        )

    def test_rotated_order_route(self, topo43):
        # faulty Y-XB forces Y-X order
        logic = make_logic(topo43, fault=Fault.crossbar(1, (2,)))
        t = compute_route(topo43, logic, Unicast((0, 0), (3, 2)))
        assert render_route(t, (3, 2)) == (
            "PE(0, 0) -n-> RTR(0, 0) -n-> Y-XB(0,) -n-> RTR(0, 2) "
            "-n-> X-XB(2,) -n-> RTR(3, 2) -n-> PE(3, 2)"
        )
