"""Integration tests: the paper's mechanisms generalized to three
dimensions, as deployed on the real (3D) SR2201."""

import pytest

from repro.core import (
    Broadcast,
    Fault,
    Header,
    Packet,
    RC,
    Unicast,
    analyze_deadlock_freedom,
    compute_route,
)
from repro.core.config import DetourScheme
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from tests.conftest import make_logic

SHAPE = (3, 3, 3)


class TestBroadcast3D:
    def test_routing_is_zyxyz(self, topo333, logic333):
        """The 2D Y-X-Y generalizes: request walks reverse order (Z then
        Y), the S-XB spreads X, then Y, then Z."""
        tree = compute_route(topo333, logic333, Broadcast((2, 2, 2)))
        path = tree.elements_to((1, 1, 1))
        dims = [el[1] for el in path if el[0] == "XB"]
        assert dims == [2, 1, 0, 1, 2]

    def test_simulated_3d_broadcast_storm(self, topo333):
        sim = NetworkSimulator(
            MDCrossbarAdapter(make_logic(topo333)), SimConfig(stall_limit=500)
        )
        for src in [(0, 0, 0), (2, 2, 2), (1, 2, 0)]:
            sim.send(
                Packet(Header(source=src, dest=src, rc=RC.BROADCAST_REQUEST), length=6)
            )
        res = sim.run(max_cycles=20_000)
        assert not res.deadlocked
        assert len(res.delivered) == 3


class TestDetour3D:
    @pytest.mark.parametrize(
        "fault_coord", [(1, 1, 1), (2, 0, 0), (0, 2, 1)], ids=str
    )
    def test_detour_reaches_everything(self, topo333, fault_coord):
        logic = make_logic(topo333, fault=Fault.router(fault_coord))
        live = [c for c in topo333.node_coords() if c != fault_coord]
        for s in live[::5]:
            for t in live[::7]:
                if s != t:
                    tree = compute_route(topo333, logic, Unicast(s, t))
                    assert t in tree.delivered
                    assert ("RTR", fault_coord) not in tree.elements_to(t)

    def test_mid_route_deflection(self, topo333):
        """A fault at the second turn router: the deflection happens at a
        non-first-dimension crossbar, and the packet still arrives via the
        D-XB with RC reset."""
        logic = make_logic(topo333, fault=Fault.router((2, 2, 0)))
        cfg = logic.config
        # route (0,0,0) -> (2,2,2) normally turns at (2,0,0) then (2,2,0)
        tree = compute_route(topo333, logic, Unicast((0, 0, 0), (2, 2, 2)))
        els = tree.elements_to((2, 2, 2))
        assert ("RTR", (2, 2, 0)) not in els
        assert cfg.dxb_element in els
        assert tree.rc_trace_to((2, 2, 2))[-1] is RC.NORMAL

    def test_fig9_fig10_in_3d(self, topo333):
        fault = Fault.router((1, 1, 1))
        naive = make_logic(topo333, fault=fault, detour_scheme=DetourScheme.NAIVE)
        safe = make_logic(topo333, fault=fault)
        assert not analyze_deadlock_freedom(topo333, naive).deadlock_free
        assert analyze_deadlock_freedom(topo333, safe).deadlock_free

    def test_simulated_mixed_traffic_3d_with_fault(self, topo333):
        logic = make_logic(topo333, fault=Fault.router((1, 1, 1)))
        sim = NetworkSimulator(MDCrossbarAdapter(logic), SimConfig(stall_limit=500))
        sim.send(
            Packet(Header(source=(2, 2, 2), dest=(2, 2, 2), rc=RC.BROADCAST_REQUEST), length=6)
        )
        sim.send(Packet(Header(source=(0, 0, 0), dest=(1, 1, 2)), length=6), at_cycle=1)
        sim.send(Packet(Header(source=(0, 1, 1), dest=(2, 1, 1)), length=6), at_cycle=2)
        res = sim.run(max_cycles=20_000)
        assert not res.deadlocked
        assert len(res.delivered) == 3
