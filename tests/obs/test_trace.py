"""Structured trace tests: schema-versioned JSONL capture over the hook
bus, the reader's schema check, and the TextTrace compatibility layer."""

import io
import json

import pytest

from repro.core import Header, Packet
from repro.obs import (
    EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    TraceRecorder,
    read_trace,
)
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig, TextTrace
from repro.sim.engine import PHASES
from tests.conftest import make_logic


def make_sim(topo, **kw):
    return NetworkSimulator(
        MDCrossbarAdapter(make_logic(topo, **kw)), SimConfig(stall_limit=500)
    )


def traced_run(topo, **recorder_kw):
    sim = make_sim(topo)
    rec = TraceRecorder(**recorder_kw).attach(sim)
    pkt = Packet(Header(source=(0, 0), dest=(3, 2)), length=4)
    sim.send(pkt)
    res = sim.run()
    return sim, res, rec, pkt


class TestRecorder:
    def test_default_events_cover_a_unicast(self, topo43):
        _, res, rec, pkt = traced_run(topo43)
        kinds = {r["kind"] for r in rec.records}
        assert kinds == {"inject", "grant", "deliver", "log"}
        (deliver,) = rec.of_kind("deliver")
        assert deliver["pid"] == pkt.pid
        assert deliver["at"] == [3, 2]
        assert deliver["latency"] == pkt.latency

    def test_grant_records_name_the_element(self, topo43):
        _, _, rec, _ = traced_run(topo43)
        grants = rec.of_kind("grant")
        assert grants
        for g in grants:
            assert g["element"]
            assert g["input"] is None or isinstance(g["input"], int)
            assert all(
                isinstance(cid, int) and isinstance(vc, int)
                for cid, vc in g["outputs"]
            )

    def test_phase_records_opt_in(self, topo43):
        _, res, rec, _ = traced_run(topo43, events=("phase",))
        assert len(rec.of_kind("phase")) == res.cycles * len(PHASES)

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(events=("grant", "bogus"))
        assert "bogus" not in EVENT_KINDS

    def test_buffer_is_bounded(self, topo43):
        _, _, rec, _ = traced_run(topo43, limit=3)
        assert len(rec) == 3


class TestJsonlSink:
    def test_sink_starts_with_schema_header(self, topo43):
        sink = io.StringIO()
        _, _, rec, _ = traced_run(topo43, sink=sink)
        lines = sink.getvalue().splitlines()
        first = json.loads(lines[0])
        assert first["kind"] == "trace_header"
        assert first["schema"] == TRACE_SCHEMA_VERSION
        assert first["shape"] == [4, 3]
        # every line is one standalone JSON object
        assert len(lines) == 1 + len(rec.records)
        for line in lines:
            assert json.loads(line)

    def test_read_trace_roundtrip(self, topo43):
        sink = io.StringIO()
        _, _, rec, _ = traced_run(topo43, sink=sink)
        header, records, malformed = read_trace(sink.getvalue().splitlines())
        assert header["topology"] == "MDCrossbar"
        assert records == list(rec.records)
        assert malformed == []

    def test_read_trace_rejects_unknown_schema(self):
        bad = json.dumps({"kind": "trace_header", "schema": 999})
        with pytest.raises(ValueError):
            read_trace([bad])

    def test_read_trace_accepts_schema_1(self):
        lines = [
            json.dumps({"kind": "trace_header", "schema": 1, "shape": [4, 3]}),
            json.dumps({"kind": "deliver", "cycle": 9, "pid": 0}),
        ]
        header, records, malformed = read_trace(lines)
        assert header["schema"] == 1
        assert len(records) == 1 and malformed == []


class TestMalformedLines:
    def test_truncated_tail_is_skipped_and_reported(self, topo43):
        """An interrupted run leaves a half-written last line; the read
        keeps everything before it and reports the damage."""
        sink = io.StringIO()
        _, _, rec, _ = traced_run(topo43, sink=sink)
        text = sink.getvalue() + '{"kind": "deliver", "cyc'  # no newline
        header, records, malformed = read_trace(text.splitlines())
        assert header is not None
        assert records == list(rec.records)
        assert len(malformed) == 1
        bad = malformed[0]
        assert bad["line"] == len(text.splitlines())
        assert bad["text"].startswith('{"kind": "deliver"')
        assert "error" in bad

    def test_non_object_line_is_reported(self):
        _, records, malformed = read_trace(["[1, 2, 3]", '{"kind": "log"}'])
        assert len(records) == 1
        assert malformed[0]["error"] == "not a JSON object"

    def test_blank_lines_are_not_malformed(self):
        _, records, malformed = read_trace(["", "  ", '{"kind": "log"}'])
        assert len(records) == 1 and malformed == []

    def test_strict_mode_raises_on_first_bad_line(self):
        with pytest.raises(ValueError, match="line 1"):
            read_trace(['{"trunc', '{"kind": "log"}'], strict=True)
        with pytest.raises(ValueError, match="not a JSON object"):
            read_trace(["42"], strict=True)


class TestTextTraceCompatibility:
    def test_attach_via_hook_bus(self, topo43):
        sim = make_sim(topo43)
        trace = TextTrace(100).attach(sim)
        sim.send(Packet(Header(source=(0, 0), dest=(3, 2)), length=4))
        sim.run()
        assert trace.matching("injected")
        assert trace.matching("completed")

    def test_rides_on_the_structured_recorder(self, topo43):
        sim = make_sim(topo43)
        trace = TextTrace(100).attach(sim)
        sim.send(Packet(Header(source=(0, 0), dest=(1, 0)), length=2))
        sim.run()
        assert trace.recorder.events == ("log",)
        assert len(trace.events) == len(trace.recorder.records)
        cycle, message = trace.events[0]
        assert isinstance(cycle, int) and isinstance(message, str)
