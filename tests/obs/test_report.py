"""Report renderer tests: deterministic output in both dialects, graceful
degeneracy (no spans, no broadcasts, nothing blocked)."""

import pytest

from repro.obs import MetricSet, PacketSpanCollector
from repro.obs.report import SXB_WAIT_BUCKETS, _bucketize, render_report
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from repro.traffic import BernoulliInjector
from tests.conftest import make_logic


def collected_spans(topo):
    sim = NetworkSimulator(
        MDCrossbarAdapter(make_logic(topo)), SimConfig(stall_limit=2000)
    )
    col = PacketSpanCollector().attach(sim)
    sim.add_generator(BernoulliInjector(load=0.3, seed=3, stop_at=120))
    sim.run(max_cycles=4000, until_drained=False)
    col.detach(sim)
    return col.span_set()


class TestRenderReport:
    def test_text_report_sections(self, topo43):
        spans = collected_spans(topo43)
        out = render_report(
            spans=spans, run_info={"shape": "4x3"}, fmt="text"
        )
        assert "Latency decomposition" in out
        assert "Blocked-cycle attribution" in out
        assert "S-XB serialization wait" in out
        assert "shape" in out and "4x3" in out
        assert "#" in out  # the attribution bars rendered

    def test_markdown_report_uses_md_structure(self, topo43):
        spans = collected_spans(topo43)
        out = render_report(spans=spans, fmt="md", title="T")
        assert out.startswith("# T")
        assert "## Latency decomposition" in out
        assert "|--" in out  # md table separator row

    def test_same_inputs_same_bytes(self, topo43):
        spans = collected_spans(topo43)
        assert render_report(spans=spans) == render_report(spans=spans)

    def test_metrics_and_heatmap_sections(self):
        ms = MetricSet()
        ms.counter("deliveries").inc(3)
        out = render_report(metrics=ms, heatmap="1 2\n3 4")
        assert "Metrics" in out and "deliveries" in out
        assert "Channel utilization heatmap" in out and "1 2" in out

    def test_empty_report_renders(self):
        out = render_report()
        assert out.strip() == "Simulation report\n=================".strip()

    def test_empty_span_set_degenerates_gracefully(self):
        from repro.obs import SpanSet

        out = render_report(spans=SpanSet())
        assert "No completed packets" in out
        assert "No blocked cycles recorded" in out
        assert "No broadcasts in this run" in out

    def test_bad_format_raises(self):
        with pytest.raises(ValueError):
            render_report(fmt="html")


class TestBucketize:
    def test_buckets_cover_all_values(self):
        rows = _bucketize([0, 1, 2, 5, 100], SXB_WAIT_BUCKETS)
        assert sum(c for _, c in rows) == 5
        assert rows[0] == ("<=0", 1)
        assert rows[-1] == (f">{SXB_WAIT_BUCKETS[-1]}", 1)
