"""Unit tests for the metric primitives: counters, gauges, histograms,
and the mergeable, picklable :class:`MetricSet`."""

import json
import pickle

import pytest

from repro.obs import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    MergeError,
    MetricSet,
    merge_metric_sets,
)


class TestCounter:
    def test_inc_and_merge(self):
        a, b = Counter("n"), Counter("n")
        a.inc()
        a.inc(4)
        b.inc(2)
        a.merge(b)
        assert a.value == 7

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)
        with pytest.raises(ValueError):
            LabeledCounter("n").inc("a", -1)


class TestLabeledCounter:
    def test_per_label_accumulation(self):
        c = LabeledCounter("c")
        c.inc("a")
        c.inc("b", 3)
        c.inc("a", 2)
        assert c.values == {"a": 3, "b": 3}
        assert c.total() == 6

    def test_top_sorts_by_count_then_label(self):
        c = LabeledCounter("c")
        c.inc("x", 2)
        c.inc("y", 5)
        c.inc("a", 2)
        assert c.top(2) == [("y", 5), ("a", 2)]

    def test_merge_adds_per_label(self):
        a, b = LabeledCounter("c"), LabeledCounter("c")
        a.inc("only-a")
        b.inc("only-b", 2)
        b.inc("only-a", 1)
        a.merge(b)
        assert a.values == {"only-a": 2, "only-b": 2}


class TestGauge:
    def test_unobserved_is_none_not_zero(self):
        g = Gauge("g")
        assert g.last is None and g.min is None and g.max is None

    def test_observations_track_extremes(self):
        g = Gauge("g")
        for v in (3, 9, 1):
            g.observe(v)
        assert (g.last, g.min, g.max) == (1, 1, 9)

    def test_merge_combines_extremes_keeps_right_last(self):
        a, b = Gauge("g"), Gauge("g")
        a.observe(5)
        b.observe(2)
        b.observe(8)
        a.merge(b)
        assert (a.last, a.min, a.max) == (8, 2, 8)
        # merging an unobserved gauge changes nothing
        a.merge(Gauge("g"))
        assert (a.last, a.min, a.max) == (8, 2, 8)


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram("h", bounds=(10, 20))
        for v in (5, 10, 11, 20, 21, 1000):
            h.observe(v)
        assert h.counts == [2, 2, 2]
        assert h.count == 6

    def test_mean_tracks_exact_total(self):
        h = Histogram("h")
        h.observe(10)
        h.observe(30)
        assert h.mean == pytest.approx(20)
        assert Histogram("empty").mean is None

    def test_quantile_monotone(self):
        h = Histogram("h")
        for v in range(1, 200):
            h.observe(v)
        assert h.quantile(0.5) <= h.quantile(0.95) <= h.quantile(0.99)

    def test_merge_requires_matching_bounds(self):
        a, b = Histogram("h", bounds=(1, 2)), Histogram("h", bounds=(1, 3))
        with pytest.raises(MergeError):
            a.merge(b)

    def test_merge_adds_counts(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe(4)
        b.observe(4)
        b.observe(5000)
        a.merge(b)
        assert a.counts[0] == 2 and a.counts[-1] == 1

    def test_render_has_one_row_per_bucket(self):
        h = Histogram("h", bounds=(10, 20))
        h.observe(5)
        assert len(h.render().splitlines()) == 1 + 3  # head + 2 bounds + overflow

    def test_default_bounds_are_the_latency_buckets(self):
        assert Histogram("h").bounds == LATENCY_BUCKETS


class TestMetricSet:
    def populated(self):
        s = MetricSet()
        s.counter("n").inc(3)
        s.labeled("by_label").inc("a", 2)
        s.gauge("depth").observe(7)
        s.histogram("lat").observe(12)
        return s

    def test_get_or_create_returns_same_instance(self):
        s = MetricSet()
        assert s.counter("x") is s.counter("x")
        assert "x" in s and "y" not in s

    def test_name_kind_collision_rejected(self):
        s = MetricSet()
        s.counter("x")
        with pytest.raises(MergeError):
            s.gauge("x")

    def test_to_dict_is_sorted_and_json_clean(self):
        d = self.populated().to_dict()
        assert list(d) == sorted(d)
        text = json.dumps(d, allow_nan=False)  # no NaN/inf anywhere
        assert json.loads(text) == d

    def test_merge_is_elementwise(self):
        a, b = self.populated(), self.populated()
        b.counter("extra").inc()
        a.merge(b)
        assert a["n"].value == 6
        assert a["by_label"].values == {"a": 4}
        assert a["extra"].value == 1

    def test_merge_clones_metrics_new_to_the_target(self):
        a, b = MetricSet(), self.populated()
        a.merge(b)
        a.counter("n").inc(10)
        assert b["n"].value == 3, "merge must not alias the source's metrics"

    def test_merge_metric_sets_skips_none(self):
        merged = merge_metric_sets([None, self.populated(), self.populated()])
        assert merged["n"].value == 6

    def test_pickle_roundtrip_preserves_dict(self):
        s = self.populated()
        clone = pickle.loads(pickle.dumps(s))
        assert clone.to_dict() == s.to_dict()

    def test_merge_order_is_deterministic_bytes(self):
        """Same sets merged in the same order -> byte-identical JSON (the
        property the parallel sweep's order-preserving merge relies on)."""
        runs = []
        for _ in range(2):
            parts = [self.populated(), self.populated()]
            parts[1].counter("n").inc(5)
            runs.append(json.dumps(merge_metric_sets(parts).to_dict()))
        assert runs[0] == runs[1]

    def test_summary_mentions_each_metric(self):
        text = self.populated().summary()
        for name in ("n", "by_label", "depth", "lat"):
            assert name in text
