"""Tests for the metrics/tracing subsystem (:mod:`repro.obs`)."""
