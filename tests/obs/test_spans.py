"""Span tests: the latency accounting identity is exact, attribution is
complete (zero detour overhead on a fault-free network), collection never
perturbs the simulation, and span sets pickle/merge like metric sets."""

import io
import json
import pickle

from repro.core import Fault, Header, Packet, RC, Unicast, compute_route
from repro.obs import (
    PacketSpanCollector,
    SpanSet,
    TraceRecorder,
    merge_span_sets,
    read_trace,
    spans_from_trace,
)
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from repro.traffic import BernoulliInjector
from tests.conftest import make_logic


def make_sim(topo, **kw):
    return NetworkSimulator(
        MDCrossbarAdapter(make_logic(topo, **kw)), SimConfig(stall_limit=2000)
    )


def loaded_run(topo, load=0.3, seed=3, stop_at=150, collector=False, **kw):
    sim = make_sim(topo, **kw)
    col = PacketSpanCollector().attach(sim) if collector else None
    sim.add_generator(
        BernoulliInjector(load=load, seed=seed, stop_at=stop_at)
    )
    res = sim.run(max_cycles=4000, until_drained=False)
    if col is not None:
        col.detach(sim)
    return sim, res, col


def assert_identity(span):
    comp = span.components()
    assert comp is not None
    assert (
        comp["queue_wait"] + comp["blocked"] + comp["sxb_wait"]
        + comp["transfer"] == span.latency
    )


class TestAccountingIdentity:
    def test_single_unicast_decomposes_exactly(self, topo43):
        sim = make_sim(topo43)
        col = PacketSpanCollector().attach(sim)
        pkt = Packet(Header(source=(0, 0), dest=(3, 2), rc=RC.NORMAL), length=4)
        sim.send(pkt)
        sim.run(max_cycles=500)
        (span,) = col.span_set().spans
        assert_identity(span)
        # an uncontended packet never blocks: latency == hops + length
        route = compute_route(
            topo43, make_logic(topo43), Unicast((0, 0), (3, 2))
        )
        assert span.blocked_total == 0 and span.sxb_wait == 0
        assert span.transfer == len(route.path_to((3, 2))) + pkt.length
        assert span.detour_overhead == 0

    def test_contended_run_attributes_every_stalled_cycle(self, topo43):
        """The strong form of the identity: with a fault-free network,
        detour_overhead == 0 for every unicast, which means every cycle
        the packet failed to advance was classified as blocked/sxb/queue
        (nothing leaked into the transfer residual)."""
        _, res, col = loaded_run(topo43, collector=True)
        spans = col.span_set().spans
        assert len(spans) == len(res.delivered) > 30
        total_blocked = 0
        for span in spans:
            assert_identity(span)
            assert span.detour_overhead == 0
            total_blocked += span.blocked_total
        assert total_blocked > 0  # the run actually had contention

    def test_broadcast_serialization_shows_up_as_sxb_wait(self, topo43):
        sim = make_sim(topo43)
        col = PacketSpanCollector().attach(sim)
        pkts = [
            Packet(
                Header(source=src, dest=src, rc=RC.BROADCAST_REQUEST),
                length=4,
            )
            for src in ((2, 1), (3, 2))
        ]
        for p in pkts:
            sim.send(p)
        sim.run(max_cycles=2000)
        spans = {s.pid: s for s in col.span_set().spans}
        assert len(spans) == 2
        for span in spans.values():
            assert_identity(span)
            assert span.deliveries == span.expected == topo43.num_nodes
        # one of the two serialized broadcasts waited for the S-XB
        assert sorted(s.sxb_wait for s in spans.values())[0] == 0
        assert sorted(s.sxb_wait for s in spans.values())[1] > 0

    def test_detour_overhead_equals_extra_route_length(self, topo43):
        fault = Fault.router((2, 0))
        sim = make_sim(topo43, faults=(fault,))
        col = PacketSpanCollector().attach(sim)
        # dimension-order (0,0)->(2,2) turns at router (2,0), the fault
        src, dst = (0, 0), (2, 2)
        sim.send(Packet(Header(source=src, dest=dst, rc=RC.NORMAL), length=4))
        sim.run(max_cycles=500)
        (span,) = col.span_set().spans
        assert_identity(span)
        faulted = compute_route(
            topo43, make_logic(topo43, faults=(fault,)), Unicast(src, dst)
        )
        base = compute_route(topo43, make_logic(topo43), Unicast(src, dst))
        expected = len(faulted.path_to(dst)) - len(base.path_to(dst))
        assert expected > 0
        assert span.detour_overhead == expected


class TestEngineParity:
    def test_span_collection_changes_nothing(self, topo43):
        """Fingerprint parity: spans + a full v2 trace recorder attached
        vs a bare run."""
        _, bare, _ = loaded_run(topo43)
        sim = make_sim(topo43)
        col = PacketSpanCollector().attach(sim)
        rec = TraceRecorder(sink=io.StringIO()).attach(sim)
        sim.add_generator(BernoulliInjector(load=0.3, seed=3, stop_at=150))
        observed = sim.run(max_cycles=4000, until_drained=False)
        assert observed.fingerprint() == bare.fingerprint()
        col.detach(sim)
        rec.detach()
        assert all(not getattr(sim.hooks, n) for n in sim.hooks.__slots__)


class TestSpanSetMechanics:
    def test_pickle_roundtrip(self, topo43):
        _, _, col = loaded_run(topo43, collector=True)
        ss = col.span_set()
        back = pickle.loads(pickle.dumps(ss))
        assert json.dumps(back.to_dict()) == json.dumps(ss.to_dict())

    def test_rebase_and_merge_are_order_stable(self, topo43):
        _, _, col = loaded_run(topo43, collector=True, seed=3)
        _, _, col2 = loaded_run(topo43, collector=True, seed=4)
        a, b = col.span_set().rebased(), col2.span_set().rebased()
        merged = merge_span_sets([a, None, b])
        assert len(merged) == len(a) + len(b)
        # rebasing makes the serialization independent of the absolute
        # pid counter, which differs between processes
        assert a.spans[0].pid == 0 or a.incomplete[0].pid == 0

    def test_incomplete_packets_still_feed_attribution(self, topo43):
        sim = make_sim(topo43)
        col = PacketSpanCollector().attach(sim)
        sim.add_generator(BernoulliInjector(load=0.4, seed=7, stop_at=100))
        sim.run(max_cycles=40, until_drained=False)  # cut the run short
        ss = col.span_set()
        assert len(ss.incomplete) > 0
        assert set(ss.blocked_by_port()) >= set(
            ss.blocked_by_port(include_incomplete=False)
        )

    def test_metrics_names(self, topo43):
        _, _, col = loaded_run(topo43, collector=True)
        m = col.metrics()
        assert m["spans_completed"].value == len(col.span_set().spans)
        for name in ("spans_incomplete", "span_queue_wait", "span_sxb_wait",
                     "span_blocked_cycles", "span_detour_overhead_cycles"):
            assert name in m

    def test_empty_set_aggregates(self):
        ss = SpanSet()
        assert ss.totals()["packets"] == 0
        assert ss.top_blocked() == []
        assert ss.sxb_waits() == []
        assert len(merge_span_sets([])) == 0


class TestTraceReplay:
    def test_trace_replay_matches_live_collection(self, topo43):
        sim = make_sim(topo43)
        col = PacketSpanCollector().attach(sim)
        sink = io.StringIO()
        rec = TraceRecorder(sink=sink, limit=None).attach(sim)
        sim.add_generator(BernoulliInjector(load=0.3, seed=3, stop_at=150))
        sim.run(max_cycles=4000, until_drained=False)
        col.detach(sim)
        rec.detach()
        header, records, malformed = read_trace(sink.getvalue().splitlines())
        assert malformed == []
        replayed = spans_from_trace(header, records)
        live = col.span_set()
        assert replayed.totals() == live.totals()
        assert replayed.blocked_by_port() == live.blocked_by_port()
        assert [s.pid for s in replayed.spans] == [s.pid for s in live.spans]


class TestRuntimeIntegration:
    def test_parallel_span_merge_is_byte_identical(self):
        from repro.obs.spans import merge_span_sets as merge
        from repro.runtime import RunSpec, run_specs

        specs = [
            RunSpec(
                kind="md-crossbar", shape=(4, 3), load=load, seed=2,
                warmup=50, window=100, drain=500, spans=True,
            )
            for load in (0.1, 0.2, 0.3)
        ]
        serial = run_specs(specs, jobs=None)
        fanned = run_specs(specs, jobs=4)
        a = merge(r.spans for r in serial).to_dict()
        b = merge(r.spans for r in fanned).to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
