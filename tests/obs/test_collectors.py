"""Collector tests: metrics are a pure read of the simulation (attaching
them changes no outcome), they agree with the engine's own public
counters, and the suite detaches cleanly."""

from repro.core import Header, Packet, RC
from repro.core.config import BroadcastMode
from repro.obs import (
    ChannelUtilization,
    CollectorSuite,
    DeadlockWatch,
    DeliveryCollector,
    GrantCollector,
    PhaseProfiler,
    attach_standard_collectors,
)
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from repro.traffic import BernoulliInjector
from tests.conftest import make_logic


def make_sim(topo, **kw):
    return NetworkSimulator(
        MDCrossbarAdapter(make_logic(topo, **kw)), SimConfig(stall_limit=500)
    )


def loaded_run(topo, suite_first=None):
    sim = make_sim(topo)
    suite = suite_first(sim) if suite_first else None
    sim.add_generator(BernoulliInjector(load=0.2, seed=3, stop_at=80))
    res = sim.run(max_cycles=800, until_drained=False)
    return sim, res, suite


class TestEngineParity:
    def test_attached_but_idle_collectors_change_nothing(self, topo43):
        """Acceptance criterion: the fingerprint of a run with the full
        collector suite attached equals the bare run's."""
        _, bare, _ = loaded_run(topo43)
        _, observed, suite = loaded_run(topo43, CollectorSuite)
        assert observed.fingerprint() == bare.fingerprint()
        assert suite.metrics()["deliveries"].value == len(observed.delivered)

    def test_unattached_engine_has_empty_hook_lists(self, topo43):
        """The zero-cost guarantee rests on empty subscription lists."""
        sim = make_sim(topo43)
        hooks = sim.hooks
        assert all(not getattr(hooks, n) for n in hooks.__slots__)
        suite = CollectorSuite(sim)
        assert any(getattr(hooks, n) for n in hooks.__slots__)
        suite.detach()
        assert all(not getattr(hooks, n) for n in hooks.__slots__)


class TestAgainstEngineCounters:
    def test_delivery_and_grant_counts(self, topo43):
        sim, res, suite = loaded_run(topo43, CollectorSuite)
        m = suite.metrics()
        assert m["deliveries"].value == len(res.delivered)
        assert m["latency_cycles"].count == len(res.delivered)
        assert m["grants"].value > 0
        assert m["grants_by_element"].total() == m["grants"].value

    def test_phase_profile_sums_to_engine_totals(self, topo43):
        sim, res, suite = loaded_run(topo43, CollectorSuite)
        m = suite.metrics()
        assert m["cycles"].value == res.cycles
        moved = (
            m["phase.transfer.flit_moves"].value
            + m["phase.eject.ejected_flits"].value
        )
        assert moved == sim.flit_moves
        assert m["phase.inject.packets_injected"].value == sim.injected
        assert m["phase.eject.completed_packets"].value == len(res.delivered)

    def test_channel_busy_agrees_with_engine(self, topo43):
        sim, res, suite = loaded_run(topo43, CollectorSuite)
        m = suite.metrics()
        assert m["chan.busy_cycles"].total() == sum(
            sim.channel_busy.values()
        )
        # held cycles are keyed down to the VC; busy cycles per port
        assert m["chan.held_cycles"].total() > 0
        assert all(":vc" in k for k in m["chan.held_cycles"].values)
        assert all(":vc" not in k for k in m["chan.busy_cycles"].values)

    def test_heatmap_renders_grid(self, topo43):
        _, _, suite = loaded_run(topo43, CollectorSuite)
        rows = suite.find(ChannelUtilization).heatmap().splitlines()
        assert len(rows) == 3
        assert all(len(r.split()) == 4 for r in rows)


class TestEventCollectors:
    def test_multicast_grants_on_broadcast(self, topo43):
        sim = make_sim(topo43)
        suite = CollectorSuite(sim)
        sim.send(
            Packet(
                Header(source=(1, 1), dest=(1, 1), rc=RC.BROADCAST_REQUEST),
                length=4,
            )
        )
        sim.run()
        m = suite.metrics()
        assert m["grants_multicast"].value > 0

    def test_deadlock_watch_fires_once(self, topo43):
        sim = make_sim(topo43, broadcast_mode=BroadcastMode.NAIVE)
        suite = CollectorSuite(sim)
        for src in [(2, 1), (3, 2)]:
            sim.send(
                Packet(Header(source=src, dest=src, rc=RC.BROADCAST), length=6)
            )
        res = sim.run(max_cycles=2000)
        assert res.deadlocked
        m = suite.metrics()
        assert m["deadlocks"].value == 1
        assert m["deadlock_cycle"].last == res.deadlock.cycle
        assert m["deadlock_blocked_packets"].value >= 2

    def test_quiet_run_contributes_no_deadlock_metrics(self, topo43):
        _, res, suite = loaded_run(topo43, CollectorSuite)
        assert not res.deadlocked
        assert "deadlocks" not in suite.metrics()


class TestSuitePlumbing:
    def test_find_locates_each_standard_collector(self, topo43):
        suite = attach_standard_collectors(make_sim(topo43))
        for cls in (
            DeliveryCollector,
            GrantCollector,
            PhaseProfiler,
            ChannelUtilization,
            DeadlockWatch,
        ):
            assert isinstance(suite.find(cls), cls)

    def test_detach_freezes_the_metrics(self, topo43):
        sim = make_sim(topo43)
        suite = CollectorSuite(sim)
        sim.send(Packet(Header(source=(0, 0), dest=(3, 2)), length=4))
        sim.run()
        before = suite.metrics().to_dict()
        suite.detach()
        sim.send(Packet(Header(source=(0, 0), dest=(3, 2)), length=4))
        sim.run()
        assert suite.metrics().to_dict() == before

    def test_metrics_merge_across_two_runs(self, topo43):
        suites = []
        for _ in range(2):
            sim = make_sim(topo43)
            suites.append(CollectorSuite(sim))
            sim.send(Packet(Header(source=(0, 0), dest=(3, 2)), length=4))
            sim.run()
        from repro.obs import merge_metric_sets

        merged = merge_metric_sets(s.metrics() for s in suites)
        assert merged["deliveries"].value == 2
