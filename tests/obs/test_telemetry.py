"""The sweep-runtime run ledger: schema-versioned JSONL writing, the
tolerant reader, the identity projection (strip wall/placement fields),
and the live dashboard's pure-rendering pieces."""

import io
import json
import math
from types import SimpleNamespace

import pytest

from repro.obs.telemetry import (
    CACHE_TIERS,
    LEDGER_KINDS,
    LEDGER_SCHEMA_VERSION,
    READABLE_LEDGER_VERSIONS,
    RUNTIME_FIELDS,
    RUNTIME_KINDS,
    LiveDashboard,
    SweepLedger,
    _spec_label,
    ledger_identity,
    read_ledger,
    spec_outcome,
    strip_ledger,
    worker_names,
)


def fake_result(mean=11.5, count=6, deadlocked=False, recoveries=0):
    """Duck-typed PointResult stand-in: telemetry must not need the
    runtime layer."""
    return SimpleNamespace(
        spec=SimpleNamespace(
            to_dict=lambda: {"kind": "md-crossbar", "shape": [3, 3],
                             "load": 0.1, "seed": 1}
        ),
        point=SimpleNamespace(
            latency=SimpleNamespace(count=count, mean=mean),
            cycles=810,
            deadlocked=deadlocked,
            recoveries=recoveries,
        ),
        wall_time=0.0042,
    )


class TestSweepLedger:
    def test_header_is_written_first(self):
        sink = io.StringIO()
        ledger = SweepLedger(sink=sink)
        ledger.record("sweep_start", run=1, specs=2)
        lines = sink.getvalue().splitlines()
        assert json.loads(lines[0]) == {
            "kind": "ledger_header",
            "schema": LEDGER_SCHEMA_VERSION,
        }
        assert json.loads(lines[1])["kind"] == "sweep_start"

    def test_records_buffer_without_a_sink(self):
        ledger = SweepLedger()
        ledger.record("sweep_start", run=1, specs=2)
        ledger.record("sweep_end", run=1, specs=2)
        assert len(ledger) == 3  # header + 2
        assert [r["kind"] for r in ledger.of_kind("sweep_end")] == [
            "sweep_end"
        ]

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown ledger record kind"):
            SweepLedger().record("made_up_kind")

    def test_limit_bounds_the_buffer(self):
        ledger = SweepLedger(limit=3)
        for i in range(10):
            ledger.record("spec_done", i=i)
        assert len(ledger.records) == 3
        assert [r["i"] for r in ledger.records] == [7, 8, 9]

    def test_every_runtime_kind_is_a_ledger_kind(self):
        assert RUNTIME_KINDS <= set(LEDGER_KINDS)
        assert LEDGER_SCHEMA_VERSION in READABLE_LEDGER_VERSIONS


class TestReadLedger:
    def write_sample(self):
        sink = io.StringIO()
        ledger = SweepLedger(sink=sink)
        ledger.record("sweep_start", run=1, specs=1)
        ledger.record("spec_done", run=1, i=0, cycles=7)
        ledger.record("sweep_end", run=1, specs=1)
        return sink.getvalue()

    def test_roundtrip(self):
        header, records, malformed = read_ledger(
            self.write_sample().splitlines()
        )
        assert header["schema"] == LEDGER_SCHEMA_VERSION
        assert [r["kind"] for r in records] == [
            "sweep_start",
            "spec_done",
            "sweep_end",
        ]
        assert malformed == []

    def test_blank_lines_are_skipped(self):
        text = "\n" + self.write_sample() + "\n\n"
        _, records, malformed = read_ledger(text.splitlines())
        assert len(records) == 3 and not malformed

    def test_truncated_tail_is_tolerated_and_reported(self):
        lines = self.write_sample().splitlines() + ['{"kind": "spec_do']
        _, records, malformed = read_ledger(lines)
        assert len(records) == 3
        assert len(malformed) == 1
        assert malformed[0]["line"] == 5
        assert "spec_do" in malformed[0]["text"]

    def test_strict_mode_raises_on_malformed(self):
        lines = self.write_sample().splitlines() + ["not json"]
        with pytest.raises(ValueError, match="line 5"):
            read_ledger(lines, strict=True)

    def test_non_object_line(self):
        lines = self.write_sample().splitlines() + ["[1, 2]"]
        _, records, malformed = read_ledger(lines)
        assert len(malformed) == 1
        with pytest.raises(ValueError, match="not a JSON object"):
            read_ledger(lines, strict=True)

    def test_unknown_schema_always_raises(self):
        lines = ['{"kind": "ledger_header", "schema": 999}']
        with pytest.raises(ValueError, match="999"):
            read_ledger(lines)

    def test_unknown_record_kinds_pass_through(self):
        """A newer writer's extra vocabulary must not break this reader."""
        lines = self.write_sample().splitlines() + [
            '{"kind": "from_the_future", "x": 1}'
        ]
        _, records, malformed = read_ledger(lines)
        assert not malformed
        assert records[-1] == {"kind": "from_the_future", "x": 1}


class TestStripAndIdentity:
    def sample_records(self, wall=0.5, worker=111, tier="fresh"):
        return [
            {"kind": "session_open", "jobs": 2},
            {"kind": "sweep_start", "run": 1, "specs": 1, "jobs": 2,
             "workers": 2, "chunks": 3, "chunk_sizes": [1], "cache_enabled": True},
            {"kind": "chunk_dispatch", "run": 1, "chunk": 0},
            {"kind": "spec_done", "run": 1, "i": 0, "cycles": 7,
             "deadlocked": False, "recoveries": 0, "wall_s": wall,
             "cpu_s": wall, "wall_time": wall, "worker": worker,
             "chunk": 0, "cache": tier},
            {"kind": "chunk_done", "run": 1, "chunk": 0, "wall_s": wall},
            {"kind": "sweep_end", "run": 1, "specs": 1, "deadlocked": 0,
             "recoveries": 0, "workers": 2, "chunks": 3, "cache_hits": 0,
             "cache_misses": 1, "wall_s": wall},
            {"kind": "session_close", "runs": 1},
        ]

    def test_strip_drops_runtime_kinds_and_fields(self):
        stripped = strip_ledger(self.sample_records())
        assert [r["kind"] for r in stripped] == [
            "sweep_start",
            "spec_done",
            "sweep_end",
        ]
        for rec in stripped:
            assert not set(rec) & RUNTIME_FIELDS
        assert stripped[1] == {
            "kind": "spec_done",
            "i": 0,
            "cycles": 7,
            "deadlocked": False,
            "recoveries": 0,
        }

    def test_identity_ignores_runtime_noise(self):
        a = self.sample_records(wall=0.5, worker=111, tier="fresh")
        b = self.sample_records(wall=9.9, worker=222, tier="result")
        assert ledger_identity(a) == ledger_identity(b)

    def test_identity_sees_outcome_changes(self):
        a = self.sample_records()
        b = self.sample_records()
        b[3]["cycles"] = 8
        assert ledger_identity(a) != ledger_identity(b)

    def test_identity_sees_order(self):
        a = self.sample_records()
        b = list(reversed(self.sample_records()))
        assert ledger_identity(a) != ledger_identity(b)


class TestSpecOutcome:
    def test_outcome_fields(self):
        out = spec_outcome(fake_result())
        assert out["cycles"] == 810
        assert out["delivered"] == 6
        assert out["mean_latency"] == 11.5
        assert out["deadlocked"] is False
        assert out["recoveries"] == 0
        assert out["wall_time"] == 0.0042
        assert out["spec"]["kind"] == "md-crossbar"

    def test_nan_mean_becomes_none(self):
        """LatencyStats uses NaN sentinels on empty windows; the ledger
        must stay strict-JSON safe."""
        out = spec_outcome(fake_result(mean=float("nan"), count=0))
        assert out["mean_latency"] is None
        json.loads(json.dumps(out))  # round-trips as strict JSON

    def test_missing_recoveries_defaults_to_zero(self):
        result = fake_result()
        del result.point.recoveries
        assert spec_outcome(result)["recoveries"] == 0


class TestWorkerNames:
    def test_dense_names_by_first_appearance(self):
        records = [
            {"kind": "spec_done", "worker": 4711},
            {"kind": "spec_done", "worker": None},
            {"kind": "spec_done", "worker": 1234},
            {"kind": "spec_done", "worker": 4711},
            {"kind": "chunk_done", "worker": 9999},  # not a spec_done
        ]
        names = worker_names(records)
        assert names == {4711: "w0", None: "main", 1234: "w2"}


class TestSpecLabel:
    def test_label_contents(self):
        label = _spec_label(
            {"kind": "md-crossbar", "shape": [4, 3], "load": 0.1,
             "seed": 7, "faults": ["R(1,1)"], "label": "fig9"}
        )
        assert "md-crossbar 4x3" in label
        assert "load=0.1" in label
        assert "seed=7" in label
        assert "faults=1" in label
        assert "[fig9]" in label


class TestLiveDashboard:
    def test_non_tty_writes_milestones(self):
        stream = io.StringIO()  # no isatty -> treated as non-TTY
        dash = LiveDashboard(total=4, stream=stream)
        for done in range(1, 5):
            dash.progress(fake_result(), done, 4)
        out = stream.getvalue()
        assert "4/4" in out
        assert "specs/s" in out
        # milestone lines, not one per spec redraw storm
        assert out.count("\r") == 0

    def test_status_line_counts_trouble(self):
        dash = LiveDashboard(total=2, stream=io.StringIO())
        dash.progress(fake_result(deadlocked=True, recoveries=2), 1, 2)
        line = dash.status_line()
        assert "1 deadlocked" in line
        assert "2 rotation(s)" in line

    def test_finish_renders_info_and_worker_bars(self):
        stream = io.StringIO()
        dash = LiveDashboard(total=1, stream=stream)
        ledger = SweepLedger()
        ledger.record(
            "spec_done", i=0, worker=4711, wall_s=0.25, cache="fresh"
        )
        info = SimpleNamespace(describe=lambda: "1 spec(s) described")
        dash.finish(info, ledger)
        out = stream.getvalue()
        assert "ran 1 spec(s) described" in out
        assert "w0" in out
        assert "cache tiers:" in out
        for tier in CACHE_TIERS:
            assert tier in out

    def test_worker_lines_aggregate_by_worker(self):
        records = [
            {"kind": "spec_done", "worker": 1, "wall_s": 0.2, "cache": "fresh"},
            {"kind": "spec_done", "worker": 1, "wall_s": 0.2, "cache": "reuse"},
            {"kind": "spec_done", "worker": 2, "wall_s": 0.1, "cache": "result"},
        ]
        lines = LiveDashboard.worker_lines(records)
        assert len(lines) == 3  # two workers + the tier summary
        assert "2 spec(s)" in lines[0]
        assert "1 fresh" in lines[-1]
        assert "1 reuse" in lines[-1]
        assert "1 result" in lines[-1]

    def test_worker_lines_empty_without_specs(self):
        assert LiveDashboard.worker_lines([]) == []

    def test_eta_is_finite_once_moving(self):
        dash = LiveDashboard(total=10, stream=io.StringIO())
        dash.progress(fake_result(), 5, 10)
        assert "ETA" in dash.status_line()
        assert not math.isinf(5 / max(dash.done, 1))