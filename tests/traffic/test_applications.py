"""Unit tests for the application communication kernels."""

import pytest

from repro.core.coords import num_nodes
from repro.traffic.applications import (
    KERNELS,
    PhasedWorkload,
    alltoall_phases,
    compare_topologies,
    fft_phases,
    stencil_phases,
    sweep_phases,
)


class TestPhaseGenerators:
    def test_stencil_counts(self):
        phases = stencil_phases((4, 3))
        assert len(phases) == 4
        assert sum(len(p) for p in phases) == 2 * (3 * 3 + 2 * 4)

    def test_stencil_skips_degenerate_dim(self):
        phases = stencil_phases((4, 1))
        assert len(phases) == 2

    def test_stencil_no_self_sends(self):
        for phase in stencil_phases((3, 3)):
            assert all(s != t for s, t in phase)

    def test_fft_pairs_are_involutions(self):
        phases = fft_phases((4, 4))
        assert len(phases) == 4
        for phase in phases:
            pairs = {(s, t) for s, t in phase}
            assert all((t, s) in pairs for s, t in pairs)

    def test_fft_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fft_phases((4, 3))

    def test_alltoall_is_full(self):
        shape = (3, 2)
        phases = alltoall_phases(shape)
        n = num_nodes(shape)
        assert len(phases) == n - 1
        seen = set()
        for phase in phases:
            assert len(phase) == n
            seen.update(phase)
        assert len(seen) == n * (n - 1)

    def test_sweep_wavefront(self):
        phases = sweep_phases((4, 3))
        assert len(phases) == 3
        assert all(len(p) == 3 for p in phases)

    def test_each_phase_is_partial_permutation(self):
        for kernel, fn in KERNELS.items():
            shape = (4, 4)
            for phase in fn(shape):
                srcs = [s for s, _ in phase]
                dsts = [t for _, t in phase]
                assert len(set(srcs)) == len(srcs), kernel
                assert len(set(dsts)) == len(dsts), kernel


class TestPhasedWorkload:
    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            PhasedWorkload("lu", (4, 4)).phases()

    def test_run_on_md_crossbar(self):
        out = compare_topologies("stencil", (3, 3), kinds=("md-crossbar",))
        res = out["md-crossbar"]
        assert not res.deadlocked
        assert len(res.phases) == 4
        assert res.total_cycles > 0
        assert "stencil" in res.row()

    def test_fault_aware_skips_dead_pes(self):
        from repro.core import Fault, SwitchLogic, make_config
        from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
        from repro.topology import MDCrossbar

        shape = (4, 3)
        topo = MDCrossbar(shape)
        logic = SwitchLogic(topo, make_config(shape, fault=Fault.router((2, 0))))
        wl = PhasedWorkload("stencil", shape)
        res = wl.run(
            lambda: NetworkSimulator(MDCrossbarAdapter(logic), SimConfig())
        )
        assert not res.deadlocked
        full = PhasedWorkload("stencil", shape).run(
            lambda: NetworkSimulator(
                MDCrossbarAdapter(
                    SwitchLogic(topo, make_config(shape))
                ),
                SimConfig(),
            )
        )
        assert res.total_transfers < full.total_transfers


class TestComparisons:
    def test_fft_favours_md_crossbar(self):
        out = compare_topologies("fft", (4, 4), kinds=("md-crossbar", "mesh"))
        assert (
            out["md-crossbar"].total_cycles < out["mesh"].total_cycles
        )

    def test_alltoall_favours_md_crossbar(self):
        out = compare_topologies(
            "alltoall", (4, 4), kinds=("md-crossbar", "mesh")
        )
        assert out["md-crossbar"].total_cycles < out["mesh"].total_cycles

    def test_stencil_close_to_mesh(self):
        out = compare_topologies(
            "stencil", (4, 4), kinds=("md-crossbar", "mesh")
        )
        md, mesh = out["md-crossbar"], out["mesh"]
        # neighbour traffic is the mesh's home turf: the MD crossbar ties
        # within a small constant
        assert md.total_cycles <= 1.3 * mesh.total_cycles
