"""Unit tests for the injection processes."""

import pytest

from repro.core import RC
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from repro.traffic import BernoulliInjector, BroadcastInjector, ScenarioScript
from tests.conftest import make_logic


def make_sim(topo, **kw):
    return NetworkSimulator(MDCrossbarAdapter(make_logic(topo, **kw)), SimConfig())


class TestBernoulliInjector:
    def test_offered_rate_close_to_load(self, topo43):
        sim = make_sim(topo43)
        gen = BernoulliInjector(load=0.2, packet_length=4, seed=3, stop_at=400)
        sim.add_generator(gen)
        sim.run(max_cycles=1500, until_drained=False)
        expected = 0.2 / 4 * 400 * 12
        assert 0.7 * expected < gen.offered < 1.3 * expected

    def test_all_offered_delivered_after_drain(self, topo43):
        sim = make_sim(topo43)
        gen = BernoulliInjector(load=0.1, seed=5, stop_at=200)
        sim.add_generator(gen)
        res = sim.run(max_cycles=3000, until_drained=False)
        assert len(res.delivered) == gen.offered
        assert res.in_flight_at_end == 0

    def test_measurement_window(self, topo43):
        sim = make_sim(topo43)
        gen = BernoulliInjector(
            load=0.2, seed=7, stop_at=300, measure_from=100, measure_until=200
        )
        sim.add_generator(gen)
        res = sim.run(max_cycles=2000, until_drained=False)
        measured = gen.measured_packets(res.delivered)
        assert 0 < len(measured) < len(res.delivered)
        assert all(100 <= p.injected_at < 200 for p in measured)

    def test_zero_load_offers_nothing(self, topo43):
        sim = make_sim(topo43)
        gen = BernoulliInjector(load=0.0, stop_at=100)
        sim.add_generator(gen)
        sim.run(max_cycles=200, until_drained=False)
        assert gen.offered == 0

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            BernoulliInjector(load=1.5)

    def test_reproducible(self, topo43):
        counts = []
        for _ in range(2):
            sim = make_sim(topo43)
            gen = BernoulliInjector(load=0.3, seed=11, stop_at=150)
            sim.add_generator(gen)
            sim.run(max_cycles=1000, until_drained=False)
            counts.append(gen.offered)
        assert counts[0] == counts[1]

    def test_respects_fault_dead_node(self, topo43):
        from repro.core import Fault

        sim = make_sim(topo43, fault=Fault.router((2, 0)))
        gen = BernoulliInjector(load=0.3, seed=13, stop_at=150)
        sim.add_generator(gen)
        res = sim.run(max_cycles=2000, until_drained=False)
        assert not res.deadlocked
        for p in res.delivered:
            assert p.source != (2, 0) and p.dest != (2, 0)


class TestBroadcastInjector:
    def test_broadcasts_delivered(self, topo43):
        sim = make_sim(topo43)
        gen = BroadcastInjector(rate=0.02, seed=1, stop_at=300)
        sim.add_generator(gen)
        res = sim.run(max_cycles=3000, until_drained=False)
        assert gen.offered > 0
        assert len(res.delivered) == gen.offered
        assert all(p.header.rc is RC.BROADCAST_REQUEST for p in res.delivered)


class TestScenarioScript:
    def test_install_and_run(self, topo43):
        sim = make_sim(topo43)
        script = (
            ScenarioScript()
            .p2p(0, (0, 0), (3, 2))
            .p2p(5, (1, 1), (2, 2))
            .broadcast(3, (3, 0))
        )
        pkts = script.install(sim)
        assert len(pkts) == 3
        res = sim.run()
        assert len(res.delivered) == 3

    def test_injection_times_respected(self, topo43):
        sim = make_sim(topo43)
        script = ScenarioScript().p2p(7, (0, 0), (1, 0))
        (pkt,) = script.install(sim)
        sim.run()
        assert pkt.injected_at == 7

    def test_naive_broadcast_rc(self, topo43):
        script = ScenarioScript().broadcast(0, (0, 0), naive=True)
        assert script.sends[0].rc is RC.BROADCAST
