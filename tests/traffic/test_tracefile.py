"""Unit tests for workload trace record/replay."""

import pytest

from repro.core import Header, Packet, RC
from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
from repro.traffic import (
    BernoulliInjector,
    TraceEntry,
    TraceRecorder,
    WorkloadTrace,
)
from tests.conftest import make_logic


def make_sim(topo):
    return NetworkSimulator(MDCrossbarAdapter(make_logic(topo)), SimConfig())


class TestTraceEntry:
    def test_json_roundtrip(self):
        e = TraceEntry(cycle=7, source=(1, 2), dest=(3, 0), rc=1, length=6)
        assert TraceEntry.from_json(e.to_json()) == e


class TestWorkloadTrace:
    def test_add_and_len(self):
        t = WorkloadTrace(shape=(4, 3))
        t.add(0, (0, 0), (1, 1))
        t.add(5, (2, 2), (2, 2), rc=RC.BROADCAST_REQUEST, length=8)
        assert len(t) == 2

    def test_save_load_roundtrip(self, tmp_path, topo43):
        t = WorkloadTrace(shape=(4, 3))
        t.add(3, (0, 0), (3, 2), length=5)
        t.add(0, (1, 1), (1, 1), rc=RC.BROADCAST_REQUEST)
        path = tmp_path / "w.jsonl"
        t.save(path)
        t2 = WorkloadTrace.load(path)
        assert t2.shape == (4, 3)
        assert sorted(t2.entries, key=lambda e: e.cycle) == sorted(
            t.entries, key=lambda e: e.cycle
        )

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"version": 99, "shape": [2, 2]}\n')
        with pytest.raises(ValueError):
            WorkloadTrace.load(path)

    def test_install_shape_mismatch(self, topo43):
        t = WorkloadTrace(shape=(8, 8))
        with pytest.raises(ValueError):
            t.install(make_sim(topo43))

    def test_install_and_run(self, topo43):
        t = WorkloadTrace(shape=(4, 3))
        t.add(0, (0, 0), (3, 2), length=4)
        t.add(2, (1, 1), (1, 1), rc=RC.BROADCAST_REQUEST, length=4)
        sim = make_sim(topo43)
        pkts = t.install(sim)
        res = sim.run()
        assert len(res.delivered) == 2
        assert pkts[1].injected_at == 2


class TestTraceRecorder:
    def test_records_generator_traffic(self, topo43):
        sim = make_sim(topo43)
        rec = TraceRecorder(sim)
        gen = BernoulliInjector(load=0.2, seed=3, stop_at=100)
        sim.add_generator(gen)
        sim.run(max_cycles=1000, until_drained=False)
        trace = rec.detach()
        assert len(trace) == gen.offered

    def test_replay_is_bit_identical(self, topo43, tmp_path):
        sim = make_sim(topo43)
        rec = TraceRecorder(sim)
        sim.add_generator(BernoulliInjector(load=0.25, seed=5, stop_at=150))
        res1 = sim.run(max_cycles=2000, until_drained=False)
        trace = rec.detach()
        path = tmp_path / "t.jsonl"
        trace.save(path)

        sim2 = make_sim(topo43)
        WorkloadTrace.load(path).install(sim2)
        res2 = sim2.run(max_cycles=2000, until_drained=False)
        lat1 = sorted((p.source, p.dest, p.latency) for p in res1.delivered)
        lat2 = sorted((p.source, p.dest, p.latency) for p in res2.delivered)
        assert lat1 == lat2
        assert res1.flit_moves == res2.flit_moves

    def test_detach_restores_send(self, topo43):
        sim = make_sim(topo43)
        rec = TraceRecorder(sim)
        rec.detach()
        sim.send(Packet(Header(source=(0, 0), dest=(1, 0))))
        assert len(rec.trace) == 0
