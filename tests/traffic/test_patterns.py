"""Unit tests for the synthetic traffic patterns."""

import numpy as np
import pytest

from repro.core.coords import all_coords, lexicographic_index, num_nodes
from repro.traffic import (
    PATTERNS,
    bit_complement,
    bit_reversal,
    get_pattern,
    make_hotspot,
    make_permutation,
    neighbor,
    shuffle,
    tornado,
    transpose,
    uniform,
)

SHAPE = (4, 4)


@pytest.fixture()
def rng():
    return np.random.default_rng(42)


class TestUniform:
    def test_never_self(self, rng):
        for src in all_coords(SHAPE):
            for _ in range(20):
                assert uniform(src, SHAPE, rng) != src

    def test_in_range(self, rng):
        for _ in range(100):
            d = uniform((0, 0), SHAPE, rng)
            assert 0 <= d[0] < 4 and 0 <= d[1] < 4

    def test_covers_all_destinations(self, rng):
        seen = {uniform((0, 0), SHAPE, rng) for _ in range(2000)}
        assert len(seen) == 15

    def test_roughly_uniform(self, rng):
        counts = {}
        for _ in range(15000):
            d = uniform((0, 0), SHAPE, rng)
            counts[d] = counts.get(d, 0) + 1
        freq = np.array(list(counts.values())) / 15000
        assert abs(freq.mean() - 1 / 15) < 1e-9
        assert freq.min() > 0.04

    def test_degenerate_single_node(self, rng):
        assert uniform((0,), (1,), rng) == (0,)


class TestDeterministicPatterns:
    def test_transpose(self):
        assert transpose((1, 3), SHAPE) == (3, 1)

    def test_transpose_clips_rectangular(self):
        assert transpose((0, 2), (4, 3)) == (2, 0)
        assert transpose((3, 0), (4, 3)) == (0, 2)  # clipped to extent

    def test_bit_complement(self):
        assert bit_complement((0, 0), SHAPE) == (3, 3)
        assert bit_complement((1, 2), SHAPE) == (2, 1)

    def test_bit_reversal_is_involution_pow2(self):
        for src in all_coords(SHAPE):
            assert bit_reversal(bit_reversal(src, SHAPE), SHAPE) == src

    def test_shuffle_rotates_index(self):
        src = (1, 0)  # index 4 = 0100b -> 1000b = 8
        assert lexicographic_index(shuffle(src, SHAPE), SHAPE) == 8

    def test_tornado_halfway(self):
        assert tornado((0, 0), (8, 8)) == (3, 3)

    def test_neighbor_wraps(self):
        assert neighbor((3, 2), SHAPE) == (0, 2)

    def test_patterns_stay_in_range(self):
        for name, pat in PATTERNS.items():
            rng = np.random.default_rng(0)
            for src in all_coords(SHAPE):
                d = pat(src, SHAPE, rng)
                assert all(0 <= v < n for v, n in zip(d, SHAPE)), name


class TestPermutationPatterns:
    def test_bit_reversal_is_permutation(self):
        dests = {bit_reversal(s, SHAPE) for s in all_coords(SHAPE)}
        assert len(dests) == num_nodes(SHAPE)

    def test_bit_complement_is_permutation(self):
        dests = {bit_complement(s, SHAPE) for s in all_coords(SHAPE)}
        assert len(dests) == num_nodes(SHAPE)

    def test_make_permutation(self):
        n = num_nodes(SHAPE)
        mapping = [(i + 1) % n for i in range(n)]
        pat = make_permutation(mapping)
        assert pat((0, 0), SHAPE) == (0, 1)

    def test_make_permutation_validates(self):
        pat = make_permutation([0, 0, 1])
        with pytest.raises(ValueError):
            pat((0, 0), (3, 1))


class TestHotspot:
    def test_fraction_respected(self, rng):
        pat = make_hotspot((0, 0), fraction=0.5)
        hits = sum(
            1 for _ in range(4000) if pat((3, 3), SHAPE, rng) == (0, 0)
        )
        assert 0.45 < hits / 4000 < 0.58

    def test_hotspot_never_self(self, rng):
        pat = make_hotspot((0, 0), fraction=1.0)
        for _ in range(50):
            assert pat((0, 0), SHAPE, rng) != (0, 0) or True
            # the hotspot node itself falls back to the background pattern
            assert pat((0, 0), SHAPE, rng) != (0, 0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_hotspot((0, 0), fraction=1.5)


class TestRegistry:
    def test_get_pattern(self):
        assert get_pattern("uniform") is uniform

    def test_unknown_pattern(self):
        with pytest.raises(KeyError):
            get_pattern("zipf")
