"""Unit tests for the ``python -m repro`` command-line tools."""

import json

import pytest

from repro.cli import main, parse_coord, parse_fault, parse_loads, parse_shape


class TestParsers:
    def test_shape(self):
        assert parse_shape("4x3") == (4, 3)
        assert parse_shape("16X16x8") == (16, 16, 8)

    def test_shape_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_shape("4by3")

    def test_coord(self):
        assert parse_coord("2,0") == (2, 0)
        assert parse_coord("1,2,3") == (1, 2, 3)

    def test_fault_router(self):
        f = parse_fault("rtr:2,0")
        assert f.coord == (2, 0)

    def test_fault_xb(self):
        f = parse_fault("xb:0:1")
        assert f.dim == 0 and f.line == (1,)

    def test_fault_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_fault("link:3")

    def test_loads_comma_list(self):
        assert parse_loads("0.05,0.1,0.2") == [0.05, 0.1, 0.2]

    def test_loads_linear_range(self):
        loads = parse_loads("0.1:0.4:4")
        assert len(loads) == 4
        assert loads[0] == pytest.approx(0.1) and loads[-1] == pytest.approx(0.4)
        assert parse_loads("0.3:0.9:1") == [0.3]

    def test_loads_bad(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_loads("0.1;0.2")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_loads("0.1:0.4:0")


class TestCommands:
    def test_route(self, capsys):
        rc = main(["route", "--shape", "4x3", "--src", "0,0", "--dst", "2,2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PE(0, 0)" in out and "PE(2, 2)" in out

    def test_route_with_fault_detours(self, capsys):
        rc = main(
            ["route", "--shape", "4x3", "--src", "0,0", "--dst", "2,2",
             "--fault", "rtr:2,0"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "-d->" in out

    def test_route_broadcast(self, capsys):
        rc = main(["route", "--shape", "4x3", "--src", "1,1", "--bcast"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "12 PEs covered" in out

    def test_route_missing_dst(self, capsys):
        rc = main(["route", "--shape", "4x3", "--src", "0,0"])
        assert rc == 2

    def test_check_safe(self, capsys):
        rc = main(["check", "--shape", "4x3", "--fault", "rtr:2,0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "deadlock free: True" in out
        assert "certificate" in out

    def test_check_naive_fails(self, capsys):
        rc = main(
            ["check", "--shape", "4x3", "--fault", "rtr:2,0", "--detour", "naive"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "deadlock free: False" in out

    def test_census_single(self, capsys):
        rc = main(["census", "--shape", "3x2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "TOLERATED" in out

    def test_census_pairs(self, capsys):
        rc = main(["census", "--shape", "3x2", "--pairs", "--max-sets", "10"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fault sets analysed" in out

    def test_simulate(self, capsys):
        rc = main(
            ["simulate", "--shape", "4x3", "--load", "0.2", "--cycles", "200"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "latency:" in out

    def test_figures(self, capsys):
        rc = main(["figures"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("as the paper predicts") == 4

    def test_figures_recovery(self, capsys):
        """With --recovery the two by-design deadlocks (Figs. 5 and 9)
        drain after online rotations; the safe scenarios are untouched."""
        rc = main(["figures", "--recovery"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("deadlock broken online") == 2
        assert out.count("as the paper predicts") == 2
        assert "deadlock (" not in out

    def test_machine(self, capsys):
        rc = main(["machine", "--config", "SR2201/64"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "64 PEs" in out

    def test_machine_all(self, capsys):
        rc = main(["machine"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2048 PEs" in out

    def test_error_path(self, capsys):
        rc = main(["machine", "--config", "SR2201/512"])
        assert rc == 2
        assert "error" in capsys.readouterr().err

    def test_infeasible_config_reported(self, capsys):
        rc = main(
            ["check", "--shape", "4x3", "--fault", "xb:0:0", "--fault", "xb:1:1"]
        )
        assert rc == 2
        assert "R1" in capsys.readouterr().err


class TestExtendedCommands:
    def test_kernels(self, capsys):
        rc = main(["kernels", "--shape", "3x3", "--kernel", "stencil",
                   "--topology", "md-crossbar"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stencil" in out

    def test_kernels_skips_invalid(self, capsys):
        rc = main(["kernels", "--shape", "4x3", "--kernel", "fft",
                   "--topology", "md-crossbar"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "skipped" in out

    def test_collectives(self, capsys):
        rc = main(["collectives", "--shape", "3x3", "--packet-length", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hardware S-XB broadcast" in out
        assert "binomial" in out
        assert "barrier" in out

    def test_replay_roundtrip(self, capsys, tmp_path):
        from repro.traffic import WorkloadTrace
        from repro.core import RC

        t = WorkloadTrace(shape=(4, 3))
        t.add(0, (0, 0), (3, 2), length=4)
        t.add(1, (1, 1), (1, 1), rc=RC.BROADCAST_REQUEST)
        path = tmp_path / "t.jsonl"
        t.save(path)
        rc = main(["replay", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "replayed 2 packets" in out

    def test_replay_with_fault(self, capsys, tmp_path):
        from repro.traffic import WorkloadTrace

        t = WorkloadTrace(shape=(4, 3))
        t.add(0, (0, 0), (2, 2), length=4)
        path = tmp_path / "t.jsonl"
        t.save(path)
        rc = main(["replay", str(path), "--fault", "rtr:2,0"])
        assert rc == 0


SWEEP_FAST = ["--shape", "3x3", "--warmup", "30", "--window", "60",
              "--drain", "600"]


class TestSweepCommand:
    def test_sweep_table(self, capsys):
        rc = main(["sweep", "--loads", "0.05,0.15", *SWEEP_FAST])
        out = capsys.readouterr().out
        assert rc == 0
        assert "md-crossbar 3x3" in out and "2 points" in out
        assert out.count("load=0.") == 2

    def test_sweep_json(self, capsys):
        rc = main(["sweep", "--loads", "0.05:0.15:2", "--json", *SWEEP_FAST])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert [d["spec"]["load"] for d in data] == [0.05, 0.15]
        assert all(not d["deadlocked"] for d in data)
        assert all("mean" in d["latency"] for d in data)

    def test_sweep_jobs_matches_serial(self, capsys):
        argv = ["sweep", "--loads", "0.05,0.15", "--json", *SWEEP_FAST]
        assert main(argv) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        for s, p in zip(serial, parallel):
            s.pop("wall_time"), p.pop("wall_time")
        assert parallel == serial

    def test_sweep_seed_replicas(self, capsys):
        rc = main(["sweep", "--loads", "0.1", "--seeds", "3", "--json",
                   *SWEEP_FAST])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert [d["spec"]["seed"] for d in data] == [1, 2, 3]

    def test_sweep_with_fault(self, capsys):
        rc = main(["sweep", "--loads", "0.1", "--fault", "rtr:1,1",
                   *SWEEP_FAST])
        assert rc == 0

    def test_sweep_other_kind(self, capsys):
        rc = main(["sweep", "--kind", "mesh", "--loads", "0.1", *SWEEP_FAST])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mesh 3x3" in out

    def test_sweep_metrics_table(self, capsys):
        rc = main(["sweep", "--loads", "0.05,0.15", "--metrics", *SWEEP_FAST])
        out = capsys.readouterr().out
        assert rc == 0
        assert "merged metrics across all points" in out
        assert "latency histogram (cycles)" in out
        assert "deliveries" in out

    def test_sweep_metrics_json_parallel_matches_serial(self, capsys):
        argv = ["sweep", "--loads", "0.05,0.15", "--metrics", "--json",
                *SWEEP_FAST]
        assert main(argv) == 0
        serial = json.loads(capsys.readouterr().out)
        assert all(d["metrics"]["deliveries"]["value"] > 0 for d in serial)
        assert main(argv + ["--jobs", "4"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert [d["metrics"] for d in parallel] == [
            d["metrics"] for d in serial
        ]

    def test_sweep_reports_effective_workers(self, capsys):
        """--jobs echoes what actually ran: two specs on --jobs 8 use
        two workers; --jobs 1 (or none) runs serially."""
        rc = main(["sweep", "--loads", "0.05,0.15", "--jobs", "8",
                   *SWEEP_FAST])
        captured = capsys.readouterr()
        assert rc == 0
        assert "jobs=8 (2 effective worker(s)" in captured.out
        assert "2 spec(s) on 2 worker(s)" in captured.err
        rc = main(["sweep", "--loads", "0.05,0.15", *SWEEP_FAST])
        captured = capsys.readouterr()
        assert rc == 0
        assert "jobs=1 (1 effective worker(s)" in captured.out

    def test_sweep_cache_replay_is_byte_identical(self, tmp_path, capsys):
        argv = ["sweep", "--loads", "0.05,0.15", "--json", "--cache",
                "--cache-dir", str(tmp_path / "cache"), *SWEEP_FAST]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "0 hit(s)" in first.err and "2 put(s)" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        # stdout byte-identical, wall_time included -- the CI smoke step
        # cmp(1)s exactly this
        assert second.out == first.out
        assert "2 hit(s)" in second.err
        assert "0 from cache, 2 simulated" in first.err
        assert "2 from cache, 0 simulated" in second.err

    def test_sweep_no_cache_skips_the_cache_dir(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        base = ["sweep", "--loads", "0.05", "--cache-dir", str(cache_dir),
                *SWEEP_FAST]
        assert main(base + ["--no-cache"]) == 0
        assert not cache_dir.exists()
        assert "cache:" not in capsys.readouterr().err

    def test_sweep_cache_metrics_exports_counters(self, tmp_path, capsys):
        argv = ["sweep", "--loads", "0.05", "--metrics", "--cache",
                "--cache-dir", str(tmp_path / "cache"), *SWEEP_FAST]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "result_cache.hits" in out

    def test_sweep_reports_hit_rate_and_wall(self, tmp_path, capsys):
        argv = ["sweep", "--loads", "0.05,0.15", "--cache",
                "--cache-dir", str(tmp_path / "cache"), *SWEEP_FAST]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "2 from cache, 0 simulated (100.0% hit rate)" in err
        assert "s total" in err

    def test_sweep_writes_a_readable_ledger(self, tmp_path, capsys):
        from repro.obs import LEDGER_SCHEMA_VERSION, read_ledger

        path = tmp_path / "led.jsonl"
        argv = ["sweep", "--loads", "0.05,0.15", "--jobs", "2",
                "--ledger", str(path), *SWEEP_FAST]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert f"-> {path}" in err
        with open(path) as fh:
            header, records, malformed = read_ledger(fh)
        assert header["schema"] == LEDGER_SCHEMA_VERSION
        assert malformed == []
        done = [r for r in records if r["kind"] == "spec_done"]
        assert [r["i"] for r in done] == [0, 1]
        assert [r["kind"] for r in records if r["kind"] == "sweep_end"]

    def test_sweep_ledger_is_wall_stripped_deterministic(
        self, tmp_path, capsys
    ):
        """The CI ledger smoke in code form: the same sweep twice (and
        once more serially) strips to the same identity."""
        from repro.obs import ledger_identity, read_ledger

        def identity(path, argv):
            assert main(argv + ["--ledger", str(path)]) == 0
            capsys.readouterr()
            with open(path) as fh:
                _, records, _ = read_ledger(fh)
            return ledger_identity(records)

        argv = ["sweep", "--loads", "0.05,0.15", *SWEEP_FAST]
        a = identity(tmp_path / "a.jsonl", argv + ["--jobs", "2"])
        b = identity(tmp_path / "b.jsonl", argv + ["--jobs", "2"])
        c = identity(tmp_path / "c.jsonl", argv)
        assert a == b == c

    def test_sweep_live_dashboard_on_stderr(self, capsys):
        rc = main(["sweep", "--loads", "0.05,0.15", "--live", *SWEEP_FAST])
        captured = capsys.readouterr()
        assert rc == 0
        assert "specs/s" in captured.err
        assert "cache tiers:" in captured.err
        assert "specs/s" not in captured.out  # stdout stays a clean table

    def test_sweep_live_json_stdout_stays_pure(self, capsys):
        rc = main(["sweep", "--loads", "0.05,0.15", "--live", "--json",
                   *SWEEP_FAST])
        captured = capsys.readouterr()
        assert rc == 0
        json.loads(captured.out)


class TestTraceCommand:
    def test_trace_stdout_is_jsonl(self, capsys):
        rc = main(["trace", "--shape", "3x3", "--load", "0.2",
                   "--cycles", "40"])
        captured = capsys.readouterr()
        assert rc == 0
        lines = captured.out.splitlines()
        header = json.loads(lines[0])
        from repro.obs import TRACE_SCHEMA_VERSION
        assert header["kind"] == "trace_header"
        assert header["schema"] == TRACE_SCHEMA_VERSION
        kinds = {json.loads(line)["kind"] for line in lines[1:]}
        assert "grant" in kinds and "deliver" in kinds
        assert "traced" in captured.err  # summary stays off stdout

    def test_trace_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "run.jsonl"
        rc = main(["trace", "--shape", "3x3", "--load", "0.2",
                   "--cycles", "40", "--out", str(out_path),
                   "--event", "deliver"])
        assert rc == 0
        assert capsys.readouterr().out == ""
        lines = out_path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "trace_header"
        assert all(
            json.loads(line)["kind"] == "deliver" for line in lines[1:]
        )
        assert len(lines) > 1

    def test_trace_readable_by_the_library(self, tmp_path, capsys):
        from repro.obs import read_trace

        out_path = tmp_path / "run.jsonl"
        assert main(["trace", "--shape", "3x3", "--cycles", "40",
                     "--out", str(out_path)]) == 0
        capsys.readouterr()
        with open(out_path) as fh:
            header, records, malformed = read_trace(fh)
        assert malformed == []
        assert header["shape"] == [3, 3]
        assert records


class TestReportCommand:
    def test_live_report(self, capsys):
        rc = main(["report", "--shape", "3x3", "--load", "0.2",
                   "--cycles", "60"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Latency decomposition" in out
        assert "Blocked-cycle attribution" in out
        assert "Channel utilization heatmap" in out
        assert "Metrics" in out

    def test_live_report_markdown(self, capsys):
        rc = main(["report", "--shape", "3x3", "--cycles", "60",
                   "--format", "md"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.startswith("# Run report")
        assert "## Latency decomposition" in out

    def test_report_from_trace_matches_live_decomposition(
        self, capsys, tmp_path
    ):
        """The trace-replay path reproduces the live run's numbers."""
        assert main(["report", "--shape", "3x3", "--load", "0.2",
                     "--cycles", "60", "--seed", "9"]) == 0
        live = capsys.readouterr().out
        path = tmp_path / "run.jsonl"
        assert main(["trace", "--shape", "3x3", "--load", "0.2",
                     "--cycles", "60", "--seed", "9",
                     "--out", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", "--trace", str(path)]) == 0
        replayed = capsys.readouterr().out
        live_table = live.split("Latency decomposition")[1].split("S-XB")[0]
        replay_table = replayed.split("Latency decomposition")[1].split("S-XB")[0]
        assert live_table == replay_table

    def test_report_renders_recovery_actions_from_trace(
        self, capsys, tmp_path
    ):
        """A recovered run's trace carries ``recovery`` records and the
        report renders them as the recovery-actions table."""
        from repro.core import (
            Fault, Header, Packet, RC, SwitchLogic, make_config,
        )
        from repro.core.config import DetourScheme
        from repro.obs import TraceRecorder
        from repro.sim import MDCrossbarAdapter, NetworkSimulator, SimConfig
        from repro.topology import MDCrossbar

        shape = (4, 3)
        cfg = make_config(
            shape,
            fault=Fault.router((2, 0)),
            detour_scheme=DetourScheme.NAIVE,
        )
        sim = NetworkSimulator(
            MDCrossbarAdapter(SwitchLogic(MDCrossbar(shape), cfg)),
            SimConfig(stall_limit=200, recovery=True),
        )
        path = tmp_path / "recovered.jsonl"
        with open(path, "w") as fh:
            TraceRecorder(sink=fh).attach(sim)
            sends = [
                ((3, 2), (3, 2), RC.BROADCAST_REQUEST, 0),
                ((0, 0), (2, 2), RC.NORMAL, 1),
                ((1, 0), (3, 1), RC.NORMAL, 1),
                ((0, 1), (1, 2), RC.NORMAL, 2),
            ]
            for src, dst, rc_bits, at in sends:
                sim.send(
                    Packet(Header(source=src, dest=dst, rc=rc_bits), length=6),
                    at_cycle=at,
                )
            res = sim.run(max_cycles=20_000)
        assert res.recoveries == 1 and res.deadlock is None
        assert main(["report", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Deadlock recovery" in out
        assert "1 recovery action(s)" in out
        assert "victim pid" in out

    def test_report_from_trace_warns_on_malformed_tail(
        self, capsys, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        assert main(["trace", "--shape", "3x3", "--cycles", "40",
                     "--out", str(path)]) == 0
        capsys.readouterr()
        with open(path, "a") as fh:
            fh.write('{"kind": "deliv')  # truncated tail
        rc = main(["report", "--trace", str(path)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "skipped 1 malformed trace line" in captured.err
        assert "Latency decomposition" in captured.out

    def test_report_from_sweep_ledger(self, capsys, tmp_path):
        path = tmp_path / "led.jsonl"
        assert main(["sweep", "--loads", "0.05,0.15", "--jobs", "2",
                     "--ledger", str(path), *SWEEP_FAST]) == 0
        capsys.readouterr()
        rc = main(["report", "--sweep", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Sweep report" in out
        assert "Cache traffic" in out
        assert "Stragglers" in out
        assert "Chunk balance" in out
        assert "Workers" in out
        assert "Deadlocks and recovery" in out

    def test_report_from_sweep_ledger_markdown(self, capsys, tmp_path):
        path = tmp_path / "led.jsonl"
        assert main(["sweep", "--loads", "0.05",
                     "--ledger", str(path), *SWEEP_FAST]) == 0
        capsys.readouterr()
        rc = main(["report", "--sweep", str(path), "--format", "md"])
        out = capsys.readouterr().out
        assert rc == 0
        assert out.startswith("# Sweep report")
        assert "## Stragglers" in out

    def test_report_from_sweep_warns_on_malformed_tail(
        self, capsys, tmp_path
    ):
        path = tmp_path / "led.jsonl"
        assert main(["sweep", "--loads", "0.05",
                     "--ledger", str(path), *SWEEP_FAST]) == 0
        capsys.readouterr()
        with open(path, "a") as fh:
            fh.write('{"kind": "spec_do')  # truncated tail
        rc = main(["report", "--sweep", str(path)])
        captured = capsys.readouterr()
        assert rc == 0
        assert "skipped 1 malformed ledger line" in captured.err
        assert "Sweep report" in captured.out


class TestDoctorObsChecks:
    def test_doctor_reports_obs_health(self, capsys):
        rc = main(["doctor", "--shape", "3x3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "obs: collector detach leaves the hook bus empty: ok" in out
        assert "obs: trace roundtrip (schema" in out
        assert "obs: trace replay matches the live span totals: ok" in out
        assert "obs: truncated tail line is skipped+reported: ok" in out
        assert out.rstrip().endswith("healthy")

    def test_doctor_reports_telemetry_health(self, capsys):
        rc = main(["doctor", "--shape", "3x3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "telemetry: ledger roundtrip (schema" in out
        assert (
            "telemetry: repeated sweep strips to the same identity: ok" in out
        )
        assert "telemetry: stripped records carry no runtime fields: ok" in out
