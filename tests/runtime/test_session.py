"""The warm-worker session: chunked scheduling over a persistent pool,
per-process network reuse, and result-cache integration, all holding the
runtime's determinism contract (serial == chunked == cached, spec order
preserved)."""

import json

import pytest

from repro.runtime import (
    NetworkCache,
    ProcessPoolExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    SpecExecutionError,
    SweepSession,
    chunk_indices,
    fault_placement_specs,
    result_identity,
    run_specs,
    seed_replicas,
)

SHAPE = (3, 3)
WINDOWS = dict(warmup=30, window=60, drain=600)
FAST = dict(shape=SHAPE, **WINDOWS)


def small_specs():
    return seed_replicas(
        [
            RunSpec(load=0.05, **FAST),
            RunSpec(load=0.15, **FAST),
        ],
        seeds=[7, 8],
    )


class TestChunkIndices:
    def test_even_split(self):
        assert chunk_indices(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_the_front(self):
        slices = chunk_indices(10, 4)
        assert slices == [(0, 3), (3, 6), (6, 8), (8, 10)]
        sizes = [b - a for a, b in slices]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_fewer_items_than_chunks(self):
        assert chunk_indices(2, 8) == [(0, 1), (1, 2)]

    def test_degenerate(self):
        assert chunk_indices(1, 1) == [(0, 1)]
        assert chunk_indices(5, 1) == [(0, 5)]

    def test_covers_range_without_gaps(self):
        for n in (1, 7, 16, 33):
            for chunks in (1, 3, 8):
                slices = chunk_indices(n, chunks)
                flat = [i for a, b in slices for i in range(a, b)]
                assert flat == list(range(n))


class TestNetworkCache:
    def test_reuses_by_network_key(self):
        cache = NetworkCache()
        a = RunSpec(load=0.05, **FAST)
        b = RunSpec(load=0.15, seed=9, **FAST)  # same fabric, other traffic
        sim = cache.get(a)
        assert cache.get(b) is sim
        assert cache.builds == 1 and cache.reuses == 1

    def test_distinct_fabrics_get_distinct_networks(self):
        from repro.core import Fault

        cache = NetworkCache()
        plain = RunSpec(load=0.05, **FAST)
        faulted = RunSpec(
            load=0.05, faults=(Fault.router((1, 1)),), **FAST
        )
        assert cache.get(plain) is not cache.get(faulted)
        assert cache.builds == 2

    def test_lru_eviction(self):
        cache = NetworkCache(capacity=1)
        a = RunSpec(load=0.05, **FAST)
        b = RunSpec(load=0.05, shape=(4, 3), **WINDOWS)
        first = cache.get(a)
        cache.get(b)  # evicts a
        assert cache.get(a) is not first
        assert cache.builds == 3 and cache.reuses == 0

    def test_reused_network_reproduces_fresh_results(self):
        cache = NetworkCache()
        spec = RunSpec(load=0.2, **FAST)
        fresh = spec.execute()
        again = spec.execute(sim=cache.get(spec))
        reused = spec.execute(sim=cache.get(spec))
        assert fresh.point == again.point == reused.point

    def test_metrics_parity_through_reuse(self):
        """RouteCacheStats counters ride the metrics payload, so a warm
        route memo must be wound back for metrics-bearing specs."""
        spec = RunSpec(load=0.2, metrics=True, **FAST)
        cache = NetworkCache()
        cache.get(RunSpec(load=0.1, **FAST)).run(
            max_cycles=200, until_drained=False
        )  # dirty the shared network and its route memo
        warm = spec.execute(sim=cache.get(spec))
        fresh = spec.execute()
        assert json.dumps(warm.metrics.to_dict()) == json.dumps(
            fresh.metrics.to_dict()
        )
        assert warm.point == fresh.point


class TestSessionDeterminism:
    def test_serial_session_matches_executor(self):
        specs = small_specs()
        reference = SerialExecutor().run(specs)
        with SweepSession() as session:
            got = session.run(specs)
        assert [r.spec for r in got] == specs
        assert result_identity(got) == result_identity(reference)
        assert session.last_run.workers == 1

    def test_chunked_session_matches_serial(self):
        specs = small_specs()
        reference = result_identity(SerialExecutor().run(specs))
        with SweepSession(jobs=2, chunks_per_worker=2) as session:
            got = session.run(specs)
            again = session.run(specs)  # warm pool + warm networks
        assert result_identity(got) == reference
        assert result_identity(again) == reference
        assert session.last_run.workers == 2
        assert session.last_run.chunks > 1

    def test_fault_enumeration_across_session_legs(self):
        """Satellite acceptance: seed replicas of the fault-placement
        family -- serial, chunked-parallel and cache-replayed runs are
        byte-identical."""
        specs = seed_replicas(
            fault_placement_specs("md-crossbar", SHAPE, 0.1, **WINDOWS),
            seeds=[7, 8],
        )
        reference = result_identity(SerialExecutor().run(specs))
        with SweepSession(jobs=2) as session:
            assert result_identity(session.run(specs)) == reference

    def test_progress_streams_every_spec(self):
        specs = small_specs()
        seen = []
        with SweepSession(jobs=2) as session:
            session.run(
                specs,
                progress=lambda r, done, total: seen.append(
                    (r.spec, done, total)
                ),
            )
        assert len(seen) == len(specs)
        assert [done for _, done, _ in seen] == list(
            range(1, len(specs) + 1)
        )
        assert all(total == len(specs) for _, _, total in seen)
        assert {s for s, _, _ in seen} == set(specs)

    def test_effective_workers(self):
        assert SweepSession().effective_workers(10) == 1
        assert SweepSession(jobs=4).effective_workers(1) == 1
        assert SweepSession(jobs=4).effective_workers(2) == 2
        assert SweepSession(jobs=2).effective_workers(10) == 2


class TestSessionFailure:
    def crashing_spec(self):
        return RunSpec(kind="no-such-network", load=0.1, **FAST)

    def test_failure_names_the_spec_and_session_survives(self):
        good = small_specs()
        bad = self.crashing_spec()
        with SweepSession(jobs=2) as session:
            with pytest.raises(SpecExecutionError) as err:
                session.run(good[:2] + [bad] + good[2:])
            assert err.value.spec == bad
            assert "no-such-network" in str(err.value)
            # the session stays usable after a failed run
            results = session.run(good)
            assert [r.spec for r in results] == good

    def test_serial_failure_path(self):
        with SweepSession() as session:
            with pytest.raises(SpecExecutionError):
                session.run([self.crashing_spec()])


class TestPicklableCause:
    """The chunk workers ship their failure back through a pickle; an
    exception that cannot cross the process boundary must be sanitized,
    not surface as an opaque BrokenProcessPool."""

    def test_picklable_exception_passes_through(self):
        from repro.runtime.session import _picklable_cause

        exc = ValueError("plain and portable")
        assert _picklable_cause(exc) is exc

    def test_unpicklable_exception_is_sanitized(self):
        from repro.runtime.session import _picklable_cause

        class Gnarly(Exception):
            # custom __init__ signature: pickle.loads cannot rebuild it
            def __init__(self, spec, detail):
                super().__init__(f"{spec}: {detail}")

        try:
            raise Gnarly("spec-3", "boom")
        except Gnarly as exc:
            stand_in = _picklable_cause(exc)
        assert isinstance(stand_in, RuntimeError)
        assert "Gnarly" in str(stand_in)
        assert "boom" in str(stand_in)
        # the original traceback travels as text
        assert "test_unpicklable_exception_is_sanitized" in str(stand_in)
        # and the stand-in itself survives the round trip
        import pickle

        pickle.loads(pickle.dumps(stand_in))


class TestSessionCache:
    def test_replay_is_byte_identical_including_wall_time(self, tmp_path):
        specs = small_specs()
        cache = ResultCache(str(tmp_path / "cache"))
        with SweepSession(jobs=2, cache=cache) as session:
            first = session.run(specs)
            assert session.last_run.cache_misses == len(specs)
            replay = session.run(specs)
        assert session.last_run.cache_hits == len(specs)
        assert session.last_run.cache_misses == 0
        assert session.last_run.workers == 1  # nothing left to simulate
        # full JSON equality, wall_time included: the hit preserves the
        # originally measured wall time
        assert json.dumps([r.to_dict() for r in replay]) == json.dumps(
            [r.to_dict() for r in first]
        )

    def test_partial_hits_fill_only_the_gaps(self, tmp_path):
        specs = small_specs()
        cache = ResultCache(str(tmp_path / "cache"))
        with SweepSession(cache=cache) as session:
            session.run(specs[:2])
            out = session.run(specs)
        assert session.last_run.cache_hits == 2
        assert session.last_run.cache_misses == len(specs) - 2
        assert [r.spec for r in out] == specs

    def test_cache_hits_stream_before_simulated_points(self, tmp_path):
        specs = small_specs()
        cache = ResultCache(str(tmp_path / "cache"))
        with SweepSession(cache=cache) as session:
            session.run(specs[2:])
            order = []
            session.run(
                specs, progress=lambda r, d, t: order.append(r.spec)
            )
        assert order[:2] == specs[2:]  # the cached pair streamed first

    def test_run_specs_front_door_routes_through_session(self, tmp_path):
        specs = small_specs()
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_specs(specs, jobs=2, cache=cache)
        assert cache.puts == len(specs)
        replay = run_specs(specs, cache=cache)
        assert cache.hits == len(specs)
        assert json.dumps([r.to_dict() for r in replay]) == json.dumps(
            [r.to_dict() for r in first]
        )

    def test_explicit_executor_wins_over_session(self):
        specs = small_specs()[:2]
        results = run_specs(specs, executor=ProcessPoolExecutor(jobs=2))
        assert [r.spec for r in results] == specs
