"""The warm-worker session: chunked scheduling over a persistent pool,
per-process network reuse, and result-cache integration, all holding the
runtime's determinism contract (serial == chunked == cached, spec order
preserved)."""

import json

import pytest

from repro.runtime import (
    NetworkCache,
    ProcessPoolExecutor,
    ResultCache,
    RunSpec,
    SerialExecutor,
    SpecExecutionError,
    SweepSession,
    chunk_indices,
    fault_placement_specs,
    result_identity,
    run_specs,
    seed_replicas,
)

SHAPE = (3, 3)
WINDOWS = dict(warmup=30, window=60, drain=600)
FAST = dict(shape=SHAPE, **WINDOWS)


def small_specs():
    return seed_replicas(
        [
            RunSpec(load=0.05, **FAST),
            RunSpec(load=0.15, **FAST),
        ],
        seeds=[7, 8],
    )


class TestChunkIndices:
    def test_even_split(self):
        assert chunk_indices(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_the_front(self):
        slices = chunk_indices(10, 4)
        assert slices == [(0, 3), (3, 6), (6, 8), (8, 10)]
        sizes = [b - a for a, b in slices]
        assert max(sizes) - min(sizes) <= 1
        assert sizes == sorted(sizes, reverse=True)

    def test_fewer_items_than_chunks(self):
        assert chunk_indices(2, 8) == [(0, 1), (1, 2)]

    def test_degenerate(self):
        assert chunk_indices(1, 1) == [(0, 1)]
        assert chunk_indices(5, 1) == [(0, 5)]

    def test_covers_range_without_gaps(self):
        for n in (1, 7, 16, 33):
            for chunks in (1, 3, 8):
                slices = chunk_indices(n, chunks)
                flat = [i for a, b in slices for i in range(a, b)]
                assert flat == list(range(n))


class TestNetworkCache:
    def test_reuses_by_network_key(self):
        cache = NetworkCache()
        a = RunSpec(load=0.05, **FAST)
        b = RunSpec(load=0.15, seed=9, **FAST)  # same fabric, other traffic
        sim = cache.get(a)
        assert cache.get(b) is sim
        assert cache.builds == 1 and cache.reuses == 1

    def test_distinct_fabrics_get_distinct_networks(self):
        from repro.core import Fault

        cache = NetworkCache()
        plain = RunSpec(load=0.05, **FAST)
        faulted = RunSpec(
            load=0.05, faults=(Fault.router((1, 1)),), **FAST
        )
        assert cache.get(plain) is not cache.get(faulted)
        assert cache.builds == 2

    def test_lru_eviction(self):
        cache = NetworkCache(capacity=1)
        a = RunSpec(load=0.05, **FAST)
        b = RunSpec(load=0.05, shape=(4, 3), **WINDOWS)
        first = cache.get(a)
        cache.get(b)  # evicts a
        assert cache.get(a) is not first
        assert cache.builds == 3 and cache.reuses == 0

    def test_reused_network_reproduces_fresh_results(self):
        cache = NetworkCache()
        spec = RunSpec(load=0.2, **FAST)
        fresh = spec.execute()
        again = spec.execute(sim=cache.get(spec))
        reused = spec.execute(sim=cache.get(spec))
        assert fresh.point == again.point == reused.point

    def test_metrics_parity_through_reuse(self):
        """RouteCacheStats counters ride the metrics payload, so a warm
        route memo must be wound back for metrics-bearing specs."""
        spec = RunSpec(load=0.2, metrics=True, **FAST)
        cache = NetworkCache()
        cache.get(RunSpec(load=0.1, **FAST)).run(
            max_cycles=200, until_drained=False
        )  # dirty the shared network and its route memo
        warm = spec.execute(sim=cache.get(spec))
        fresh = spec.execute()
        assert json.dumps(warm.metrics.to_dict()) == json.dumps(
            fresh.metrics.to_dict()
        )
        assert warm.point == fresh.point


class TestSessionDeterminism:
    def test_serial_session_matches_executor(self):
        specs = small_specs()
        reference = SerialExecutor().run(specs)
        with SweepSession() as session:
            got = session.run(specs)
        assert [r.spec for r in got] == specs
        assert result_identity(got) == result_identity(reference)
        assert session.last_run.workers == 1

    def test_chunked_session_matches_serial(self):
        specs = small_specs()
        reference = result_identity(SerialExecutor().run(specs))
        with SweepSession(jobs=2, chunks_per_worker=2) as session:
            got = session.run(specs)
            again = session.run(specs)  # warm pool + warm networks
        assert result_identity(got) == reference
        assert result_identity(again) == reference
        assert session.last_run.workers == 2
        assert session.last_run.chunks > 1

    def test_fault_enumeration_across_session_legs(self):
        """Satellite acceptance: seed replicas of the fault-placement
        family -- serial, chunked-parallel and cache-replayed runs are
        byte-identical."""
        specs = seed_replicas(
            fault_placement_specs("md-crossbar", SHAPE, 0.1, **WINDOWS),
            seeds=[7, 8],
        )
        reference = result_identity(SerialExecutor().run(specs))
        with SweepSession(jobs=2) as session:
            assert result_identity(session.run(specs)) == reference

    def test_progress_streams_every_spec(self):
        specs = small_specs()
        seen = []
        with SweepSession(jobs=2) as session:
            session.run(
                specs,
                progress=lambda r, done, total: seen.append(
                    (r.spec, done, total)
                ),
            )
        assert len(seen) == len(specs)
        assert [done for _, done, _ in seen] == list(
            range(1, len(specs) + 1)
        )
        assert all(total == len(specs) for _, _, total in seen)
        assert {s for s, _, _ in seen} == set(specs)

    def test_effective_workers(self):
        assert SweepSession().effective_workers(10) == 1
        assert SweepSession(jobs=4).effective_workers(1) == 1
        assert SweepSession(jobs=4).effective_workers(2) == 2
        assert SweepSession(jobs=2).effective_workers(10) == 2


class TestSessionFailure:
    def crashing_spec(self):
        return RunSpec(kind="no-such-network", load=0.1, **FAST)

    def test_failure_names_the_spec_and_session_survives(self):
        good = small_specs()
        bad = self.crashing_spec()
        with SweepSession(jobs=2) as session:
            with pytest.raises(SpecExecutionError) as err:
                session.run(good[:2] + [bad] + good[2:])
            assert err.value.spec == bad
            assert "no-such-network" in str(err.value)
            # the session stays usable after a failed run
            results = session.run(good)
            assert [r.spec for r in results] == good

    def test_serial_failure_path(self):
        with SweepSession() as session:
            with pytest.raises(SpecExecutionError):
                session.run([self.crashing_spec()])


class TestProgressFailure:
    """A consumer (progress callback) that raises mid-sweep must surface
    its error and cancel queued chunks WITHOUT discarding the warm pool:
    the workers did nothing wrong, and the session must stay immediately
    reusable."""

    def test_raising_progress_keeps_the_warm_pool(self):
        specs = small_specs()
        boom = RuntimeError("consumer exploded")

        def bad_progress(result, done, total):
            raise boom

        with SweepSession(jobs=2) as session:
            session.run(specs)  # spin the pool up
            pool_before = session._pool
            assert pool_before is not None
            with pytest.raises(RuntimeError) as err:
                session.run(specs, progress=bad_progress)
            assert err.value is boom
            # the pool survived the consumer failure...
            assert session._pool is pool_before
            # ...and the session runs again without respawning workers
            results = session.run(specs)
            assert [r.spec for r in results] == specs
            assert session._pool is pool_before

    def test_raising_progress_in_serial_run_surfaces(self):
        boom = ValueError("serial consumer exploded")
        with SweepSession() as session:
            with pytest.raises(ValueError) as err:
                session.run(
                    small_specs(), progress=lambda r, d, t: (_ for _ in ()).throw(boom)
                )
            assert err.value is boom
            # serial runs hold no pool; the session stays usable
            results = session.run(small_specs())
            assert len(results) == len(small_specs())

    def test_worker_failure_still_discards_the_pool(self):
        """The distinction matters: a *worker* failure may have poisoned
        the pool, so that path still drops it."""
        bad = RunSpec(kind="no-such-network", load=0.1, **FAST)
        with SweepSession(jobs=2) as session:
            session.run(small_specs())
            pool_before = session._pool
            with pytest.raises(SpecExecutionError):
                session.run(small_specs()[:1] + [bad] * 3)
            assert session._pool is not pool_before


class TestRunInfo:
    def test_describe_reports_hit_rate_and_wall(self, tmp_path):
        specs = small_specs()
        cache = ResultCache(str(tmp_path / "cache"))
        with SweepSession(cache=cache) as session:
            session.run(specs[:2])
            session.run(specs)
        text = session.last_run.describe()
        assert "2 from cache, 2 simulated" in text
        assert "(50.0% hit rate)" in text
        assert text.endswith("s total")
        assert session.last_run.wall_s > 0
        assert session.last_run.hit_rate() == 0.5

    def test_describe_without_cache_skips_hit_rate(self):
        with SweepSession() as session:
            session.run(small_specs()[:1])
        text = session.last_run.describe()
        assert "hit rate" not in text
        assert "1 spec(s) on 1 worker(s) in 1 chunk(s)" in text
        assert session.last_run.hit_rate() == 0.0


class TestPicklableCause:
    """The chunk workers ship their failure back through a pickle; an
    exception that cannot cross the process boundary must be sanitized,
    not surface as an opaque BrokenProcessPool."""

    def test_picklable_exception_passes_through(self):
        from repro.runtime.session import _picklable_cause

        exc = ValueError("plain and portable")
        assert _picklable_cause(exc) is exc

    def test_unpicklable_exception_is_sanitized(self):
        from repro.runtime.session import _picklable_cause

        class Gnarly(Exception):
            # custom __init__ signature: pickle.loads cannot rebuild it
            def __init__(self, spec, detail):
                super().__init__(f"{spec}: {detail}")

        try:
            raise Gnarly("spec-3", "boom")
        except Gnarly as exc:
            stand_in = _picklable_cause(exc)
        assert isinstance(stand_in, RuntimeError)
        assert "Gnarly" in str(stand_in)
        assert "boom" in str(stand_in)
        # the original traceback travels as text
        assert "test_unpicklable_exception_is_sanitized" in str(stand_in)
        # and the stand-in itself survives the round trip
        import pickle

        pickle.loads(pickle.dumps(stand_in))


class TestSessionLedger:
    """The run ledger inherits the runtime's determinism contract:
    serial, chunked and cache-replayed runs of the same specs strip to
    byte-identical records (wall/cpu/placement fields excluded, exactly
    like ``result_identity`` excludes ``wall_time``)."""

    def ledgered_run(self, specs, jobs=None, cache=None):
        from repro.obs import SweepLedger

        ledger = SweepLedger()
        with SweepSession(jobs=jobs, cache=cache, ledger=ledger) as s:
            s.run(specs)
        return ledger

    def test_serial_chunked_and_cached_strip_identically(self, tmp_path):
        from repro.obs import ledger_identity, strip_ledger

        specs = small_specs()
        serial = self.ledgered_run(specs)
        chunked = self.ledgered_run(specs, jobs=2)
        cache = ResultCache(str(tmp_path / "cache"))
        self.ledgered_run(specs, jobs=2, cache=cache)  # populate
        replayed = self.ledgered_run(specs, cache=cache)

        assert (
            strip_ledger(serial.records)
            == strip_ledger(chunked.records)
            == strip_ledger(replayed.records)
        )
        assert (
            ledger_identity(serial.records)
            == ledger_identity(chunked.records)
            == ledger_identity(replayed.records)
        )

    def test_same_sweep_twice_yields_identical_ledgers(self):
        from repro.obs import ledger_identity

        specs = small_specs()
        first = self.ledgered_run(specs, jobs=2)
        second = self.ledgered_run(specs, jobs=2)
        assert ledger_identity(first.records) == ledger_identity(
            second.records
        )

    def test_spec_done_records_are_in_spec_order(self):
        specs = small_specs()
        ledger = self.ledgered_run(specs, jobs=2)
        done = ledger.of_kind("spec_done")
        assert [r["i"] for r in done] == list(range(len(specs)))
        assert [r["spec"] for r in done] == [s.to_dict() for s in specs]

    def test_ledger_records_tiers_and_lifecycle(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        specs = small_specs()
        populate = self.ledgered_run(specs, jobs=2, cache=cache)
        tiers = [r["cache"] for r in populate.of_kind("spec_done")]
        assert set(tiers) <= {"fresh", "reuse"}
        assert "fresh" in tiers
        replay = self.ledgered_run(specs, cache=cache)
        assert [
            r["cache"] for r in replay.of_kind("spec_done")
        ] == ["result"] * len(specs)
        for led in (populate, replay):
            assert len(led.of_kind("session_open")) == 1
            assert len(led.of_kind("session_close")) == 1
            assert len(led.of_kind("sweep_start")) == 1
            end = led.of_kind("sweep_end")
            assert len(end) == 1 and end[0]["specs"] == len(specs)
        # chunked dispatch shows up only where chunks actually ran
        assert populate.of_kind("chunk_dispatch")
        assert not replay.of_kind("chunk_dispatch")

    def test_failed_run_records_sweep_error_not_spec_done(self):
        from repro.obs import SweepLedger

        bad = RunSpec(kind="no-such-network", load=0.1, **FAST)
        ledger = SweepLedger()
        with SweepSession(jobs=2, ledger=ledger) as session:
            with pytest.raises(SpecExecutionError):
                session.run(small_specs() + [bad])
        errors = ledger.of_kind("sweep_error")
        assert len(errors) == 1
        assert "no-such-network" in errors[0]["error"]
        assert not ledger.of_kind("spec_done")
        assert not ledger.of_kind("sweep_end")

    def test_ledger_attachable_between_runs(self):
        from repro.obs import SweepLedger

        specs = small_specs()[:2]
        with SweepSession() as session:
            session.run(specs)  # unledgered
            ledger = SweepLedger()
            session.ledger = ledger
            session.run(specs)
        assert len(ledger.of_kind("session_open")) == 1
        assert len(ledger.of_kind("spec_done")) == len(specs)
        assert ledger.of_kind("session_close")[0]["runs"] == 2

    def test_run_specs_front_door_takes_a_ledger(self):
        from repro.obs import SweepLedger

        specs = small_specs()[:2]
        ledger = SweepLedger()
        results = run_specs(specs, ledger=ledger)
        assert [r.spec for r in results] == specs
        assert len(ledger.of_kind("spec_done")) == len(specs)


class TestSessionCache:
    def test_replay_is_byte_identical_including_wall_time(self, tmp_path):
        specs = small_specs()
        cache = ResultCache(str(tmp_path / "cache"))
        with SweepSession(jobs=2, cache=cache) as session:
            first = session.run(specs)
            assert session.last_run.cache_misses == len(specs)
            replay = session.run(specs)
        assert session.last_run.cache_hits == len(specs)
        assert session.last_run.cache_misses == 0
        assert session.last_run.workers == 1  # nothing left to simulate
        # full JSON equality, wall_time included: the hit preserves the
        # originally measured wall time
        assert json.dumps([r.to_dict() for r in replay]) == json.dumps(
            [r.to_dict() for r in first]
        )

    def test_partial_hits_fill_only_the_gaps(self, tmp_path):
        specs = small_specs()
        cache = ResultCache(str(tmp_path / "cache"))
        with SweepSession(cache=cache) as session:
            session.run(specs[:2])
            out = session.run(specs)
        assert session.last_run.cache_hits == 2
        assert session.last_run.cache_misses == len(specs) - 2
        assert [r.spec for r in out] == specs

    def test_cache_hits_stream_before_simulated_points(self, tmp_path):
        specs = small_specs()
        cache = ResultCache(str(tmp_path / "cache"))
        with SweepSession(cache=cache) as session:
            session.run(specs[2:])
            order = []
            session.run(
                specs, progress=lambda r, d, t: order.append(r.spec)
            )
        assert order[:2] == specs[2:]  # the cached pair streamed first

    def test_run_specs_front_door_routes_through_session(self, tmp_path):
        specs = small_specs()
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_specs(specs, jobs=2, cache=cache)
        assert cache.puts == len(specs)
        replay = run_specs(specs, cache=cache)
        assert cache.hits == len(specs)
        assert json.dumps([r.to_dict() for r in replay]) == json.dumps(
            [r.to_dict() for r in first]
        )

    def test_explicit_executor_wins_over_session(self):
        specs = small_specs()[:2]
        results = run_specs(specs, executor=ProcessPoolExecutor(jobs=2))
        assert [r.spec for r in results] == specs


# ---------------------------------------------------------------- run_tasks

def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"task {x} failed")


class TestRunTasks:
    """The generic fan-out door (campaign chunks ride through here):
    arbitrary picklable fn over the warm pool, completion-order
    callbacks, run()-matching failure semantics."""

    def test_serial_path(self):
        got = []
        with SweepSession() as session:
            n = session.run_tasks(
                _square, [(2,), (3,), (4,)],
                on_result=lambda i, v: got.append((i, v)),
            )
        assert n == 3
        assert got == [(0, 4), (1, 9), (2, 16)]

    def test_single_task_stays_in_process(self):
        got = []
        with SweepSession(jobs=4) as session:
            session.run_tasks(_square, [(5,)], on_result=lambda i, v: got.append(v))
            assert session._pool is None  # degenerate input: no pool spawned
        assert got == [25]

    def test_pooled_results_cover_every_task(self):
        got = {}
        with SweepSession(jobs=2) as session:
            n = session.run_tasks(
                _square, [(i,) for i in range(8)],
                on_result=lambda i, v: got.__setitem__(i, v),
            )
        assert n == 8
        assert got == {i: i * i for i in range(8)}

    def test_worker_failure_surfaces_and_discards_pool(self):
        with SweepSession(jobs=2) as session:
            session.run_tasks(_square, [(1,), (2,)])
            assert session._pool is not None
            with pytest.raises(RuntimeError, match="failed"):
                session.run_tasks(_boom, [(1,), (2,)])
            assert session._pool is None
            # the session itself stays usable
            session.run_tasks(_square, [(1,), (2,)])

    def test_consumer_failure_keeps_the_warm_pool(self):
        def consume(i, v):
            raise ValueError("consumer broke")

        with SweepSession(jobs=2) as session:
            session.run_tasks(_square, [(1,), (2,)])
            pool = session._pool
            with pytest.raises(ValueError, match="consumer broke"):
                session.run_tasks(_square, [(1,), (2,)], on_result=consume)
            assert session._pool is pool
