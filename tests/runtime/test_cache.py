"""The content-addressed result cache: key definition, round-trips,
invalidation of corrupt/stale entries, and the wall_time-excluding
result identity."""

import json
import pickle
from dataclasses import replace

from repro.core import Fault
from repro.runtime import ResultCache, RunSpec, result_identity, spec_key
from repro.runtime.cache import CACHE_SCHEMA

SHAPE = (3, 3)
FAST = dict(shape=SHAPE, warmup=30, window=60, drain=600)


def spec(**kw):
    base = dict(load=0.1, **FAST)
    base.update(kw)
    return RunSpec(**base)


class TestSpecKey:
    def test_stable_for_equal_specs(self):
        assert spec_key(spec()) == spec_key(spec())

    def test_sensitive_to_every_content_field(self):
        base = spec()
        variants = [
            spec(load=0.2),
            spec(seed=2),
            spec(shape=(4, 3)),
            spec(warmup=31),
            spec(window=61),
            spec(drain=601),
            spec(stall_limit=999),
            spec(pattern="transpose"),
            spec(packet_length=8),
            spec(metrics=True),
            spec(faults=(Fault.router((1, 1)),)),
            spec(label="named"),
            spec(engine="soa"),
        ]
        keys = {spec_key(v) for v in variants}
        assert spec_key(base) not in keys
        assert len(keys) == len(variants)

    def test_is_hex_sha256(self):
        key = spec_key(spec())
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestResultIdentity:
    def test_excludes_wall_time_only(self):
        result = spec().execute()
        other = replace(result, wall_time=result.wall_time + 1.0)
        assert result_identity([result]) == result_identity([other])
        moved = replace(result, spec=spec(load=0.2))
        assert result_identity([result]) != result_identity([moved])

    def test_order_sensitive(self):
        a, b = spec().execute(), spec(load=0.2).execute()
        assert result_identity([a, b]) != result_identity([b, a])


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec()
        assert cache.get(s) is None
        assert cache.stats() == {
            "hits": 0, "misses": 1, "invalidations": 0, "puts": 0,
        }
        result = s.execute()
        cache.put(result)
        got = cache.get(s)
        assert got is not None
        # the stored result replays byte-identically, wall_time included
        assert json.dumps(got.to_dict()) == json.dumps(result.to_dict())
        assert cache.stats() == {
            "hits": 1, "misses": 1, "invalidations": 0, "puts": 1,
        }

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec()
        cache.put(s.execute())
        key = spec_key(s)
        assert (tmp_path / key[:2] / f"{key}.pkl").exists()

    def test_get_hashes_the_spec_exactly_once(self, tmp_path, monkeypatch):
        """A lookup canonicalizes + sha256s the spec a single time; the
        payload check reuses that key instead of rehashing."""
        import repro.runtime.cache as cache_mod

        cache = ResultCache(str(tmp_path))
        s = spec()
        cache.put(s.execute())
        calls = []
        real = cache_mod.spec_key
        monkeypatch.setattr(
            cache_mod, "spec_key", lambda sp: calls.append(sp) or real(sp)
        )
        assert cache.get(s) is not None
        assert len(calls) == 1

    def test_metrics_payload_rides_along(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec(metrics=True)
        cache.put(s.execute())
        got = cache.get(s)
        assert got.metrics is not None
        assert got.metrics["deliveries"].value > 0


class TestInvalidation:
    def test_corrupt_payload_is_dropped_and_recovered(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec()
        cache.put(s.execute())
        path = cache.path_for(s)
        with open(path, "wb") as f:
            f.write(b"not a pickle")
        assert cache.get(s) is None
        assert cache.invalidations == 1
        assert not list(tmp_path.glob("*/*.pkl"))  # entry unlinked
        cache.put(s.execute())  # rewrites cleanly
        assert cache.get(s) is not None

    def test_foreign_schema_is_dropped(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec()
        result = s.execute()
        cache.put(result)
        path = cache.path_for(s)
        payload = {
            "schema": CACHE_SCHEMA + 1,
            "key": spec_key(s),
            "spec": s.to_dict(),
            "result": result,
        }
        with open(path, "wb") as f:
            pickle.dump(payload, f)
        assert cache.get(s) is None
        assert cache.invalidations == 1

    def test_key_collision_guard(self, tmp_path):
        """A payload whose embedded spec disagrees with the probing spec
        (hash collision, or a file renamed by hand) reads as a miss."""
        cache = ResultCache(str(tmp_path))
        a, b = spec(), spec(load=0.2)
        cache.put(a.execute())
        import os
        import shutil

        src, dst = cache.path_for(a), cache.path_for(b)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        shutil.copy(src, dst)
        assert cache.get(b) is None
        assert cache.invalidations == 1
        assert cache.get(a) is not None  # the honest entry still hits

    def test_describe_mentions_counts_and_root(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.get(spec())
        text = cache.describe()
        assert "1 miss(es)" in text and str(tmp_path) in text


class TestObsIntegration:
    def test_counters_export_as_metrics(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        s = spec()
        cache.get(s)
        cache.put(s.execute())
        cache.get(s)
        ms = cache.metrics()
        assert ms["result_cache.hits"].value == 1
        assert ms["result_cache.misses"].value == 1
        assert ms["result_cache.puts"].value == 1
        assert ms["result_cache.invalidations"].value == 0
